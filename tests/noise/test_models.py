"""Tests for noise models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.noise.models import CodeCapacityNoise, PhenomenologicalNoise
from repro.exceptions import InvalidProbabilityError
from repro.types import StabilizerType


class TestValidation:
    @pytest.mark.parametrize("bad", [-0.1, 1.1, float("nan"), "0.5", None])
    def test_rejects_invalid_data_rate(self, bad):
        with pytest.raises(InvalidProbabilityError):
            PhenomenologicalNoise(bad)

    def test_rejects_invalid_measurement_rate(self):
        with pytest.raises(InvalidProbabilityError):
            PhenomenologicalNoise(0.01, measurement_error_rate=2.0)

    def test_code_capacity_rejects_invalid_rate(self):
        with pytest.raises(InvalidProbabilityError):
            CodeCapacityNoise(-1.0)


class TestRates:
    def test_measurement_rate_defaults_to_data_rate(self):
        noise = PhenomenologicalNoise(0.004)
        assert noise.measurement_error_rate == noise.data_error_rate == 0.004

    def test_measurement_rate_can_differ(self):
        noise = PhenomenologicalNoise(0.004, measurement_error_rate=0.001)
        assert noise.measurement_error_rate == 0.001

    def test_code_capacity_has_perfect_measurements(self):
        assert CodeCapacityNoise(0.01).measurement_error_rate == 0.0


class TestSampling:
    def test_data_vector_shape(self, code_d5, rng):
        noise = PhenomenologicalNoise(0.1)
        vector = noise.sample_data_vector(code_d5, rng)
        assert vector.shape == (code_d5.num_data_qubits,)
        assert set(np.unique(vector)) <= {0, 1}

    def test_measurement_vector_shape(self, code_d5, rng, stype):
        noise = PhenomenologicalNoise(0.1)
        vector = noise.sample_measurement_vector(code_d5, stype, rng)
        assert vector.shape == (code_d5.num_ancillas_of_type(stype),)

    def test_zero_rate_never_errs(self, code_d3, rng):
        noise = PhenomenologicalNoise(0.0)
        assert not noise.sample_data_vector(code_d3, rng).any()
        assert not noise.sample_measurement_vector(code_d3, StabilizerType.X, rng).any()

    def test_unit_rate_always_errs(self, code_d3, rng):
        noise = PhenomenologicalNoise(1.0)
        assert noise.sample_data_vector(code_d3, rng).all()

    def test_empirical_rate_close_to_nominal(self, code_d5):
        noise = PhenomenologicalNoise(0.2)
        rng = np.random.default_rng(0)
        samples = np.stack(
            [noise.sample_data_vector(code_d5, rng) for _ in range(2000)]
        )
        assert samples.mean() == pytest.approx(0.2, abs=0.02)

    def test_sample_cycle_returns_coordinates(self, code_d3):
        noise = PhenomenologicalNoise(0.5)
        cycle = noise.sample_cycle(code_d3, StabilizerType.X, rng=3)
        assert all(coord.is_data for coord in cycle.data_errors)
        assert all(coord.is_ancilla for coord in cycle.measurement_errors)

    def test_sample_cycle_reproducible_with_seed(self, code_d3):
        noise = PhenomenologicalNoise(0.3)
        assert noise.sample_cycle(code_d3, StabilizerType.Z, rng=9) == noise.sample_cycle(
            code_d3, StabilizerType.Z, rng=9
        )

    def test_code_capacity_never_flips_measurements(self, code_d3, rng):
        noise = CodeCapacityNoise(0.5)
        assert not noise.sample_measurement_vector(code_d3, StabilizerType.X, rng).any()

    def test_repr_mentions_rates(self):
        assert "0.01" in repr(PhenomenologicalNoise(0.01))
