"""Tests for error-event containers and vector conversions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.noise.events import CycleErrors, errors_to_vector, vector_to_errors
from repro.types import Coord


class TestCycleErrors:
    def test_default_is_error_free(self):
        assert CycleErrors().is_error_free
        assert CycleErrors().num_errors == 0

    def test_counts_both_species(self):
        errors = CycleErrors(
            data_errors=frozenset({Coord(0, 0), Coord(2, 2)}),
            measurement_errors=frozenset({Coord(1, 1)}),
        )
        assert errors.num_errors == 3
        assert not errors.is_error_free

    def test_frozen(self):
        errors = CycleErrors()
        with pytest.raises(AttributeError):
            errors.data_errors = frozenset()


class TestVectorConversions:
    def test_round_trip(self, code_d3):
        index = code_d3.data_index
        ordering = code_d3.data_qubits
        errors = frozenset({ordering[0], ordering[4], ordering[8]})
        vector = errors_to_vector(errors, index)
        assert vector.sum() == 3
        assert vector_to_errors(vector, ordering) == errors

    def test_empty_set_gives_zero_vector(self, code_d3):
        vector = errors_to_vector(frozenset(), code_d3.data_index)
        assert not vector.any()

    def test_vector_to_errors_rejects_length_mismatch(self, code_d3):
        with pytest.raises(ValueError):
            vector_to_errors(np.zeros(3, dtype=np.uint8), code_d3.data_qubits)

    def test_vector_dtype_is_uint8(self, code_d3):
        vector = errors_to_vector({code_d3.data_qubits[0]}, code_d3.data_index)
        assert vector.dtype == np.uint8
