"""Tests for RNG utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.noise.rng import make_rng, spawn_rngs


class TestMakeRng:
    def test_returns_generator_for_seed(self):
        assert isinstance(make_rng(42), np.random.Generator)

    def test_same_seed_same_stream(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_passthrough_of_existing_generator(self):
        generator = np.random.default_rng(0)
        assert make_rng(generator) is generator

    def test_none_seed_is_accepted(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count_matches(self):
        assert len(spawn_rngs(3, 5)) == 5

    def test_children_are_independent_streams(self):
        children = spawn_rngs(3, 2)
        assert children[0].random() != children[1].random()

    def test_reproducible_across_calls(self):
        first = [g.random() for g in spawn_rngs(11, 3)]
        second = [g.random() for g in spawn_rngs(11, 3)]
        assert first == second

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count_gives_empty_list(self):
        assert spawn_rngs(0, 0) == []
