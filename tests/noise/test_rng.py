"""Tests for RNG utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.noise.rng import make_rng, point_seed, shard_rng, spawn_rngs
from repro.store import result_key


class TestMakeRng:
    def test_returns_generator_for_seed(self):
        assert isinstance(make_rng(42), np.random.Generator)

    def test_same_seed_same_stream(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_passthrough_of_existing_generator(self):
        generator = np.random.default_rng(0)
        assert make_rng(generator) is generator

    def test_none_seed_is_accepted(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count_matches(self):
        assert len(spawn_rngs(3, 5)) == 5

    def test_children_are_independent_streams(self):
        children = spawn_rngs(3, 2)
        assert children[0].random() != children[1].random()

    def test_reproducible_across_calls(self):
        first = [g.random() for g in spawn_rngs(11, 3)]
        second = [g.random() for g in spawn_rngs(11, 3)]
        assert first == second

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count_gives_empty_list(self):
        assert spawn_rngs(0, 0) == []


class TestPointSeed:
    def test_reproducible(self):
        assert point_seed(7, 1, 2) == point_seed(7, 1, 2)

    def test_distinct_keys_give_distinct_seeds(self):
        seeds = {
            point_seed(7, i, j) for i in range(20) for j in range(20)
        }
        assert len(seeds) == 400

    def test_no_cross_axis_collisions_unlike_arithmetic_schemes(self):
        # seed + 1000*i + j collides at (i, j) = (0, 1000) vs (1, 0); the
        # spawn-key route must not.
        assert point_seed(2023, 0, 1000) != point_seed(2023, 1, 0)
        assert point_seed(2023, 0, 1) != point_seed(2023, 1, 0)

    def test_root_seed_separates_sweeps(self):
        assert point_seed(1, 0, 0) != point_seed(2, 0, 0)

    def test_matches_seed_sequence_spawn_key_state(self):
        state = np.random.SeedSequence(5, spawn_key=(3, 4)).generate_state(4, np.uint32)
        expected = 0
        for word in state:
            expected = (expected << 32) | int(word)
        assert point_seed(5, 3, 4) == expected

    def test_usable_as_downstream_seed(self):
        value = point_seed(9, 2)
        assert make_rng(value).random() == make_rng(value).random()

    def test_negative_key_rejected(self):
        with pytest.raises(ValueError):
            point_seed(7, -1)


#: Sweep-point coordinates: small indices are the common case, but the whole
#: point of the spawn-key scheme is that *large* indices can't collide either.
_INDICES = st.integers(min_value=0, max_value=100_000)
_KEYS = st.lists(_INDICES, min_size=1, max_size=4).map(tuple)


class TestPointSeedProperties:
    """Property tests for the sweep-seeding contract of ``point_seed``."""

    @settings(max_examples=200)
    @given(root=st.integers(min_value=0, max_value=2**63 - 1), key=_KEYS, other=_KEYS)
    def test_distinct_key_tuples_yield_distinct_seeds(self, root, key, other):
        # The collision class of the old arithmetic scheme: seed + 1000*i + j
        # maps (0, 1000) and (1, 0) to the same stream.  Spawn keys must map
        # distinct coordinate tuples to distinct seeds across all axes.
        if key != other:
            assert point_seed(root, *key) != point_seed(root, *other)
        else:
            assert point_seed(root, *key) == point_seed(root, *other)

    @settings(max_examples=100)
    @given(root=st.integers(min_value=0, max_value=2**63 - 1), key=_KEYS)
    def test_key_prefixes_do_not_collide_with_extensions(self, root, key):
        # A (i,) sweep axis and an (i, j) grid must never share streams —
        # cross-arity collisions are how seed reuse sneaks into new sweeps.
        assert point_seed(root, *key) != point_seed(root, *key, 0)

    @settings(max_examples=100)
    @given(
        root=st.integers(min_value=0, max_value=2**63 - 1),
        key=_KEYS,
        shard=st.integers(min_value=0, max_value=64),
    )
    def test_round_trips_through_shard_rng(self, root, key, shard):
        # The sharded engines re-spawn per-shard children from the point
        # seed: the returned int must be a valid, deterministic shard root.
        seed = point_seed(root, *key)
        assert shard_rng(seed, shard).random() == shard_rng(seed, shard).random()

    @settings(max_examples=100)
    @given(root=st.integers(min_value=0, max_value=2**63 - 1), key=_KEYS)
    def test_round_trips_through_store_keys(self, root, key):
        # Result-store keys embed the point seed: it must be a plain int
        # (json-encodable) producing stable keys across processes.
        seed = point_seed(root, *key)
        assert isinstance(seed, int)
        config = {"cycles": 100}
        assert result_key("fig11", config, seed) == result_key("fig11", config, seed)

    @settings(max_examples=50)
    @given(root=st.integers(min_value=0, max_value=2**63 - 1), key=_KEYS)
    def test_seed_fits_128_bits(self, root, key):
        seed = point_seed(root, *key)
        assert 0 <= seed < 2**128
