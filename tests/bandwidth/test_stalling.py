"""Tests for the decode-overflow stalling simulator (Figs. 9 and 16)."""

from __future__ import annotations

import math

import pytest

from repro.bandwidth.allocation import BandwidthPlan, provision_for_percentile
from repro.bandwidth.stalling import StallSimulator, tradeoff_curve
from repro.exceptions import BandwidthConfigurationError


class TestStallSimulator:
    def test_rejects_negative_capacity_plan(self):
        plan = BandwidthPlan(100, 0.1, 50.0, -1)
        with pytest.raises(BandwidthConfigurationError):
            StallSimulator(plan)

    def test_rejects_nonpositive_program_cycles(self):
        plan = provision_for_percentile(100, 0.01, 99.0)
        with pytest.raises(BandwidthConfigurationError):
            StallSimulator(plan, seed=0).run(0)

    def test_no_demand_means_no_stalls(self):
        plan = BandwidthPlan(100, 0.0, 99.0, 1)
        result = StallSimulator(plan, seed=0).run(500)
        assert result.stall_cycles == 0
        assert result.execution_time_increase == 0.0
        assert result.completed

    def test_high_percentile_provisioning_rarely_stalls(self):
        plan = provision_for_percentile(1000, 0.05, 99.9)
        result = StallSimulator(plan, seed=1).run(2000)
        assert result.completed
        assert result.execution_time_increase < 0.05

    def test_mean_provisioning_stalls_heavily_or_aborts(self):
        plan = provision_for_percentile(1000, 0.05, 50.0)
        result = StallSimulator(plan, seed=2).run(2000, abort_backlog_factor=20.0)
        heavily_stalled = result.stall_fraction > 0.3
        assert heavily_stalled or not result.completed

    def test_aborted_run_reports_infinite_slowdown(self):
        # Capacity strictly below the mean demand: the backlog diverges.
        plan = BandwidthPlan(1000, 0.05, 50.0, 10)
        result = StallSimulator(plan, seed=3).run(5000, abort_backlog_factor=10.0)
        assert not result.completed
        assert math.isinf(result.execution_time_increase)

    def test_cycle_records_conserve_requests(self):
        plan = provision_for_percentile(200, 0.1, 90.0)
        result = StallSimulator(plan, seed=4).run(200, keep_records=True)
        for record in result.records:
            assert record.served <= plan.decodes_per_cycle
            assert record.served <= record.demand
            assert record.demand == record.new_requests + record.carryover

    def test_carryover_matches_previous_cycle_backlog(self):
        plan = provision_for_percentile(200, 0.1, 90.0)
        result = StallSimulator(plan, seed=5).run(200, keep_records=True)
        previous_backlog = 0
        for record in result.records:
            assert record.carryover == previous_backlog
            previous_backlog = record.demand - record.served

    def test_stall_cycles_follow_backlog(self):
        plan = provision_for_percentile(200, 0.1, 90.0)
        result = StallSimulator(plan, seed=6).run(200, keep_records=True)
        for record in result.records:
            assert record.is_stall == (record.carryover > 0)

    def test_total_cycles_adds_up(self):
        plan = provision_for_percentile(500, 0.02, 99.0)
        result = StallSimulator(plan, seed=7).run(300)
        assert result.total_cycles == result.program_cycles + result.stall_cycles
        assert result.program_cycles == 300


class TestZeroCapacityPlan:
    """Pins the intended zero-capacity semantics: the infinite-stalling report.

    ``abort_threshold = abort_backlog_factor * capacity`` degenerates to 0
    for a zero-capacity plan, so any carryover aborts instantly; the guarded
    fast path must keep reporting exactly that (``completed=False``,
    ``execution_time_increase == inf``) — never a ZeroDivisionError or an
    infinite loop — for any refactor of the simulation loop.
    """

    def test_zero_capacity_with_demand_reports_infinite_stalling(self):
        plan = BandwidthPlan(100, 0.1, 50.0, 0)
        result = StallSimulator(plan, seed=0).run(500)
        assert not result.completed
        assert math.isinf(result.execution_time_increase)
        assert result.program_cycles == 0
        assert result.stall_cycles == 0

    def test_zero_capacity_report_is_immediate_and_deterministic(self):
        plan = BandwidthPlan(100, 0.1, 50.0, 0)
        first = StallSimulator(plan, seed=1).run(10_000_000)  # must not loop
        second = StallSimulator(plan, seed=2).run(10_000_000)
        assert first == second  # no RNG consumed: seed-independent

    def test_zero_capacity_with_zero_demand_completes_stall_free(self):
        # Nothing ever needs serving: the program trivially completes.
        plan = BandwidthPlan(100, 0.0, 50.0, 0)
        result = StallSimulator(plan, seed=0).run(200)
        assert result.completed
        assert result.stall_cycles == 0
        assert result.execution_time_increase == 0.0

    def test_zero_capacity_with_records_requested_keeps_empty_trace(self):
        plan = BandwidthPlan(100, 0.1, 50.0, 0)
        result = StallSimulator(plan, seed=0).run(500, keep_records=True)
        assert result.records == []

    def test_tiny_abort_factor_still_terminates(self):
        # The neighbouring degenerate input: a positive capacity with a zero
        # abort factor must abort on the first backlog, not loop forever.
        plan = BandwidthPlan(1000, 0.5, 50.0, 1)
        result = StallSimulator(plan, seed=3).run(10_000, abort_backlog_factor=0.0)
        assert not result.completed
        assert math.isinf(result.execution_time_increase)


class TestTradeoffCurve:
    def test_returns_one_result_per_plan(self):
        plans = [
            provision_for_percentile(500, 0.05, percentile)
            for percentile in (90.0, 99.0, 99.9)
        ]
        results = tradeoff_curve(plans, program_cycles=500, seed=8)
        assert len(results) == 3
        assert all(result.plan is plan for plan, result in results)

    def test_more_bandwidth_means_less_stalling(self):
        plans = [
            provision_for_percentile(1000, 0.05, percentile)
            for percentile in (75.0, 99.9)
        ]
        results = dict(
            (plan.percentile, result.execution_time_increase)
            for plan, result in tradeoff_curve(plans, program_cycles=2000, seed=9)
        )
        assert results[99.9] <= results[75.0]
