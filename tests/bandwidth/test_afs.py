"""Tests for the AFS sparse-representation compression model (Fig. 13)."""

from __future__ import annotations

import math

import pytest

from repro.bandwidth.afs import (
    afs_average_compressed_bits,
    afs_compression_reduction,
    clique_offchip_reduction,
    sparse_representation_bits,
    zero_suppression_reduction,
)
from repro.bandwidth.traffic import syndrome_bits_per_cycle
from repro.exceptions import ConfigurationError, InvalidProbabilityError


class TestSparseRepresentationBits:
    def test_all_zero_syndrome_costs_one_bit(self):
        assert sparse_representation_bits(440, 0) == 1

    def test_nonzero_costs_index_bits_per_set_bit(self):
        # N = 440 -> ceil(log2) = 9 bits per index.
        assert sparse_representation_bits(440, 1) == 1 + 9
        assert sparse_representation_bits(440, 5) == 1 + 45

    def test_power_of_two_lengths(self):
        assert sparse_representation_bits(8, 2) == 1 + 2 * 3

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            sparse_representation_bits(0, 0)
        with pytest.raises(ConfigurationError):
            sparse_representation_bits(8, 9)

    def test_compression_can_expand_dense_syndromes(self):
        # The paper's point: with many set bits the "compressed" form is
        # larger than the raw syndrome.
        assert sparse_representation_bits(24, 10) > 24


class TestAfsAverages:
    def test_average_bits_grow_with_error_rate(self):
        assert afs_average_compressed_bits(9, 1e-2) > afs_average_compressed_bits(9, 1e-3)

    def test_reduction_shrinks_with_error_rate(self):
        assert afs_compression_reduction(9, 1e-3) > afs_compression_reduction(9, 1e-2)

    def test_reduction_bounded_by_syndrome_length(self):
        for distance in (3, 9, 21):
            assert afs_compression_reduction(distance, 1e-3) <= syndrome_bits_per_cycle(
                distance
            )

    def test_afs_benefit_grows_with_distance_at_fixed_rate(self):
        # The paper notes AFS benefits initially grow with code distance.
        assert afs_compression_reduction(21, 1e-3) > afs_compression_reduction(3, 1e-3)

    def test_rejects_invalid_rate(self):
        with pytest.raises(InvalidProbabilityError):
            afs_average_compressed_bits(9, 0.0)


class TestCliqueReduction:
    def test_inverse_of_offchip_fraction(self):
        assert clique_offchip_reduction(0.01) == pytest.approx(100.0)

    def test_zero_offchip_fraction_is_unbounded(self):
        assert math.isinf(clique_offchip_reduction(0.0))

    def test_rejects_invalid_fraction(self):
        with pytest.raises(InvalidProbabilityError):
            clique_offchip_reduction(1.5)

    def test_clique_beats_afs_by_orders_of_magnitude(self):
        # Fig. 13's headline: 10x-10000x advantage.  At p = 1e-3 and d = 9 the
        # Clique off-chip fraction is well below 1e-2 (see coverage tests), so
        # even a conservative 1e-2 fraction beats AFS by >= 10x.
        clique = clique_offchip_reduction(1e-2)
        afs = afs_compression_reduction(9, 1e-3)
        assert clique / afs >= 2.0
        clique_realistic = clique_offchip_reduction(1e-3)
        assert clique_realistic / afs >= 10.0


class TestZeroSuppression:
    def test_less_effective_than_clique_near_threshold(self):
        # Near threshold almost every cycle is non-zero, so zero suppression
        # saves little (the Fig. 12 argument).
        assert zero_suppression_reduction(21, 1e-2) < 2.0

    def test_more_effective_at_low_rates(self):
        assert zero_suppression_reduction(3, 1e-4) > 100.0
