"""Tests for the multi-logical-qubit machine simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bandwidth.allocation import provision_for_percentile
from repro.bandwidth.machine import LogicalMachine, MachineSimulationResult, empirical_plan
from repro.bandwidth.stalling import StallSimulator
from repro.exceptions import BandwidthConfigurationError, ConfigurationError
from repro.noise.models import PhenomenologicalNoise


def _machine(code, error_rate=1e-2, qubits=50):
    return LogicalMachine(code, PhenomenologicalNoise(error_rate), num_logical_qubits=qubits)


class TestConstruction:
    def test_rejects_nonpositive_qubits(self, code_d3):
        with pytest.raises(ConfigurationError):
            LogicalMachine(code_d3, PhenomenologicalNoise(0.01), num_logical_qubits=0)

    def test_rejects_zero_rounds(self, code_d3):
        with pytest.raises(ConfigurationError):
            LogicalMachine(
                code_d3, PhenomenologicalNoise(0.01), num_logical_qubits=10, measurement_rounds=0
            )

    def test_exposes_configuration(self, code_d5):
        machine = _machine(code_d5, qubits=25)
        assert machine.num_logical_qubits == 25
        assert machine.code is code_d5


class TestSimulation:
    def test_rejects_nonpositive_cycles(self, code_d3):
        with pytest.raises(ConfigurationError):
            _machine(code_d3).simulate(0)

    def test_demand_trace_shape_and_bounds(self, code_d5):
        machine = _machine(code_d5, qubits=40)
        result = machine.simulate(200, rng=1)
        assert result.cycles == 200
        assert result.offchip_requests_per_cycle.shape == (200,)
        assert result.offchip_requests_per_cycle.min() >= 0
        assert result.peak_requests_per_cycle <= 40

    def test_zero_noise_has_zero_demand(self, code_d5):
        machine = LogicalMachine(code_d5, PhenomenologicalNoise(0.0), num_logical_qubits=30)
        result = machine.simulate(100, rng=2)
        assert result.mean_requests_per_cycle == 0.0
        assert result.offchip_rate_per_qubit == 0.0

    def test_reproducible_with_seed(self, code_d5):
        machine = _machine(code_d5)
        first = machine.simulate(100, rng=3)
        second = machine.simulate(100, rng=3)
        assert np.array_equal(
            first.offchip_requests_per_cycle, second.offchip_requests_per_cycle
        )

    def test_batching_does_not_change_statistics(self, code_d5):
        machine = _machine(code_d5)
        coarse = machine.simulate(200, rng=4, batch_cycles=200)
        fine = machine.simulate(200, rng=4, batch_cycles=7)
        # Different batching consumes the RNG in a different order, so compare
        # aggregate statistics rather than the exact trace.
        assert coarse.mean_requests_per_cycle == pytest.approx(
            fine.mean_requests_per_cycle, rel=0.35, abs=1.0
        )

    def test_offchip_rate_matches_single_qubit_coverage(self, code_d9):
        from repro.simulation.coverage import simulate_clique_coverage

        noise = PhenomenologicalNoise(1e-2)
        machine = LogicalMachine(code_d9, noise, num_logical_qubits=100)
        result = machine.simulate(300, rng=5)
        coverage = simulate_clique_coverage(code_d9, noise, 30_000, rng=6)
        assert result.offchip_rate_per_qubit == pytest.approx(
            coverage.offchip_fraction, abs=0.02
        )

    def test_demand_grows_with_error_rate(self, code_d9):
        low = _machine(code_d9, error_rate=1e-3, qubits=100).simulate(200, rng=7)
        high = _machine(code_d9, error_rate=1e-2, qubits=100).simulate(200, rng=8)
        assert high.mean_requests_per_cycle > low.mean_requests_per_cycle


class TestEmpiricalPlanning:
    def test_percentile_validation(self, code_d5):
        result = _machine(code_d5).simulate(100, rng=9)
        with pytest.raises(BandwidthConfigurationError):
            result.demand_percentile(0.0)

    def test_empirical_plan_has_at_least_unit_capacity(self, code_d5):
        machine = LogicalMachine(code_d5, PhenomenologicalNoise(0.0), num_logical_qubits=10)
        plan = empirical_plan(machine.simulate(50, rng=10), 99.0)
        assert plan.decodes_per_cycle == 1

    def test_empirical_plan_close_to_binomial_model(self, code_d9):
        machine = _machine(code_d9, error_rate=1e-2, qubits=200)
        result = machine.simulate(500, rng=11)
        measured = empirical_plan(result, 99.0)
        modelled = provision_for_percentile(200, result.offchip_rate_per_qubit, 99.0)
        assert abs(measured.decodes_per_cycle - modelled.decodes_per_cycle) <= max(
            3, 0.25 * modelled.decodes_per_cycle
        )

    def test_empirical_plan_feeds_the_stall_simulator(self, code_d9):
        machine = _machine(code_d9, error_rate=1e-2, qubits=200)
        result = machine.simulate(500, rng=12)
        plan = empirical_plan(result, 99.5)
        outcome = StallSimulator(plan, seed=13).run(1000)
        assert outcome.completed
        assert outcome.execution_time_increase < 0.5

    def test_result_dataclass_round_trip(self):
        trace = np.array([0, 1, 2, 3, 4], dtype=np.int64)
        result = MachineSimulationResult(
            num_logical_qubits=10,
            physical_error_rate=0.01,
            code_distance=5,
            offchip_requests_per_cycle=trace,
        )
        assert result.cycles == 5
        assert result.mean_requests_per_cycle == pytest.approx(2.0)
        assert result.peak_requests_per_cycle == 4
        assert result.demand_percentile(50.0) == 2
