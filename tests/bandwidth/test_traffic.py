"""Tests for raw off-chip traffic accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bandwidth.traffic import (
    ancilla_flip_probability,
    expected_nonzero_syndrome_bits,
    syndrome_bits_per_cycle,
)
from repro.exceptions import ConfigurationError, InvalidProbabilityError
from repro.noise.models import PhenomenologicalNoise
from repro.simulation.cycles import sample_cycle_signatures
from repro.types import StabilizerType


class TestSyndromeBits:
    @pytest.mark.parametrize("distance, expected", [(3, 8), (5, 24), (21, 440)])
    def test_bits_per_cycle(self, distance, expected):
        assert syndrome_bits_per_cycle(distance) == expected

    def test_measurement_rounds_multiply(self):
        assert syndrome_bits_per_cycle(5, measurement_rounds=5) == 24 * 5

    def test_rejects_even_distance(self):
        with pytest.raises(ConfigurationError):
            syndrome_bits_per_cycle(4)

    def test_rejects_zero_rounds(self):
        with pytest.raises(ConfigurationError):
            syndrome_bits_per_cycle(5, measurement_rounds=0)


class TestFlipProbability:
    def test_zero_error_rate_never_flips(self):
        assert ancilla_flip_probability(4, 0.0, 0.0) == 0.0

    def test_pure_measurement_error(self):
        assert ancilla_flip_probability(4, 0.0, 0.25) == pytest.approx(0.25)

    def test_small_rate_approximation(self):
        # For small p the flip probability approaches (weight + 1) * p.
        p = 1e-4
        assert ancilla_flip_probability(4, p, p) == pytest.approx(5 * p, rel=0.01)

    def test_rejects_invalid_probability(self):
        with pytest.raises(InvalidProbabilityError):
            ancilla_flip_probability(4, -0.1, 0.0)

    def test_monotone_in_weight(self):
        assert ancilla_flip_probability(4, 0.01, 0.01) > ancilla_flip_probability(
            2, 0.01, 0.01
        )


class TestExpectedNonzeroBits:
    def test_matches_monte_carlo(self, code_d5):
        p = 0.02
        analytic = expected_nonzero_syndrome_bits(5, p)
        noise = PhenomenologicalNoise(p)
        rng = np.random.default_rng(1)
        total = 0.0
        cycles = 20_000
        for stype in StabilizerType:
            signatures, _ = sample_cycle_signatures(code_d5, stype, noise, cycles, rng)
            total += signatures.sum() / cycles
        assert analytic == pytest.approx(total, rel=0.1)

    def test_scales_with_distance(self):
        assert expected_nonzero_syndrome_bits(9, 0.01) > expected_nonzero_syndrome_bits(
            5, 0.01
        )

    def test_measurement_rate_defaults_to_data_rate(self):
        assert expected_nonzero_syndrome_bits(5, 0.01) == pytest.approx(
            expected_nonzero_syndrome_bits(5, 0.01, 0.01)
        )
