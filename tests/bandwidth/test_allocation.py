"""Tests for statistical off-chip bandwidth allocation."""

from __future__ import annotations

import math

import pytest
from scipy import stats

from repro.bandwidth.allocation import (
    BandwidthPlan,
    provision_for_percentile,
    provisioning_sweep,
)
from repro.exceptions import BandwidthConfigurationError, InvalidProbabilityError


class TestProvisioning:
    def test_capacity_covers_requested_percentile(self):
        plan = provision_for_percentile(1000, 0.05, 99.0)
        demand = stats.binom(1000, 0.05)
        assert demand.cdf(plan.decodes_per_cycle) >= 0.99

    def test_higher_percentile_needs_more_bandwidth(self):
        low = provision_for_percentile(1000, 0.05, 50.0)
        high = provision_for_percentile(1000, 0.05, 99.9)
        assert high.decodes_per_cycle > low.decodes_per_cycle

    def test_median_provisioning_is_close_to_mean(self):
        plan = provision_for_percentile(1000, 0.05, 50.0)
        assert abs(plan.decodes_per_cycle - 50) <= 2

    def test_minimum_of_one_decode_per_cycle(self):
        plan = provision_for_percentile(1000, 1e-6, 50.0)
        assert plan.decodes_per_cycle == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(BandwidthConfigurationError):
            provision_for_percentile(0, 0.05, 99.0)
        with pytest.raises(InvalidProbabilityError):
            provision_for_percentile(100, 1.5, 99.0)
        with pytest.raises(BandwidthConfigurationError):
            provision_for_percentile(100, 0.05, 100.0)


class TestBandwidthPlan:
    def test_bandwidth_reduction_relative_to_all_qubits(self):
        plan = BandwidthPlan(
            num_logical_qubits=1000, offchip_rate=0.05, percentile=99.0, decodes_per_cycle=80
        )
        assert plan.bandwidth_reduction == pytest.approx(12.5)

    def test_zero_capacity_reduction_is_infinite(self):
        plan = BandwidthPlan(1000, 0.05, 99.0, 0)
        assert math.isinf(plan.bandwidth_reduction)

    def test_mean_requests(self):
        plan = BandwidthPlan(1000, 0.05, 99.0, 80)
        assert plan.mean_requests_per_cycle == pytest.approx(50.0)

    def test_headroom_above_one_for_high_percentiles(self):
        plan = provision_for_percentile(1000, 0.05, 99.0)
        assert plan.headroom > 1.0

    def test_headroom_infinite_when_no_demand(self):
        plan = BandwidthPlan(1000, 0.0, 99.0, 1)
        assert math.isinf(plan.headroom)


class TestSweep:
    def test_sweep_returns_one_plan_per_percentile(self):
        plans = provisioning_sweep(500, 0.02, percentiles=(50.0, 90.0, 99.0))
        assert len(plans) == 3
        assert [plan.percentile for plan in plans] == [50.0, 90.0, 99.0]

    def test_sweep_capacity_is_nondecreasing(self):
        plans = provisioning_sweep(500, 0.02)
        capacities = [plan.decodes_per_cycle for plan in plans]
        assert capacities == sorted(capacities)
