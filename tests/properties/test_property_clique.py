"""Property-based tests for the Clique decoder's decision logic."""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.clique.decoder import CliqueDecoder, clique_rule
from repro.codes.rotated_surface import get_code
from repro.types import StabilizerType

TYPES = st.sampled_from([StabilizerType.X, StabilizerType.Z])
DISTANCES = st.sampled_from([3, 5, 7])


@st.composite
def sparse_error(draw, rate: float = 0.04):
    distance = draw(DISTANCES)
    code = get_code(distance)
    bits = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=code.num_data_qubits,
            max_size=code.num_data_qubits,
        )
    )
    error = frozenset(q for q, value in zip(code.data_qubits, bits) if value < rate)
    return code, error


class TestCliqueRuleProperties:
    @given(count=st.integers(min_value=0, max_value=4), boundary=st.booleans())
    def test_odd_counts_are_always_trivial(self, count, boundary):
        assume(count % 2 == 1)
        assert not clique_rule(True, count, boundary)

    @given(count=st.integers(min_value=2, max_value=4), boundary=st.booleans())
    def test_even_positive_counts_are_always_complex(self, count, boundary):
        assume(count % 2 == 0)
        assert clique_rule(True, count, boundary)

    @given(count=st.integers(min_value=0, max_value=4), boundary=st.booleans())
    def test_inactive_cliques_never_raise_complex(self, count, boundary):
        assert not clique_rule(False, count, boundary)


class TestCliqueDecoderProperties:
    @given(pair=sparse_error(), stype=TYPES)
    @settings(max_examples=60, deadline=None)
    def test_trivial_corrections_exactly_cancel_the_signature(self, pair, stype):
        code, error = pair
        decoder = CliqueDecoder(code, stype)
        signature = code.syndrome_of(error, stype)
        decision = decoder.decide(signature)
        if decision.is_trivial:
            assert np.array_equal(
                code.syndrome_of(decision.correction, stype), signature
            )
        else:
            assert decision.correction == frozenset()
            assert decision.complex_cliques

    @given(pair=sparse_error(), stype=TYPES)
    @settings(max_examples=60, deadline=None)
    def test_decision_is_deterministic(self, pair, stype):
        code, error = pair
        decoder = CliqueDecoder(code, stype)
        signature = code.syndrome_of(error, stype)
        first = decoder.decide(signature)
        second = decoder.decide(signature)
        assert first == second

    @given(pair=sparse_error(rate=0.02), stype=TYPES)
    @settings(max_examples=60, deadline=None)
    def test_batch_decision_matches_scalar_decision(self, pair, stype):
        code, error = pair
        decoder = CliqueDecoder(code, stype)
        signature = code.syndrome_of(error, stype)
        assert bool(decoder.is_trivial_batch(signature[np.newaxis, :])[0]) == (
            decoder.decide(signature).is_trivial
        )

    @given(
        distance=DISTANCES,
        stype=TYPES,
        index=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_single_data_errors_never_cause_logical_errors(self, distance, stype, index):
        # A lone data error is the canonical Local-1s case: Clique must handle
        # it on-chip and its fix must be equivalent to the exact one.
        code = get_code(distance)
        error = frozenset({code.data_qubits[index % code.num_data_qubits]})
        decoder = CliqueDecoder(code, stype)
        decision = decoder.decide(code.syndrome_of(error, stype))
        assert decision.is_trivial
        residual = error ^ decision.correction
        assert not code.syndrome_of(residual, stype).any()
        assert not code.is_logical_error(residual, stype)

    @given(
        distance=DISTANCES,
        stype=TYPES,
        indices=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=3),
    )
    @settings(max_examples=80, deadline=None)
    def test_trivial_decisions_match_the_complex_decoder_up_to_stabilizers(
        self, distance, stype, indices
    ):
        # Fig. 8(a)'s claim: when Clique declares a signature trivial, its
        # correction is equivalent (up to stabilizers) to the one the
        # heavy-weight MWPM decoder would apply — the two may only differ by
        # an undetectable, non-logical operator.
        from repro.decoders.mwpm import MWPMDecoder

        code = get_code(distance)
        error = frozenset(
            code.data_qubits[index % code.num_data_qubits] for index in indices
        )
        decoder = CliqueDecoder(code, stype)
        signature = code.syndrome_of(error, stype)
        decision = decoder.decide(signature)
        assume(decision.is_trivial)
        mwpm_correction = MWPMDecoder(code, stype).decode(signature).correction
        difference = decision.correction ^ mwpm_correction
        assert not code.syndrome_of(difference, stype).any()
        assert not code.is_logical_error(difference, stype)
