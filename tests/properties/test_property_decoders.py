"""Property-based tests for the off-chip decoders."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.codes.rotated_surface import get_code
from repro.decoders.mwpm import MWPMDecoder
from repro.decoders.union_find import ClusteringDecoder
from repro.types import StabilizerType

TYPES = st.sampled_from([StabilizerType.X, StabilizerType.Z])


@st.composite
def error_configuration(draw):
    distance = draw(st.sampled_from([3, 5]))
    code = get_code(distance)
    rate = draw(st.sampled_from([0.02, 0.05, 0.1]))
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=code.num_data_qubits,
            max_size=code.num_data_qubits,
        )
    )
    error = frozenset(q for q, v in zip(code.data_qubits, values) if v < rate)
    return code, error


class TestMWPMProperties:
    @given(config=error_configuration(), stype=TYPES)
    @settings(max_examples=50, deadline=None)
    def test_correction_always_cancels_the_syndrome(self, config, stype):
        code, error = config
        decoder = MWPMDecoder(code, stype)
        syndrome = code.syndrome_of(error, stype)
        correction = decoder.decode(syndrome).correction
        residual = error ^ correction
        assert not code.syndrome_of(residual, stype).any()

    @given(config=error_configuration(), stype=TYPES)
    @settings(max_examples=50, deadline=None)
    def test_correction_weight_never_exceeds_error_weight(self, config, stype):
        # MWPM picks a minimum-weight explanation, and the injected error is
        # one valid explanation, so the correction can never be heavier.
        code, error = config
        decoder = MWPMDecoder(code, stype)
        syndrome = code.syndrome_of(error, stype)
        correction = decoder.decode(syndrome).correction
        assert len(correction) <= len(error)

    @given(config=error_configuration(), stype=TYPES)
    @settings(max_examples=30, deadline=None)
    def test_decoding_is_deterministic(self, config, stype):
        code, error = config
        decoder = MWPMDecoder(code, stype)
        syndrome = code.syndrome_of(error, stype)
        assert decoder.decode(syndrome).correction == decoder.decode(syndrome).correction

    @given(config=error_configuration(), stype=TYPES, rounds=st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_round_placement_does_not_change_the_correction(self, config, stype, rounds):
        # With no temporal events, the same spatial syndrome decoded in any
        # round of an otherwise-quiet history gives the same correction.
        code, error = config
        decoder = MWPMDecoder(code, stype)
        syndrome = code.syndrome_of(error, stype)
        single = decoder.decode(syndrome).correction
        width = code.num_ancillas_of_type(stype)
        history = np.zeros((rounds, width), dtype=np.uint8)
        history[rounds - 1] = syndrome
        assert decoder.decode(history).correction == single


class TestClusteringProperties:
    @given(config=error_configuration(), stype=TYPES)
    @settings(max_examples=50, deadline=None)
    def test_correction_always_cancels_the_syndrome(self, config, stype):
        code, error = config
        decoder = ClusteringDecoder(code, stype)
        syndrome = code.syndrome_of(error, stype)
        correction = decoder.decode(syndrome).correction
        residual = error ^ correction
        assert not code.syndrome_of(residual, stype).any()

    @given(config=error_configuration(), stype=TYPES)
    @settings(max_examples=30, deadline=None)
    def test_agrees_with_mwpm_on_single_errors(self, config, stype):
        code, error = config
        if len(error) != 1:
            return
        syndrome = code.syndrome_of(error, stype)
        clustering = ClusteringDecoder(code, stype).decode(syndrome).correction
        mwpm = MWPMDecoder(code, stype).decode(syndrome).correction
        residual = clustering ^ mwpm
        assert not code.syndrome_of(residual, stype).any()
        assert not code.is_logical_error(residual, stype)
