"""Property-based tests for compression, allocation and stalling invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.bandwidth.afs import sparse_representation_bits
from repro.bandwidth.allocation import provision_for_percentile
from repro.bandwidth.stalling import StallSimulator
from repro.hardware.netlist import Netlist


class TestSparseRepresentationProperties:
    @given(
        length=st.integers(min_value=2, max_value=2048),
        k=st.integers(min_value=0, max_value=2048),
    )
    def test_compressed_size_is_positive_and_monotone_in_k(self, length, k):
        k = min(k, length)
        bits = sparse_representation_bits(length, k)
        assert bits >= 1
        if k > 0:
            assert bits > sparse_representation_bits(length, k - 1)

    @given(length=st.integers(min_value=2, max_value=2048))
    def test_all_zero_always_costs_one_bit(self, length):
        assert sparse_representation_bits(length, 0) == 1

    @given(
        length=st.integers(min_value=2, max_value=512),
        k=st.integers(min_value=1, max_value=512),
    )
    def test_index_encoding_can_address_every_position(self, length, k):
        k = min(k, length)
        per_index = (sparse_representation_bits(length, k) - 1) // k
        assert 2**per_index >= length


class TestAllocationProperties:
    @given(
        qubits=st.integers(min_value=1, max_value=5000),
        rate=st.floats(min_value=0.0, max_value=0.5),
        percentile=st.floats(min_value=1.0, max_value=99.99),
    )
    @settings(max_examples=100, deadline=None)
    def test_capacity_is_within_physical_bounds(self, qubits, rate, percentile):
        plan = provision_for_percentile(qubits, rate, percentile)
        assert 1 <= plan.decodes_per_cycle <= max(qubits, 1)
        assert plan.bandwidth_reduction >= 1.0 or math.isinf(plan.bandwidth_reduction)

    @given(
        qubits=st.integers(min_value=10, max_value=2000),
        rate=st.floats(min_value=0.001, max_value=0.3),
    )
    @settings(max_examples=50, deadline=None)
    def test_percentiles_are_monotone(self, qubits, rate):
        low = provision_for_percentile(qubits, rate, 50.0)
        high = provision_for_percentile(qubits, rate, 99.9)
        assert high.decodes_per_cycle >= low.decodes_per_cycle


class TestStallSimulatorProperties:
    @given(
        qubits=st.integers(min_value=10, max_value=500),
        rate=st.floats(min_value=0.0, max_value=0.2),
        percentile=st.sampled_from([90.0, 99.0, 99.9]),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_accounting_invariants(self, qubits, rate, percentile, seed):
        plan = provision_for_percentile(qubits, rate, percentile)
        result = StallSimulator(plan, seed=seed).run(100, keep_records=True)
        assert result.total_cycles == len(result.records)
        assert result.program_cycles <= 100
        served_total = sum(record.served for record in result.records)
        new_total = sum(record.new_requests for record in result.records)
        # Everything served was requested at some point; the remainder is the
        # final backlog.
        final_backlog = result.records[-1].demand - result.records[-1].served
        assert served_total + final_backlog == new_total


class TestNetlistProperties:
    @given(
        xor=st.integers(min_value=0, max_value=1000),
        and_=st.integers(min_value=0, max_value=1000),
        split=st.integers(min_value=0, max_value=1000),
    )
    def test_totals_are_additive(self, xor, and_, split):
        first = Netlist()
        first.add_cells("XOR2", xor)
        second = Netlist()
        second.add_cells("AND2", and_)
        second.add_cells("SPLIT", split)
        combined = first + second
        assert combined.total_cells == xor + and_ + split
        assert combined.total_jj() == first.total_jj() + second.total_jj()
        assert combined.total_area_um2() == first.total_area_um2() + second.total_area_um2()
