"""Property-based tests for the surface-code substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.codes.rotated_surface import get_code
from repro.types import StabilizerType

DISTANCES = st.sampled_from([3, 5, 7])
TYPES = st.sampled_from([StabilizerType.X, StabilizerType.Z])


def _random_error(code, bits: list[bool]) -> frozenset:
    qubits = code.data_qubits
    return frozenset(q for q, bit in zip(qubits, bits) if bit)


@st.composite
def code_and_error(draw, max_distance: int = 7):
    distance = draw(st.sampled_from([d for d in (3, 5, 7) if d <= max_distance]))
    code = get_code(distance)
    bits = draw(
        st.lists(st.booleans(), min_size=code.num_data_qubits, max_size=code.num_data_qubits)
    )
    return code, _random_error(code, bits)


class TestSyndromeProperties:
    @given(pair=code_and_error(), stype=TYPES)
    @settings(max_examples=60, deadline=None)
    def test_syndrome_is_linear_under_symmetric_difference(self, pair, stype):
        code, error = pair
        half = frozenset(list(error)[: len(error) // 2])
        rest = error ^ half
        combined = (code.syndrome_of(half, stype) + code.syndrome_of(rest, stype)) % 2
        assert np.array_equal(code.syndrome_of(error, stype), combined)

    @given(distance=DISTANCES, stype=TYPES, index=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_stabilizers_have_zero_syndrome(self, distance, stype, index):
        # Any stabilizer of the opposite type is an undetectable error.
        code = get_code(distance)
        stabilizers = code.stabilizers(stype.opposite)
        stabilizer = stabilizers[index % len(stabilizers)]
        assert not code.syndrome_of(frozenset(stabilizer.data_qubits), stype).any()

    @given(distance=DISTANCES, stype=TYPES, indices=st.lists(st.integers(0, 10_000), max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_products_of_stabilizers_are_not_logical_errors(self, distance, stype, indices):
        code = get_code(distance)
        stabilizers = code.stabilizers(stype.opposite)
        product: frozenset = frozenset()
        for index in indices:
            product = product ^ frozenset(stabilizers[index % len(stabilizers)].data_qubits)
        assert not code.syndrome_of(product, stype).any()
        assert not code.is_logical_error(product, stype)

    @given(pair=code_and_error(), stype=TYPES)
    @settings(max_examples=60, deadline=None)
    def test_adding_a_stabilizer_never_changes_the_syndrome(self, pair, stype):
        code, error = pair
        stabilizer = code.stabilizers(stype.opposite)[0]
        augmented = error ^ frozenset(stabilizer.data_qubits)
        assert np.array_equal(
            code.syndrome_of(error, stype), code.syndrome_of(augmented, stype)
        )

    @given(pair=code_and_error(), stype=TYPES)
    @settings(max_examples=60, deadline=None)
    def test_adding_a_logical_operator_flips_the_logical_outcome(self, pair, stype):
        # For X-type checks the tracked errors are Z-species, so adding the
        # logical-Z operator (a row) leaves the syndrome unchanged and flips
        # the logical verdict — and symmetrically for Z-type checks.
        code, error = pair
        logical = code.logical_support(stype.opposite)
        augmented = error ^ logical
        assert np.array_equal(
            code.syndrome_of(error, stype), code.syndrome_of(augmented, stype)
        )
        assert code.is_logical_error(augmented, stype) != code.is_logical_error(error, stype)
