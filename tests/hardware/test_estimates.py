"""Tests for the power/area/latency estimation (Fig. 15 claims)."""

from __future__ import annotations

import pytest

from repro.hardware.estimates import (
    DecoderOverheads,
    FRIDGE_COOLING_BUDGET_W,
    clique_overheads,
    compare_with_nisqplus,
    estimate_overheads,
)
from repro.hardware.synthesis import synthesize_clique_decoder


class TestCliqueOverheads:
    def test_power_range_matches_paper(self):
        # Fig. 15: roughly 10 uW at d=3 up to ~500 uW at d=21.
        assert 3 <= clique_overheads(3).power_uw <= 30
        assert 150 <= clique_overheads(21).power_uw <= 1000

    def test_area_under_100mm2_at_d21(self):
        assert clique_overheads(21).area_mm2 < 100.0

    def test_latency_in_paper_range(self):
        for distance in (3, 9, 21):
            latency = clique_overheads(distance).latency_ns
            assert 0.03 <= latency <= 0.4

    def test_overheads_monotonic_in_distance(self):
        distances = (3, 5, 7, 9, 11, 15, 21)
        powers = [clique_overheads(d).power_uw for d in distances]
        areas = [clique_overheads(d).area_mm2 for d in distances]
        assert powers == sorted(powers)
        assert areas == sorted(areas)

    def test_fridge_budget_supports_thousands_of_logical_qubits(self):
        # Section 7.4: ~2000 logical qubits at d=21, ~100000 at d=3.
        assert clique_overheads(21).supported_logical_qubits >= 1000
        assert clique_overheads(3).supported_logical_qubits >= 50_000

    def test_supported_qubits_consistent_with_budget(self):
        overheads = clique_overheads(9)
        assert (
            overheads.supported_logical_qubits
            == int(FRIDGE_COOLING_BUDGET_W // overheads.power_w)
        )

    def test_cached_results_are_stable(self):
        assert clique_overheads(7) is clique_overheads(7)


class TestEstimateOverheads:
    def test_jj_and_cells_match_netlist(self):
        netlist = synthesize_clique_decoder(5)
        overheads = estimate_overheads(netlist, 5)
        assert overheads.jj_count == netlist.total_jj()
        assert overheads.cell_count == netlist.total_cells
        assert overheads.area_mm2 == pytest.approx(netlist.total_area_mm2())

    def test_power_scales_with_power_per_jj(self):
        netlist = synthesize_clique_decoder(5)
        base = estimate_overheads(netlist, 5, power_per_jj_w=1e-9)
        double = estimate_overheads(netlist, 5, power_per_jj_w=2e-9)
        assert double.power_w == pytest.approx(2 * base.power_w)

    def test_dataclass_exposes_microwatts(self):
        overheads = DecoderOverheads(
            distance=3,
            measurement_rounds=2,
            power_w=1e-5,
            area_mm2=1.0,
            latency_ns=0.1,
            jj_count=100,
            cell_count=10,
        )
        assert overheads.power_uw == pytest.approx(10.0)


class TestNisqPlusComparison:
    def test_anchor_ratios_match_paper_at_d9(self):
        comparison = compare_with_nisqplus(9)
        assert comparison["power_improvement"] == pytest.approx(37.0)
        assert comparison["area_improvement"] == pytest.approx(25.0)
        assert comparison["latency_improvement"] == pytest.approx(15.0)

    def test_improvements_within_paper_band_at_other_distances(self):
        # Section 1 claims a 15-37x resource overhead reduction overall.
        for distance in (5, 7, 9, 11, 13):
            comparison = compare_with_nisqplus(distance)
            assert comparison["power_improvement"] > 10
            assert comparison["area_improvement"] > 8

    def test_worst_case_latency_is_six_times_average(self):
        comparison = compare_with_nisqplus(9)
        assert comparison["nisqplus_worst_case_latency_ns"] == pytest.approx(
            6 * comparison["nisqplus_latency_ns"]
        )

    def test_comparison_reports_absolute_numbers(self):
        comparison = compare_with_nisqplus(9)
        assert comparison["clique_power_uw"] > 0
        assert comparison["nisqplus_power_uw"] > comparison["clique_power_uw"]
