"""Tests for the NISQ+ cost comparison model."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.hardware.nisqplus import (
    NISQPLUS_AREA_FACTOR,
    NISQPLUS_LATENCY_FACTOR,
    NISQPLUS_POWER_FACTOR,
    nisqplus_overheads,
)


class TestNisqPlusModel:
    def test_anchor_distance_reproduces_paper_factors(self):
        overheads = nisqplus_overheads(
            9, clique_power_w_at_9=1e-4, clique_area_mm2_at_9=10.0, clique_latency_ns_at_9=0.1
        )
        assert overheads.power_w == pytest.approx(1e-4 * NISQPLUS_POWER_FACTOR)
        assert overheads.area_mm2 == pytest.approx(10.0 * NISQPLUS_AREA_FACTOR)
        assert overheads.latency_ns == pytest.approx(0.1 * NISQPLUS_LATENCY_FACTOR)

    def test_costs_grow_with_distance(self):
        small = nisqplus_overheads(5, 1e-4, 10.0, 0.1)
        large = nisqplus_overheads(17, 1e-4, 10.0, 0.1)
        assert large.power_w > small.power_w
        assert large.area_mm2 > small.area_mm2
        assert large.latency_ns > small.latency_ns

    def test_power_scales_superquadratically(self):
        base = nisqplus_overheads(9, 1e-4, 10.0, 0.1)
        double = nisqplus_overheads(17, 1e-4, 10.0, 0.1)
        assert double.power_w / base.power_w > (17 / 9) ** 2

    def test_worst_case_latency_factor(self):
        overheads = nisqplus_overheads(9, 1e-4, 10.0, 0.1)
        assert overheads.worst_case_latency_ns == pytest.approx(6 * overheads.latency_ns)

    @pytest.mark.parametrize("bad", [2, 4, 1])
    def test_rejects_invalid_distance(self, bad):
        with pytest.raises(ConfigurationError):
            nisqplus_overheads(bad, 1e-4, 10.0, 0.1)
