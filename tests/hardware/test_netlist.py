"""Tests for the netlist abstraction."""

from __future__ import annotations

import pytest

from repro.exceptions import SynthesisError
from repro.hardware.cells import ERSFQ_LIBRARY
from repro.hardware.netlist import Netlist


class TestCellAccounting:
    def test_add_and_count(self):
        netlist = Netlist()
        netlist.add_cells("XOR2", 3)
        netlist.add_cells("XOR2", 2)
        netlist.add_cells("AND2")
        assert netlist.count("XOR2") == 5
        assert netlist.count("AND2") == 1
        assert netlist.total_cells == 6

    def test_adding_zero_is_noop(self):
        netlist = Netlist()
        netlist.add_cells("NOT", 0)
        assert netlist.total_cells == 0

    def test_negative_count_rejected(self):
        with pytest.raises(SynthesisError):
            Netlist().add_cells("NOT", -1)

    def test_totals_use_library(self):
        netlist = Netlist()
        netlist.add_cells("XOR2", 2)
        netlist.add_cells("SPLIT", 1)
        assert netlist.total_jj(ERSFQ_LIBRARY) == 2 * 18 + 4
        assert netlist.total_area_um2(ERSFQ_LIBRARY) == 2 * 7000 + 3500
        assert netlist.total_area_mm2(ERSFQ_LIBRARY) == pytest.approx(0.0175)

    def test_summary_is_sorted_plain_dict(self):
        netlist = Netlist()
        netlist.add_cells("XOR2", 1)
        netlist.add_cells("AND2", 2)
        assert list(netlist.summary()) == ["AND2", "XOR2"]


class TestCriticalPath:
    def test_delay_sums_cell_delays(self):
        netlist = Netlist(critical_path=("XOR2", "NOT", "AND2"))
        assert netlist.critical_path_delay_ps(ERSFQ_LIBRARY) == pytest.approx(
            6.2 + 12.8 + 8.2
        )

    def test_series_merge_concatenates_paths(self):
        first = Netlist(critical_path=("XOR2",))
        second = Netlist(critical_path=("AND2",))
        merged = first.merge(second, share_critical_path=False)
        assert merged.critical_path == ("XOR2", "AND2")

    def test_parallel_merge_keeps_longer_path(self):
        first = Netlist(critical_path=("XOR2", "XOR2"))
        second = Netlist(critical_path=("AND2",))
        merged = first.merge(second, share_critical_path=True)
        assert merged.critical_path == ("XOR2", "XOR2")

    def test_add_operator_is_parallel_merge(self):
        first = Netlist(critical_path=("XOR2", "XOR2"))
        first.add_cells("XOR2", 2)
        second = Netlist(critical_path=("AND2",))
        second.add_cells("AND2", 1)
        combined = first + second
        assert combined.total_cells == 3
        assert combined.critical_path == ("XOR2", "XOR2")

    def test_merge_sums_cell_counts(self):
        first = Netlist()
        first.add_cells("NOT", 4)
        second = Netlist()
        second.add_cells("NOT", 6)
        assert first.merge(second).count("NOT") == 10
