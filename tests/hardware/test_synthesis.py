"""Tests for the analytical Clique-decoder synthesis."""

from __future__ import annotations

import pytest

from repro.codes.rotated_surface import get_code
from repro.exceptions import ConfigurationError
from repro.hardware.synthesis import synthesize_clique_decoder


class TestStructure:
    def test_accepts_code_or_distance(self):
        by_distance = synthesize_clique_decoder(5)
        by_code = synthesize_clique_decoder(get_code(5))
        assert by_distance.summary() == by_code.summary()

    def test_contains_expected_cell_types(self):
        netlist = synthesize_clique_decoder(5)
        for cell in ("XOR2", "AND2", "OR2", "NOT", "DFF", "SPLIT"):
            assert netlist.count(cell) > 0, cell

    def test_single_plane_is_half_the_logic(self):
        both = synthesize_clique_decoder(5, include_both_types=True)
        single = synthesize_clique_decoder(5, include_both_types=False)
        assert single.count("XOR2") * 2 == both.count("XOR2")
        assert single.count("AND2") * 2 == both.count("AND2")

    def test_rejects_invalid_rounds(self):
        with pytest.raises(ConfigurationError):
            synthesize_clique_decoder(5, measurement_rounds=0)

    def test_single_round_design_drops_filter_cells(self):
        with_filter = synthesize_clique_decoder(5, measurement_rounds=2)
        without_filter = synthesize_clique_decoder(5, measurement_rounds=1)
        assert without_filter.total_cells < with_filter.total_cells

    def test_more_rounds_cost_more_hardware(self):
        two = synthesize_clique_decoder(5, measurement_rounds=2)
        four = synthesize_clique_decoder(5, measurement_rounds=4)
        assert four.total_jj() > two.total_jj()
        assert four.count("DFF") > two.count("DFF")


class TestScaling:
    def test_cell_count_grows_quadratically_with_distance(self):
        small = synthesize_clique_decoder(5).total_cells
        large = synthesize_clique_decoder(15).total_cells
        ratio = large / small
        # Ancilla count scales as d^2 - 1: the ratio should sit near
        # (15^2 - 1) / (5^2 - 1) ~= 9.3, certainly not linear (3x).
        assert 6.0 < ratio < 13.0

    def test_critical_path_grows_slowly_with_distance(self):
        small = synthesize_clique_decoder(3).critical_path_delay_ps()
        large = synthesize_clique_decoder(21).critical_path_delay_ps()
        assert large < 3 * small

    @pytest.mark.parametrize("distance", [3, 7, 11])
    def test_netlist_name_mentions_distance(self, distance):
        assert f"d{distance}" in synthesize_clique_decoder(distance).name
