"""Tests for the ERSFQ cell library (Table 1)."""

from __future__ import annotations

import pytest

from repro.exceptions import SynthesisError
from repro.hardware.cells import CellLibrary, CellSpec, ERSFQ_LIBRARY, ERSFQ_LIBRARY_CELLS


class TestTable1Values:
    """The library must reproduce Table 1 of the paper verbatim."""

    EXPECTED = {
        "XOR2": (6.2, 7000.0, 18),
        "AND2": (8.2, 7000.0, 16),
        "OR2": (5.4, 7000.0, 14),
        "NOT": (12.8, 7000.0, 12),
        "DFF": (8.6, 5600.0, 10),
        "SPLIT": (7.0, 3500.0, 4),
    }

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_cell_matches_paper(self, name):
        delay, area, jj = self.EXPECTED[name]
        cell = ERSFQ_LIBRARY[name]
        assert cell.delay_ps == delay
        assert cell.area_um2 == area
        assert cell.jj_count == jj

    def test_exactly_six_cells(self):
        assert len(ERSFQ_LIBRARY_CELLS) == 6
        assert set(ERSFQ_LIBRARY.cell_names) == set(self.EXPECTED)


class TestCellLibrary:
    def test_contains(self):
        assert "XOR2" in ERSFQ_LIBRARY
        assert "NAND3" not in ERSFQ_LIBRARY

    def test_unknown_cell_raises(self):
        with pytest.raises(SynthesisError):
            ERSFQ_LIBRARY["NAND3"]

    def test_accessors(self):
        assert ERSFQ_LIBRARY.delay_ps("NOT") == 12.8
        assert ERSFQ_LIBRARY.area_um2("DFF") == 5600.0
        assert ERSFQ_LIBRARY.jj_count("SPLIT") == 4

    def test_empty_library_rejected(self):
        with pytest.raises(SynthesisError):
            CellLibrary([])

    def test_duplicate_names_rejected(self):
        cell = CellSpec("X", 1.0, 1.0, 1)
        with pytest.raises(SynthesisError):
            CellLibrary([cell, cell])
