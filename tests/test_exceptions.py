"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    BandwidthConfigurationError,
    ConfigurationError,
    DecodingError,
    ExperimentNotFoundError,
    InvalidDistanceError,
    InvalidProbabilityError,
    ReproError,
    SyndromeShapeError,
    SynthesisError,
)


@pytest.mark.parametrize(
    "exception_type",
    [
        ConfigurationError,
        InvalidDistanceError,
        InvalidProbabilityError,
        DecodingError,
        SyndromeShapeError,
        BandwidthConfigurationError,
        SynthesisError,
        ExperimentNotFoundError,
    ],
)
def test_all_exceptions_derive_from_repro_error(exception_type):
    assert issubclass(exception_type, ReproError)


def test_invalid_distance_records_value():
    error = InvalidDistanceError(4)
    assert error.distance == 4
    assert "4" in str(error)


def test_invalid_probability_records_name_and_value():
    error = InvalidProbabilityError("p", 1.5)
    assert error.name == "p"
    assert error.value == 1.5
    assert "p" in str(error)


def test_syndrome_shape_error_message():
    error = SyndromeShapeError(expected=12, actual=8)
    assert error.expected == 12
    assert error.actual == 8
    assert "12" in str(error) and "8" in str(error)


def test_experiment_not_found_lists_available():
    error = ExperimentNotFoundError("fig99", ("fig11", "fig15"))
    assert "fig99" in str(error)
    assert "fig11" in str(error)
