"""Tests for the measurement-error persistence filter (Fig. 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clique.measurement_filter import PersistenceFilter
from repro.exceptions import ConfigurationError


def _matrix(rows: list[list[int]]) -> np.ndarray:
    return np.array(rows, dtype=np.uint8)


class TestConstruction:
    def test_rejects_zero_rounds(self):
        with pytest.raises(ConfigurationError):
            PersistenceFilter(0)

    def test_default_is_two_rounds(self):
        assert PersistenceFilter().rounds == 2


class TestSplit:
    def test_single_round_filter_passes_everything(self):
        filter_ = PersistenceFilter(1)
        matrix = _matrix([[1, 0, 1]])
        sticky, transient = filter_.split(matrix, 0)
        assert sticky.tolist() == [1, 0, 1]
        assert not transient.any()

    def test_persistent_detection_is_sticky(self):
        # A data error fires at round 0 and the ancilla stays quiet afterwards.
        filter_ = PersistenceFilter(2)
        matrix = _matrix([[1, 0], [0, 0]])
        sticky, transient = filter_.split(matrix, 0)
        assert sticky.tolist() == [1, 0]
        assert not transient.any()

    def test_repeated_flip_is_transient(self):
        # A measurement error fires at rounds 0 and 1 on the same ancilla.
        filter_ = PersistenceFilter(2)
        matrix = _matrix([[1, 0], [1, 0]])
        sticky, transient = filter_.split(matrix, 0)
        assert not sticky.any()
        assert transient.tolist() == [1, 0]

    def test_last_round_has_no_lookahead(self):
        filter_ = PersistenceFilter(2)
        matrix = _matrix([[0, 0], [1, 1]])
        sticky, transient = filter_.split(matrix, 1)
        assert sticky.tolist() == [1, 1]
        assert not transient.any()

    def test_three_round_window_looks_two_rounds_ahead(self):
        filter_ = PersistenceFilter(3)
        matrix = _matrix([[1, 1], [0, 0], [1, 0]])
        sticky, transient = filter_.split(matrix, 0)
        # Ancilla 0 flips again within the window -> transient; ancilla 1 does not.
        assert sticky.tolist() == [0, 1]
        assert transient.tolist() == [1, 0]

    def test_round_index_bounds_checked(self):
        filter_ = PersistenceFilter(2)
        with pytest.raises(IndexError):
            filter_.split(_matrix([[0, 0]]), 3)

    def test_split_partition_of_row(self):
        filter_ = PersistenceFilter(2)
        matrix = _matrix([[1, 1, 0, 1], [1, 0, 0, 1]])
        sticky, transient = filter_.split(matrix, 0)
        assert np.array_equal(sticky | transient, matrix[0])
        assert not (sticky & transient).any()


class TestTransientPartnerMask:
    def test_partner_is_first_repeat(self):
        filter_ = PersistenceFilter(3)
        matrix = _matrix([[1, 0], [0, 0], [1, 0]])
        sticky, transient = filter_.split(matrix, 0)
        mask = filter_.transient_partner_mask(matrix, 0, transient)
        assert mask[2, 0] == 1
        assert mask.sum() == 1

    def test_no_transients_gives_empty_mask(self):
        filter_ = PersistenceFilter(2)
        matrix = _matrix([[1, 0], [0, 0]])
        mask = filter_.transient_partner_mask(matrix, 0, np.zeros(2, dtype=np.uint8))
        assert not mask.any()
