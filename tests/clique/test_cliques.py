"""Tests for clique neighbourhood construction."""

from __future__ import annotations

from repro.clique.cliques import build_cliques
from repro.types import StabilizerType


class TestBuildCliques:
    def test_one_clique_per_ancilla(self, code, stype):
        cliques = build_cliques(code, stype)
        assert len(cliques) == code.num_ancillas_of_type(stype)

    def test_cliques_indexed_in_order(self, code, stype):
        cliques = build_cliques(code, stype)
        for index, clique in enumerate(cliques):
            assert clique.ancilla_index == index

    def test_clique_mirrors_ancilla_structure(self, code, stype):
        cliques = build_cliques(code, stype)
        ancillas = code.ancillas(stype)
        for clique, ancilla in zip(cliques, ancillas):
            assert clique.ancilla == ancilla.coord
            assert clique.neighbor_coords == ancilla.clique_neighbors
            assert clique.shared_qubits == ancilla.shared_qubits
            assert clique.boundary_qubits == ancilla.boundary_qubits

    def test_neighbor_indices_match_coordinates(self, code, stype):
        cliques = build_cliques(code, stype)
        index_of = code.ancilla_index(stype)
        for clique in cliques:
            assert clique.neighbor_indices == tuple(
                index_of[coord] for coord in clique.neighbor_coords
            )

    def test_bulk_cliques_have_four_leaves_at_d7(self, code_d7, stype):
        cliques = build_cliques(code_d7, stype)
        assert any(clique.num_neighbors == 4 for clique in cliques)

    def test_paper_special_cases_exist(self, code_d7, stype):
        # The paper's 1+1 (corner) and 1+2 (edge) cliques must both occur.
        cliques = build_cliques(code_d7, stype)
        neighbor_counts = {clique.num_neighbors for clique in cliques if clique.has_boundary}
        assert 1 in neighbor_counts
        assert 2 in neighbor_counts

    def test_has_boundary_matches_boundary_qubits(self, code, stype):
        for clique in build_cliques(code, stype):
            assert clique.has_boundary == bool(clique.boundary_qubits)
