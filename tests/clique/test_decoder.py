"""Tests for the Clique decoder decision logic and corrections (Figs. 5-8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clique.decoder import CliqueDecoder, clique_rule
from repro.noise.events import errors_to_vector
from repro.types import Coord, StabilizerType


class TestCliqueRule:
    def test_inactive_clique_never_complex(self):
        assert not clique_rule(False, 0, False)
        assert not clique_rule(False, 2, True)

    @pytest.mark.parametrize("count", [1, 3])
    def test_odd_neighbor_count_is_trivial(self, count):
        assert not clique_rule(True, count, False)
        assert not clique_rule(True, count, True)

    @pytest.mark.parametrize("count", [2, 4])
    def test_even_nonzero_count_is_complex(self, count):
        assert clique_rule(True, count, False)
        assert clique_rule(True, count, True)

    def test_isolated_bulk_ancilla_is_complex(self):
        # Fig. 8(d): a lone active ancilla in the bulk cannot be explained by
        # a single data error and must go off-chip.
        assert clique_rule(True, 0, False)

    def test_isolated_boundary_ancilla_is_trivial(self):
        # Fig. 5 special cases: a boundary data error explains it locally.
        assert not clique_rule(True, 0, True)


@pytest.fixture(scope="module")
def clique_d7():
    from repro.codes.rotated_surface import get_code

    return CliqueDecoder(get_code(7), StabilizerType.X)


class TestSingleErrorDecoding:
    def test_every_single_data_error_is_trivially_corrected(self, code, stype):
        decoder = CliqueDecoder(code, stype)
        for qubit in code.data_qubits:
            syndrome = code.syndrome_of({qubit}, stype)
            decision = decoder.decide(syndrome)
            assert decision.is_trivial
            residual = {qubit} ^ set(decision.correction)
            assert not code.syndrome_of(residual, stype).any()
            assert not code.is_logical_error(residual, stype)

    def test_bulk_single_error_corrected_exactly(self, code_d7):
        error = Coord(6, 6)
        decoder = CliqueDecoder(code_d7, StabilizerType.X)
        decision = decoder.decide(code_d7.syndrome_of({error}, StabilizerType.X))
        assert decision.correction == frozenset({error})

    def test_boundary_single_error_corrected_equivalently(self, code_d7):
        # Correcting a different boundary qubit of the same clique is allowed
        # (the two differ by a stabilizer); the residual must be harmless.
        decoder = CliqueDecoder(code_d7, StabilizerType.X)
        ancilla = next(
            a for a in code_d7.ancillas(StabilizerType.X) if len(a.boundary_qubits) >= 2
        )
        error = ancilla.boundary_qubits[-1]
        decision = decoder.decide(code_d7.syndrome_of({error}, StabilizerType.X))
        assert decision.is_trivial
        residual = {error} ^ set(decision.correction)
        assert not code_d7.syndrome_of(residual, StabilizerType.X).any()
        assert not code_d7.is_logical_error(residual, StabilizerType.X)


class TestMultipleIsolatedErrors:
    def test_two_distant_errors_both_corrected(self, code_d7):
        decoder = CliqueDecoder(code_d7, StabilizerType.X)
        errors = {Coord(0, 0), Coord(12, 12)}
        decision = decoder.decide(code_d7.syndrome_of(errors, StabilizerType.X))
        assert decision.is_trivial
        residual = errors ^ set(decision.correction)
        assert not code_d7.syndrome_of(residual, StabilizerType.X).any()

    def test_fig8a_two_paired_errors_match_complex_decoder(self, code_d7):
        # Fig. 8(a): two separate single data errors, each flipping a pair of
        # ancillas; Clique applies exactly the same fix MWPM would.
        from repro.decoders.mwpm import MWPMDecoder

        decoder = CliqueDecoder(code_d7, StabilizerType.X)
        mwpm = MWPMDecoder(code_d7, StabilizerType.X)
        errors = {Coord(2, 6), Coord(10, 4)}
        syndrome = code_d7.syndrome_of(errors, StabilizerType.X)
        decision = decoder.decide(syndrome)
        assert decision.is_trivial
        assert decision.correction == mwpm.decode(syndrome).correction == frozenset(errors)


class TestComplexDetection:
    def test_all_zero_signature_is_trivial_with_no_correction(self, clique_d7, code_d7):
        decision = clique_d7.decide(
            np.zeros(code_d7.num_ancillas_of_type(StabilizerType.X), dtype=np.uint8)
        )
        assert decision.is_trivial
        assert decision.is_all_zeros
        assert decision.correction == frozenset()

    def test_chain_of_two_adjacent_errors_is_complex(self, code_d7):
        # Two data errors sharing an ancilla: the shared ancilla sees both
        # neighbours... the middle ancilla stays quiet but the two endpoints
        # each see zero active leaves, so the signature must go off-chip.
        decoder = CliqueDecoder(code_d7, StabilizerType.X)
        ancilla = next(
            a
            for a in code_d7.ancillas(StabilizerType.X)
            if a.num_clique_neighbors == 4
        )
        errors = set(ancilla.shared_qubits[:2])
        decision = decoder.decide(code_d7.syndrome_of(errors, StabilizerType.X))
        assert not decision.is_trivial
        assert decision.complex_cliques

    def test_fig8c_chain_between_standalone_ancillas_is_complex(self, code_d7):
        # Fig. 8(c): a longer chain whose interior syndrome flips cancel,
        # leaving two distant standalone active ancillas.
        decoder = CliqueDecoder(code_d7, StabilizerType.X)
        chain = {Coord(4, 2), Coord(4, 4), Coord(4, 6), Coord(4, 8)}
        syndrome = code_d7.syndrome_of(chain, StabilizerType.X)
        assert syndrome.sum() == 2
        decision = decoder.decide(syndrome)
        assert not decision.is_trivial

    def test_fig8d_isolated_bulk_flip_is_complex(self, clique_d7, code_d7):
        # Fig. 8(d): a persistent measurement error looks like a lone active
        # bulk ancilla and must be handed to the complex decoder.
        bulk = next(
            a
            for a in code_d7.ancillas(StabilizerType.X)
            if not a.boundary_qubits
        )
        signature = np.zeros(code_d7.num_ancillas_of_type(StabilizerType.X), dtype=np.uint8)
        signature[bulk.index] = 1
        decision = clique_d7.decide(signature)
        assert not decision.is_trivial
        assert decision.complex_cliques == (bulk.coord,)

    def test_isolated_boundary_flip_is_trivial(self, clique_d7, code_d7):
        boundary = next(
            a for a in code_d7.ancillas(StabilizerType.X) if a.boundary_qubits
        )
        signature = np.zeros(code_d7.num_ancillas_of_type(StabilizerType.X), dtype=np.uint8)
        signature[boundary.index] = 1
        decision = clique_d7.decide(signature)
        assert decision.is_trivial
        assert decision.correction == frozenset({boundary.boundary_qubits[0]})


class TestTrivialCorrectionsCancelSignature:
    def test_correction_syndrome_equals_signature_for_random_trivial_cases(
        self, code_d7, rng
    ):
        decoder = CliqueDecoder(code_d7, StabilizerType.X)
        checked = 0
        for _ in range(300):
            errors = {q for q in code_d7.data_qubits if rng.random() < 0.01}
            syndrome = code_d7.syndrome_of(errors, StabilizerType.X)
            decision = decoder.decide(syndrome)
            if not decision.is_trivial:
                continue
            checked += 1
            assert np.array_equal(
                code_d7.syndrome_of(decision.correction, StabilizerType.X), syndrome
            )
        assert checked > 50


class TestBatchInterface:
    def test_batch_matches_single_decisions(self, code_d5, rng):
        decoder = CliqueDecoder(code_d5, StabilizerType.X)
        signatures = (
            rng.random((200, code_d5.num_ancillas_of_type(StabilizerType.X))) < 0.08
        ).astype(np.uint8)
        batch = decoder.is_trivial_batch(signatures)
        for row, expected in zip(signatures, batch):
            assert decoder.decide(row).is_trivial == bool(expected)

    def test_complex_mask_is_subset_of_active(self, code_d5, rng):
        decoder = CliqueDecoder(code_d5, StabilizerType.X)
        signatures = (
            rng.random((100, code_d5.num_ancillas_of_type(StabilizerType.X))) < 0.1
        ).astype(np.uint8)
        mask = decoder.complex_mask(signatures)
        assert not (mask & ~signatures.astype(bool)).any()


class TestDecoderInterface:
    def test_decode_single_round_reports_handled_flag(self, clique_d7, code_d7):
        errors = {Coord(6, 6)}
        result = clique_d7.decode(code_d7.syndrome_of(errors, StabilizerType.X))
        assert result.handled
        assert result.correction == frozenset(errors)

    def test_decode_rejects_multiround_input(self, clique_d7, code_d7):
        width = code_d7.num_ancillas_of_type(StabilizerType.X)
        with pytest.raises(ValueError):
            clique_d7.decode(np.zeros((2, width), dtype=np.uint8))

    def test_unhandled_complex_signature(self, clique_d7, code_d7):
        chain = {Coord(4, 2), Coord(4, 4), Coord(4, 6), Coord(4, 8)}
        result = clique_d7.decode(code_d7.syndrome_of(chain, StabilizerType.X))
        assert not result.handled
        assert result.correction == frozenset()
