"""Tests for the hierarchical (Clique on-chip + MWPM off-chip) decoder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clique.hierarchical import HierarchicalDecoder
from repro.decoders.mwpm import MWPMDecoder
from repro.types import Coord, DecodeLocation, StabilizerType


@pytest.fixture(scope="module")
def hierarchical_d5():
    from repro.codes.rotated_surface import get_code

    return HierarchicalDecoder(get_code(5), StabilizerType.X)


def _width(code):
    return code.num_ancillas_of_type(StabilizerType.X)


class TestOnChipPath:
    def test_quiet_history_stays_on_chip(self, hierarchical_d5, code_d5):
        detections = np.zeros((4, _width(code_d5)), dtype=np.uint8)
        result = hierarchical_d5.decode_history(detections)
        assert result.correction == frozenset()
        assert result.num_offchip_rounds == 0
        assert all(loc is DecodeLocation.ON_CHIP for loc in result.round_locations)
        assert result.onchip_fraction == 1.0

    def test_single_data_error_is_handled_on_chip(self, hierarchical_d5, code_d5):
        error = Coord(4, 4)
        syndrome = code_d5.syndrome_of({error}, StabilizerType.X)
        detections = np.zeros((3, _width(code_d5)), dtype=np.uint8)
        detections[1] = syndrome
        result = hierarchical_d5.decode_history(detections)
        assert result.num_offchip_rounds == 0
        assert result.correction == frozenset({error})
        assert result.onchip_correction == frozenset({error})
        assert result.offchip_correction == frozenset()

    def test_transient_measurement_error_is_filtered_on_chip(
        self, hierarchical_d5, code_d5
    ):
        # A measurement error creates a same-ancilla detection pair in
        # consecutive rounds; the persistence filter absorbs it with no
        # correction and no off-chip traffic.
        detections = np.zeros((4, _width(code_d5)), dtype=np.uint8)
        detections[1, 5] = 1
        detections[2, 5] = 1
        result = hierarchical_d5.decode_history(detections)
        assert result.correction == frozenset()
        assert result.num_offchip_rounds == 0


def _bulk_ancilla_index(code) -> int:
    """Index of an X ancilla with no boundary qubits (its lone flip is complex)."""
    return next(
        a.index for a in code.ancillas(StabilizerType.X) if not a.boundary_qubits
    )


def _complex_round_signature(code) -> np.ndarray:
    """A persistent lone flip on a bulk ancilla — the Fig. 8(d) off-chip case."""
    signature = np.zeros(_width(code), dtype=np.uint8)
    signature[_bulk_ancilla_index(code)] = 1
    return signature


class TestOffChipPath:
    def test_lone_bulk_flip_goes_off_chip(self, hierarchical_d5, code_d5):
        detections = np.zeros((3, _width(code_d5)), dtype=np.uint8)
        detections[0] = _complex_round_signature(code_d5)
        result = hierarchical_d5.decode_history(detections)
        assert result.num_offchip_rounds == 1
        assert result.offchip_rounds == (0,)
        assert result.round_locations[0] is DecodeLocation.OFF_CHIP
        # The off-chip decoder must cancel exactly the flipped ancilla.
        syndrome = code_d5.syndrome_of(result.offchip_correction, StabilizerType.X)
        assert np.array_equal(syndrome, detections[0])

    def test_mixed_history_splits_rounds(self, hierarchical_d5, code_d5):
        simple = Coord(4, 4)
        detections = np.zeros((4, _width(code_d5)), dtype=np.uint8)
        detections[0] = code_d5.syndrome_of({simple}, StabilizerType.X)
        detections[2] = _complex_round_signature(code_d5)
        result = hierarchical_d5.decode_history(detections)
        assert result.round_locations[0] is DecodeLocation.ON_CHIP
        assert result.round_locations[2] is DecodeLocation.OFF_CHIP
        assert simple in result.onchip_correction

    def test_decode_metadata_reports_fractions(self, hierarchical_d5, code_d5):
        detections = np.zeros((2, _width(code_d5)), dtype=np.uint8)
        detections[0] = _complex_round_signature(code_d5)
        outcome = hierarchical_d5.decode(detections)
        assert outcome.handled
        assert outcome.metadata["num_rounds"] == 2
        assert outcome.metadata["num_offchip_rounds"] == 1
        assert outcome.metadata["onchip_fraction"] == pytest.approx(0.5)


class TestConfiguration:
    def test_custom_fallback_is_used(self, code_d5):
        # The cascade routes decoder-instance fallbacks through the batched
        # decode_events_bitmap hook when they provide one (falling back to
        # matrix-level decode() otherwise), so record both entry points.
        calls = []

        class RecordingMWPM(MWPMDecoder):
            def decode(self, detections):
                calls.append(("decode", detections.copy()))
                return super().decode(detections)

            def decode_events_bitmap(self, rounds, ancillas):
                calls.append(("decode_events_bitmap", rounds.copy()))
                return super().decode_events_bitmap(rounds, ancillas)

        fallback = RecordingMWPM(code_d5, StabilizerType.X)
        decoder = HierarchicalDecoder(code_d5, StabilizerType.X, fallback=fallback)
        detections = np.zeros((2, _width(code_d5)), dtype=np.uint8)
        detections[0] = _complex_round_signature(code_d5)
        decoder.decode_history(detections)
        assert len(calls) == 1
        assert calls[0][0] == "decode_events_bitmap"

    def test_fallback_not_called_when_everything_is_trivial(self, code_d5):
        calls = []

        class RecordingMWPM(MWPMDecoder):
            def decode(self, detections):
                calls.append(detections.copy())
                return super().decode(detections)

            def decode_events_bitmap(self, rounds, ancillas):
                calls.append(rounds.copy())
                return super().decode_events_bitmap(rounds, ancillas)

        decoder = HierarchicalDecoder(
            code_d5, StabilizerType.X, fallback=RecordingMWPM(code_d5, StabilizerType.X)
        )
        detections = np.zeros((3, _width(code_d5)), dtype=np.uint8)
        detections[0] = code_d5.syndrome_of({Coord(4, 4)}, StabilizerType.X)
        decoder.decode_history(detections)
        assert calls == []

    def test_measurement_rounds_parameter_exposed(self, code_d5):
        decoder = HierarchicalDecoder(code_d5, StabilizerType.X, measurement_rounds=3)
        assert decoder.measurement_rounds == 3

    def test_clique_and_fallback_accessors(self, hierarchical_d5):
        assert hierarchical_d5.clique is not None
        assert isinstance(hierarchical_d5.fallback, MWPMDecoder)


class TestAccuracyAgainstBaseline:
    def test_logical_error_rate_close_to_mwpm(self, code_d3):
        from repro.noise.models import PhenomenologicalNoise
        from repro.simulation.memory import run_memory_experiment

        noise = PhenomenologicalNoise(0.02)
        baseline = run_memory_experiment(
            code_d3,
            noise,
            lambda code, stype: MWPMDecoder(code, stype),
            trials=600,
            rng=5,
        )
        hierarchical = run_memory_experiment(
            code_d3,
            noise,
            lambda code, stype: HierarchicalDecoder(code, stype),
            trials=600,
            rng=5,
        )
        # Fig. 14: the hierarchy tracks the baseline closely; allow a modest
        # statistical + design margin.
        assert hierarchical.logical_error_rate <= 2.5 * max(
            baseline.logical_error_rate, 0.01
        )

    def test_most_rounds_stay_on_chip_at_low_error_rate(self, code_d5):
        from repro.noise.models import PhenomenologicalNoise
        from repro.simulation.memory import run_memory_experiment

        result = run_memory_experiment(
            code_d5,
            PhenomenologicalNoise(1e-3),
            lambda code, stype: HierarchicalDecoder(code, stype),
            trials=200,
            rng=6,
        )
        assert result.onchip_round_fraction > 0.9


class TestNamedFallbacks:
    def test_mwpm_is_the_default(self, code_d5):
        decoder = HierarchicalDecoder(code_d5, StabilizerType.X)
        assert isinstance(decoder.fallback, MWPMDecoder)

    def test_union_find_is_selectable_by_name(self, code_d5):
        from repro.decoders.union_find import ClusteringDecoder

        decoder = HierarchicalDecoder(code_d5, StabilizerType.X, fallback="union_find")
        assert isinstance(decoder.fallback, ClusteringDecoder)

    def test_unknown_name_is_rejected(self, code_d5):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            HierarchicalDecoder(code_d5, StabilizerType.X, fallback="lookup_table")


class TestBatchedFallbackBitIdentity:
    """decode_batch routes off-chip trials through the batched fallback; it
    must stay bit-identical to the per-trial decode_history reference."""

    @pytest.mark.parametrize("distance", [5, 7])
    @pytest.mark.parametrize("fallback", ["mwpm", "union_find"])
    def test_decode_batch_matches_decode_history(self, distance, fallback):
        from repro.codes.rotated_surface import get_code

        code = get_code(distance)
        decoder = HierarchicalDecoder(code, StabilizerType.X, fallback=fallback)
        width = _width(code)
        data_index = code.data_index
        rng = np.random.default_rng(29)
        # Densities straddle the on-chip/off-chip triage point so plenty of
        # trials exercise the batched fallback.
        for density in (0.05, 0.18):
            batch = (rng.random((40, distance + 1, width)) < density).astype(np.uint8)
            result = decoder.decode_batch(batch)
            for trial in range(batch.shape[0]):
                reference = decoder.decode_history(batch[trial])
                bitmap = np.zeros(code.num_data_qubits, dtype=np.uint8)
                for qubit in reference.correction:
                    bitmap[data_index[qubit]] ^= 1
                assert np.array_equal(result.corrections[trial], bitmap)
                assert result.onchip_rounds[trial] == (
                    reference.num_rounds - reference.num_offchip_rounds
                )

    def test_generic_fallback_without_bitmap_hook_still_matches(self, code_d5):
        # A fallback that only implements decode() exercises the per-trial
        # compatibility path inside _offchip_corrections.
        class PlainMWPM(MWPMDecoder):
            decode_events_bitmap = None  # hide the batched hook

        plain = PlainMWPM(code_d5, StabilizerType.X)
        via_plain = HierarchicalDecoder(code_d5, StabilizerType.X, fallback=plain)
        via_batched = HierarchicalDecoder(code_d5, StabilizerType.X)
        rng = np.random.default_rng(31)
        batch = (rng.random((30, 6, _width(code_d5))) < 0.15).astype(np.uint8)
        a = via_plain.decode_batch(batch)
        b = via_batched.decode_batch(batch)
        assert np.array_equal(a.corrections, b.corrections)
        assert np.array_equal(a.onchip_rounds, b.onchip_rounds)
