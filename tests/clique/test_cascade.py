"""Tests for the N-tier decoder cascade (Clique -> ... -> final matcher).

Covers the tier contract (escalation masks, construction validation), the
bit-identity of the batched cascade path against the per-trial reference, and
— the refactor's load-bearing guarantee — the two-tier alias's bit-identity
with the *pre-refactor* ``HierarchicalDecoder`` under fixed seeds on all
three Monte-Carlo engines, pinned against frozen seeded outputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clique.cascade import CascadeResult, DecoderCascade
from repro.clique.decoder import CliqueDecoder
from repro.clique.hierarchical import HierarchicalDecoder, HierarchicalResult
from repro.codes.rotated_surface import get_code
from repro.decoders.mwpm import MWPMDecoder
from repro.decoders.registry import resolve_tier_spec, tier_decoder_names
from repro.decoders.union_find import ClusteringDecoder
from repro.exceptions import ConfigurationError
from repro.noise.models import PhenomenologicalNoise
from repro.simulation.memory import run_memory_experiment
from repro.types import StabilizerType

THREE_TIER = ("clique", "union_find", "mwpm")


def _width(code):
    return code.num_ancillas_of_type(StabilizerType.X)


class _CascadeFactory:
    """Picklable factory for sharded-engine tests."""

    def __init__(self, tiers):
        self.tiers = tuple(tiers)

    def __call__(self, code, stype):
        return DecoderCascade(code, stype, tiers=self.tiers)


class _HierarchicalFactory:
    def __init__(self, fallback):
        self.fallback = fallback

    def __call__(self, code, stype):
        return HierarchicalDecoder(code, stype, fallback=self.fallback)


class TestTierSpecResolution:
    def test_comma_string_and_tuple_agree(self):
        assert resolve_tier_spec("clique,union_find,mwpm") == THREE_TIER
        assert resolve_tier_spec(THREE_TIER) == THREE_TIER

    def test_whitespace_is_tolerated(self):
        assert resolve_tier_spec("clique, union_find , mwpm") == THREE_TIER

    def test_unknown_tier_lists_valid_names(self):
        with pytest.raises(ConfigurationError) as excinfo:
            resolve_tier_spec("clique,blossom")
        message = str(excinfo.value)
        for name in tier_decoder_names():
            assert name in message

    def test_must_start_with_clique(self):
        with pytest.raises(ConfigurationError, match="clique"):
            resolve_tier_spec("union_find,mwpm")

    def test_non_escalating_mid_tier_rejected_eagerly(self):
        # The eager-validation guarantee: a decoder with no escalation path
        # in an intermediate slot fails at spec time, before any sweep work.
        with pytest.raises(ConfigurationError, match="mid-cascade"):
            resolve_tier_spec("clique,mwpm,union_find")
        assert resolve_tier_spec("clique,union_find,mwpm") == THREE_TIER

    def test_needs_an_offchip_tier(self):
        with pytest.raises(ConfigurationError):
            resolve_tier_spec("clique")


class TestConstruction:
    def test_string_spec_builds_three_tiers(self, code_d5):
        cascade = DecoderCascade(code_d5, StabilizerType.X, tiers="clique,union_find,mwpm")
        assert cascade.tier_names == THREE_TIER
        assert cascade.num_tiers == 3
        assert isinstance(cascade.offchip_tiers[0], ClusteringDecoder)
        assert isinstance(cascade.offchip_tiers[1], MWPMDecoder)

    def test_intermediate_union_find_gets_escalation_policy(self, code_d5):
        cascade = DecoderCascade(code_d5, StabilizerType.X, tiers=THREE_TIER)
        assert cascade.offchip_tiers[0].escalation_cluster_size is not None
        # A *final* union-find tier must resolve everything it receives.
        two_tier = DecoderCascade(code_d5, StabilizerType.X, tiers=("clique", "union_find"))
        assert two_tier.offchip_tiers[0].escalation_cluster_size is None

    def test_named_tiers_share_matching_graph(self, code_d5):
        cascade = DecoderCascade(code_d5, StabilizerType.X, tiers=THREE_TIER)
        assert cascade.offchip_tiers[0]._graph is cascade.offchip_tiers[1]._graph

    def test_boundary_clique_cache_limit_threads_through(self, code_d5):
        cascade = DecoderCascade(
            code_d5, StabilizerType.X, tiers=THREE_TIER, boundary_clique_cache_limit=3
        )
        mwpm = cascade.offchip_tiers[1]
        for num in range(2, 12):
            mwpm._boundary_clique_edges(num)
        assert len(mwpm._boundary_clique_cache) == 3

    def test_hierarchical_cache_limit_kwarg(self, code_d5):
        decoder = HierarchicalDecoder(
            code_d5, StabilizerType.X, boundary_clique_cache_limit=2
        )
        for num in range(2, 9):
            decoder.fallback._boundary_clique_edges(num)
        assert len(decoder.fallback._boundary_clique_cache) == 2

    def test_non_escalating_mid_tier_is_rejected(self, code_d5):
        # MWPM has no escalation path, so it can only sit last.
        with pytest.raises(ConfigurationError, match="escalate"):
            DecoderCascade(code_d5, StabilizerType.X, tiers=("clique", "mwpm", "union_find"))

    def test_instance_tiers_are_accepted(self, code_d5):
        mid = ClusteringDecoder(code_d5, StabilizerType.X, escalation_cluster_size=1)
        final = MWPMDecoder(code_d5, StabilizerType.X)
        cascade = DecoderCascade(code_d5, StabilizerType.X, tiers=("clique", mid, final))
        assert cascade.offchip_tiers == (mid, final)
        assert cascade.tier_names[0] == "clique"

    def test_clique_instance_front_tier(self, code_d5):
        front = CliqueDecoder(code_d5, StabilizerType.X)
        cascade = DecoderCascade(code_d5, StabilizerType.X, tiers=(front, "mwpm"))
        assert cascade.clique is front

    def test_bad_front_tier_is_rejected(self, code_d5):
        with pytest.raises(ConfigurationError, match="first cascade tier"):
            DecoderCascade(code_d5, StabilizerType.X, tiers=("mwpm", "union_find"))

    def test_hierarchical_result_is_cascade_result(self):
        assert HierarchicalResult is CascadeResult


class TestEscalationMask:
    def test_small_clusters_resolve_large_escalate(self, code_d5):
        decoder = ClusteringDecoder(
            code_d5, StabilizerType.X, escalation_cluster_size=2
        )
        # One isolated event: a single boundary-matched cluster, resolved here.
        bitmap, escalated = decoder.decode_events_tiered(
            np.array([0]), np.array([0])
        )
        assert escalated.size == 0
        assert bitmap is not None
        # A tight same-ancilla triple grows into one 3-event cluster whose
        # size exceeds the threshold: all three members escalate, by index.
        bitmap, escalated = decoder.decode_events_tiered(
            np.array([0, 1, 2]), np.array([0, 0, 0])
        )
        assert escalated.tolist() == [0, 1, 2]
        assert not bitmap.any()

    def test_partial_resolution_escalates_only_oversized_cluster(self, code_d5):
        decoder = ClusteringDecoder(
            code_d5, StabilizerType.X, escalation_cluster_size=2
        )
        # A far-away isolated event plus a tight same-ancilla triple: the
        # singleton cluster resolves in place while only the triple's three
        # member positions escalate.
        width = code_d5.num_ancillas_of_type(StabilizerType.X)
        rounds = np.array([0, 0, 1, 2])
        ancillas = np.array([width - 1, 0, 0, 0])
        bitmap, escalated = decoder.decode_events_tiered(rounds, ancillas)
        assert escalated.tolist() == [1, 2, 3]
        assert escalated.dtype == np.int64
        # The resolved singleton contributed a non-trivial partial correction.
        lone, lone_escalated = decoder.decode_events_tiered(
            np.array([0]), np.array([width - 1])
        )
        assert lone_escalated.size == 0
        assert np.array_equal(bitmap, lone)

    def test_empty_event_list_never_escalates(self, code_d5):
        decoder = ClusteringDecoder(
            code_d5, StabilizerType.X, escalation_cluster_size=1
        )
        bitmap, escalated = decoder.decode_events_tiered(np.array([]), np.array([]))
        assert escalated.size == 0
        assert not bitmap.any()

    def test_disabled_policy_resolves_everything(self, code_d5):
        decoder = ClusteringDecoder(code_d5, StabilizerType.X)
        bitmap, escalated = decoder.decode_events_tiered(
            np.array([0, 1, 2, 3]), np.array([0, 0, 0, 0])
        )
        assert escalated.size == 0
        assert np.array_equal(
            bitmap,
            decoder.decode_events_bitmap(np.array([0, 1, 2, 3]), np.array([0, 0, 0, 0])),
        )

    def test_invalid_threshold_is_rejected(self, code_d5):
        with pytest.raises(ConfigurationError):
            ClusteringDecoder(code_d5, StabilizerType.X, escalation_cluster_size=0)


class TestBatchedCascadeBitIdentity:
    """The batched cascade path must stay bit-identical to the per-trial
    decode_history reference — including which tier resolves each trial."""

    @pytest.mark.parametrize("distance", [5, 7])
    def test_three_tier_decode_batch_matches_decode_history(self, distance):
        code = get_code(distance)
        cascade = DecoderCascade(code, StabilizerType.X, tiers=THREE_TIER)
        width = _width(code)
        data_index = code.data_index
        rng = np.random.default_rng(37)
        # Densities straddle the triage point so plenty of trials exercise
        # every tier boundary.
        for density in (0.05, 0.18):
            batch = (rng.random((40, distance + 1, width)) < density).astype(np.uint8)
            result = cascade.decode_batch(batch)
            tier_tally = np.zeros(cascade.num_tiers, dtype=np.int64)
            for trial in range(batch.shape[0]):
                reference = cascade.decode_history(batch[trial])
                bitmap = np.zeros(code.num_data_qubits, dtype=np.uint8)
                for qubit in reference.correction:
                    bitmap[data_index[qubit]] ^= 1
                assert np.array_equal(result.corrections[trial], bitmap)
                assert result.onchip_rounds[trial] == (
                    reference.num_rounds - reference.num_offchip_rounds
                )
                tier_tally[reference.handled_tier] += 1
            assert np.array_equal(result.tier_trials, tier_tally)
            assert int(result.tier_trials.sum()) == batch.shape[0]

    def test_two_tier_cascade_matches_hierarchical_alias(self, code_d5):
        cascade = DecoderCascade(code_d5, StabilizerType.X, tiers=("clique", "mwpm"))
        alias = HierarchicalDecoder(code_d5, StabilizerType.X)
        rng = np.random.default_rng(41)
        batch = (rng.random((30, 6, _width(code_d5))) < 0.15).astype(np.uint8)
        a = cascade.decode_batch(batch)
        b = alias.decode_batch(batch)
        assert np.array_equal(a.corrections, b.corrections)
        assert np.array_equal(a.onchip_rounds, b.onchip_rounds)
        assert np.array_equal(a.tier_trials, b.tier_trials)
        assert np.array_equal(a.tier_rounds, b.tier_rounds)

    def test_tier_rounds_accounting(self, code_d5):
        cascade = DecoderCascade(code_d5, StabilizerType.X, tiers=THREE_TIER)
        rng = np.random.default_rng(43)
        batch = (rng.random((40, 6, _width(code_d5))) < 0.15).astype(np.uint8)
        result = cascade.decode_batch(batch)
        total_rounds = int(result.total_rounds.sum())
        onchip_rounds = int(result.onchip_rounds.sum())
        assert result.tier_rounds[0] == onchip_rounds
        assert result.tier_rounds[1] == total_rounds - onchip_rounds
        # Bandwidth can only shrink down the cascade.
        assert result.tier_rounds[2] <= result.tier_rounds[1]


#: Frozen seeded outputs captured from the pre-refactor two-tier
#: ``HierarchicalDecoder`` implementation (commit 645e6b2) — trials=300,
#: p=2e-2, seed=1234, rounds=distance; sharded at workers=1 with the default
#: chunk.  The cascade refactor must reproduce every number bit for bit.
PRE_REFACTOR_SEEDED = {
    # (fallback, distance, engine): (logical_failures, onchip_rounds, total_rounds)
    ("mwpm", 3, "loop"): (13, 1199, 1200),
    ("mwpm", 3, "batch"): (13, 1199, 1200),
    ("mwpm", 3, "sharded"): (12, 1199, 1200),
    ("mwpm", 5, "loop"): (10, 1668, 1800),
    ("mwpm", 5, "batch"): (10, 1668, 1800),
    ("mwpm", 5, "sharded"): (22, 1649, 1800),
    ("union_find", 3, "loop"): (13, 1199, 1200),
    ("union_find", 3, "batch"): (13, 1199, 1200),
    ("union_find", 3, "sharded"): (12, 1199, 1200),
    ("union_find", 5, "loop"): (15, 1668, 1800),
    ("union_find", 5, "batch"): (15, 1668, 1800),
    ("union_find", 5, "sharded"): (23, 1649, 1800),
}


class TestPreRefactorEquivalence:
    """``DecoderCascade(("clique", f))`` and the ``HierarchicalDecoder``
    alias must both be bit-identical to the pre-refactor hierarchy under
    fixed seeds on the loop, batch, and sharded engines."""

    @pytest.mark.parametrize("fallback", ["mwpm", "union_find"])
    @pytest.mark.parametrize("engine", ["loop", "batch", "sharded"])
    def test_two_tier_cascade_reproduces_frozen_outputs(self, fallback, engine):
        distance = 5
        expected = PRE_REFACTOR_SEEDED[(fallback, distance, engine)]
        result = run_memory_experiment(
            get_code(distance),
            PhenomenologicalNoise(2e-2),
            _CascadeFactory(("clique", fallback)),
            trials=300,
            rng=1234,
            engine=engine,
            workers=1 if engine == "sharded" else None,
        )
        assert (
            result.logical_failures,
            result.onchip_rounds,
            result.total_rounds,
        ) == expected

    @pytest.mark.parametrize("fallback", ["mwpm", "union_find"])
    @pytest.mark.parametrize("engine", ["loop", "batch", "sharded"])
    def test_hierarchical_alias_reproduces_frozen_outputs(self, fallback, engine):
        distance = 3
        expected = PRE_REFACTOR_SEEDED[(fallback, distance, engine)]
        result = run_memory_experiment(
            get_code(distance),
            PhenomenologicalNoise(2e-2),
            _HierarchicalFactory(fallback),
            trials=300,
            rng=1234,
            engine=engine,
            workers=1 if engine == "sharded" else None,
        )
        assert (
            result.logical_failures,
            result.onchip_rounds,
            result.total_rounds,
        ) == expected


class TestCascadeAcrossEngines:
    """Three-tier cascades ride every engine with consistent tier stats."""

    def test_loop_and_batch_agree_including_tier_stats(self, code_d5):
        kwargs = dict(trials=200, rng=7)
        loop = run_memory_experiment(
            code_d5,
            PhenomenologicalNoise(2e-2),
            _CascadeFactory(THREE_TIER),
            engine="loop",
            **kwargs,
        )
        batch = run_memory_experiment(
            code_d5,
            PhenomenologicalNoise(2e-2),
            _CascadeFactory(THREE_TIER),
            engine="batch",
            **kwargs,
        )
        assert loop == batch
        assert loop.tier_names == THREE_TIER
        assert sum(loop.tier_trials) == loop.trials
        assert loop.tier_rounds[0] == loop.onchip_rounds

    def test_sharded_worker_count_never_changes_tier_stats(self, code_d5):
        kwargs = dict(trials=400, rng=11, engine="sharded")
        one = run_memory_experiment(
            code_d5, PhenomenologicalNoise(2e-2), _CascadeFactory(THREE_TIER),
            workers=1, **kwargs,
        )
        four = run_memory_experiment(
            code_d5, PhenomenologicalNoise(2e-2), _CascadeFactory(THREE_TIER),
            workers=4, **kwargs,
        )
        assert one == four
        assert sum(one.tier_trials) == one.trials

    def test_escalation_rates_decrease_down_the_cascade(self, code_d5):
        result = run_memory_experiment(
            code_d5,
            PhenomenologicalNoise(2e-2),
            _CascadeFactory(THREE_TIER),
            trials=300,
            rng=13,
        )
        rates = result.escalation_rates
        assert len(rates) == 2
        assert 0.0 <= rates[1] <= rates[0] <= 1.0
        assert result.tier_rounds_per_trial(2) <= result.tier_rounds_per_trial(1)


class TestCascadeResultStoreRoundTrip:
    def test_tier_fields_survive_serialization(self, code_d5):
        from repro.store.serialization import from_dict, to_dict

        result = run_memory_experiment(
            code_d5,
            PhenomenologicalNoise(2e-2),
            _CascadeFactory(THREE_TIER),
            trials=100,
            rng=3,
        )
        assert result.tier_names == THREE_TIER
        restored = from_dict(to_dict(result))
        assert restored == result
        assert restored.tier_trials == result.tier_trials
        assert isinstance(restored.tier_trials, tuple)
