"""Dependency hygiene: the default decode path must never import heavy deps.

The in-tree blossom matcher demoted networkx to an optional differential-test
oracle (``MWPMDecoder(matcher="networkx")``).  This test runs a fresh
interpreter with an import hook that *fails* any attempt to import a heavy
optional module, then drives the default decoders through event sets large
enough to need the general matcher — proving the dependency is truly gone
from the hot path, not merely unused on the inputs we happened to try.

The banned-module set is NOT spelled here: it is the
``HEAVY_OPTIONAL_MODULES`` manifest in :mod:`repro.analysis.contracts`, the
same one lint rule ``IMP001`` enforces statically on every import statement.
One manifest, two enforcement angles — static (every module, every import,
including paths no test exercises) and dynamic (the real decode path under a
hostile ``sys.meta_path``) — so the two checks cannot drift apart.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.analysis.contracts import HEAVY_OPTIONAL_MODULES

SRC = Path(__file__).resolve().parent.parent / "src"
ENV = {**os.environ, "PYTHONPATH": str(SRC)}

SCRIPT_TEMPLATE = r"""
import sys

BANNED = __BANNED__


class _Banned:
    def find_module(self, name, path=None):  # pragma: no cover - never hit
        return None

    def find_spec(self, name, path=None, target=None):
        top = name.split(".", 1)[0]
        if top in BANNED:
            raise ImportError(f"heavy import attempted on the default path: {name}")
        return None

sys.meta_path.insert(0, _Banned())

import numpy as np

from repro.clique.cascade import DecoderCascade
from repro.codes.rotated_surface import get_code
from repro.decoders.mwpm import MWPMDecoder
from repro.types import StabilizerType

code = get_code(5)
width = code.num_ancillas_of_type(StabilizerType.X)

# MWPM on an event set far past the subset-DP small-case limit: the general
# (blossom) matcher must run, free of every heavy optional dependency.
decoder = MWPMDecoder(code, StabilizerType.X)
rng = np.random.default_rng(7)
detections = (rng.random((6, width)) < 0.3).astype(np.uint8)
assert detections.sum() > 8
decoder.decode(detections)

# A three-tier cascade batch decode, escalation paths included.
cascade = DecoderCascade(
    code, StabilizerType.X, tiers=("clique", "union_find", "mwpm")
)
batch = (rng.random((30, 6, width)) < 0.2).astype(np.uint8)
cascade.decode_batch(batch)

print("OK")
"""

SCRIPT = SCRIPT_TEMPLATE.replace("__BANNED__", repr(tuple(HEAVY_OPTIONAL_MODULES)))


def test_manifest_covers_the_known_heavy_deps():
    # The manifest is the single source of truth for both this test and
    # IMP001; a rename there must be deliberate, not accidental.
    assert "networkx" in HEAVY_OPTIONAL_MODULES
    assert "matplotlib" in HEAVY_OPTIONAL_MODULES


def test_default_decode_path_never_imports_heavy_deps():
    result = subprocess.run(
        [sys.executable, "-c", SCRIPT],
        capture_output=True,
        text=True,
        env=ENV,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "OK"


def test_oracle_matcher_still_reaches_networkx_lazily():
    # Sanity check for the hook logic itself: with matcher="networkx" the
    # banned import *is* attempted (and converted to a ConfigurationError).
    script = SCRIPT.replace(
        "decoder = MWPMDecoder(code, StabilizerType.X)",
        "decoder = MWPMDecoder(code, StabilizerType.X, matcher='networkx')",
    )
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=ENV,
        timeout=120,
    )
    assert result.returncode != 0
    assert "heavy import attempted" in result.stderr
