"""Shared test kernels for the generic sharded runner.

Lives in its own importable module (not a ``test_*`` file) so the frozen
dataclass pickles by reference into pooled worker processes from every test
module that uses it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BernoulliKernel:
    """Minimal picklable kernel: count successes of a biased coin.

    Partial results are ``(successes, trials)`` tuples, merged by the
    runner's default elementwise sum.
    """

    rate: float

    def __call__(self, n_trials, rng):
        return (int((rng.random(n_trials) < self.rate).sum()), n_trials)


def bernoulli_successes(counts):
    """``successes_of`` extractor for :class:`BernoulliKernel` partials."""
    return counts[0]
