"""Fault-tolerant sharded execution: recovery is invisible in the results.

Every test here leans on the seeding contract: a retried shard replays the
same ``(seed, shard_index)`` stream bit-identically, so any fault the
executor absorbs — worker exceptions, SIGKILLed workers (a genuine
``BrokenProcessPool``), hung shards, repeated pool breaks degrading to
sequential execution — must leave the merged counts exactly equal to a
fault-free run's.
"""

from __future__ import annotations

import concurrent.futures
import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.exceptions import (
    ConfigurationError,
    FaultToleranceError,
    ShardRetriesExhaustedError,
)
from repro.experiments.fig14 import _mwpm_factory
from repro.faults import (
    DegradedExecutionWarning,
    FaultInjector,
    FaultPlan,
    FaultPolicy,
    FaultReport,
    ShardFault,
)
from repro.noise.models import PhenomenologicalNoise
from repro.simulation.monte_carlo import until_wilson
from repro.simulation.shard import (
    run_memory_experiment_sharded,
    run_sharded,
    run_sharded_adaptive,
)
from repro.store import AdaptiveCheckpoint, to_dict
from shard_kernels import BernoulliKernel, bernoulli_successes

#: No-sleep policy for tests: retries are instant, results unaffected.
FAST = dict(backoff_base=0.0)


def run_counts(workers, **kwargs):
    return run_sharded(
        BernoulliKernel(0.3),
        trials=200,
        seed=99,
        chunk_trials=25,
        workers=workers,
        **kwargs,
    )


@pytest.fixture(scope="module")
def clean_counts():
    return run_counts(workers=1)


class TestRetryEquivalence:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_injected_exceptions_and_kills_do_not_change_counts(
        self, workers, clean_counts
    ):
        report = FaultReport()
        faulted = run_counts(
            workers=workers,
            faults=FaultPolicy(max_retries=3, **FAST),
            fault_report=report,
            fault_injector=FaultInjector.from_text(
                "shard 1 attempt 0 raise; shard 3 attempts 0-1 raise; "
                "shard 5 attempt 0 kill"
            ),
        )
        assert faulted == clean_counts
        assert report.faults_handled > 0

    def test_ambient_env_plan_is_honoured(self, monkeypatch, clean_counts):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "shard 2 attempt 0 raise")
        report = FaultReport()
        faulted = run_counts(
            workers=1, faults=FaultPolicy(**FAST), fault_report=report
        )
        assert faulted == clean_counts
        assert report.retries == 1

    def test_retry_budget_exhaustion_raises_with_shard_coordinates(self):
        with pytest.raises(ShardRetriesExhaustedError) as info:
            run_counts(
                workers=1,
                faults=FaultPolicy(max_retries=1, **FAST),
                fault_injector=FaultInjector.from_text("shard 2 attempts 0-9 raise"),
            )
        assert info.value.shard_index == 2
        assert info.value.attempts == 2  # initial attempt + 1 retry

    def test_zero_retries_fails_fast(self):
        with pytest.raises(ShardRetriesExhaustedError):
            run_counts(
                workers=1,
                faults=FaultPolicy(max_retries=0),
                fault_injector=FaultInjector.from_text("shard 0 raise"),
            )

    def test_configuration_errors_are_never_retried(self):
        class MisconfiguredKernel:
            def __call__(self, n_trials, rng):
                raise ConfigurationError("bad kernel config")

        report = FaultReport()
        with pytest.raises(ConfigurationError):
            run_sharded(
                MisconfiguredKernel(),
                trials=10,
                seed=1,
                chunk_trials=10,
                workers=1,
                faults=FaultPolicy(max_retries=5, **FAST),
                fault_report=report,
            )
        assert report.retries == 0


class TestSkipProvenance:
    def test_skipped_shards_are_dropped_with_provenance(self, clean_counts):
        report = FaultReport()
        merged = run_counts(
            workers=1,
            faults=FaultPolicy(max_retries=1, on_exhausted="skip", **FAST),
            fault_report=report,
            fault_injector=FaultInjector.from_text("shard 4 attempts 0-9 raise"),
        )
        # Shard 4's 25 trials are gone; everything else matches the clean run.
        assert merged[1] == clean_counts[1] - 25
        assert [s.shard_index for s in report.skipped_shards] == [4]
        assert report.skipped_trials == 25
        assert "InjectedWorkerError" in report.skipped_shards[0].error

    def test_all_shards_skipped_raises(self):
        with pytest.raises(FaultToleranceError):
            run_sharded(
                BernoulliKernel(0.3),
                trials=20,
                seed=99,
                chunk_trials=10,
                workers=1,
                faults=FaultPolicy(max_retries=0, on_exhausted="skip", **FAST),
                fault_injector=FaultInjector.from_text(
                    "shard 0 attempts 0-9 raise; shard 1 attempts 0-9 raise"
                ),
            )

    def test_skipped_trials_ride_the_memory_result_and_reduce_trials(self, code_d3):
        noise = PhenomenologicalNoise(1e-2)
        result = run_memory_experiment_sharded(
            code_d3,
            noise,
            _mwpm_factory,
            trials=60,
            rng=11,
            chunk_trials=20,
            workers=1,
            faults=FaultPolicy(max_retries=0, on_exhausted="skip", **FAST),
            fault_injector=FaultInjector.from_text("shard 1 attempts 0-9 raise"),
        )
        assert result.skipped_shards == 1
        assert result.skipped_trials == 20
        assert result.trials == 40
        clean = run_memory_experiment_sharded(
            code_d3, noise, _mwpm_factory, trials=60, rng=11, chunk_trials=20, workers=1
        )
        assert clean.skipped_shards == 0
        assert clean.trials == 60


class TestPoolRecovery:
    def test_sigkilled_worker_breaks_and_respawns_the_pool(self, clean_counts):
        # A pooled "kill" really SIGKILLs the worker process, which takes the
        # ProcessPoolExecutor down with it (BrokenProcessPool): the executor
        # must respawn the pool and re-dispatch every in-flight shard.
        report = FaultReport()
        faulted = run_counts(
            workers=2,
            faults=FaultPolicy(max_retries=3, **FAST),
            fault_report=report,
            fault_injector=FaultInjector.from_text("shard 0 attempts 0-1 kill"),
        )
        assert faulted == clean_counts
        assert report.pool_respawns == 2

    def test_repeated_pool_breaks_degrade_to_sequential(self, clean_counts):
        report = FaultReport()
        with pytest.warns(DegradedExecutionWarning, match="degrading to sequential"):
            faulted = run_counts(
                workers=2,
                faults=FaultPolicy(max_retries=3, max_pool_respawns=0, **FAST),
                fault_report=report,
                fault_injector=FaultInjector.from_text("shard 0 attempts 0-1 kill"),
            )
        assert faulted == clean_counts
        assert report.degraded_to_sequential
        assert report.pool_respawns == 1

    def test_hung_shard_times_out_and_retries(self, clean_counts):
        report = FaultReport()
        faulted = run_counts(
            workers=2,
            faults=FaultPolicy(max_retries=2, shard_timeout=0.5, **FAST),
            fault_report=report,
            fault_injector=FaultInjector.from_text("shard 1 attempt 0 hang 30"),
        )
        assert faulted == clean_counts
        assert report.timeouts >= 1

    def test_in_process_simulated_timeout(self, clean_counts):
        report = FaultReport()
        faulted = run_counts(
            workers=1,
            faults=FaultPolicy(max_retries=2, shard_timeout=0.1, **FAST),
            fault_report=report,
            fault_injector=FaultInjector.from_text("shard 1 attempt 0 hang 30"),
        )
        assert faulted == clean_counts
        assert report.timeouts == 1

    def test_unconstructible_pool_degrades_with_warning(
        self, monkeypatch, clean_counts, code_d3
    ):
        def broken_pool(*args, **kwargs):
            raise OSError("no POSIX semaphores in this sandbox")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", broken_pool
        )
        report = FaultReport()
        with pytest.warns(DegradedExecutionWarning, match="pool unavailable"):
            merged = run_counts(
                workers=2, faults=FaultPolicy(**FAST), fault_report=report
            )
        assert merged == clean_counts
        assert report.engine_degraded
        # The degradation also lands on the memory result's metadata.
        with pytest.warns(DegradedExecutionWarning):
            result = run_memory_experiment_sharded(
                code_d3,
                PhenomenologicalNoise(1e-2),
                _mwpm_factory,
                trials=20,
                rng=5,
                chunk_trials=10,
                workers=2,
                faults=FaultPolicy(**FAST),
            )
        assert result.engine_degraded


class TestAdaptiveFaultTolerance:
    STOP = dict(min_trials=100, max_trials=400)

    def run_adaptive(self, checkpoint=None, **kwargs):
        return run_sharded_adaptive(
            BernoulliKernel(0.2),
            stop=until_wilson(0.08, **self.STOP),
            successes_of=bernoulli_successes,
            seed=77,
            chunk_trials=25,
            workers=1,
            checkpoint=checkpoint,
            **kwargs,
        )

    def test_faulted_adaptive_run_matches_fault_free(self):
        clean = self.run_adaptive()
        report = FaultReport()
        faulted = self.run_adaptive(
            faults=FaultPolicy(max_retries=2, **FAST),
            fault_report=report,
            fault_injector=FaultInjector.from_text(
                "shard 0 attempt 0 raise; shard 2 attempt 0 kill"
            ),
        )
        assert faulted == clean
        assert report.retries == 2

    def test_truncated_checkpoint_falls_back_to_clean_recompute(self, tmp_path):
        clean = self.run_adaptive()
        # Simulate a checkpoint torn by anything other than the atomic-replace
        # protocol: the CRC envelope rejects it and the run starts fresh.
        path = tmp_path / "state.json"
        injected = AdaptiveCheckpoint(
            path, fault_injector=FaultInjector.from_text("checkpoint truncate 0")
        )
        injected.save({"version": 99, "seed": 77, "trials_done": 123})
        assert path.exists()
        assert AdaptiveCheckpoint(path).load() is None
        resumed = self.run_adaptive(checkpoint=AdaptiveCheckpoint(path))
        assert resumed == clean


# ----------------------------------------------------------------------
# Hypothesis: arbitrary (bounded) fault plans never change memory results.
# ----------------------------------------------------------------------
def shard_fault_strategy(max_shards):
    actions = st.sampled_from(["raise", "kill", "hang"])

    def build(shard, first, span, action):
        seconds = 30.0 if action == "hang" else 0.0
        return ShardFault(shard, first, first + span, action, seconds)

    return st.builds(
        build,
        st.integers(min_value=0, max_value=max_shards - 1),
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=1),
        actions,
    )


def fault_plan_strategy(max_shards):
    return st.builds(
        lambda faults: FaultPlan(shard_faults=tuple(faults)),
        st.lists(shard_fault_strategy(max_shards), max_size=3),
    )


def memory_run(distance, code, plan=None):
    trials, chunk = (60, 20) if distance == 5 else (40, 20)
    return run_memory_experiment_sharded(
        code,
        PhenomenologicalNoise(1e-2),
        _mwpm_factory,
        trials=trials,
        rng=13,
        chunk_trials=chunk,
        workers=1,
        # Plans schedule at most 3 consecutive failures per shard (first
        # attempt 0/1, span <= 1), so 4 retries always clear the window;
        # a hung shard simulates its timeout instantly at 0.01 s.
        faults=FaultPolicy(max_retries=4, shard_timeout=0.01, **FAST),
        fault_injector=None if plan is None else FaultInjector(plan),
    )


def result_bytes(result):
    return json.dumps(to_dict(result), sort_keys=True).encode("utf-8")


class TestHypothesisFaultPlans:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(plan=fault_plan_strategy(max_shards=3))
    def test_d5_results_byte_identical_under_any_plan(self, code_d5, plan):
        baseline = memory_run(5, code_d5)
        faulted = memory_run(5, code_d5, plan)
        assert result_bytes(faulted) == result_bytes(baseline)

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(plan=fault_plan_strategy(max_shards=2))
    def test_d7_results_byte_identical_under_any_plan(self, code_d7, plan):
        baseline = memory_run(7, code_d7)
        faulted = memory_run(7, code_d7, plan)
        assert result_bytes(faulted) == result_bytes(baseline)
