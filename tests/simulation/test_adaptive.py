"""Property tests for Wilson-converged adaptive trial allocation.

The contract under test (``until_wilson`` + ``run_sharded_adaptive``):

* a run halts with the Wilson interval no wider than the target — unless the
  ``max_trials`` budget ran out first, in which case exactly the budget was
  consumed;
* a run never uses fewer than ``min_trials`` or more than ``max_trials``;
* reruns and different worker counts are bit-identical (the shard sequence
  consumed is a pure function of the observed counts);
* degenerate 0%/100% proportions terminate at ``min_trials`` (their
  intervals collapse fastest).
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.simulation.monte_carlo import (
    WilsonStoppingRule,
    until_wilson,
    wilson_width,
)
from repro.simulation.shard import run_sharded_adaptive

from shard_kernels import BernoulliKernel, bernoulli_successes


def _run(rate, rule, seed, chunk=100, workers=1):
    return run_sharded_adaptive(
        BernoulliKernel(rate),
        stop=rule,
        successes_of=bernoulli_successes,
        seed=seed,
        chunk_trials=chunk,
        workers=workers,
    )


class TestUntilWilson:
    def test_returns_configured_rule(self):
        rule = until_wilson(0.05, min_trials=100, max_trials=5000)
        assert isinstance(rule, WilsonStoppingRule)
        assert rule.target_width == 0.05
        assert rule.min_trials == 100
        assert rule.max_trials == 5000

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            until_wilson(0.0)
        with pytest.raises(ConfigurationError):
            until_wilson(1.5)
        with pytest.raises(ConfigurationError):
            until_wilson(0.05, min_trials=0)
        with pytest.raises(ConfigurationError):
            until_wilson(0.05, min_trials=100, max_trials=50)

    def test_never_satisfied_below_min_trials(self):
        rule = until_wilson(0.9, min_trials=100, max_trials=1000)
        # A 0/50 proportion has a tiny interval, but the floor still holds.
        assert not rule.satisfied(0, 50)

    def test_always_satisfied_at_budget_cap(self):
        rule = until_wilson(0.001, min_trials=10, max_trials=100)
        # Width ~0.2 at 50/100 is far off target, but the budget is spent.
        assert rule.satisfied(50, 100)

    def test_satisfied_iff_width_within_target_between_bounds(self):
        rule = until_wilson(0.05, min_trials=100, max_trials=100_000)
        assert rule.satisfied(0, 1000)  # width ~0.005
        assert not rule.satisfied(500, 1000)  # width ~0.06

    def test_wave_schedule_doubles_and_clamps(self):
        rule = until_wilson(0.05, min_trials=100, max_trials=1000)
        assert rule.next_wave(100) == 100
        assert rule.next_wave(400) == 400
        assert rule.next_wave(800) == 200  # clamped to the remaining budget
        assert rule.next_wave(1000) == 0


class TestAdaptiveRunner:
    @pytest.mark.parametrize(
        "rate,target,seed",
        [(0.5, 0.12, 1), (0.1, 0.08, 2), (0.3, 0.1, 3), (0.05, 0.05, 4)],
    )
    def test_halts_within_target_or_exactly_at_budget(self, rate, target, seed):
        rule = until_wilson(target, min_trials=100, max_trials=20_000)
        run = _run(rate, rule, seed)
        assert rule.min_trials <= run.trials <= rule.max_trials
        assert run.width == wilson_width(run.successes, run.trials)
        assert run.width <= target or run.trials == rule.max_trials

    def test_budget_cap_is_never_exceeded(self):
        # Width 0.001 at p=0.5 needs ~4M trials; the cap must bind instead.
        rule = until_wilson(0.001, min_trials=100, max_trials=700)
        run = _run(0.5, rule, seed=7)
        assert run.trials == 700
        assert run.width > rule.target_width

    def test_deterministic_across_reruns(self):
        rule = until_wilson(0.1, min_trials=100, max_trials=10_000)
        first = _run(0.25, rule, seed=11)
        second = _run(0.25, rule, seed=11)
        assert first.trials == second.trials
        assert first.successes == second.successes
        assert first.interval == second.interval
        assert first.shards == second.shards

    def test_deterministic_across_worker_counts(self):
        rule = until_wilson(0.1, min_trials=200, max_trials=10_000)
        single = _run(0.25, rule, seed=13, workers=1)
        pooled = _run(0.25, rule, seed=13, workers=4)
        assert single.trials == pooled.trials
        assert single.successes == pooled.successes
        assert single.interval == pooled.interval

    @pytest.mark.parametrize("rate", [0.0, 1.0])
    def test_degenerate_proportions_terminate_at_min_trials(self, rate):
        rule = until_wilson(0.05, min_trials=400, max_trials=50_000)
        run = _run(rate, rule, seed=17)
        assert run.trials == rule.min_trials
        assert run.width <= rule.target_width
        assert run.successes == (0 if rate == 0.0 else run.trials)

    def test_never_stops_below_min_trials_even_when_converged(self):
        # Generous target: one chunk would already satisfy the width, but the
        # first wave must still cover the full min_trials floor.
        rule = until_wilson(0.5, min_trials=600, max_trials=10_000)
        run = _run(0.5, rule, seed=19, chunk=100)
        assert run.trials == 600
        assert run.shards == 6

    def test_chunking_does_not_change_trials_consumed_only_streams(self):
        # The wave schedule depends on counts, not on the chunk size; with
        # the same chunk the run is deterministic, with a different chunk the
        # per-shard streams (and thus possibly the counts) legitimately vary.
        rule = until_wilson(0.1, min_trials=300, max_trials=10_000)
        same_chunk = [_run(0.2, rule, seed=23, chunk=150) for _ in range(2)]
        assert same_chunk[0].trials == same_chunk[1].trials
        assert same_chunk[0].successes == same_chunk[1].successes

    def test_proportion_property(self):
        rule = until_wilson(0.2, min_trials=100, max_trials=1000)
        run = _run(0.4, rule, seed=29)
        assert run.proportion == run.successes / run.trials
