"""Packed-engine equivalence and allocation-discipline tests.

The packed Monte-Carlo path promises *bit-identity* with the unpacked
reference under a fixed seed — not statistical agreement.  These tests pin
that promise across engines (batch, sharded), decoder shapes (two- and
three-tier cascades, flat MWPM through the base ``decode_batch_packed``
fallback), ragged trial counts, chunking choices, and noise-model
subclasses.  The allocation tests pin the satellite dtype-discipline work:
one canonical dtype per pipeline stage and a bounded per-chunk working set.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro import bitplane
from repro.clique.cascade import DecoderCascade
from repro.clique.hierarchical import HierarchicalDecoder
from repro.codes.rotated_surface import get_code
from repro.decoders.base import BatchDecodeResult, Decoder, DecodeResult, PackedBatchDecodeResult
from repro.decoders.mwpm import MWPMDecoder
from repro.noise.models import PhenomenologicalNoise
from repro.simulation.batch import run_memory_experiment_batch
from repro.simulation.memory import run_memory_experiment
from repro.simulation.shard import run_memory_experiment_sharded
from repro.types import StabilizerType


def _hierarchical(code, stype):
    return HierarchicalDecoder(code, stype)


def _mwpm(code, stype):
    return MWPMDecoder(code, stype)


class _CascadeFactory:
    """Picklable cascade factory (sharded-engine tests fork workers)."""

    def __init__(self, tiers):
        self.tiers = tuple(tiers)

    def __call__(self, code, stype):
        return DecoderCascade(code, stype, tiers=self.tiers)


def _assert_results_identical(left, right):
    assert left.logical_failures == right.logical_failures
    assert left.onchip_rounds == right.onchip_rounds
    assert left.total_rounds == right.total_rounds
    assert left.tier_names == right.tier_names
    assert left.tier_trials == right.tier_trials
    assert left.tier_rounds == right.tier_rounds
    assert left.decoder_name == right.decoder_name
    assert left.trials == right.trials


class TestPackedEquivalence:
    @pytest.mark.parametrize("distance,trials", [(5, 130), (7, 150)])
    @pytest.mark.parametrize("error_rate", [5e-3, 2e-2])
    @pytest.mark.parametrize(
        "factory",
        [_hierarchical, _CascadeFactory(("clique", "union_find", "mwpm")), _mwpm],
        ids=["two-tier", "three-tier", "flat-mwpm"],
    )
    def test_packed_matches_unpacked_and_loop(
        self, distance, trials, error_rate, factory
    ):
        code = get_code(distance)
        noise = PhenomenologicalNoise(error_rate)
        packed = run_memory_experiment_batch(
            code, noise, factory, trials=trials, rng=42, packed=True
        )
        unpacked = run_memory_experiment_batch(
            code, noise, factory, trials=trials, rng=42, packed=False
        )
        _assert_results_identical(packed, unpacked)
        loop = run_memory_experiment(
            code, noise, factory, trials=trials, rng=42, engine="loop"
        )
        _assert_results_identical(packed, loop)

    @pytest.mark.parametrize("trials", [1, 63, 64, 70, 130])
    def test_ragged_trial_counts_stay_bit_identical(self, code_d5, trials):
        noise = PhenomenologicalNoise(2e-2)
        packed = run_memory_experiment_batch(
            code_d5, noise, _hierarchical, trials=trials, rng=7, packed=True
        )
        unpacked = run_memory_experiment_batch(
            code_d5, noise, _hierarchical, trials=trials, rng=7, packed=False
        )
        _assert_results_identical(packed, unpacked)

    def test_packed_chunking_preserves_the_rng_stream(self, code_d5):
        noise = PhenomenologicalNoise(1e-2)
        whole = run_memory_experiment_batch(
            code_d5, noise, _hierarchical, trials=100, rng=5, packed=True
        )
        chunked = run_memory_experiment_batch(
            code_d5, noise, _hierarchical, trials=100, rng=5, packed=True,
            chunk_trials=7,
        )
        _assert_results_identical(whole, chunked)

    @pytest.mark.parametrize(
        "factory",
        [_CascadeFactory(("clique", "mwpm")),
         _CascadeFactory(("clique", "union_find", "mwpm"))],
        ids=["two-tier", "three-tier"],
    )
    def test_sharded_engine_is_bit_identical_packed_vs_unpacked(self, factory):
        code = get_code(5)
        noise = PhenomenologicalNoise(1e-2)
        packed = run_memory_experiment_sharded(
            code, noise, factory, trials=130, rng=13, chunk_trials=50,
            workers=1, packed=True,
        )
        unpacked = run_memory_experiment_sharded(
            code, noise, factory, trials=130, rng=13, chunk_trials=50,
            workers=1, packed=False,
        )
        _assert_results_identical(packed, unpacked)

    def test_memory_experiment_front_door_forwards_packed(self, code_d5):
        noise = PhenomenologicalNoise(2e-2)
        default = run_memory_experiment(code_d5, noise, _hierarchical, trials=90, rng=3)
        escape = run_memory_experiment(
            code_d5, noise, _hierarchical, trials=90, rng=3, packed=False
        )
        _assert_results_identical(default, escape)

    def test_noise_subclass_override_falls_back_bit_identically(self, code_d5):
        # Custom physics (an overridden per-vector sampler) must flow through
        # the sample_history fallback + pack, keeping the packed engine on
        # the exact RNG stream the unpacked engine consumes.
        class BurstNoise(PhenomenologicalNoise):
            def sample_data_vector(self, code, rng):
                vector = super().sample_data_vector(code, rng)
                if vector.any():
                    vector[: code.distance] = 1
                return vector

        noise = BurstNoise(2e-2)
        packed = run_memory_experiment_batch(
            code_d5, noise, _hierarchical, trials=120, rng=31, packed=True
        )
        unpacked = run_memory_experiment_batch(
            code_d5, noise, _hierarchical, trials=120, rng=31, packed=False
        )
        _assert_results_identical(packed, unpacked)

    def test_packed_sampler_matches_packed_reference(self, code_d5):
        noise = PhenomenologicalNoise(0.05, 0.02)
        data_planes, flip_planes = noise.sample_history_packed(
            code_d5, StabilizerType.X, 130, 4, np.random.default_rng(77)
        )
        data_ref, flips_ref = noise.sample_history(
            code_d5, StabilizerType.X, 130, 4, np.random.default_rng(77)
        )
        assert np.array_equal(data_planes, bitplane.pack_trials(data_ref))
        assert np.array_equal(flip_planes, bitplane.pack_trials(flips_ref))


class TestDecodeBatchPacked:
    @pytest.mark.parametrize(
        "tiers", [("clique", "mwpm"), ("clique", "union_find", "mwpm")],
        ids=["two-tier", "three-tier"],
    )
    @pytest.mark.parametrize("density", [0.03, 0.15])
    def test_cascade_packed_decode_matches_unpacked(self, code_d5, tiers, density):
        decoder = DecoderCascade(code_d5, StabilizerType.X, tiers=tiers)
        width = code_d5.num_ancillas_of_type(StabilizerType.X)
        rng = np.random.default_rng(11)
        trials = 70  # ragged last word
        batch = (rng.random((trials, 6, width)) < density).astype(np.uint8)

        reference = decoder.decode_batch(batch)
        packed = decoder.decode_batch_packed(bitplane.pack_trials(batch), trials)
        assert isinstance(packed, PackedBatchDecodeResult)
        assert packed.num_trials == trials
        assert np.array_equal(
            bitplane.unpack_trials(packed.corrections, trials),
            reference.corrections,
        )
        assert np.array_equal(packed.onchip_rounds, reference.onchip_rounds)
        assert np.array_equal(packed.total_rounds, reference.total_rounds)
        assert np.array_equal(packed.tier_trials, reference.tier_trials)
        assert np.array_equal(packed.tier_rounds, reference.tier_rounds)

    def test_base_fallback_matches_decode_batch(self, code_d3):
        decoder = MWPMDecoder(code_d3, StabilizerType.X)
        width = code_d3.num_ancillas_of_type(StabilizerType.X)
        rng = np.random.default_rng(3)
        batch = (rng.random((25, 4, width)) < 0.2).astype(np.uint8)
        reference = decoder.decode_batch(batch)
        packed = decoder.decode_batch_packed(bitplane.pack_trials(batch), 25)
        assert np.array_equal(
            bitplane.unpack_trials(packed.corrections, 25), reference.corrections
        )

    def test_packed_corrections_keep_padding_bits_zero(self, code_d5):
        decoder = DecoderCascade(code_d5, StabilizerType.X, tiers=("clique", "mwpm"))
        width = code_d5.num_ancillas_of_type(StabilizerType.X)
        rng = np.random.default_rng(9)
        trials = 70
        batch = (rng.random((trials, 5, width)) < 0.15).astype(np.uint8)
        packed = decoder.decode_batch_packed(bitplane.pack_trials(batch), trials)
        mask = bitplane.trial_mask_words(trials)
        assert np.all(packed.corrections & ~mask == 0)

    def test_packed_decode_validates_input(self, code_d3):
        from repro.exceptions import SyndromeShapeError

        decoder = MWPMDecoder(code_d3, StabilizerType.X)
        with pytest.raises(ValueError):
            decoder.decode_batch_packed(np.zeros((2, 4, 1), dtype=np.uint8), 10)
        with pytest.raises(SyndromeShapeError):
            decoder.decode_batch_packed(np.zeros((2, 99, 1), dtype=np.uint64), 10)
        with pytest.raises(ValueError):
            decoder.decode_batch_packed(
                np.zeros(
                    (2, decoder.code.num_ancillas_of_type(StabilizerType.X), 3),
                    dtype=np.uint64,
                ),
                10,
            )


class _ProbeDecoder(Decoder):
    """Records exactly what dtype/layout each engine hands the decoder."""

    def __init__(self, code, stype):
        super().__init__(code, stype)
        self.seen = []

    def decode(self, detections):  # pragma: no cover - not reached
        return DecodeResult()

    def decode_batch(self, histories):
        self.seen.append(("unpacked", histories.dtype, histories.ndim))
        trials = histories.shape[0]
        return BatchDecodeResult(
            corrections=np.zeros((trials, self._code.num_data_qubits), dtype=np.uint8),
            onchip_rounds=np.zeros(trials, dtype=np.int64),
            total_rounds=np.zeros(trials, dtype=np.int64),
        )

    def decode_batch_packed(self, detections, trials):
        planes = self._as_packed_detection_batch(detections, trials)
        self.seen.append(("packed", planes.dtype, planes.ndim))
        return PackedBatchDecodeResult(
            corrections=np.zeros(
                (self._code.num_data_qubits, bitplane.num_words(trials)),
                dtype=np.uint64,
            ),
            trials=trials,
            onchip_rounds=np.zeros(trials, dtype=np.int64),
            total_rounds=np.zeros(trials, dtype=np.int64),
        )


class TestAllocationDiscipline:
    """Satellite: one canonical dtype per stage, bounded working set."""

    def test_engines_hand_the_decoder_canonical_dtypes(self, code_d5):
        noise = PhenomenologicalNoise(1e-2)
        probes = []

        def factory(code, stype):
            probe = _ProbeDecoder(code, stype)
            probes.append(probe)
            return probe

        run_memory_experiment_batch(
            code_d5, noise, factory, trials=70, rng=1, packed=False
        )
        run_memory_experiment_batch(
            code_d5, noise, factory, trials=70, rng=1, packed=True
        )
        assert probes[0].seen == [("unpacked", np.dtype(np.uint8), 3)]
        assert probes[1].seen == [("packed", np.dtype(np.uint64), 3)]

    def test_per_chunk_working_set_is_bounded(self):
        # entries = trials * rounds * (data + ancilla) bits flowing through
        # one chunk.  The dtype-disciplined unpacked pipeline peaks under
        # 12 bytes/entry (the pre-cleanup engine churned ~20 via redundant
        # int64/astype copies); the packed pipeline holds word-packed planes
        # plus the 64-trial float64 sampling tile, well under a quarter of
        # the unpacked peak.
        code = get_code(7)
        noise = PhenomenologicalNoise(1e-3)
        trials, rounds = 4096, 7
        entries = trials * rounds * (
            code.num_data_qubits + code.num_ancillas_of_type(StabilizerType.X)
        )

        def _peak(packed):
            run_memory_experiment_batch(  # warm-up: imports, lazy tables
                code, noise, _hierarchical, trials=64, rng=0, packed=packed
            )
            tracemalloc.start()
            run_memory_experiment_batch(
                code, noise, _hierarchical, trials=trials, rounds=rounds,
                rng=0, chunk_trials=trials, packed=packed,
            )
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return peak

        unpacked_peak = _peak(packed=False)
        packed_peak = _peak(packed=True)
        assert unpacked_peak <= 12 * entries
        assert packed_peak <= unpacked_peak / 4
