"""Tests for the batched per-cycle signature sampler (Fig. 4 workload)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.noise.models import CodeCapacityNoise, PhenomenologicalNoise
from repro.simulation.cycles import (
    classify_cycles,
    sample_cycle_signatures,
    simulate_signature_distribution,
)
from repro.types import StabilizerType


class TestSampling:
    def test_shapes(self, code_d5, rng):
        noise = PhenomenologicalNoise(0.01)
        signatures, flips = sample_cycle_signatures(
            code_d5, StabilizerType.X, noise, 100, rng
        )
        width = code_d5.num_ancillas_of_type(StabilizerType.X)
        assert signatures.shape == (100, width)
        assert flips.shape == (100, width)

    def test_zero_noise_gives_all_zero_signatures(self, code_d5, rng):
        noise = PhenomenologicalNoise(0.0)
        signatures, _ = sample_cycle_signatures(code_d5, StabilizerType.X, noise, 50, rng)
        assert not signatures.any()

    def test_rejects_nonpositive_cycles(self, code_d5, rng):
        with pytest.raises(ConfigurationError):
            sample_cycle_signatures(code_d5, StabilizerType.X, PhenomenologicalNoise(0.01), 0, rng)

    def test_touch_counts_bound_signatures(self, code_d5, rng):
        noise = PhenomenologicalNoise(0.05)
        signatures, _, touches = sample_cycle_signatures(
            code_d5, StabilizerType.X, noise, 200, rng, return_touch_counts=True
        )
        # A signature bit can only be set where at least one event touched.
        assert not (signatures.astype(bool) & (touches == 0)).any()
        # And signature parity must match touch-count parity.
        assert np.array_equal(signatures, (touches % 2).astype(np.uint8))

    def test_reproducible_with_seed(self, code_d3):
        noise = PhenomenologicalNoise(0.02)
        first, _ = sample_cycle_signatures(code_d3, StabilizerType.X, noise, 50, 123)
        second, _ = sample_cycle_signatures(code_d3, StabilizerType.X, noise, 50, 123)
        assert np.array_equal(first, second)


class TestClassification:
    def test_partition_covers_every_cycle(self, code_d5, rng):
        noise = PhenomenologicalNoise(0.02)
        signatures, _, touches = sample_cycle_signatures(
            code_d5, StabilizerType.X, noise, 500, rng, return_touch_counts=True
        )
        zeros, locals_, complex_ = classify_cycles(signatures, touches)
        combined = zeros.astype(int) + locals_.astype(int) + complex_.astype(int)
        assert (combined == 1).all()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            classify_cycles(np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 4)))

    def test_quiet_cycles_are_all_zeros(self, code_d3):
        signatures = np.zeros((4, code_d3.num_ancillas_of_type(StabilizerType.X)), dtype=np.uint8)
        touches = np.zeros_like(signatures, dtype=np.int64)
        zeros, locals_, complex_ = classify_cycles(signatures, touches)
        assert zeros.all()
        assert not locals_.any()
        assert not complex_.any()


class TestDistribution:
    def test_counts_sum_to_cycles(self, code_d5):
        noise = PhenomenologicalNoise(0.01)
        dist = simulate_signature_distribution(code_d5, noise, 5000, rng=7)
        assert dist.all_zeros + dist.local_ones + dist.complex_ == 5000
        assert dist.trivial_fraction + dist.complex_fraction == pytest.approx(1.0)

    def test_low_error_rate_is_mostly_all_zeros(self, code_d5):
        noise = PhenomenologicalNoise(1e-4)
        dist = simulate_signature_distribution(code_d5, noise, 5000, rng=8)
        assert dist.all_zeros_fraction > 0.9

    def test_trivial_fraction_exceeds_90_percent_at_practical_points(self, code_d7):
        # The motivating observation of Section 3.
        noise = PhenomenologicalNoise(1e-3)
        dist = simulate_signature_distribution(code_d7, noise, 10_000, rng=9)
        assert dist.trivial_fraction > 0.9

    def test_complex_fraction_grows_with_error_rate(self, code_d7):
        low = simulate_signature_distribution(
            code_d7, PhenomenologicalNoise(1e-3), 10_000, rng=10
        )
        high = simulate_signature_distribution(
            code_d7, PhenomenologicalNoise(1e-2), 10_000, rng=11
        )
        assert high.complex_fraction > low.complex_fraction

    def test_batching_does_not_change_totals(self, code_d3):
        noise = CodeCapacityNoise(0.05)
        small_batches = simulate_signature_distribution(
            code_d3, noise, 3000, rng=12, batch_size=100
        )
        assert small_batches.cycles == 3000

    def test_as_row_is_flat_and_consistent(self, code_d3):
        dist = simulate_signature_distribution(
            code_d3, PhenomenologicalNoise(0.01), 1000, rng=13
        )
        row = dist.as_row()
        assert row["code_distance"] == 3.0
        assert row["all_zeros_fraction"] == pytest.approx(dist.all_zeros_fraction)
