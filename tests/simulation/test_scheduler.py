"""Sweep scheduler: byte-equality with the per-point runners, by construction.

The core claim under test: :class:`~repro.simulation.SweepScheduler` only
changes *when* shards execute — never which shards exist, which RNG streams
they draw, or the order partials merge — so every scheduled point equals its
per-point :func:`~repro.simulation.run_sharded` /
:func:`~repro.simulation.run_sharded_adaptive` run exactly, at any worker
count, checkpoints included.  Plus the satellite contracts: one pool per
sweep (not per point), ``chunk="auto"`` resolution, the executor's dynamic
task feed, and the point-qualified fault-plan grammar.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.faults import (
    FaultInjector,
    FaultPolicy,
    ShardExecutor,
    parse_fault_plan,
    pool_construction_count,
)
from repro.simulation import (
    SweepPoint,
    SweepScheduler,
    resolve_auto_chunk,
    run_sharded,
    run_sharded_adaptive,
    until_wilson,
)
from repro.simulation.scheduler import validate_schedule
from shard_kernels import BernoulliKernel, bernoulli_successes


class RecordingCheckpoint:
    """In-memory checkpoint capturing every saved state, in order."""

    def __init__(self, state=None):
        self.saves = []
        self.state = state

    def save(self, state):
        self.saves.append(state)
        self.state = state

    def load(self):
        return self.state

    def clear(self):
        self.state = None


def fixed_point(point_id, rate, trials, seed, chunk):
    return SweepPoint(
        point_id=point_id,
        kernel=BernoulliKernel(rate),
        trials=trials,
        seed=seed,
        chunk_trials=chunk,
    )


def adaptive_point(point_id, rate, stop, seed, chunk, checkpoint=None):
    return SweepPoint(
        point_id=point_id,
        kernel=BernoulliKernel(rate),
        trials=stop.max_trials,
        seed=seed,
        chunk_trials=chunk,
        stop=stop,
        successes_of=bernoulli_successes,
        checkpoint=checkpoint,
    )


class TestSchedulerEquivalence:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_fixed_point_matches_run_sharded(self, workers):
        expected = run_sharded(
            BernoulliKernel(0.3), trials=370, seed=11, chunk_trials=40, workers=1
        )
        outcome = SweepScheduler(workers=workers).run(
            [fixed_point("p", 0.3, 370, 11, 40)]
        )["p"]
        assert outcome.value == expected
        assert outcome.trials == 370
        assert outcome.shards == 10  # 9 full + 1 remainder shard
        assert outcome.skipped_shards == 0

    @pytest.mark.parametrize("workers", [1, 4])
    def test_adaptive_point_matches_run_sharded_adaptive(self, workers):
        stop = until_wilson(0.08, min_trials=60, max_trials=2000)
        expected = run_sharded_adaptive(
            BernoulliKernel(0.2),
            stop=stop,
            successes_of=bernoulli_successes,
            seed=5,
            chunk_trials=25,
            workers=1,
        )
        outcome = SweepScheduler(workers=workers).run(
            [adaptive_point("p", 0.2, stop, 5, 25)]
        )["p"]
        assert outcome.value == expected.value
        assert outcome.trials == expected.trials
        assert outcome.successes == expected.successes
        assert outcome.interval == expected.interval
        assert outcome.shards == expected.shards

    @pytest.mark.parametrize("workers", [1, 4])
    def test_interleaved_mixed_sweep_matches_sequential_points(self, workers):
        stop = until_wilson(0.1, min_trials=50, max_trials=1000)
        points = [
            fixed_point("a", 0.4, 300, 1, 30),
            adaptive_point("b", 0.15, stop, 2, 20),
            fixed_point("c", 0.05, 155, 3, 50),
        ]
        results = SweepScheduler(workers=workers).run(points)
        assert results["a"].value == run_sharded(
            BernoulliKernel(0.4), trials=300, seed=1, chunk_trials=30, workers=1
        )
        expected_b = run_sharded_adaptive(
            BernoulliKernel(0.15),
            stop=stop,
            successes_of=bernoulli_successes,
            seed=2,
            chunk_trials=20,
            workers=1,
        )
        assert results["b"].value == expected_b.value
        assert results["b"].trials == expected_b.trials
        assert results["c"].value == run_sharded(
            BernoulliKernel(0.05), trials=155, seed=3, chunk_trials=50, workers=1
        )

    def test_adaptive_checkpoint_states_match_per_point_runner(self):
        # The scheduler must save byte-for-byte the states the per-point
        # runner saves: same layout, same wave boundaries, same merged counts.
        stop = until_wilson(0.08, min_trials=60, max_trials=2000)
        reference = RecordingCheckpoint()
        run_sharded_adaptive(
            BernoulliKernel(0.2),
            stop=stop,
            successes_of=bernoulli_successes,
            seed=5,
            chunk_trials=25,
            workers=1,
            checkpoint=reference,
        )
        scheduled = RecordingCheckpoint()
        SweepScheduler(workers=2).run(
            [adaptive_point("p", 0.2, stop, 5, 25, checkpoint=scheduled)]
        )
        assert scheduled.saves == reference.saves

    def test_adaptive_point_resumes_from_checkpoint(self):
        stop = until_wilson(0.08, min_trials=60, max_trials=2000)
        full = RecordingCheckpoint()
        expected = SweepScheduler(workers=1).run(
            [adaptive_point("p", 0.2, stop, 5, 25, checkpoint=full)]
        )["p"]
        # Resume from the first saved wave: the tail must replay identically.
        resumed = SweepScheduler(workers=2).run(
            [
                adaptive_point(
                    "p", 0.2, stop, 5, 25, checkpoint=RecordingCheckpoint(full.saves[0])
                )
            ]
        )["p"]
        assert resumed.value == expected.value
        assert resumed.trials == expected.trials
        assert resumed.interval == expected.interval


class TestSchedulerPoolReuse:
    def test_one_pool_for_the_whole_sweep(self):
        points = [fixed_point(str(i), 0.2, 120, i, 30) for i in range(3)]
        before = pool_construction_count()
        SweepScheduler(workers=2).run(points)
        assert pool_construction_count() - before == 1

    def test_per_point_runners_build_one_pool_each(self):
        before = pool_construction_count()
        for i in range(3):
            run_sharded(BernoulliKernel(0.2), trials=120, seed=i, chunk_trials=30, workers=2)
        assert pool_construction_count() - before == 3

    def test_sequential_path_builds_no_pool(self):
        before = pool_construction_count()
        SweepScheduler(workers=1).run([fixed_point("p", 0.2, 120, 7, 30)])
        assert pool_construction_count() - before == 0


class TestSchedulerValidation:
    def test_duplicate_point_ids_rejected(self):
        points = [fixed_point("p", 0.2, 100, 1, 50), fixed_point("p", 0.3, 100, 2, 50)]
        with pytest.raises(ConfigurationError, match="unique"):
            SweepScheduler(workers=1).run(points)

    def test_adaptive_point_requires_successes_of(self):
        point = SweepPoint(
            point_id="p",
            kernel=BernoulliKernel(0.2),
            trials=100,
            seed=1,
            chunk_trials=50,
            stop=until_wilson(0.1, min_trials=50, max_trials=100),
        )
        with pytest.raises(ConfigurationError, match="successes_of"):
            SweepScheduler(workers=1).run([point])

    def test_empty_sweep_is_a_no_op(self):
        assert SweepScheduler(workers=4).run([]) == {}

    def test_validate_schedule(self):
        assert validate_schedule("sweep") == "sweep"
        assert validate_schedule("point") == "point"
        with pytest.raises(ConfigurationError, match="schedule"):
            validate_schedule("turbo")


class TestAutoChunk:
    def test_short_high_distance_point_still_fans_out(self):
        # d=11 paper budget: 1000 trials at 4 workers -> 8 shards of 125.
        assert resolve_auto_chunk(1_000, 4, 11) == 125

    def test_large_low_distance_point_keeps_big_shards(self):
        # d=3 paper budget: the per-distance cap (4*default/3) exceeds the
        # default, so the default 500-trial shard size wins.
        assert resolve_auto_chunk(20_000, 4, 3) == 500

    @pytest.mark.parametrize("trials", [400, 1_000, 5_000])
    @pytest.mark.parametrize("workers", [2, 4, 8])
    @pytest.mark.parametrize("distance", [3, 7, 11, 21])
    def test_at_least_two_shards_per_worker(self, trials, workers, distance):
        from repro.simulation.shard import plan_shards

        chunk = resolve_auto_chunk(trials, workers, distance)
        assert len(plan_shards(trials, chunk)) >= 2 * workers

    def test_floor_bounds_the_distance_scaling(self):
        # Even at extreme distances the chunk never collapses below the floor
        # (per-shard decoder construction must stay amortised).
        assert resolve_auto_chunk(100_000, 2, 101) >= 50

    def test_tiny_budget_degenerates_to_one_trial_chunks(self):
        assert resolve_auto_chunk(1, 8, 3) == 1

    def test_rejects_nonpositive_trials(self):
        with pytest.raises(ConfigurationError):
            resolve_auto_chunk(0, 4, 3)


class TestRunDynamic:
    def test_on_complete_feeds_follow_up_tasks(self):
        kernel = BernoulliKernel(0.3)
        followed = []

        def on_complete(index, outcome):
            followed.append((index, outcome))
            if index == 0:
                # One follow-up wave appended mid-run: shard index 2 of the
                # same stream family.
                return [(kernel, 40, 9, 2)]
            return None

        with ShardExecutor(workers=2, policy=FaultPolicy(max_retries=0)) as executor:
            results = executor.run_dynamic(
                [(kernel, 40, 9, 0), (kernel, 40, 9, 1)], on_complete
            )
        assert len(results) == 3
        assert sorted(index for index, _ in followed) == [0, 1, 2]
        # Every task's result is the same pure function of (seed, shard index)
        # the static runner computes.
        expected = [
            run_sharded(kernel, trials=40, seed=9, chunk_trials=40, workers=1)
        ]
        assert results[0] == expected[0]

    def test_sequential_and_pooled_feeds_agree(self):
        kernel = BernoulliKernel(0.2)

        def feeder(index, outcome):
            return [(kernel, 30, 4, 3)] if index == 1 else None

        tasks = [(kernel, 30, 4, 0), (kernel, 30, 4, 1), (kernel, 30, 4, 2)]
        with ShardExecutor(workers=1, policy=FaultPolicy(max_retries=0)) as seq:
            sequential = seq.run_dynamic(list(tasks), feeder)
        with ShardExecutor(workers=3, policy=FaultPolicy(max_retries=0)) as pooled:
            parallel = pooled.run_dynamic(list(tasks), feeder)
        assert sequential == parallel


class TestPointQualifiedFaults:
    def test_grammar_parses_point_prefix(self):
        plan = parse_fault_plan("point 1 shard 0 raise; shard 2 kill")
        qualified, wildcard = plan.shard_faults
        assert qualified.point_index == 1
        assert qualified.shard_index == 0
        assert wildcard.point_index is None

    def test_qualified_fault_matches_only_its_point(self):
        plan = parse_fault_plan("point 1 shard 0 attempt 0 raise")
        fault = plan.shard_faults[0]
        assert fault.matches(0, 0, point_index=1)
        assert not fault.matches(0, 0, point_index=0)
        assert not fault.matches(0, 0, point_index=None)

    def test_unqualified_fault_matches_every_point(self):
        plan = parse_fault_plan("shard 3 attempt 0 kill")
        fault = plan.shard_faults[0]
        assert fault.matches(3, 0, point_index=0)
        assert fault.matches(3, 0, point_index=7)
        assert fault.matches(3, 0)

    def test_scheduled_sweep_recovers_point_targeted_fault(self):
        # A raise pinned to point 1's shard 0: the retry replays the stream
        # bit-identically, so the whole sweep equals the fault-free one.
        points = [fixed_point(str(i), 0.25, 90, 40 + i, 30) for i in range(3)]
        clean = SweepScheduler(workers=2).run(
            [fixed_point(str(i), 0.25, 90, 40 + i, 30) for i in range(3)]
        )
        injector = FaultInjector(parse_fault_plan("point 1 shard 0 attempt 0 raise"))
        faulted = SweepScheduler(
            workers=2,
            faults=FaultPolicy(max_retries=2),
            fault_injector=injector,
        ).run(points)
        assert {k: v.value for k, v in faulted.items()} == {
            k: v.value for k, v in clean.items()
        }
