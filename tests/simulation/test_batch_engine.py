"""Engine-equivalence tests: the batched Monte-Carlo engine vs the loop oracle.

The batch engine's whole value proposition is "bit-identical results, an
order of magnitude faster", so these tests pin the bit-identical half: same
seed => identical logical-failure counts, identical on-chip round tallies,
identical per-trial corrections — across distances, error rates, decoders,
and chunking choices.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clique.hierarchical import HierarchicalDecoder
from repro.codes.rotated_surface import get_code
from repro.decoders.mwpm import MWPMDecoder
from repro.exceptions import ConfigurationError
from repro.noise.models import PhenomenologicalNoise
from repro.simulation.batch import logical_support_bitmap, run_memory_experiment_batch
from repro.simulation.memory import run_memory_experiment
from repro.types import StabilizerType


def _hierarchical(code, stype):
    return HierarchicalDecoder(code, stype)


def _mwpm(code, stype):
    return MWPMDecoder(code, stype)


class TestEngineEquivalence:
    @pytest.mark.parametrize("distance", [3, 5])
    @pytest.mark.parametrize("error_rate", [5e-3, 2e-2])
    @pytest.mark.parametrize(
        "factory", [_hierarchical, _mwpm], ids=["hierarchical", "mwpm"]
    )
    def test_batch_matches_loop_bit_for_bit(self, distance, error_rate, factory):
        code = get_code(distance)
        noise = PhenomenologicalNoise(error_rate)
        loop = run_memory_experiment(
            code, noise, factory, trials=150, rng=42, engine="loop"
        )
        batch = run_memory_experiment(
            code, noise, factory, trials=150, rng=42, engine="batch"
        )
        assert batch.logical_failures == loop.logical_failures
        assert batch.onchip_rounds == loop.onchip_rounds
        assert batch.total_rounds == loop.total_rounds
        assert batch.decoder_name == loop.decoder_name
        assert batch.rounds == loop.rounds

    def test_chunking_preserves_the_rng_stream(self, code_d3):
        noise = PhenomenologicalNoise(1e-2)
        whole = run_memory_experiment_batch(
            code_d3, noise, _hierarchical, trials=100, rng=5
        )
        chunked = run_memory_experiment_batch(
            code_d3, noise, _hierarchical, trials=100, rng=5, chunk_trials=7
        )
        assert chunked.logical_failures == whole.logical_failures
        assert chunked.onchip_rounds == whole.onchip_rounds

    def test_engine_is_validated(self, code_d3):
        with pytest.raises(ConfigurationError):
            run_memory_experiment(
                code_d3,
                PhenomenologicalNoise(1e-2),
                _mwpm,
                trials=10,
                engine="warp",
            )

    def test_default_engine_is_batch_and_reproducible(self, code_d3):
        noise = PhenomenologicalNoise(2e-2)
        default = run_memory_experiment(code_d3, noise, _hierarchical, trials=80, rng=9)
        loop = run_memory_experiment(
            code_d3, noise, _hierarchical, trials=80, rng=9, engine="loop"
        )
        assert default.logical_failures == loop.logical_failures


class TestDecodeBatch:
    def test_hierarchical_decode_batch_matches_decode_history(self, code_d5):
        decoder = HierarchicalDecoder(code_d5, StabilizerType.X)
        width = code_d5.num_ancillas_of_type(StabilizerType.X)
        data_index = code_d5.data_index
        rng = np.random.default_rng(11)
        for density in (0.03, 0.15):
            batch = (rng.random((60, 6, width)) < density).astype(np.uint8)
            result = decoder.decode_batch(batch)
            for trial in range(batch.shape[0]):
                reference = decoder.decode_history(batch[trial])
                bitmap = np.zeros(code_d5.num_data_qubits, dtype=np.uint8)
                for qubit in reference.correction:
                    bitmap[data_index[qubit]] ^= 1
                assert np.array_equal(result.corrections[trial], bitmap)
                assert result.onchip_rounds[trial] == (
                    reference.num_rounds - reference.num_offchip_rounds
                )
                assert result.total_rounds[trial] == reference.num_rounds

    def test_default_decode_batch_matches_per_trial_decode(self, code_d3):
        decoder = MWPMDecoder(code_d3, StabilizerType.X)
        width = code_d3.num_ancillas_of_type(StabilizerType.X)
        data_index = code_d3.data_index
        rng = np.random.default_rng(3)
        batch = (rng.random((25, 4, width)) < 0.2).astype(np.uint8)
        result = decoder.decode_batch(batch)
        assert result.num_trials == 25
        for trial in range(25):
            reference = decoder.decode(batch[trial])
            bitmap = np.zeros(code_d3.num_data_qubits, dtype=np.uint8)
            for qubit in reference.correction:
                bitmap[data_index[qubit]] ^= 1
            assert np.array_equal(result.corrections[trial], bitmap)
        # MWPM does not track decode locations.
        assert not result.onchip_rounds.any()
        assert not result.total_rounds.any()

    def test_decode_batch_accepts_single_history(self, code_d3):
        decoder = MWPMDecoder(code_d3, StabilizerType.X)
        width = code_d3.num_ancillas_of_type(StabilizerType.X)
        result = decoder.decode_batch(np.zeros((2, width), dtype=np.uint8))
        assert result.num_trials == 1
        assert not result.corrections.any()

    def test_decode_batch_rejects_wrong_width(self, code_d3):
        from repro.exceptions import SyndromeShapeError

        decoder = MWPMDecoder(code_d3, StabilizerType.X)
        with pytest.raises(SyndromeShapeError):
            decoder.decode_batch(np.zeros((2, 3, 99), dtype=np.uint8))


class TestCorrectionBitmap:
    def test_matches_decide_on_trivial_signatures(self, code_d5):
        decoder = HierarchicalDecoder(code_d5, StabilizerType.X).clique
        width = code_d5.num_ancillas_of_type(StabilizerType.X)
        data_index = code_d5.data_index
        rng = np.random.default_rng(21)
        signatures = (rng.random((300, width)) < 0.12).astype(np.uint8)
        trivial = decoder.is_trivial_batch(signatures)
        assert trivial.any(), "sanity: some sampled signatures must be trivial"
        bitmaps = decoder.correction_bitmap(signatures[trivial])
        for row, signature in zip(bitmaps, signatures[trivial]):
            decision = decoder.decide(signature)
            assert decision.is_trivial
            expected = np.zeros(code_d5.num_data_qubits, dtype=np.uint8)
            for qubit in decision.correction:
                expected[data_index[qubit]] = 1
            assert np.array_equal(row, expected)


class TestBatchedNoiseSampling:
    def test_sample_history_is_stream_compatible_with_loop(self, code_d3):
        noise = PhenomenologicalNoise(0.05, 0.02)
        batch_rng = np.random.default_rng(77)
        data, flips = noise.sample_history(code_d3, StabilizerType.X, 4, 3, batch_rng)
        assert data.shape == (4, 3, code_d3.num_data_qubits)
        assert flips.shape == (4, 3, code_d3.num_ancillas_of_type(StabilizerType.X))
        loop_rng = np.random.default_rng(77)
        for trial in range(4):
            for round_index in range(3):
                expected_data = noise.sample_data_vector(code_d3, loop_rng)
                expected_flips = noise.sample_measurement_vector(
                    code_d3, StabilizerType.X, loop_rng
                )
                assert np.array_equal(data[trial, round_index], expected_data)
                assert np.array_equal(flips[trial, round_index], expected_flips)

    def test_sample_history_honours_overridden_vector_samplers(self, code_d3):
        # A subclass customising per-vector sampling must keep the engines
        # bit-identical: sample_history falls back to round-by-round calls.
        class BurstNoise(PhenomenologicalNoise):
            def sample_data_vector(self, code, rng):
                vector = super().sample_data_vector(code, rng)
                if vector.any():
                    vector[: code.distance] = 1  # correlated burst
                return vector

        noise = BurstNoise(2e-2)
        loop = run_memory_experiment(
            code_d3, noise, _hierarchical, trials=120, rng=31, engine="loop"
        )
        batch = run_memory_experiment(
            code_d3, noise, _hierarchical, trials=120, rng=31, engine="batch"
        )
        assert batch.logical_failures == loop.logical_failures
        assert batch.onchip_rounds == loop.onchip_rounds

    def test_matrix_samplers_match_vector_samplers(self, code_d3):
        noise = PhenomenologicalNoise(0.1)
        matrix = noise.sample_data_matrix(code_d3, 5, np.random.default_rng(8))
        loop_rng = np.random.default_rng(8)
        for row in matrix:
            assert np.array_equal(row, noise.sample_data_vector(code_d3, loop_rng))
        matrix = noise.sample_measurement_matrix(
            code_d3, StabilizerType.X, 5, np.random.default_rng(9)
        )
        loop_rng = np.random.default_rng(9)
        for row in matrix:
            assert np.array_equal(
                row, noise.sample_measurement_vector(code_d3, StabilizerType.X, loop_rng)
            )


class TestLogicalSupportBitmap:
    def test_bitmap_agrees_with_is_logical_error(self, code_d3):
        bitmap = logical_support_bitmap(code_d3, StabilizerType.X)
        assert bitmap.sum() == code_d3.distance
        rng = np.random.default_rng(13)
        data_qubits = code_d3.data_qubits
        for _ in range(20):
            residual = (rng.random(code_d3.num_data_qubits) < 0.3).astype(np.uint8)
            residual_set = {
                data_qubits[i] for i in np.flatnonzero(residual)
            }
            expected = code_d3.is_logical_error(residual_set, StabilizerType.X)
            assert bool((residual.astype(np.int64) @ bitmap) & 1) == expected
