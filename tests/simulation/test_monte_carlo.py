"""Tests for Monte-Carlo statistics helpers."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.simulation.monte_carlo import relative_error, wilson_interval


class TestWilsonInterval:
    def test_contains_the_point_estimate(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.3 < high

    def test_bounds_are_probabilities(self):
        low, high = wilson_interval(0, 50)
        assert 0.0 <= low <= high <= 1.0

    def test_zero_successes_lower_bound_is_zero(self):
        low, _high = wilson_interval(0, 100)
        assert low == 0.0

    def test_all_successes_upper_bound_is_one(self):
        _low, high = wilson_interval(100, 100)
        assert high == pytest.approx(1.0)

    def test_interval_narrows_with_more_trials(self):
        small = wilson_interval(10, 100)
        large = wilson_interval(1000, 10_000)
        assert (large[1] - large[0]) < (small[1] - small[0])

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(1, 0)
        with pytest.raises(ConfigurationError):
            wilson_interval(5, 3)


class TestRelativeError:
    def test_basic(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)

    def test_symmetric_sign(self):
        assert relative_error(9.0, 10.0) == pytest.approx(0.1)

    def test_zero_reference_rejected(self):
        with pytest.raises(ConfigurationError):
            relative_error(1.0, 0.0)
