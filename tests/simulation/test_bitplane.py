"""Property and exactness tests for the uint64 bitplane packing layer.

The packed Monte-Carlo hot path is only sound if every primitive in
:mod:`repro.bitplane` is *exact*: pack → unpack is the identity for any
trial count (including ragged non-multiple-of-64 tails), XOR-parity
syndromes equal the int64 matmul mod 2 bit for bit, and the scatter/extract
byte-view accessors address precisely the trial they claim to.  Hypothesis
sweeps the shape space; the pinned cases nail the documented edge rules.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import bitplane

SHAPES = st.tuples(
    st.integers(min_value=1, max_value=200),  # trials (ragged tails included)
    st.integers(min_value=1, max_value=6),  # rounds
    st.integers(min_value=1, max_value=30),  # qubit planes
)


def _random_bits(shape, seed):
    return (np.random.default_rng(seed).random(shape) < 0.37).astype(np.uint8)


class TestPackRoundTrip:
    @given(shape=SHAPES, seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=80, deadline=None)
    def test_pack_unpack_is_the_identity(self, shape, seed):
        bits = _random_bits(shape, seed)
        packed = bitplane.pack_trials(bits)
        trials = shape[0]
        assert packed.shape == shape[1:] + (bitplane.num_words(trials),)
        assert packed.dtype == np.uint64
        assert np.array_equal(bitplane.unpack_trials(packed, trials), bits)

    @given(shape=SHAPES, seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=80, deadline=None)
    def test_ragged_last_word_is_zero_padded(self, shape, seed):
        packed = bitplane.pack_trials(_random_bits(shape, seed))
        mask = bitplane.trial_mask_words(shape[0])
        assert np.all(packed & ~mask == 0)

    @given(shape=SHAPES, seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=80, deadline=None)
    def test_popcount_matches_the_bit_sum(self, shape, seed):
        bits = _random_bits(shape, seed)
        assert bitplane.popcount(bitplane.pack_trials(bits)) == int(bits.sum())

    @pytest.mark.parametrize("trials", [1, 63, 64, 65, 127, 128, 130])
    def test_num_words_and_mask_pin_the_word_boundary(self, trials):
        words = bitplane.num_words(trials)
        assert words == (trials + 63) // 64
        mask = bitplane.trial_mask_words(trials)
        assert mask.shape == (words,)
        assert bitplane.popcount(mask) == trials

    def test_bool_input_packs_like_uint8(self):
        bits = _random_bits((70, 3, 5), 1)
        assert np.array_equal(
            bitplane.pack_trials(bits.astype(bool)), bitplane.pack_trials(bits)
        )

    def test_rejects_scalar_input_and_nonpositive_trials(self):
        with pytest.raises(ValueError):
            bitplane.pack_trials(np.uint8(1))
        with pytest.raises(ValueError):
            bitplane.num_words(0)


class TestTrialAccessors:
    @given(
        shape=SHAPES,
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_extract_matches_fancy_indexing(self, shape, seed):
        bits = _random_bits(shape, seed)
        trials = shape[0]
        rng = np.random.default_rng(seed + 1)
        ids = np.sort(rng.choice(trials, size=min(trials, 7), replace=False))
        extracted = bitplane.extract_trial_bits(bitplane.pack_trials(bits), ids)
        assert np.array_equal(extracted, bits[ids])

    @given(
        shape=SHAPES,
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_scatter_xor_matches_unpacked_xor(self, shape, seed):
        bits = _random_bits(shape, seed)
        trials, planes = shape[0], shape[1:]
        rng = np.random.default_rng(seed + 2)
        ids = np.sort(rng.choice(trials, size=min(trials, 7), replace=False))
        delta = (rng.random((ids.size,) + planes) < 0.5).astype(np.uint8)

        packed = bitplane.pack_trials(bits)
        bitplane.scatter_xor_trial_bits(packed, ids, delta)
        expected = bits.copy()
        expected[ids] ^= delta
        assert np.array_equal(bitplane.unpack_trials(packed, trials), expected)

    def test_scatter_requires_contiguous_uint64(self):
        packed = bitplane.pack_trials(_random_bits((70, 4), 0))
        with pytest.raises(ValueError):
            bitplane.scatter_xor_trial_bits(
                packed.astype(np.uint32), np.array([0]), np.zeros((1, 4), np.uint8)
            )


class TestPackedParityCheck:
    @given(
        trials=st.integers(min_value=1, max_value=150),
        rounds=st.integers(min_value=1, max_value=4),
        num_data=st.integers(min_value=2, max_value=24),
        num_ancillas=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_xor_parity_equals_matmul_mod_2(
        self, trials, rounds, num_data, num_ancillas, seed
    ):
        rng = np.random.default_rng(seed)
        matrix = (rng.random((num_ancillas, num_data)) < 0.4).astype(np.int64)
        accumulated = (rng.random((trials, rounds, num_data)) < 0.3).astype(np.uint8)

        packed = bitplane.PackedParityCheck(matrix).syndromes(
            bitplane.pack_trials(accumulated)
        )
        reference = (
            (accumulated.reshape(trials * rounds, num_data) @ matrix.T) & 1
        ).reshape(trials, rounds, num_ancillas)
        assert np.array_equal(
            bitplane.unpack_trials(packed, trials),
            reference.astype(np.uint8),
        )

    def test_all_zero_stabilizer_row_yields_zero_syndrome(self):
        # The sentinel-padded support table must behave for weight-0 rows too.
        matrix = np.array([[0, 0, 0], [1, 1, 0]], dtype=np.int64)
        acc = bitplane.pack_trials(np.ones((70, 2, 3), dtype=np.uint8))
        syndromes = bitplane.PackedParityCheck(matrix).syndromes(acc)
        unpacked = bitplane.unpack_trials(syndromes, 70)
        assert np.all(unpacked[:, :, 0] == 0)
        assert np.all(unpacked[:, :, 1] == 0)  # weight-2 row of all-ones errors

    def test_rejects_mismatched_plane_count(self):
        check = bitplane.PackedParityCheck(np.eye(3, dtype=np.int64))
        with pytest.raises(ValueError):
            check.syndromes(np.zeros((2, 4, 1), dtype=np.uint64))
