"""Tests for Clique coverage measurement (Figs. 11-12)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.noise.models import PhenomenologicalNoise
from repro.simulation.coverage import CoverageResult, simulate_clique_coverage


class TestCoverageResult:
    def test_basic_fractions(self):
        result = CoverageResult(
            physical_error_rate=0.01,
            code_distance=5,
            measurement_rounds=2,
            cycles=1000,
            onchip_cycles=950,
            all_zero_cycles=700,
        )
        assert result.coverage == pytest.approx(0.95)
        assert result.offchip_fraction == pytest.approx(0.05)
        assert result.offchip_cycles == 50
        assert result.nonzero_cycles == 300
        assert result.nonzero_onchip_cycles == 250
        assert result.nonzero_coverage == pytest.approx(250 / 300)
        assert result.onchip_nonzero_share == pytest.approx(250 / 950)

    def test_interval_brackets_coverage(self):
        result = CoverageResult(0.01, 5, 2, 1000, 950, 700)
        low, high = result.coverage_interval
        assert low < result.coverage < high


class TestSimulateCoverage:
    def test_rejects_bad_arguments(self, code_d3):
        noise = PhenomenologicalNoise(0.01)
        with pytest.raises(ConfigurationError):
            simulate_clique_coverage(code_d3, noise, 0)
        with pytest.raises(ConfigurationError):
            simulate_clique_coverage(code_d3, noise, 100, measurement_rounds=0)

    def test_zero_noise_gives_full_coverage(self, code_d5):
        result = simulate_clique_coverage(code_d5, PhenomenologicalNoise(0.0), 2000, rng=1)
        assert result.coverage == 1.0
        assert result.all_zero_cycles == 2000

    def test_coverage_decreases_with_error_rate(self, code_d9):
        low = simulate_clique_coverage(code_d9, PhenomenologicalNoise(1e-3), 20_000, rng=2)
        high = simulate_clique_coverage(code_d9, PhenomenologicalNoise(1e-2), 20_000, rng=3)
        assert high.coverage < low.coverage

    def test_coverage_decreases_with_distance_at_fixed_rate(self, code_d3, code_d9):
        noise = PhenomenologicalNoise(1e-2)
        small = simulate_clique_coverage(code_d3, noise, 20_000, rng=4)
        large = simulate_clique_coverage(code_d9, noise, 20_000, rng=5)
        assert large.coverage < small.coverage

    def test_paper_worst_case_coverage_is_still_high(self):
        # Fig. 11: ~70% coverage even at p = 1e-2 and d = 21.
        from repro.codes.rotated_surface import get_code

        result = simulate_clique_coverage(
            get_code(21), PhenomenologicalNoise(1e-2), 20_000, rng=6
        )
        assert 0.6 < result.coverage < 0.85

    def test_paper_best_case_coverage_is_nearly_total(self, code_d5):
        result = simulate_clique_coverage(code_d5, PhenomenologicalNoise(5e-4), 20_000, rng=7)
        assert result.coverage > 0.99

    def test_more_measurement_rounds_never_reduce_coverage(self, code_d7):
        noise = PhenomenologicalNoise(5e-3)
        two = simulate_clique_coverage(code_d7, noise, 20_000, measurement_rounds=2, rng=8)
        four = simulate_clique_coverage(code_d7, noise, 20_000, measurement_rounds=4, rng=8)
        assert four.coverage >= two.coverage - 0.01

    def test_nonzero_share_grows_with_error_rate(self, code_d9):
        low = simulate_clique_coverage(code_d9, PhenomenologicalNoise(1e-4), 20_000, rng=9)
        high = simulate_clique_coverage(code_d9, PhenomenologicalNoise(1e-2), 20_000, rng=10)
        assert high.onchip_nonzero_share > low.onchip_nonzero_share

    def test_nonzero_share_is_nearly_total_near_threshold_at_high_distance(self):
        # Fig. 12: near threshold and at high code distance almost every
        # on-chip decode carries real (non-all-0s) work, so zero suppression
        # alone would not reduce bandwidth.
        from repro.codes.rotated_surface import get_code

        result = simulate_clique_coverage(
            get_code(21), PhenomenologicalNoise(1e-2), 20_000, rng=12
        )
        assert result.onchip_nonzero_share > 0.9

    def test_reproducible_with_seed(self, code_d5):
        noise = PhenomenologicalNoise(5e-3)
        first = simulate_clique_coverage(code_d5, noise, 5000, rng=11)
        second = simulate_clique_coverage(code_d5, noise, 5000, rng=11)
        assert first.onchip_cycles == second.onchip_cycles


class TestResolveCoverageConfig:
    """The store keying contract: stream-determining knobs must all appear."""

    def _key(self, noise=None, **kwargs):
        from repro.noise.models import PhenomenologicalNoise
        from repro.simulation.coverage import resolve_coverage_config

        if noise is None:
            noise = PhenomenologicalNoise(1e-2)
        return resolve_coverage_config(2000, noise, 3, **kwargs)

    def test_defaults_key_like_explicit_defaults(self):
        assert self._key() == self._key(measurement_rounds=2, batch_size=50_000)

    def test_independent_measurement_rate_is_keyed(self):
        from repro.noise.models import PhenomenologicalNoise

        # PhenomenologicalNoise(p, q) with q != p changes the persistent-flip
        # rate and therefore the counts: it must not share a key with the
        # symmetric q == p model at the same data rate.
        symmetric = self._key(noise=PhenomenologicalNoise(1e-2))
        asymmetric = self._key(noise=PhenomenologicalNoise(1e-2, 5e-3))
        assert symmetric != asymmetric

    def test_noise_class_is_keyed(self):
        from repro.noise.models import CodeCapacityNoise, PhenomenologicalNoise

        phenomenological = self._key(noise=PhenomenologicalNoise(1e-2))
        code_capacity = self._key(noise=CodeCapacityNoise(1e-2))
        assert phenomenological != code_capacity

    def test_batch_size_is_stream_determining(self):
        # Splitting a run into batches interleaves the data-error and
        # measurement-flip draws differently, so batch_size must change the
        # key — excluding it would serve numbers from a different stream.
        assert self._key(batch_size=1000) != self._key()

    def test_workers_is_excluded(self):
        # The seeding contract makes counts worker-independent; only the
        # sharded-ness (and resolved chunk) may enter the key.
        assert self._key(workers=1) == self._key(workers=8)

    def test_sharded_and_legacy_paths_key_differently(self):
        assert self._key(workers=1) != self._key()

    def test_explicit_default_chunk_keys_like_implied(self):
        from repro.simulation.coverage import DEFAULT_SHARD_CYCLES

        assert self._key(workers=1) == self._key(chunk_cycles=DEFAULT_SHARD_CYCLES)

    def test_chunk_cycles_is_stream_determining(self):
        assert self._key(chunk_cycles=500) != self._key(chunk_cycles=1000)

    def test_explicit_default_min_cycles_keys_like_implied(self):
        # The adaptive Wilson floor defaults to min(chunk, cycles) inside the
        # simulator; spelling that value out must hit the same key.
        implied = self._key(target_ci_width=0.05, chunk_cycles=500)
        explicit = self._key(target_ci_width=0.05, chunk_cycles=500, min_cycles=500)
        assert implied == explicit

    def test_min_cycles_is_inert_without_adaptive_sampling(self):
        assert self._key()["min_cycles"] is None
