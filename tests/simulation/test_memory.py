"""Tests for the memory (lifetime) experiment harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clique.hierarchical import HierarchicalDecoder
from repro.decoders.mwpm import MWPMDecoder
from repro.exceptions import ConfigurationError
from repro.noise.models import CodeCapacityNoise, PhenomenologicalNoise
from repro.simulation.memory import (
    MemoryExperimentResult,
    run_memory_experiment,
    run_memory_trial,
)
from repro.types import StabilizerType


def _mwpm(code, stype):
    return MWPMDecoder(code, stype)


def _hierarchical(code, stype):
    return HierarchicalDecoder(code, stype)


class TestRunMemoryTrial:
    def test_zero_noise_never_fails(self, code_d3, rng):
        noise = PhenomenologicalNoise(0.0)
        decoder = MWPMDecoder(code_d3, StabilizerType.X)
        failed, metadata = run_memory_trial(
            code_d3, StabilizerType.X, noise, decoder, rounds=3, rng=rng
        )
        assert not failed
        assert metadata["num_events"] == 0

    def test_hierarchical_metadata_includes_round_split(self, code_d3, rng):
        noise = PhenomenologicalNoise(0.02)
        decoder = HierarchicalDecoder(code_d3, StabilizerType.X)
        _failed, metadata = run_memory_trial(
            code_d3, StabilizerType.X, noise, decoder, rounds=3, rng=rng
        )
        assert "num_offchip_rounds" in metadata
        assert metadata["num_rounds"] == 4  # three noisy rounds + final perfect round


class TestRunMemoryExperiment:
    def test_rejects_bad_arguments(self, code_d3):
        noise = PhenomenologicalNoise(0.01)
        with pytest.raises(ConfigurationError):
            run_memory_experiment(code_d3, noise, _mwpm, trials=0)
        with pytest.raises(ConfigurationError):
            run_memory_experiment(code_d3, noise, _mwpm, trials=10, rounds=0)

    def test_default_rounds_equal_distance(self, code_d3):
        result = run_memory_experiment(
            code_d3, PhenomenologicalNoise(0.01), _mwpm, trials=5, rng=1
        )
        assert result.rounds == 3

    def test_zero_noise_has_zero_logical_error_rate(self, code_d3):
        result = run_memory_experiment(
            code_d3, PhenomenologicalNoise(0.0), _mwpm, trials=50, rng=2
        )
        assert result.logical_error_rate == 0.0
        assert result.confidence_interval[0] == 0.0

    def test_result_counts_are_consistent(self, code_d3):
        result = run_memory_experiment(
            code_d3, PhenomenologicalNoise(0.03), _mwpm, trials=200, rng=3
        )
        assert 0 <= result.logical_failures <= result.trials
        low, high = result.confidence_interval
        assert low <= result.logical_error_rate <= high

    def test_reproducible_with_seed(self, code_d3):
        noise = PhenomenologicalNoise(0.02)
        first = run_memory_experiment(code_d3, noise, _mwpm, trials=100, rng=4)
        second = run_memory_experiment(code_d3, noise, _mwpm, trials=100, rng=4)
        assert first.logical_failures == second.logical_failures

    def test_decoder_name_defaults_to_class_name(self, code_d3):
        result = run_memory_experiment(
            code_d3, PhenomenologicalNoise(0.01), _mwpm, trials=5, rng=5
        )
        assert result.decoder_name == "MWPMDecoder"

    def test_hierarchical_tracks_onchip_fraction(self, code_d3):
        result = run_memory_experiment(
            code_d3, PhenomenologicalNoise(5e-3), _hierarchical, trials=50, rng=6
        )
        assert result.total_rounds == 50 * 4
        assert 0.0 <= result.onchip_round_fraction <= 1.0
        assert result.onchip_round_fraction > 0.8

    def test_code_capacity_single_round(self, code_d3):
        result = run_memory_experiment(
            code_d3, CodeCapacityNoise(0.05), _mwpm, trials=100, rounds=1, rng=7
        )
        assert result.rounds == 1
        assert result.trials == 100


class TestMemoryExperimentResult:
    def test_onchip_fraction_zero_when_not_tracked(self):
        result = MemoryExperimentResult(
            physical_error_rate=0.01,
            code_distance=3,
            rounds=3,
            trials=10,
            logical_failures=1,
            decoder_name="MWPM",
        )
        assert result.onchip_round_fraction == 0.0
        assert result.logical_error_rate == pytest.approx(0.1)
