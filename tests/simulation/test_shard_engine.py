"""Determinism tests for the sharded multiprocess Monte-Carlo engine.

The sharded engine's contract is weaker than batch-vs-loop bit-identity (each
shard owns an independent child RNG stream) but just as exact: for a fixed
``(seed, chunk_trials)`` the merged counts are fully determined — independent
of the worker count, of whether the shards run in-process or in a pool, and
equal to running the batch engine once per shard with
``shard_rng(seed, shard_index)`` and summing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clique.hierarchical import HierarchicalDecoder
from repro.codes.rotated_surface import get_code
from repro.exceptions import ConfigurationError
from repro.noise.models import PhenomenologicalNoise
from repro.noise.rng import resolve_entropy, shard_rng
from repro.simulation.batch import run_memory_experiment_batch
from repro.simulation.coverage import CoverageKernel, simulate_clique_coverage
from repro.simulation.memory import run_memory_experiment
from repro.simulation.shard import (
    plan_shards,
    run_memory_experiment_sharded,
    run_sharded,
)
from repro.types import StabilizerType

from shard_kernels import BernoulliKernel


# Sharded workers rebuild the decoder, so factories must be module-level
# (picklable) callables.
def _hierarchical(code, stype):
    return HierarchicalDecoder(code, stype)


def _hierarchical_uf(code, stype):
    return HierarchicalDecoder(code, stype, fallback="union_find")


class TestGenericRunner:
    def test_merged_counts_equal_manual_per_shard_runs(self):
        kernel = BernoulliKernel(0.3)
        seed, chunk = 13, 250
        successes, trials = run_sharded(
            kernel, trials=1100, seed=seed, chunk_trials=chunk, workers=1
        )
        manual = sum(
            kernel(size, shard_rng(seed, index))[0]
            for index, size in enumerate(plan_shards(1100, chunk))
        )
        assert trials == 1100
        assert successes == manual

    def test_workers_do_not_affect_merged_result(self):
        results = [
            run_sharded(
                BernoulliKernel(0.2), trials=900, seed=5, chunk_trials=200, workers=w
            )
            for w in (1, 2, 4)
        ]
        assert results[1:] == results[:-1]

    def test_custom_merge_is_used(self):
        best = run_sharded(
            BernoulliKernel(0.5),
            trials=600,
            seed=3,
            chunk_trials=200,
            workers=1,
            merge=lambda a, b: a if a[0] >= b[0] else b,
        )
        per_shard = [
            BernoulliKernel(0.5)(size, shard_rng(3, index))
            for index, size in enumerate(plan_shards(600, 200))
        ]
        assert best[0] == max(counts[0] for counts in per_shard)

    def test_generator_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sharded(BernoulliKernel(0.1), trials=100, seed=np.random.default_rng(1))


class TestShardedCoverage:
    @pytest.mark.parametrize("distance", [5, 7])
    def test_matches_per_shard_kernel_runs(self, distance):
        # The sharded coverage merge must equal running the kernel once per
        # shard with the contract's generators and summing the counts.
        code = get_code(distance)
        noise = PhenomenologicalNoise(5e-3)
        seed, chunk, cycles = 31, 1500, 5000
        sharded = simulate_clique_coverage(
            code, noise, cycles, rng=seed, workers=1, chunk_cycles=chunk
        )
        kernel = CoverageKernel(code, noise, StabilizerType.X, 2)
        onchip = all_zero = 0
        for index, size in enumerate(plan_shards(cycles, chunk)):
            shard_onchip, shard_zero, shard_cycles = kernel(size, shard_rng(seed, index))
            assert shard_cycles == size
            onchip += shard_onchip
            all_zero += shard_zero
        assert sharded.cycles == cycles
        assert sharded.onchip_cycles == onchip
        assert sharded.all_zero_cycles == all_zero

    def test_workers_do_not_affect_coverage(self, code_d5):
        noise = PhenomenologicalNoise(1e-2)
        single, pooled = [
            simulate_clique_coverage(
                code_d5, noise, 6000, rng=5, workers=workers, chunk_cycles=1000
            )
            for workers in (1, 4)
        ]
        assert single.onchip_cycles == pooled.onchip_cycles
        assert single.all_zero_cycles == pooled.all_zero_cycles

    def test_prebuilt_decoder_rejected_on_sharded_path(self, code_d3):
        from repro.clique.decoder import CliqueDecoder

        with pytest.raises(ConfigurationError):
            simulate_clique_coverage(
                code_d3,
                PhenomenologicalNoise(1e-2),
                1000,
                rng=1,
                workers=1,
                decoder=CliqueDecoder(code_d3, StabilizerType.X),
            )

    def test_min_cycles_without_width_target_rejected(self, code_d3):
        # A sampling floor only applies to adaptive runs; silently ignoring
        # it would suggest it was enforced.
        with pytest.raises(ConfigurationError):
            simulate_clique_coverage(
                code_d3,
                PhenomenologicalNoise(1e-2),
                1000,
                rng=1,
                workers=1,
                min_cycles=500,
            )


class TestShardPlan:
    def test_plan_depends_only_on_trials_and_chunk(self):
        assert plan_shards(1000, 400) == [400, 400, 200]
        assert plan_shards(800, 400) == [400, 400]
        assert plan_shards(5, 400) == [5]

    def test_plan_validates_inputs(self):
        with pytest.raises(ConfigurationError):
            plan_shards(0, 400)
        with pytest.raises(ConfigurationError):
            plan_shards(100, 0)


class TestShardRng:
    def test_stream_depends_only_on_seed_and_index(self):
        a = shard_rng(7, 3).random(4)
        b = shard_rng(7, 3).random(4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, shard_rng(7, 4).random(4))
        assert not np.array_equal(a, shard_rng(8, 3).random(4))

    def test_matches_seed_sequence_spawn(self):
        spawned = np.random.SeedSequence(7).spawn(5)
        for index in (0, 2, 4):
            expected = np.random.default_rng(spawned[index]).random(4)
            assert np.array_equal(shard_rng(7, index).random(4), expected)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            shard_rng(7, -1)

    def test_resolve_entropy_pins_none_once(self):
        assert resolve_entropy(123) == 123
        drawn = resolve_entropy(None)
        assert isinstance(drawn, int)


class TestShardedDeterminism:
    def test_workers_do_not_affect_results(self, code_d3):
        noise = PhenomenologicalNoise(2e-2)
        results = [
            run_memory_experiment(
                code_d3,
                noise,
                _hierarchical,
                trials=900,
                rng=17,
                engine="sharded",
                workers=workers,
                chunk_trials=250,
            )
            for workers in (1, 2, 4)
        ]
        for result in results[1:]:
            assert result.logical_failures == results[0].logical_failures
            assert result.onchip_rounds == results[0].onchip_rounds
            assert result.total_rounds == results[0].total_rounds

    def test_matches_per_shard_batch_runs(self, code_d5):
        # The sharded merge must equal running the batch engine shard by
        # shard with the contract's generators and summing the counts.
        noise = PhenomenologicalNoise(1e-2)
        seed, chunk = 23, 300
        sharded = run_memory_experiment_sharded(
            code_d5,
            noise,
            _hierarchical,
            trials=1000,
            rng=seed,
            chunk_trials=chunk,
            workers=1,
        )
        failures = onchip = total = 0
        for index, shard_trials in enumerate(plan_shards(1000, chunk)):
            shard = run_memory_experiment_batch(
                code_d5,
                noise,
                _hierarchical,
                trials=shard_trials,
                rng=shard_rng(seed, index),
            )
            failures += shard.logical_failures
            onchip += shard.onchip_rounds
            total += shard.total_rounds
        assert sharded.logical_failures == failures
        assert sharded.onchip_rounds == onchip
        assert sharded.total_rounds == total

    def test_repeated_runs_are_identical(self, code_d3):
        noise = PhenomenologicalNoise(1e-2)
        first = run_memory_experiment(
            code_d3, noise, _hierarchical, trials=500, rng=3, engine="sharded"
        )
        second = run_memory_experiment(
            code_d3, noise, _hierarchical, trials=500, rng=3, engine="sharded"
        )
        assert first.logical_failures == second.logical_failures
        assert first.onchip_rounds == second.onchip_rounds

    def test_union_find_fallback_shards_identically(self, code_d3):
        noise = PhenomenologicalNoise(2e-2)
        single = run_memory_experiment(
            code_d3,
            noise,
            _hierarchical_uf,
            trials=600,
            rng=11,
            engine="sharded",
            workers=1,
            chunk_trials=200,
        )
        pooled = run_memory_experiment(
            code_d3,
            noise,
            _hierarchical_uf,
            trials=600,
            rng=11,
            engine="sharded",
            workers=2,
            chunk_trials=200,
        )
        assert single.logical_failures == pooled.logical_failures
        assert single.onchip_rounds == pooled.onchip_rounds


class TestShardedValidation:
    def test_generator_rng_is_rejected(self, code_d3):
        with pytest.raises(ConfigurationError):
            run_memory_experiment_sharded(
                code_d3,
                PhenomenologicalNoise(1e-2),
                _hierarchical,
                trials=100,
                rng=np.random.default_rng(1),
            )

    def test_workers_only_for_sharded(self, code_d3):
        with pytest.raises(ConfigurationError):
            run_memory_experiment(
                code_d3,
                PhenomenologicalNoise(1e-2),
                _hierarchical,
                trials=100,
                engine="batch",
                workers=2,
            )

    def test_invalid_workers_rejected(self, code_d3):
        with pytest.raises(ConfigurationError):
            run_memory_experiment_sharded(
                code_d3,
                PhenomenologicalNoise(1e-2),
                _hierarchical,
                trials=100,
                rng=1,
                workers=0,
            )

    def test_result_metadata_is_preserved(self, code_d3):
        result = run_memory_experiment(
            code_d3,
            PhenomenologicalNoise(1e-2),
            _hierarchical,
            trials=120,
            rng=2,
            engine="sharded",
            workers=1,
        )
        assert result.trials == 120
        assert result.code_distance == 3
        assert result.rounds == 3
        assert result.decoder_name == "HierarchicalDecoder"
