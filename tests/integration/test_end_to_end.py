"""End-to-end integration tests exercising the full BTWC decode pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CliqueDecoder,
    HierarchicalDecoder,
    MWPMDecoder,
    PhenomenologicalNoise,
    RotatedSurfaceCode,
    StabilizerType,
    run_memory_experiment,
    simulate_clique_coverage,
    simulate_signature_distribution,
)
from repro.bandwidth.allocation import provision_for_percentile
from repro.bandwidth.stalling import StallSimulator
from repro.control.circuits import LogicalCircuit
from repro.control.waveform import StallController, WaveformGenerator


class TestFullDecodePipeline:
    """Noise -> syndromes -> hierarchy -> correction -> logical verdict."""

    def test_hierarchy_matches_baseline_at_moderate_noise(self):
        code = RotatedSurfaceCode(5)
        noise = PhenomenologicalNoise(1e-2)
        baseline = run_memory_experiment(
            code, noise, lambda c, s: MWPMDecoder(c, s), trials=400, rng=21
        )
        hierarchy = run_memory_experiment(
            code, noise, lambda c, s: HierarchicalDecoder(c, s), trials=400, rng=21
        )
        # Fig. 14's qualitative claim at small distance: the two curves track
        # each other; the hierarchy may not be dramatically worse.
        assert hierarchy.logical_error_rate <= baseline.logical_error_rate + 0.05
        # And the whole point of the hierarchy: most rounds stay on-chip.
        assert hierarchy.onchip_round_fraction > 0.8

    def test_signature_distribution_consistent_with_coverage(self):
        # The Clique coverage can never be lower than the fraction of cycles
        # whose ground-truth configuration is trivial minus statistical noise,
        # because Clique handles every isolated-singles configuration that
        # does not alias into an even-parity pattern.
        code = RotatedSurfaceCode(7)
        noise = PhenomenologicalNoise(5e-3)
        distribution = simulate_signature_distribution(code, noise, 20_000, rng=22)
        coverage = simulate_clique_coverage(code, noise, 20_000, rng=23)
        assert coverage.coverage >= distribution.all_zeros_fraction
        assert abs(coverage.coverage - distribution.trivial_fraction) < 0.05

    def test_coverage_feeds_bandwidth_planning_and_stalling(self):
        code = RotatedSurfaceCode(9)
        noise = PhenomenologicalNoise(1e-2)
        coverage = simulate_clique_coverage(code, noise, 10_000, rng=24)
        plan = provision_for_percentile(1000, coverage.offchip_fraction, 99.0)
        result = StallSimulator(plan, seed=25).run(2000)
        assert result.completed
        assert result.execution_time_increase < 0.25
        assert plan.bandwidth_reduction > 2.0

    def test_stall_controller_drives_waveform_generator(self):
        code = RotatedSurfaceCode(7)
        noise = PhenomenologicalNoise(1e-2)
        coverage = simulate_clique_coverage(code, noise, 5_000, rng=26)
        plan = provision_for_percentile(500, coverage.offchip_fraction, 99.0)
        circuit = LogicalCircuit.random_clifford_t(16, depth=100, t_fraction=0.05, seed=27)
        trace = WaveformGenerator(circuit).execute(
            StallController(plan, seed=28), max_cycles=50_000
        )
        assert trace.program_cycles == circuit.depth
        assert trace.execution_time_increase < 1.0

    def test_both_error_species_decode_symmetrically(self):
        code = RotatedSurfaceCode(5)
        noise = PhenomenologicalNoise(5e-3)
        rates = {}
        for stype in StabilizerType:
            result = run_memory_experiment(
                code,
                noise,
                lambda c, s: HierarchicalDecoder(c, s),
                trials=300,
                stype=stype,
                rng=29,
            )
            rates[stype] = result.logical_error_rate
        assert abs(rates[StabilizerType.X] - rates[StabilizerType.Z]) < 0.05


class TestCrossDecoderConsistency:
    def test_all_decoders_cancel_the_same_syndromes(self):
        code = RotatedSurfaceCode(5)
        rng = np.random.default_rng(30)
        clique = CliqueDecoder(code, StabilizerType.X)
        mwpm = MWPMDecoder(code, StabilizerType.X)
        for _ in range(50):
            error = frozenset(q for q in code.data_qubits if rng.random() < 0.03)
            syndrome = code.syndrome_of(error, StabilizerType.X)
            mwpm_residual = error ^ mwpm.decode(syndrome).correction
            assert not code.syndrome_of(mwpm_residual, StabilizerType.X).any()
            decision = clique.decide(syndrome)
            if decision.is_trivial:
                clique_residual = error ^ decision.correction
                assert not code.syndrome_of(clique_residual, StabilizerType.X).any()

    def test_hierarchical_decoder_never_leaves_detection_events_unmatched(self):
        code = RotatedSurfaceCode(5)
        noise = PhenomenologicalNoise(2e-2)
        decoder = HierarchicalDecoder(code, StabilizerType.X)
        parity = code.parity_check(StabilizerType.X)
        rng = np.random.default_rng(31)
        mismatches = 0
        trials = 60
        for _ in range(trials):
            accumulated = np.zeros(code.num_data_qubits, dtype=np.uint8)
            rounds = []
            for _round in range(5):
                accumulated ^= noise.sample_data_vector(code, rng)
                flips = noise.sample_measurement_vector(code, StabilizerType.X, rng)
                rounds.append(((parity @ accumulated) % 2) ^ flips)
            rounds.append((parity @ accumulated) % 2)
            observed = np.stack(rounds)
            detections = observed ^ np.vstack([np.zeros_like(observed[:1]), observed[:-1]])
            result = decoder.decode(detections)
            correction = np.zeros(code.num_data_qubits, dtype=np.uint8)
            for qubit in result.correction:
                correction[code.data_index[qubit]] ^= 1
            residual_syndrome = (parity @ (accumulated ^ correction)) % 2
            mismatches += int(residual_syndrome.any())
        # The Clique stage may occasionally mis-attribute a persistent
        # measurement fault (the paper's acknowledged accuracy loss), but the
        # overwhelming majority of histories must close cleanly.
        assert mismatches <= trials * 0.2


class TestExperimentPipeline:
    def test_registry_to_cli_round_trip(self, capsys):
        from repro.cli import main

        assert main(["run", "fig15", "--param", "measurement_rounds=2"]) == 0
        out = capsys.readouterr().out
        assert "power_uw" in out
        assert "code_distance" in out

    def test_headline_bandwidth_claim_holds_end_to_end(self):
        # Section 1: 70-99+% of off-chip bandwidth eliminated across operating
        # points.  Check the two extremes of the paper's range.
        worst = simulate_clique_coverage(
            RotatedSurfaceCode(21), PhenomenologicalNoise(1e-2), 20_000, rng=32
        )
        best = simulate_clique_coverage(
            RotatedSurfaceCode(5), PhenomenologicalNoise(5e-4), 20_000, rng=33
        )
        assert worst.coverage > 0.6
        assert best.coverage > 0.99
