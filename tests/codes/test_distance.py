"""Tests for the code-distance sizing model."""

from __future__ import annotations

import pytest

from repro.codes.distance import (
    PAPER_OPERATING_POINTS,
    LogicalRateModel,
    calibrated_model,
    logical_error_rate_estimate,
    required_code_distance,
)
from repro.exceptions import ConfigurationError, InvalidProbabilityError


class TestLogicalRateModel:
    def test_rejects_nonpositive_prefactor(self):
        with pytest.raises(ConfigurationError):
            LogicalRateModel(prefactor=0.0, threshold=0.01)

    def test_rejects_threshold_outside_unit_interval(self):
        with pytest.raises(InvalidProbabilityError):
            LogicalRateModel(prefactor=0.1, threshold=1.5)

    def test_logical_rate_decreases_with_distance(self):
        model = LogicalRateModel(prefactor=0.1, threshold=0.01)
        rates = [model.logical_error_rate(1e-3, d) for d in (3, 5, 7, 9)]
        assert rates == sorted(rates, reverse=True)

    def test_logical_rate_increases_with_physical_rate(self):
        model = LogicalRateModel(prefactor=0.1, threshold=0.01)
        assert model.logical_error_rate(5e-3, 7) > model.logical_error_rate(1e-3, 7)

    def test_known_value(self):
        model = LogicalRateModel(prefactor=0.1, threshold=0.01)
        # (p / p_th) = 0.1, (d + 1) / 2 = 4  ->  0.1 * 0.1**4 = 1e-5
        assert model.logical_error_rate(1e-3, 7) == pytest.approx(1e-5)

    def test_logical_rate_rejects_even_distance(self):
        model = LogicalRateModel(prefactor=0.1, threshold=0.01)
        with pytest.raises(ConfigurationError):
            model.logical_error_rate(1e-3, 4)

    def test_required_distance_rejects_above_threshold(self):
        model = LogicalRateModel(prefactor=0.1, threshold=0.01)
        with pytest.raises(ConfigurationError):
            model.required_distance(0.02, 1e-6)

    def test_required_distance_is_odd_and_sufficient(self):
        model = LogicalRateModel(prefactor=0.1, threshold=0.01)
        distance = model.required_distance(1e-3, 1e-9)
        assert distance % 2 == 1
        assert model.logical_error_rate(1e-3, distance) <= 1e-9
        if distance > 3:
            assert model.logical_error_rate(1e-3, distance - 2) > 1e-9

    def test_fit_requires_two_points(self):
        with pytest.raises(ConfigurationError):
            LogicalRateModel.fit(PAPER_OPERATING_POINTS[:1])


class TestCalibration:
    def test_threshold_is_physically_plausible(self):
        model = calibrated_model()
        # Surface-code phenomenological thresholds sit near 1 percent.
        assert 0.005 < model.threshold < 0.02

    @pytest.mark.parametrize("point", PAPER_OPERATING_POINTS)
    def test_reproduces_paper_distances_within_one_step(self, point):
        distance = required_code_distance(
            point.physical_error_rate, point.logical_error_rate
        )
        assert abs(distance - point.code_distance) <= 2

    def test_exact_match_on_majority_of_points(self):
        exact = sum(
            1
            for point in PAPER_OPERATING_POINTS
            if required_code_distance(point.physical_error_rate, point.logical_error_rate)
            == point.code_distance
        )
        assert exact >= len(PAPER_OPERATING_POINTS) // 2

    def test_estimate_matches_model(self):
        model = calibrated_model()
        assert logical_error_rate_estimate(1e-3, 7) == pytest.approx(
            model.logical_error_rate(1e-3, 7)
        )

    def test_operating_point_label_mentions_distance(self):
        point = PAPER_OPERATING_POINTS[0]
        assert f"d={point.code_distance}" in point.label()
