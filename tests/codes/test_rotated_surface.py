"""Geometry invariants of the rotated surface code."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codes.rotated_surface import RotatedSurfaceCode, get_code
from repro.exceptions import InvalidDistanceError
from repro.types import Coord, StabilizerType

DISTANCES = [3, 5, 7, 9]


class TestConstruction:
    @pytest.mark.parametrize("bad", [2, 4, 1, 0, -3, 3.0, "3"])
    def test_rejects_invalid_distances(self, bad):
        with pytest.raises(InvalidDistanceError):
            RotatedSurfaceCode(bad)

    @pytest.mark.parametrize("distance", DISTANCES)
    def test_qubit_counts(self, distance):
        code = RotatedSurfaceCode(distance)
        assert code.num_data_qubits == distance**2
        assert code.num_ancillas == distance**2 - 1

    @pytest.mark.parametrize("distance", DISTANCES)
    def test_equal_split_between_types(self, distance):
        code = RotatedSurfaceCode(distance)
        x_count = code.num_ancillas_of_type(StabilizerType.X)
        z_count = code.num_ancillas_of_type(StabilizerType.Z)
        assert x_count == z_count == (distance**2 - 1) // 2

    def test_get_code_caches_instances(self):
        assert get_code(5) is get_code(5)

    def test_equality_and_hash_by_distance(self):
        assert RotatedSurfaceCode(3) == RotatedSurfaceCode(3)
        assert RotatedSurfaceCode(3) != RotatedSurfaceCode(5)
        assert hash(RotatedSurfaceCode(3)) == hash(RotatedSurfaceCode(3))


class TestStabilizers:
    @pytest.mark.parametrize("distance", DISTANCES)
    def test_stabilizer_weights_are_two_or_four(self, distance, stype):
        code = RotatedSurfaceCode(distance)
        weights = [s.weight for s in code.stabilizers(stype)]
        assert set(weights) <= {2, 4}

    @pytest.mark.parametrize("distance", DISTANCES)
    def test_number_of_weight_two_stabilizers(self, distance, stype):
        # Each boundary hosts (d - 1) / 2 weight-2 checks of a single type.
        code = RotatedSurfaceCode(distance)
        weight_two = sum(1 for s in code.stabilizers(stype) if s.weight == 2)
        assert weight_two == distance - 1

    def test_every_data_qubit_covered_by_each_type(self, code, stype):
        covered = set()
        for stabilizer in code.stabilizers(stype):
            covered.update(stabilizer.data_qubits)
        assert covered == set(code.data_qubits)

    def test_stabilizers_commute_across_types(self, code):
        # X and Z checks must overlap on an even number of data qubits.
        for x_stab in code.stabilizers(StabilizerType.X):
            x_support = set(x_stab.data_qubits)
            for z_stab in code.stabilizers(StabilizerType.Z):
                overlap = len(x_support & set(z_stab.data_qubits))
                assert overlap % 2 == 0

    def test_parity_check_shape(self, code, stype):
        matrix = code.parity_check(stype)
        assert matrix.shape == (
            code.num_ancillas_of_type(stype),
            code.num_data_qubits,
        )
        assert matrix.dtype == np.uint8

    def test_parity_check_row_weights_match_stabilizers(self, code, stype):
        matrix = code.parity_check(stype)
        for stabilizer, row in zip(code.stabilizers(stype), matrix):
            assert row.sum() == stabilizer.weight


class TestAncillaNeighborhoods:
    def test_clique_neighbor_counts_are_between_one_and_four(self, code, stype):
        for ancilla in code.ancillas(stype):
            assert 1 <= ancilla.num_clique_neighbors <= 4

    def test_clique_neighbors_are_symmetric(self, code, stype):
        index = code.ancilla_index(stype)
        ancillas = code.ancillas(stype)
        for ancilla in ancillas:
            for neighbor_coord in ancilla.clique_neighbors:
                neighbor = ancillas[index[neighbor_coord]]
                assert ancilla.coord in neighbor.clique_neighbors

    def test_shared_qubits_belong_to_both_supports(self, code, stype):
        index = code.ancilla_index(stype)
        ancillas = code.ancillas(stype)
        for ancilla in ancillas:
            for neighbor_coord, shared in zip(ancilla.clique_neighbors, ancilla.shared_qubits):
                neighbor = ancillas[index[neighbor_coord]]
                assert shared in ancilla.data_qubits
                assert shared in neighbor.data_qubits

    def test_boundary_qubits_touch_only_one_ancilla(self, code, stype):
        touch_count: dict[Coord, int] = {}
        for ancilla in code.ancillas(stype):
            for qubit in ancilla.data_qubits:
                touch_count[qubit] = touch_count.get(qubit, 0) + 1
        for ancilla in code.ancillas(stype):
            for qubit in ancilla.boundary_qubits:
                assert touch_count[qubit] == 1

    def test_every_data_qubit_touches_at_most_two_ancillas_per_type(self, code, stype):
        touch_count: dict[Coord, int] = {}
        for ancilla in code.ancillas(stype):
            for qubit in ancilla.data_qubits:
                touch_count[qubit] = touch_count.get(qubit, 0) + 1
        assert set(touch_count.values()) <= {1, 2}

    def test_bulk_ancillas_have_no_boundary_qubits_at_larger_distance(self, code_d7):
        for stype in StabilizerType:
            for ancilla in code_d7.ancillas(stype):
                if ancilla.num_clique_neighbors == 4:
                    assert not ancilla.boundary_qubits


class TestLogicalOperators:
    def test_logical_supports_have_weight_d(self, code):
        for stype in StabilizerType:
            assert len(code.logical_support(stype)) == code.distance

    def test_logical_operators_anticommute(self, code):
        overlap = code.logical_support(StabilizerType.X) & code.logical_support(
            StabilizerType.Z
        )
        assert len(overlap) % 2 == 1

    def test_logical_operators_commute_with_stabilizers(self, code):
        # Logical X (a column of X ops) must overlap every Z check evenly, and
        # logical Z (a row of Z ops) must overlap every X check evenly.
        logical_x = code.logical_support(StabilizerType.X)
        for stabilizer in code.stabilizers(StabilizerType.Z):
            assert len(logical_x & set(stabilizer.data_qubits)) % 2 == 0
        logical_z = code.logical_support(StabilizerType.Z)
        for stabilizer in code.stabilizers(StabilizerType.X):
            assert len(logical_z & set(stabilizer.data_qubits)) % 2 == 0

    def test_logical_z_has_zero_x_syndrome(self, code):
        syndrome = code.syndrome_of(code.logical_support(StabilizerType.Z), StabilizerType.X)
        assert not syndrome.any()

    def test_logical_operator_is_a_logical_error(self, code):
        assert code.is_logical_error(
            code.logical_support(StabilizerType.Z), StabilizerType.X
        )
        assert code.is_logical_error(
            code.logical_support(StabilizerType.X), StabilizerType.Z
        )

    def test_stabilizer_is_not_a_logical_error(self, code, stype):
        # A single stabilizer of the opposite type has zero syndrome and must
        # not be flagged as a logical error.
        opposite = stype.opposite
        stabilizer = code.stabilizers(opposite)[0]
        error = frozenset(stabilizer.data_qubits)
        assert not code.syndrome_of(error, stype).any()
        assert not code.is_logical_error(error, stype)


class TestSyndromes:
    def test_empty_error_has_zero_syndrome(self, code, stype):
        assert not code.syndrome_of(frozenset(), stype).any()

    def test_single_bulk_error_flips_two_ancillas(self, code_d5):
        centre = Coord(4, 4)
        syndrome = code_d5.syndrome_of({centre}, StabilizerType.X)
        assert syndrome.sum() == 2

    def test_syndrome_is_linear(self, code, stype, rng):
        qubits = list(code.data_qubits)
        a = {q for q in qubits if rng.random() < 0.2}
        b = {q for q in qubits if rng.random() < 0.2}
        combined = frozenset(a) ^ frozenset(b)
        expected = (code.syndrome_of(a, stype) + code.syndrome_of(b, stype)) % 2
        assert np.array_equal(code.syndrome_of(combined, stype), expected)

    def test_ancilla_lookup_by_coordinate(self, code, stype):
        for ancilla in code.ancillas(stype):
            assert code.ancilla(stype, ancilla.coord) is ancilla
