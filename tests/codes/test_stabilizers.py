"""Tests for the stabilizer dataclass and parity-check construction."""

from __future__ import annotations

import numpy as np

from repro.codes.stabilizers import Stabilizer, parity_check_matrix
from repro.types import Coord, StabilizerType


def _sample_stabilizer() -> Stabilizer:
    return Stabilizer(
        ancilla=Coord(1, 1),
        type=StabilizerType.X,
        data_qubits=(Coord(0, 0), Coord(0, 2), Coord(2, 0), Coord(2, 2)),
    )


class TestStabilizer:
    def test_weight_counts_support(self):
        assert _sample_stabilizer().weight == 4

    def test_syndrome_bit_even_overlap(self):
        stabilizer = _sample_stabilizer()
        assert stabilizer.syndrome_bit({Coord(0, 0), Coord(2, 2)}) == 0

    def test_syndrome_bit_odd_overlap(self):
        stabilizer = _sample_stabilizer()
        assert stabilizer.syndrome_bit({Coord(0, 0)}) == 1
        assert stabilizer.syndrome_bit({Coord(0, 0), Coord(2, 0), Coord(2, 2)}) == 1

    def test_syndrome_bit_ignores_foreign_qubits(self):
        stabilizer = _sample_stabilizer()
        assert stabilizer.syndrome_bit({Coord(10, 10)}) == 0

    def test_stabilizers_are_hashable_and_frozen(self):
        a = _sample_stabilizer()
        b = _sample_stabilizer()
        assert a == b
        assert len({a, b}) == 1


class TestParityCheckMatrix:
    def test_matrix_entries_follow_support(self):
        stabilizer = _sample_stabilizer()
        data_index = {
            Coord(0, 0): 0,
            Coord(0, 2): 1,
            Coord(2, 0): 2,
            Coord(2, 2): 3,
            Coord(4, 4): 4,
        }
        matrix = parity_check_matrix([stabilizer], data_index)
        assert matrix.shape == (1, 5)
        assert matrix.dtype == np.uint8
        assert matrix.tolist() == [[1, 1, 1, 1, 0]]

    def test_multiple_rows_in_order(self):
        first = _sample_stabilizer()
        second = Stabilizer(
            ancilla=Coord(3, 3),
            type=StabilizerType.X,
            data_qubits=(Coord(2, 2), Coord(4, 4)),
        )
        data_index = {Coord(0, 0): 0, Coord(0, 2): 1, Coord(2, 0): 2, Coord(2, 2): 3, Coord(4, 4): 4}
        matrix = parity_check_matrix([first, second], data_index)
        assert matrix[1].tolist() == [0, 0, 0, 1, 1]

    def test_empty_support_gives_zero_row(self):
        stabilizer = Stabilizer(ancilla=Coord(1, 1), type=StabilizerType.Z)
        matrix = parity_check_matrix([stabilizer], {Coord(0, 0): 0})
        assert matrix.sum() == 0
