"""Tests for doubled-coordinate helpers."""

from __future__ import annotations

import pytest

from repro.codes.coordinates import (
    ancilla_coord,
    data_coord,
    data_grid_of,
    data_neighbors_of_ancilla,
    diagonal_ancilla_neighbors,
    manhattan_distance,
    plaquette_of,
    shared_data_qubit,
)
from repro.types import Coord


class TestCoordinateConversions:
    def test_data_coord_doubles_indices(self):
        assert data_coord(0, 0) == Coord(0, 0)
        assert data_coord(2, 3) == Coord(4, 6)

    def test_ancilla_coord_is_odd_odd(self):
        assert ancilla_coord(0, 0) == Coord(1, 1)
        assert ancilla_coord(-1, 1) == Coord(-1, 3)
        assert ancilla_coord(2, 0).is_ancilla

    def test_plaquette_of_inverts_ancilla_coord(self):
        for row in range(-1, 4):
            for col in range(-1, 4):
                assert plaquette_of(ancilla_coord(row, col)) == (row, col)

    def test_data_grid_of_inverts_data_coord(self):
        for row in range(4):
            for col in range(4):
                assert data_grid_of(data_coord(row, col)) == (row, col)

    def test_plaquette_of_rejects_data_coordinate(self):
        with pytest.raises(ValueError):
            plaquette_of(Coord(0, 0))

    def test_data_grid_of_rejects_ancilla_coordinate(self):
        with pytest.raises(ValueError):
            data_grid_of(Coord(1, 1))


class TestNeighborhoods:
    def test_ancilla_has_four_candidate_data_neighbors(self):
        neighbors = list(data_neighbors_of_ancilla(Coord(3, 3)))
        assert len(neighbors) == 4
        assert set(neighbors) == {Coord(2, 2), Coord(2, 4), Coord(4, 2), Coord(4, 4)}

    def test_data_neighbors_requires_ancilla(self):
        with pytest.raises(ValueError):
            list(data_neighbors_of_ancilla(Coord(2, 2)))

    def test_diagonal_ancilla_neighbors_are_distance_two(self):
        neighbors = list(diagonal_ancilla_neighbors(Coord(3, 3)))
        assert len(neighbors) == 4
        assert all(abs(n.row - 3) == 2 and abs(n.col - 3) == 2 for n in neighbors)

    def test_diagonal_ancilla_neighbors_requires_ancilla(self):
        with pytest.raises(ValueError):
            list(diagonal_ancilla_neighbors(Coord(0, 0)))

    def test_shared_data_qubit_is_midpoint(self):
        assert shared_data_qubit(Coord(1, 1), Coord(3, 3)) == Coord(2, 2)
        assert shared_data_qubit(Coord(3, 1), Coord(1, 3)) == Coord(2, 2)

    def test_shared_data_qubit_rejects_non_diagonal(self):
        with pytest.raises(ValueError):
            shared_data_qubit(Coord(1, 1), Coord(1, 5))


class TestManhattanDistance:
    def test_zero_for_same_coordinate(self):
        assert manhattan_distance(Coord(2, 2), Coord(2, 2)) == 0

    def test_symmetric(self):
        assert manhattan_distance(Coord(0, 0), Coord(4, 6)) == manhattan_distance(
            Coord(4, 6), Coord(0, 0)
        )

    def test_triangle_inequality_on_sample(self):
        a, b, c = Coord(0, 0), Coord(2, 4), Coord(6, 6)
        assert manhattan_distance(a, c) <= manhattan_distance(a, b) + manhattan_distance(b, c)
