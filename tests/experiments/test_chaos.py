"""Chaos harness: the PR's end-to-end acceptance test.

A fig14 d=5 sharded sweep is run twice against separate result stores — once
fault-free and once under an injected plan combining every fault class the
executor handles (a worker exception, a SIGKILLed worker, a hung shard, and
one store line corrupted on disk after its durable write).  After the faulted
store is reopened (quarantining the damaged line), resumed (recomputing only
the quarantined point), and compacted, its ``results.jsonl`` must be
**byte-identical** to the fault-free store's compacted file — at every worker
count.

The tier-1 smoke runs d=5 at workers 1 and 2; ``REPRO_CHAOS=1`` unlocks the
heavier ``chaos``-marked variants (d=7, adaptive runs under the same plan).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.fig14 import run as fig14_run
from repro.faults import FAULT_PLAN_ENV
from repro.store import ResultStore, StoreCorruptionWarning

#: One of every fault class, concentrated on distinct shards: shard 1 sees a
#: worker exception, shard 2 a SIGKILL (a genuine BrokenProcessPool when
#: pooled), shard 3 hangs past the shard timeout, and the first record
#: written to the store is corrupted on disk after its durable write.
CHAOS_PLAN = (
    "shard 1 attempt 0 raise; shard 2 attempt 0 kill; "
    "shard 3 attempt 0 hang 10; store line 0 corrupt"
)

chaos_lane = pytest.mark.skipif(
    not os.environ.get("REPRO_CHAOS"),
    reason="heavy chaos lane (set REPRO_CHAOS=1)",
)


def run_fig14(store, workers, distances=(5,), faulted=False, adaptive=False):
    params = dict(
        trials=60,
        seed=17,
        distances=distances,
        error_rates=(1e-2,),
        engine="sharded",
        workers=workers,
        chunk_trials=10,  # 6 shards per decoder run, so the plan hits real shards
        store=store,
    )
    if adaptive:
        params.update(target_ci_width=0.2, min_trials=20)
    if faulted:
        params.update(max_retries=3, shard_timeout=1.0)
    return fig14_run(**params)


def store_bytes(root):
    return (root / "results.jsonl").read_bytes()


def assert_chaos_equivalence(tmp_path, monkeypatch, workers, plan=CHAOS_PLAN, **kwargs):
    """The full faulted-store lifecycle against a fault-free reference."""
    clean_root = tmp_path / "clean"
    faulted_root = tmp_path / "faulted"

    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    clean = run_fig14(clean_root, workers=workers, **kwargs)
    ResultStore(clean_root).compact()

    # Phase 1 — the faulted sweep: every injected fault is absorbed and the
    # returned rows already match the fault-free run's.
    monkeypatch.setenv(FAULT_PLAN_ENV, plan)
    faulted = run_fig14(faulted_root, workers=workers, faulted=True, **kwargs)
    assert faulted.rows == clean.rows

    # Phase 2 — reopen: the corrupted line (durable on disk, served from the
    # in-memory index during phase 1) is quarantined with a warning.
    monkeypatch.delenv(FAULT_PLAN_ENV)
    with pytest.warns(StoreCorruptionWarning, match="line 0 at byte 0"):
        reopened = ResultStore(faulted_root)
        quarantined = reopened.quarantined
    assert len(quarantined) == 1

    # Phase 3 — resume: only the quarantined point is recomputed.
    resumed = run_fig14(reopened, workers=workers, **kwargs)
    assert resumed.rows == clean.rows

    # Phase 4 — compact to canonical form: byte-identical to fault-free.
    summary = reopened.compact()
    assert summary["lines_quarantined"] == 1
    assert store_bytes(faulted_root) == store_bytes(clean_root)


class TestChaosSmoke:
    """Tier-1: the acceptance scenario at d=5."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_faulted_store_converges_to_fault_free_bytes(
        self, tmp_path, monkeypatch, workers
    ):
        assert_chaos_equivalence(tmp_path, monkeypatch, workers=workers)


@chaos_lane
@pytest.mark.chaos
class TestChaosLane:
    """Heavier variants behind REPRO_CHAOS=1."""

    @pytest.mark.parametrize("workers", [2, 4])
    def test_d7_fixed_budget(self, tmp_path, monkeypatch, workers):
        assert_chaos_equivalence(
            tmp_path, monkeypatch, workers=workers, distances=(7,)
        )

    def test_d5_adaptive_with_checkpoint_truncation(self, tmp_path, monkeypatch):
        # The adaptive variant additionally truncates the first mid-point
        # checkpoint save; the CRC envelope rejects it on load, so resume
        # degrades to a clean recompute and the bytes still converge.
        assert_chaos_equivalence(
            tmp_path,
            monkeypatch,
            workers=2,
            adaptive=True,
            plan=CHAOS_PLAN + "; checkpoint truncate 0",
        )
