"""Tests for the experiment result container and table formatting."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult


def _sample() -> ExperimentResult:
    return ExperimentResult(
        experiment_id="figXX",
        title="Sample experiment",
        rows=[
            {"distance": 3, "coverage": 0.999, "big": 12345.678, "tiny": 1.2e-7},
            {"distance": 21, "coverage": 0.7, "big": 2.0, "tiny": 0.5},
        ],
        notes="A note.",
    )


class TestExperimentResult:
    def test_columns_come_from_first_row(self):
        assert _sample().columns == ("distance", "coverage", "big", "tiny")

    def test_column_extraction(self):
        assert _sample().column("distance") == [3, 21]

    def test_empty_result_formats_gracefully(self):
        empty = ExperimentResult(experiment_id="e", title="Empty")
        assert "(no rows)" in empty.format_table()

    def test_format_table_contains_header_and_values(self):
        table = _sample().format_table()
        assert "figXX" in table
        assert "distance" in table
        assert "21" in table

    def test_format_table_includes_notes(self):
        assert "A note." in _sample().format_table()

    def test_large_and_small_floats_use_scientific_notation(self):
        table = _sample().format_table()
        assert "1.235e+04" in table or "1.234e+04" in table
        assert "1.200e-07" in table

    def test_booleans_render_as_words(self):
        result = ExperimentResult("e", "t", rows=[{"ok": True}])
        assert "True" in result.format_table()

    def test_rows_align_in_columns(self):
        lines = _sample().format_table().splitlines()
        header = next(line for line in lines if line.startswith("distance"))
        divider = lines[lines.index(header) + 1]
        assert len(divider) == len(header)
