"""Fig. 16 composition: sharded coverage feeds the bandwidth pipeline identically.

Fig. 16 composes three stages — Clique coverage measurement, percentile
provisioning, stall simulation.  These tests pin that swapping the coverage
stage onto the sharded engine changes nothing downstream: the measured
off-chip rate feeds ``provision_for_percentile`` and ``StallSimulator``
exactly as a manual composition of the same seeded pieces does, and the rows
are bit-identical across worker counts.
"""

from __future__ import annotations

from repro.bandwidth.allocation import provision_for_percentile
from repro.bandwidth.stalling import StallSimulator
from repro.codes.rotated_surface import get_code
from repro.experiments import fig16
from repro.noise.models import PhenomenologicalNoise
from repro.noise.rng import point_seed
from repro.simulation.coverage import simulate_clique_coverage

OPERATING_POINTS = ((1e-2, 5),)
PERCENTILES = (90.0, 99.0)
SEED = 11
COVERAGE_CYCLES = 3000
PROGRAM_CYCLES = 1500
NUM_QUBITS = 200


def _run_fig16(workers):
    return fig16.run(
        operating_points=OPERATING_POINTS,
        percentiles=PERCENTILES,
        num_logical_qubits=NUM_QUBITS,
        program_cycles=PROGRAM_CYCLES,
        coverage_cycles=COVERAGE_CYCLES,
        seed=SEED,
        workers=workers,
        chunk_cycles=1000,
    )


class TestFig16ShardedComposition:
    def test_sharded_coverage_feeds_pipeline_identically_to_manual_loop(self):
        result = _run_fig16(workers=1)
        # Manually recompose the pipeline from the same seeded pieces: the
        # sharded coverage measurement, then the exact provisioning and stall
        # simulation the loop path performs.
        coverage = simulate_clique_coverage(
            get_code(5),
            PhenomenologicalNoise(1e-2),
            COVERAGE_CYCLES,
            rng=point_seed(SEED, 0),
            workers=1,
            chunk_cycles=1000,
        )
        offchip_rate = max(coverage.offchip_fraction, 1.0 / coverage.cycles)
        for percentile_index, percentile in enumerate(PERCENTILES):
            plan = provision_for_percentile(NUM_QUBITS, offchip_rate, percentile)
            stall = StallSimulator(
                plan, seed=point_seed(SEED, 0, percentile_index)
            ).run(PROGRAM_CYCLES)
            row = result.rows[percentile_index]
            assert row["offchip_rate_per_qubit"] == offchip_rate
            assert row["provisioned_decodes_per_cycle"] == plan.decodes_per_cycle
            assert row["bandwidth_reduction_x"] == plan.bandwidth_reduction
            assert row["execution_time_increase_pct"] == (
                100.0 * stall.execution_time_increase
            )
            assert row["completed"] == stall.completed

    def test_rows_are_identical_across_worker_counts(self):
        assert _run_fig16(workers=1).rows == _run_fig16(workers=4).rows
