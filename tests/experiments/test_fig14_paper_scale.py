"""Opt-in paper-scale Fig. 14 sweep (d = 3 .. 11, batched fallback, sharded).

The full sweep is far too heavy for the tier-1 fast path, so it is double
gated: marked ``slow`` and skipped unless ``REPRO_PAPER_SCALE=1``.  Run it
with

    REPRO_PAPER_SCALE=1 PYTHONPATH=src python -m pytest \
        tests/experiments/test_fig14_paper_scale.py -q

A trimmed-budget variant keeps the d=9/11 code paths exercised in minutes;
drop the ``trials`` override below for the full per-distance budgets.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import fig14

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(
        os.environ.get("REPRO_PAPER_SCALE") != "1",
        reason="paper-scale sweep is opt-in; set REPRO_PAPER_SCALE=1",
    ),
]


def test_paper_scale_sweep_covers_d3_to_d11():
    result = fig14.run(
        scale="paper",
        trials=200,  # trimmed budget; the grid and engine are the paper's
        error_rates=(1e-2,),
        seed=2026,
    )
    assert [row["code_distance"] for row in result.rows] == list(fig14.PAPER_DISTANCES)
    for row in result.rows:
        assert 0.0 <= row["baseline_logical_error_rate"] <= 1.0
        assert 0.0 <= row["clique_logical_error_rate"] <= 1.0
        assert 0.0 <= row["onchip_round_fraction"] <= 1.0
    assert "engine=sharded" in result.notes


def test_paper_budgets_cover_every_paper_distance():
    assert set(fig14.PAPER_TRIAL_BUDGETS) == set(fig14.PAPER_DISTANCES)
    # More statistics at small distances, where trials are cheap.
    budgets = [fig14.PAPER_TRIAL_BUDGETS[d] for d in fig14.PAPER_DISTANCES]
    assert budgets == sorted(budgets, reverse=True)
