"""Opt-in paper-scale Fig. 14 sweep (d = 3 .. 11, batched fallback, sharded).

The full sweep is far too heavy for the tier-1 fast path, so it is double
gated: marked ``slow`` and skipped unless ``REPRO_PAPER_SCALE=1``.  Run it
with

    REPRO_PAPER_SCALE=1 PYTHONPATH=src python -m pytest \
        tests/experiments/test_fig14_paper_scale.py -q

A trimmed-budget variant keeps the d=9/11 code paths exercised in minutes;
drop the ``trials`` override below for the full per-distance budgets.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import fig14

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(
        os.environ.get("REPRO_PAPER_SCALE") != "1",
        reason="paper-scale sweep is opt-in; set REPRO_PAPER_SCALE=1",
    ),
]


def test_paper_scale_sweep_covers_d3_to_d11():
    result = fig14.run(
        scale="paper",
        trials=200,  # trimmed budget; the grid and engine are the paper's
        error_rates=(1e-2,),
        seed=2026,
    )
    assert [row["code_distance"] for row in result.rows] == list(fig14.PAPER_DISTANCES)
    for row in result.rows:
        assert 0.0 <= row["baseline_logical_error_rate"] <= 1.0
        assert 0.0 <= row["clique_logical_error_rate"] <= 1.0
        assert 0.0 <= row["onchip_round_fraction"] <= 1.0
    assert "engine=sharded" in result.notes


def test_paper_budgets_cover_every_paper_distance():
    assert set(fig14.PAPER_TRIAL_BUDGETS) == set(fig14.PAPER_DISTANCES)
    # More statistics at small distances, where trials are cheap.
    budgets = [fig14.PAPER_TRIAL_BUDGETS[d] for d in fig14.PAPER_DISTANCES]
    assert budgets == sorted(budgets, reverse=True)


def test_three_tier_cascade_row_at_paper_depth():
    # The Section 8.1 payoff regime: at d >= 9 the three-tier cascade must
    # run end-to-end with per-tier stats, and the union-find middle tier must
    # absorb part of the off-chip stream so the exact matcher sees strictly
    # less bandwidth than the two-tier hierarchy ships it.
    result = fig14.compare_fallbacks(
        trials=400,
        distances=(9,),
        error_rate=1e-2,
        tiers="clique,union_find,mwpm",
        engine="sharded",
        seed=2026,
    )
    by_tiers = {row["tiers"]: row for row in result.rows}
    assert set(by_tiers) == {"clique,mwpm", "clique,union_find,mwpm"}
    two = by_tiers["clique,mwpm"]
    three = by_tiers["clique,union_find,mwpm"]
    # Same seed => identical error histories => identical tier-0 triage.
    assert three["onchip_round_fraction"] == two["onchip_round_fraction"]
    assert three["offchip_rounds_per_trial"] == two["offchip_rounds_per_trial"]
    # The middle tier resolved a real share of the off-chip trials.
    assert three["final_tier_rounds_per_trial"] < three["offchip_rounds_per_trial"]
    assert three["escalation_rates"].count("/") == 1
    for row in result.rows:
        assert 0.0 <= row["logical_error_rate"] <= 1.0
