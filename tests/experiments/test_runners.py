"""Smoke and shape tests for every experiment runner (small workloads)."""

from __future__ import annotations

import pytest

from repro.experiments import fig04, fig09, fig11, fig12, fig13, fig14, fig15, fig16, headline, table1


class TestFig04:
    def test_rows_cover_requested_points(self):
        result = fig04.run(cycles=2000, max_distance=9)
        assert all(row["code_distance"] <= 9 for row in result.rows)
        assert "Skipped" in result.notes

    def test_fractions_sum_to_100(self):
        result = fig04.run(cycles=2000, max_distance=9)
        for row in result.rows:
            total = row["all_zeros_pct"] + row["local_ones_pct"] + row["complex_pct"]
            assert total == pytest.approx(100.0)

    def test_trivial_fraction_dominates_at_practical_points(self):
        result = fig04.run(cycles=4000, max_distance=25)
        assert all(row["trivial_pct"] > 85.0 for row in result.rows)


class TestFig09:
    def test_two_percentiles_compared(self):
        result = fig09.run(coverage_cycles=3000, timeline_cycles=30, seed=1)
        assert len(result.rows) == 2
        fifty, ninety_nine = result.rows
        assert fifty["percentile"] == 50.0
        assert ninety_nine["percentile"] == 99.0
        assert ninety_nine["stall_fraction"] <= fifty["stall_fraction"]

    def test_timeline_rows_have_bandwidth_column(self):
        result = fig09.timeline(offchip_rate=0.05, cycles=20, seed=2)
        assert len(result.rows) == 20
        assert all(row["bandwidth"] == result.rows[0]["bandwidth"] for row in result.rows)


class TestFig11And12:
    def test_fig11_grid_dimensions(self):
        result = fig11.run(cycles=1500, distances=(3, 5), error_rates=(1e-3, 1e-2))
        assert len(result.rows) == 4
        assert {row["code_distance"] for row in result.rows} == {3, 5}

    def test_fig11_coverage_bounds(self):
        result = fig11.run(cycles=1500, distances=(3, 7), error_rates=(1e-2,))
        for row in result.rows:
            assert 0.0 <= row["coverage_pct"] <= 100.0
            assert row["coverage_ci_low_pct"] <= row["coverage_pct"] + 1e-9
            assert row["coverage_pct"] <= row["coverage_ci_high_pct"] + 1e-9

    def test_fig12_shares_are_percentages(self):
        result = fig12.run(cycles=1500, distances=(3, 7), error_rates=(1e-2,))
        for row in result.rows:
            assert 0.0 <= row["onchip_not_all_zeros_pct"] <= 100.0
            assert 0.0 <= row["nonzero_handled_onchip_pct"] <= 100.0


class TestFig13:
    def test_reports_all_three_schemes(self):
        result = fig13.run(cycles=1500, distances=(3, 7), error_rates=(1e-3,))
        for row in result.rows:
            assert row["clique_reduction_x"] > 0
            assert row["afs_reduction_x"] > 0
            assert row["zero_suppression_reduction_x"] > 0

    def test_clique_beats_afs_everywhere_on_the_default_grid(self):
        result = fig13.run(cycles=4000, distances=(5, 9, 13), error_rates=(1e-3, 5e-3))
        assert all(row["clique_vs_afs_x"] > 1.0 for row in result.rows)


class TestFig14:
    def test_small_run_has_expected_columns(self):
        result = fig14.run(trials=30, distances=(3,), error_rates=(2e-2,), seed=3)
        assert len(result.rows) == 1
        row = result.rows[0]
        assert 0.0 <= row["baseline_logical_error_rate"] <= 1.0
        assert 0.0 <= row["clique_logical_error_rate"] <= 1.0
        assert 0.0 <= row["onchip_round_fraction"] <= 1.0

    def test_point_config_keys_escalation_threshold_for_deep_cascades(self):
        common = dict(
            distance=5,
            error_rate=2e-2,
            rounds=None,
            trials=100,
            engine="batch",
            decoder="hierarchical",
            stop=None,
        )
        deep = ("clique", "union_find", "mwpm")
        # The implicit "auto" spelling and its resolved explicit value must
        # key identically; a different threshold must key differently.
        auto = fig14._memory_point_config(**common, tiers=deep)
        explicit = fig14._memory_point_config(
            **common, tiers=deep, escalation_cluster_size=8
        )
        other = fig14._memory_point_config(
            **common, tiers=deep, escalation_cluster_size=12
        )
        assert auto["escalation_cluster_size"] == 8  # d=5 resolves to 8
        assert auto == explicit
        assert other != auto
        # Two-tier cascades have no intermediate tier: the threshold must
        # stay out of their keys so warm stores keep hitting.
        two = fig14._memory_point_config(**common, tiers=("clique", "mwpm"))
        assert "escalation_cluster_size" not in two
        assert two == fig14._memory_point_config(
            **common, tiers=("clique", "mwpm"), escalation_cluster_size=12
        )


class TestFig15:
    def test_default_grid(self):
        result = fig15.run()
        assert [row["code_distance"] for row in result.rows] == list(fig15.DEFAULT_DISTANCES)

    def test_monotone_power_and_area(self):
        result = fig15.run()
        powers = [row["power_uw"] for row in result.rows]
        areas = [row["area_mm2"] for row in result.rows]
        assert powers == sorted(powers)
        assert areas == sorted(areas)


class TestFig16:
    def test_sweep_shape(self):
        result = fig16.run(
            operating_points=((1e-2, 5),),
            percentiles=(50.0, 99.0),
            coverage_cycles=2000,
            program_cycles=2000,
            seed=4,
        )
        assert len(result.rows) == 2

    def test_higher_percentile_trades_bandwidth_for_speed(self):
        result = fig16.run(
            operating_points=((1e-2, 9),),
            percentiles=(90.0, 99.9),
            coverage_cycles=4000,
            program_cycles=4000,
            seed=5,
        )
        first, second = result.rows
        assert first["bandwidth_reduction_x"] >= second["bandwidth_reduction_x"]
        if first["completed"] and second["completed"]:
            assert second["execution_time_increase_pct"] <= first["execution_time_increase_pct"] + 1.0


class TestTable1AndHeadline:
    def test_table1_matches_cell_library(self):
        result = table1.run()
        assert len(result.rows) == 6
        xor_row = next(row for row in result.rows if row["cell"] == "XOR2")
        assert xor_row["jj_count"] == 18

    def test_headline_claims_hold_on_small_run(self):
        result = headline.run(cycles=3000, points=((1e-2, 13), (1e-3, 9)))
        for row in result.rows:
            assert row["bandwidth_eliminated_pct"] > 70.0
            assert row["clique_vs_afs_x"] > 1.0
            assert row["nisqplus_power_x_at_d9"] == pytest.approx(37.0)
