"""Scheduled sweeps are byte-identical to sequential per-point sweeps.

The tentpole acceptance tests: fig11 and fig14 run against separate result
stores under ``schedule="sweep"`` (one persistent pool, shards interleaved
across points) and ``schedule="point"`` (the legacy pool-per-point path), at
workers 1 and 4, fixed-budget and Wilson-adaptive — and after ``store
compact`` the two ``results.jsonl`` files must be **byte-identical**.  The
chaos case SIGKILLs a worker mid-sweep on one specific point (the ``point
<p>`` plan qualifier) and still demands fault-free bytes.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig11 import run as fig11_run
from repro.experiments.fig14 import run as fig14_run
from repro.faults import FAULT_PLAN_ENV
from repro.store import ResultStore


def compacted_bytes(root):
    ResultStore(root).compact()
    return (root / "results.jsonl").read_bytes()


def run_fig14(store, schedule, workers, adaptive=False, **overrides):
    params = dict(
        trials=60,
        seed=17,
        distances=(3, 5),
        error_rates=(1e-2,),
        engine="sharded",
        workers=workers,
        chunk_trials=10,
        schedule=schedule,
        store=store,
    )
    if adaptive:
        params.update(target_ci_width=0.2, min_trials=20)
    params.update(overrides)
    return fig14_run(**params)


def run_fig11(store, schedule, workers, adaptive=False):
    params = dict(
        cycles=3_000,
        seed=23,
        distances=(3, 5),
        error_rates=(1e-3, 1e-2),
        workers=workers,
        chunk_cycles=500,
        schedule=schedule,
        store=store,
    )
    if adaptive:
        params.update(target_ci_width=0.05)
    return fig11_run(**params)


class TestFig14ScheduleIdentity:
    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("adaptive", [False, True])
    def test_sweep_equals_point_bytes(self, tmp_path, workers, adaptive):
        sequential = run_fig14(tmp_path / "point", "point", workers, adaptive)
        scheduled = run_fig14(tmp_path / "sweep", "sweep", workers, adaptive)
        assert scheduled.rows == sequential.rows
        assert compacted_bytes(tmp_path / "sweep") == compacted_bytes(
            tmp_path / "point"
        )

    def test_default_schedule_is_sweep_for_sharded_runs(self, tmp_path):
        defaulted = run_fig14(tmp_path / "default", None, 2)
        explicit = run_fig14(tmp_path / "sweep", "sweep", 2)
        assert defaulted.rows == explicit.rows
        assert compacted_bytes(tmp_path / "default") == compacted_bytes(
            tmp_path / "sweep"
        )

    def test_scheduled_sweep_resumes_from_partial_store(self, tmp_path):
        # A store holding only the d=3 points (from a narrower earlier run)
        # must hit for those and schedule only the d=5 points.
        store = tmp_path / "store"
        run_fig14(store, "sweep", 2, distances=(3,))
        full = run_fig14(store, "sweep", 2)
        fresh = run_fig14(tmp_path / "fresh", "sweep", 2)
        assert full.rows == fresh.rows
        assert compacted_bytes(store) == compacted_bytes(tmp_path / "fresh")

    def test_auto_chunk_identity_across_workers(self, tmp_path):
        # chunk="auto" resolves per (budget, workers, distance) — the worker
        # count enters the *chunk*, so stores only match at equal workers;
        # pin that the resolved-auto run equals its explicit-chunk twin.
        auto = run_fig14(tmp_path / "auto", "sweep", 2, chunk_trials="auto")
        # trials=60, workers=2 -> ceil(60/4) = 15 for both distances.
        explicit = run_fig14(tmp_path / "explicit", "sweep", 2, chunk_trials=15)
        assert auto.rows == explicit.rows
        assert compacted_bytes(tmp_path / "auto") == compacted_bytes(
            tmp_path / "explicit"
        )


class TestFig11ScheduleIdentity:
    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("adaptive", [False, True])
    def test_sweep_equals_point_bytes(self, tmp_path, workers, adaptive):
        sequential = run_fig11(tmp_path / "point", "point", workers, adaptive)
        scheduled = run_fig11(tmp_path / "sweep", "sweep", workers, adaptive)
        assert scheduled.rows == sequential.rows
        assert compacted_bytes(tmp_path / "sweep") == compacted_bytes(
            tmp_path / "point"
        )


class TestScheduledChaos:
    def test_cross_point_kill_mid_sweep_is_byte_identical(
        self, tmp_path, monkeypatch
    ):
        # SIGKILL the worker running shard 2 of the *second* scheduled point
        # (d=3 hierarchy run) while shards of other points share the pool:
        # the broken pool is respawned, the shard replays its stream, and the
        # store converges to fault-free bytes.
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        clean = run_fig14(tmp_path / "clean", "sweep", 4)
        monkeypatch.setenv(FAULT_PLAN_ENV, "point 1 shard 2 attempt 0 kill")
        faulted = run_fig14(
            tmp_path / "faulted", "sweep", 4, max_retries=3, shard_timeout=5.0
        )
        monkeypatch.delenv(FAULT_PLAN_ENV)
        assert faulted.rows == clean.rows
        assert compacted_bytes(tmp_path / "faulted") == compacted_bytes(
            tmp_path / "clean"
        )
