"""Store-backed sweep resume: the acceptance tests of the result store.

Covers the two headline behaviours:

* a fig14 paper-scale-shaped sweep killed mid-run and re-invoked with the
  same store recomputes only the missing points (kernel invocations are
  counted);
* a fully-warm fig11 re-run produces byte-identical rows to the cold run
  while invoking zero Monte-Carlo kernels;

plus the mid-point Wilson-wave checkpointing of adaptive runs.
"""

from __future__ import annotations

import pytest

import repro.experiments.coverage_sweep as coverage_sweep_module
import repro.experiments.fig14 as fig14_module
import repro.experiments.fig16 as fig16_module
from repro.experiments.registry import run_experiment
from repro.simulation.monte_carlo import until_wilson
from repro.simulation.shard import run_sharded_adaptive
from repro.store import ResultStore


class _BernoulliKernel:
    """Minimal shard kernel: (successes, trials) counts of a biased coin.

    Local clone of ``tests/simulation/shard_kernels.BernoulliKernel`` — these
    tests run every shard sequentially (``workers=1``), so picklability and
    the cross-directory import it would require don't matter here.
    """

    def __init__(self, rate: float) -> None:
        self.rate = rate

    def __call__(self, n_trials, rng):
        return (int((rng.random(n_trials) < self.rate).sum()), n_trials)


def bernoulli_successes(counts):
    return counts[0]

FIG14_PARAMS = dict(
    scale="paper",
    trials=24,
    distances=(3, 5),
    error_rates=(1e-2, 2e-2),
    workers=1,
    seed=11,
    # Pin the per-point dispatch path: these tests count
    # ``run_memory_experiment`` invocations, which the default sweep
    # schedule replaces with scheduler tasks (its resume behaviour is
    # pinned in test_schedule_identity.py).
    schedule="point",
)
FIG14_POINTS = 2 * 2 * 2  # distances x rates x decoders

FIG11_PARAMS = dict(
    cycles=400,
    distances=(3, 5),
    error_rates=(1e-2,),
    seed=5,
)


class _Killed(RuntimeError):
    """Stands in for SIGKILL/Ctrl-C in the mid-run kill tests."""


def _counting(monkeypatch, module, name, kill_after=None):
    """Wrap ``module.name`` to count invocations, optionally raising first."""
    calls = []
    original = getattr(module, name)

    def wrapper(*args, **kwargs):
        if kill_after is not None and len(calls) >= kill_after:
            raise _Killed(f"killed after {kill_after} {name} calls")
        calls.append(1)
        return original(*args, **kwargs)

    monkeypatch.setattr(module, name, wrapper)
    return calls


class TestFig14KilledSweepResume:
    def test_rerun_recomputes_only_missing_points(self, tmp_path, monkeypatch):
        store_dir = tmp_path / "store"
        killed_after = 3

        first_calls = _counting(
            monkeypatch, fig14_module, "run_memory_experiment", kill_after=killed_after
        )
        with pytest.raises(_Killed):
            run_experiment("fig14", store=str(store_dir), **FIG14_PARAMS)
        assert len(first_calls) == killed_after
        assert len(ResultStore(store_dir)) == killed_after

        monkeypatch.undo()
        second_calls = _counting(monkeypatch, fig14_module, "run_memory_experiment")
        resumed = run_experiment("fig14", store=str(store_dir), **FIG14_PARAMS)
        assert len(second_calls) == FIG14_POINTS - killed_after
        assert len(resumed.rows) == FIG14_POINTS // 2

        # The resumed sweep is indistinguishable from a never-interrupted one.
        monkeypatch.undo()
        clean = run_experiment("fig14", **FIG14_PARAMS)
        assert resumed.rows == clean.rows

    def test_force_recomputes_every_point(self, tmp_path, monkeypatch):
        store_dir = tmp_path / "store"
        run_experiment("fig14", store=str(store_dir), **FIG14_PARAMS)
        calls = _counting(monkeypatch, fig14_module, "run_memory_experiment")
        run_experiment("fig14", store=str(store_dir), force=True, **FIG14_PARAMS)
        assert len(calls) == FIG14_POINTS


class TestPackedStoreCompatibility:
    def test_unpacked_sweep_is_a_warm_hit_for_packed_rerun(
        self, tmp_path, monkeypatch
    ):
        # ``packed`` selects an execution strategy, not a result: like
        # ``workers`` it is excluded from store keys (and results are
        # bit-identical either way), so a sweep computed unpacked must be a
        # fully-warm hit when re-run packed — zero kernel invocations,
        # identical rows.
        store_dir = tmp_path / "store"
        cold = run_experiment(
            "fig14", store=str(store_dir), packed=False, **FIG14_PARAMS
        )
        calls = _counting(monkeypatch, fig14_module, "run_memory_experiment")
        warm = run_experiment(
            "fig14", store=str(store_dir), packed=True, **FIG14_PARAMS
        )
        assert calls == []
        assert warm.rows == cold.rows
        assert warm.format_table() == cold.format_table()


class TestFig11WarmRerun:
    def test_warm_rerun_is_byte_identical_with_zero_kernel_calls(
        self, tmp_path, monkeypatch
    ):
        store_dir = tmp_path / "store"
        cold = run_experiment("fig11", store=str(store_dir), **FIG11_PARAMS)

        calls = _counting(monkeypatch, coverage_sweep_module, "simulate_clique_coverage")
        warm = run_experiment("fig11", store=str(store_dir), **FIG11_PARAMS)
        assert calls == []
        assert warm.rows == cold.rows
        assert warm.format_table().encode() == cold.format_table().encode()

    def test_store_misses_across_different_configs(self, tmp_path, monkeypatch):
        store_dir = tmp_path / "store"
        run_experiment("fig11", store=str(store_dir), **FIG11_PARAMS)
        calls = _counting(monkeypatch, coverage_sweep_module, "simulate_clique_coverage")
        changed = dict(FIG11_PARAMS, cycles=FIG11_PARAMS["cycles"] + 100)
        run_experiment("fig11", store=str(store_dir), **changed)
        assert len(calls) == 2  # every point recomputed under the new config

    def test_fig12_and_fig11_do_not_share_entries(self, tmp_path):
        # Same coverage computation shape, but the experiment id is part of
        # the key (and the default seeds differ): entries must not collide.
        store_dir = tmp_path / "store"
        run_experiment("fig11", store=str(store_dir), **FIG11_PARAMS)
        run_experiment("fig12", store=str(store_dir), **FIG11_PARAMS)
        assert len(ResultStore(store_dir)) == 4


class TestFig16WarmRerun:
    PARAMS = dict(
        operating_points=((1e-2, 3),),
        percentiles=(90.0, 99.0),
        coverage_cycles=400,
        program_cycles=400,
        seed=3,
    )

    def test_warm_rerun_skips_coverage_and_stall_sims(self, tmp_path, monkeypatch):
        store_dir = tmp_path / "store"
        cold = run_experiment("fig16", store=str(store_dir), **self.PARAMS)
        coverage_calls = _counting(
            monkeypatch, fig16_module, "simulate_clique_coverage"
        )
        stall_calls = _counting(monkeypatch, fig16_module, "StallSimulator")
        warm = run_experiment("fig16", store=str(store_dir), **self.PARAMS)
        assert coverage_calls == []
        assert stall_calls == []
        assert warm.format_table() == cold.format_table()


class _CountingKernel:
    """Sequential-only kernel wrapper counting per-shard invocations."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.calls = []

    def __call__(self, n_trials, rng):
        self.calls.append(n_trials)
        return self.kernel(n_trials, rng)


class _KillingCheckpoint:
    """Checkpoint that dies after persisting ``kill_after_saves`` waves."""

    def __init__(self, inner, kill_after_saves):
        self.inner = inner
        self.kill_after_saves = kill_after_saves
        self.saves = 0

    def load(self):
        return self.inner.load()

    def save(self, state):
        self.inner.save(state)
        self.saves += 1
        if self.saves >= self.kill_after_saves:
            raise _Killed(f"killed after wave {self.saves}")

    def clear(self):
        self.inner.clear()


class TestAdaptiveWaveCheckpointing:
    KERNEL = _BernoulliKernel(0.3)
    STOP = dict(target_width=0.05, min_trials=100, max_trials=5000)
    RUN = dict(seed=17, chunk_trials=50, workers=1)

    def _stop(self):
        return until_wilson(**self.STOP)

    def test_killed_adaptive_run_resumes_with_identical_counts(self, tmp_path):
        uninterrupted = run_sharded_adaptive(
            self.KERNEL, self._stop(), bernoulli_successes, **self.RUN
        )
        assert uninterrupted.trials > self.STOP["min_trials"]  # multiple waves

        checkpoint = ResultStore(tmp_path).checkpoint("point")
        with pytest.raises(_Killed):
            run_sharded_adaptive(
                self.KERNEL,
                self._stop(),
                bernoulli_successes,
                checkpoint=_KillingCheckpoint(checkpoint, kill_after_saves=1),
                **self.RUN,
            )
        assert checkpoint.load() is not None  # wave 1 survived the kill

        counting = _CountingKernel(self.KERNEL)
        resumed = run_sharded_adaptive(
            counting, self._stop(), bernoulli_successes, checkpoint=checkpoint, **self.RUN
        )
        assert resumed == uninterrupted
        # Only the post-kill waves ran: strictly fewer trials than the total.
        assert 0 < sum(counting.calls) < uninterrupted.trials

    def test_completed_checkpoint_is_resume_idempotent(self, tmp_path):
        # The adaptive runner deliberately leaves the final state behind
        # (the owner clears it only after persisting the result, so a kill
        # in between costs nothing): re-running from a completed checkpoint
        # must return the identical result without spawning a single shard.
        checkpoint = ResultStore(tmp_path).checkpoint("point")
        first = run_sharded_adaptive(
            self.KERNEL, self._stop(), bernoulli_successes, checkpoint=checkpoint, **self.RUN
        )
        assert checkpoint.load() is not None
        counting = _CountingKernel(self.KERNEL)
        rerun = run_sharded_adaptive(
            counting, self._stop(), bernoulli_successes, checkpoint=checkpoint, **self.RUN
        )
        assert rerun == first
        assert counting.calls == []

    def test_sweep_cache_clears_checkpoint_only_after_persisting(self, tmp_path):
        # Through the store layer the lifecycle completes: the point's
        # checkpoint survives the adaptive run itself and is removed by
        # SweepCache.point once the result is durably in results.jsonl.
        from repro.store import SweepCache

        store = ResultStore(tmp_path)
        cache = SweepCache(store, "adaptive-test")
        config = {"kind": "bernoulli"}

        def compute():
            run = run_sharded_adaptive(
                self.KERNEL,
                self._stop(),
                bernoulli_successes,
                checkpoint=cache.checkpoint(config, self.RUN["seed"]),
                **self.RUN,
            )
            # Mid-compute (after convergence, before put) the state is still
            # on disk — this is the crash window the ordering protects.
            assert cache.checkpoint(config, self.RUN["seed"]).load() is not None
            from repro.simulation.coverage import CoverageResult

            return CoverageResult(1e-2, 3, 2, run.trials, run.successes, 0)

        cache.point(config, self.RUN["seed"], compute)
        assert cache.checkpoint(config, self.RUN["seed"]).load() is None

    def test_checkpoint_with_wrong_seed_is_ignored(self, tmp_path):
        checkpoint = ResultStore(tmp_path).checkpoint("point")
        with pytest.raises(_Killed):
            run_sharded_adaptive(
                self.KERNEL,
                self._stop(),
                bernoulli_successes,
                checkpoint=_KillingCheckpoint(checkpoint, kill_after_saves=1),
                **self.RUN,
            )
        other_run = dict(self.RUN, seed=self.RUN["seed"] + 1)
        counting = _CountingKernel(self.KERNEL)
        fresh = run_sharded_adaptive(
            counting, self._stop(), bernoulli_successes, checkpoint=checkpoint, **other_run
        )
        reference = run_sharded_adaptive(
            self.KERNEL, self._stop(), bernoulli_successes, **other_run
        )
        assert fresh == reference
        assert sum(counting.calls) == reference.trials  # started from scratch

    def test_checkpoint_with_wrong_chunk_is_ignored(self, tmp_path):
        checkpoint = ResultStore(tmp_path).checkpoint("point")
        with pytest.raises(_Killed):
            run_sharded_adaptive(
                self.KERNEL,
                self._stop(),
                bernoulli_successes,
                checkpoint=_KillingCheckpoint(checkpoint, kill_after_saves=1),
                **self.RUN,
            )
        other_run = dict(self.RUN, chunk_trials=25)
        fresh = run_sharded_adaptive(
            self.KERNEL, self._stop(), bernoulli_successes, checkpoint=checkpoint, **other_run
        )
        reference = run_sharded_adaptive(
            self.KERNEL, self._stop(), bernoulli_successes, **other_run
        )
        assert fresh == reference

    def test_fig14_adaptive_store_rerun_reuses_points(self, tmp_path):
        store_dir = tmp_path / "store"
        params = dict(
            trials=400,
            distances=(3,),
            error_rates=(1e-2,),
            adaptive=True,
            workers=1,
            seed=7,
        )
        cold = run_experiment("fig14", store=str(store_dir), **params)
        warm = run_experiment("fig14", store=str(store_dir), **params)
        assert warm.rows == cold.rows
        # Adaptive points that completed leave no checkpoints behind.
        checkpoints_dir = tmp_path / "store" / "checkpoints"
        assert not checkpoints_dir.exists() or not any(checkpoints_dir.iterdir())
