"""Tests for the experiment registry."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentNotFoundError
from repro.experiments.registry import available_experiments, get_experiment, run_experiment


EXPECTED_IDS = {
    "fig04",
    "fig09",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig14_fallbacks",
    "fig15",
    "fig16",
    "table1",
    "headline",
}


class TestRegistry:
    def test_every_paper_artifact_is_registered(self):
        assert set(available_experiments()) == EXPECTED_IDS

    def test_ids_are_sorted(self):
        assert list(available_experiments()) == sorted(available_experiments())

    def test_get_experiment_returns_callable(self):
        assert callable(get_experiment("fig15"))

    def test_unknown_id_raises_with_suggestions(self):
        with pytest.raises(ExperimentNotFoundError) as excinfo:
            get_experiment("fig99")
        assert "fig11" in str(excinfo.value)

    def test_run_experiment_forwards_kwargs(self):
        result = run_experiment("fig15", distances=(3, 5))
        assert len(result.rows) == 2
        assert result.experiment_id == "fig15"
