"""Adaptive fig14: Wilson-converged allocation beats the fixed paper budget.

Pins the PR's acceptance criterion: at d=5, p=1e-2 an adaptive run with a
0.02 target interval width reaches the target using (far) fewer trials than
the fixed ``PAPER_TRIAL_BUDGETS`` entry, deterministically per seed.
"""

from __future__ import annotations

from repro.clique.hierarchical import HierarchicalDecoder
from repro.experiments import fig14
from repro.experiments.fig14 import PAPER_TRIAL_BUDGETS
from repro.noise.models import PhenomenologicalNoise
from repro.simulation.memory import run_memory_experiment
from repro.simulation.monte_carlo import until_wilson


def _hierarchical(code, stype):
    return HierarchicalDecoder(code, stype)


class TestAdaptiveMemoryExperiment:
    def test_reaches_target_width_below_paper_budget_at_d5_p1e2(self, code_d5):
        budget = PAPER_TRIAL_BUDGETS[5]
        stop = until_wilson(0.02, min_trials=200, max_trials=budget)
        result = run_memory_experiment(
            code_d5,
            PhenomenologicalNoise(1e-2),
            _hierarchical,
            trials=budget,
            engine="sharded",
            adaptive=stop,
            rng=2026,
            workers=1,
            chunk_trials=200,
        )
        low, high = result.confidence_interval
        assert high - low <= 0.02
        assert result.trials < budget

    def test_adaptive_runs_are_deterministic(self, code_d3):
        stop = until_wilson(0.05, min_trials=100, max_trials=2000)
        runs = [
            run_memory_experiment(
                code_d3,
                PhenomenologicalNoise(2e-2),
                _hierarchical,
                trials=2000,
                engine="sharded",
                adaptive=stop,
                rng=7,
                workers=workers,
                chunk_trials=100,
            )
            for workers in (1, 2)
        ]
        assert runs[0].trials == runs[1].trials
        assert runs[0].logical_failures == runs[1].logical_failures
        assert runs[0].onchip_rounds == runs[1].onchip_rounds


class TestFig14AdaptiveRunner:
    def test_rows_record_consumed_trials_within_budget(self):
        result = fig14.run(
            distances=(3,),
            error_rates=(2e-2,),
            trials=600,
            adaptive=True,
            target_ci_width=0.08,
            min_trials=100,
            workers=1,
            seed=3,
        )
        row = result.rows[0]
        assert row["trials"] == 600
        assert 100 <= row["baseline_trials"] <= 600
        assert 100 <= row["clique_trials"] <= 600
        assert "adaptive" in result.notes

    def test_target_ci_width_alone_implies_adaptive(self):
        # A width target on a non-adaptive run must not be silently ignored.
        result = fig14.run(
            distances=(3,),
            error_rates=(2e-2,),
            trials=400,
            target_ci_width=0.1,
            min_trials=100,
            workers=1,
            seed=3,
        )
        assert "adaptive" in result.notes
        assert result.rows[0]["baseline_trials"] <= 400

    def test_adaptive_forces_sharded_engine(self):
        # adaptive=True on the laptop scale (default engine "batch") must
        # transparently switch to the sharded engine rather than erroring.
        result = fig14.run(
            distances=(3,),
            error_rates=(3e-2,),
            trials=300,
            adaptive=True,
            target_ci_width=0.1,
            min_trials=100,
            workers=1,
            seed=5,
        )
        assert "engine=sharded" in result.notes
