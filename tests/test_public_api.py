"""The top-level package must export a stable, importable public API."""

from __future__ import annotations

import pytest

import repro


class TestPublicApi:
    def test_version_is_semver_like(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    @pytest.mark.parametrize("name", repro.__all__)
    def test_every_exported_name_resolves(self, name):
        assert getattr(repro, name) is not None

    def test_core_workflow_is_constructible_from_the_top_level(self):
        code = repro.RotatedSurfaceCode(3)
        noise = repro.PhenomenologicalNoise(1e-2)
        decoder = repro.HierarchicalDecoder(code, repro.StabilizerType.X)
        assert decoder.code is code
        assert noise.data_error_rate == 1e-2

    def test_required_code_distance_exposed(self):
        assert repro.required_code_distance(1e-3, 1e-5) >= 3

    def test_setup_shim_exists_for_offline_installs(self):
        from pathlib import Path

        assert (Path(__file__).resolve().parents[1] / "setup.py").exists()
