"""Tests for the waveform generator and stall controller (Fig. 10)."""

from __future__ import annotations

import pytest

from repro.bandwidth.allocation import BandwidthPlan, provision_for_percentile
from repro.control.circuits import GateType, LogicalCircuit
from repro.control.waveform import StallController, WaveformGenerator
from repro.exceptions import ConfigurationError


def _circuit(depth: int = 20, num_qubits: int = 8, t_fraction: float = 0.1) -> LogicalCircuit:
    return LogicalCircuit.random_clifford_t(num_qubits, depth, t_fraction, seed=11)


class TestStallController:
    def test_no_demand_never_stalls(self):
        controller = StallController(BandwidthPlan(100, 0.0, 99.0, 1), seed=0)
        assert not any(controller.advance_cycle() for _ in range(100))
        assert controller.drained

    def test_overloaded_link_builds_backlog(self):
        controller = StallController(BandwidthPlan(1000, 0.5, 50.0, 10), seed=0)
        stalls = sum(controller.advance_cycle() for _ in range(50))
        assert stalls > 40
        assert controller.backlog > 0


class TestWaveformGenerator:
    def test_idle_layer_covers_every_qubit_with_identities(self):
        generator = WaveformGenerator(_circuit(num_qubits=5))
        layer = generator.idle_layer()
        assert len(layer) == 5
        assert all(gate.gate is GateType.I for gate in layer)

    def test_execution_without_stalls_matches_depth(self):
        circuit = _circuit(depth=25)
        generator = WaveformGenerator(circuit)
        controller = StallController(BandwidthPlan(100, 0.0, 99.0, 1), seed=0)
        trace = generator.execute(controller)
        assert trace.program_cycles == circuit.depth
        assert trace.stall_cycles == 0
        assert trace.execution_time_increase == 0.0

    def test_all_program_layers_execute_in_order(self):
        circuit = _circuit(depth=15)
        generator = WaveformGenerator(circuit)
        controller = StallController(provision_for_percentile(200, 0.02, 99.0), seed=1)
        trace = generator.execute(controller)
        executed = [cycle.layer_index for cycle in trace.cycles if not cycle.is_stall]
        assert executed == list(range(circuit.depth))

    def test_moderate_load_inserts_some_stalls(self):
        circuit = _circuit(depth=200, t_fraction=0.0)
        generator = WaveformGenerator(circuit)
        controller = StallController(provision_for_percentile(1000, 0.05, 90.0), seed=2)
        trace = generator.execute(controller, max_cycles=50_000)
        assert trace.program_cycles == circuit.depth
        assert trace.stall_cycles > 0

    def test_unstable_provisioning_raises(self):
        circuit = _circuit(depth=50, t_fraction=0.0)
        generator = WaveformGenerator(circuit)
        # Capacity far below the mean demand: execution can never finish.
        controller = StallController(BandwidthPlan(1000, 0.5, 50.0, 5), seed=3)
        with pytest.raises(ConfigurationError):
            generator.execute(controller, max_cycles=2000)

    def test_trace_accounting_is_consistent(self):
        circuit = _circuit(depth=30)
        generator = WaveformGenerator(circuit)
        controller = StallController(provision_for_percentile(500, 0.05, 95.0), seed=4)
        trace = generator.execute(controller, max_cycles=10_000)
        assert trace.total_cycles == trace.program_cycles + trace.stall_cycles
        assert trace.total_cycles == len(trace.cycles)
