"""Tests for the logical-circuit model."""

from __future__ import annotations

import pytest

from repro.control.circuits import GateType, LogicalCircuit, LogicalGate
from repro.exceptions import ConfigurationError


class TestLogicalGate:
    def test_single_qubit_gate(self):
        gate = LogicalGate(GateType.H, (0,))
        assert gate.targets == (0,)

    def test_cnot_requires_two_targets(self):
        with pytest.raises(ConfigurationError):
            LogicalGate(GateType.CNOT, (0,))

    def test_single_qubit_gate_rejects_two_targets(self):
        with pytest.raises(ConfigurationError):
            LogicalGate(GateType.T, (0, 1))

    def test_duplicate_targets_rejected(self):
        with pytest.raises(ConfigurationError):
            LogicalGate(GateType.CNOT, (1, 1))

    def test_decode_barriers(self):
        assert GateType.T.is_decode_barrier
        assert GateType.MEASURE.is_decode_barrier
        assert not GateType.H.is_decode_barrier
        assert not GateType.CNOT.is_decode_barrier


class TestLogicalCircuit:
    def test_rejects_nonpositive_qubits(self):
        with pytest.raises(ConfigurationError):
            LogicalCircuit(num_qubits=0)

    def test_add_layer_and_depth(self):
        circuit = LogicalCircuit(num_qubits=3)
        circuit.add_layer([LogicalGate(GateType.H, (0,)), LogicalGate(GateType.T, (2,))])
        circuit.add_layer([LogicalGate(GateType.CNOT, (0, 1))])
        assert circuit.depth == 2

    def test_add_layer_rejects_out_of_range_targets(self):
        circuit = LogicalCircuit(num_qubits=2)
        with pytest.raises(ConfigurationError):
            circuit.add_layer([LogicalGate(GateType.H, (5,))])

    def test_add_layer_rejects_qubit_collisions(self):
        circuit = LogicalCircuit(num_qubits=3)
        with pytest.raises(ConfigurationError):
            circuit.add_layer(
                [LogicalGate(GateType.H, (0,)), LogicalGate(GateType.CNOT, (0, 1))]
            )

    def test_t_layer_indices(self):
        circuit = LogicalCircuit(num_qubits=2)
        circuit.add_layer([LogicalGate(GateType.H, (0,))])
        circuit.add_layer([LogicalGate(GateType.T, (1,))])
        circuit.add_layer([LogicalGate(GateType.S, (0,))])
        assert circuit.t_layer_indices == (1,)

    def test_count_gates(self):
        circuit = LogicalCircuit(num_qubits=2)
        circuit.add_layer([LogicalGate(GateType.T, (0,)), LogicalGate(GateType.T, (1,))])
        assert circuit.count_gates(GateType.T) == 2
        assert circuit.count_gates(GateType.H) == 0


class TestRandomCircuit:
    def test_shape_and_reproducibility(self):
        a = LogicalCircuit.random_clifford_t(8, depth=20, t_fraction=0.2, seed=3)
        b = LogicalCircuit.random_clifford_t(8, depth=20, t_fraction=0.2, seed=3)
        assert a.depth == b.depth == 20
        assert a.layers == b.layers

    def test_every_layer_uses_each_qubit_at_most_once(self):
        circuit = LogicalCircuit.random_clifford_t(10, depth=30, seed=1)
        for layer in circuit.layers:
            targets = [target for gate in layer for target in gate.targets]
            assert len(targets) == len(set(targets))

    def test_t_fraction_zero_has_no_t_gates(self):
        circuit = LogicalCircuit.random_clifford_t(6, depth=15, t_fraction=0.0, seed=2)
        assert circuit.count_gates(GateType.T) == 0

    def test_invalid_t_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            LogicalCircuit.random_clifford_t(4, depth=5, t_fraction=1.5)
