"""Cross-file rules (KEY001, TIER001) on a scratch copy of the real tree.

The acceptance contract of KEY001 is regression-shaped: adding a fake
result-affecting keyword to a runner signature must fail lint until the
keyword is either folded into key resolution or classified key-neutral in
``repro.store.keys.KEY_EXCLUDED``.  These tests perform exactly that edit
sequence on a copied tree, never on the working one.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import lint_paths

FAKE_KWARG = "    fake_knob: float = 0.5,"


def edit(path: Path, old: str, new: str) -> None:
    """Targeted text replacement that fails loudly if the anchor is gone."""
    source = path.read_text(encoding="utf-8")
    assert old in source, f"edit anchor not found in {path}: {old!r}"
    path.write_text(source.replace(old, new), encoding="utf-8")


def line_of(path: Path, needle: str) -> int:
    """1-based line number of the (unique) line containing ``needle``."""
    matches = [
        number
        for number, text in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        )
        if needle in text
    ]
    assert len(matches) == 1, f"{needle!r} matched lines {matches} in {path}"
    return matches[0]

#: A decoder that satisfies only half the tier contract: ``decode`` is
#: concrete but the cascade's batched ``decode_events_bitmap`` hook is not.
LOOKUP_DECODER = '''\
"""Test-only tier decoder missing the batched cascade hook."""

from repro.decoders.base import Decoder


class LookupDecoder(Decoder):
    def decode(self, detections):
        raise NotImplementedError
'''


def inject_fake_kwarg(scratch_tree):
    edit(
        scratch_tree / "simulation/memory.py",
        "    packed: bool = True,\n",
        f"    packed: bool = True,\n{FAKE_KWARG}\n",
    )


class TestKey001:
    def test_the_real_tree_satisfies_the_contract(self, scratch_tree):
        assert (
            lint_paths(
                [
                    scratch_tree / "simulation/memory.py",
                    scratch_tree / "simulation/coverage.py",
                ]
            )
            == []
        )

    def test_unclassified_runner_keyword_fails_lint(self, scratch_tree):
        inject_fake_kwarg(scratch_tree)
        runner = scratch_tree / "simulation/memory.py"
        findings = lint_paths([runner])
        assert [(f.rule, f.line) for f in findings] == [
            ("KEY001", line_of(runner, "fake_knob"))
        ]
        assert "fake_knob" in findings[0].message
        assert "KEY_EXCLUDED" in findings[0].message

    def test_classifying_the_keyword_key_neutral_clears_it(self, scratch_tree):
        inject_fake_kwarg(scratch_tree)
        edit(
            scratch_tree / "store/keys.py",
            '    "packed": ',
            '    "fake_knob": "test-only knob; never touches the numbers",\n'
            '    "packed": ',
        )
        assert lint_paths([scratch_tree / "simulation/memory.py"]) == []

    def test_resolving_the_keyword_into_the_store_key_clears_it(self, scratch_tree):
        inject_fake_kwarg(scratch_tree)
        # The other legal classification: the key-resolution function folds
        # the knob into the point config.
        edit(
            scratch_tree / "experiments/fig14.py",
            '        "kind": "memory",\n',
            '        "kind": "memory",\n        "fake_knob": 0.5,\n',
        )
        assert lint_paths([scratch_tree / "simulation/memory.py"]) == []

    def test_resolver_docstring_mentions_do_not_classify(self, scratch_tree):
        # Writing the keyword's name into prose is not resolving it: only
        # parameters, dict keys, and subscript assignments count.
        inject_fake_kwarg(scratch_tree)
        edit(
            scratch_tree / "experiments/fig14.py",
            "The fully resolved, stream-determining config of one fig14 point.",
            "The fully resolved fake_knob config of one fig14 point.",
        )
        findings = lint_paths([scratch_tree / "simulation/memory.py"])
        assert [f.rule for f in findings] == ["KEY001"]

    def test_pragma_can_suppress_a_cross_file_finding(self, scratch_tree):
        inject_fake_kwarg(scratch_tree)
        edit(
            scratch_tree / "simulation/memory.py",
            FAKE_KWARG,
            f"{FAKE_KWARG}  # repro: allow[KEY001]",
        )
        assert lint_paths([scratch_tree / "simulation/memory.py"]) == []

    def test_missing_resolver_is_an_explicit_finding(self, scratch_tree):
        (scratch_tree / "experiments/fig14.py").unlink()
        findings = lint_paths([scratch_tree / "simulation/memory.py"])
        assert [f.rule for f in findings] == ["KEY001"]
        assert "_memory_point_config" in findings[0].message
        assert "cannot be verified" in findings[0].message

    def test_coverage_contract_is_checked_too(self, scratch_tree):
        runner = scratch_tree / "simulation/coverage.py"
        edit(
            runner,
            "    schedule: str | None = None,\n) -> CoverageResult:",
            "    schedule: str | None = None,\n"
            f"{FAKE_KWARG}\n"
            ") -> CoverageResult:",
        )
        findings = lint_paths([runner])
        assert [f.rule for f in findings] == ["KEY001"]
        assert "simulate_clique_coverage" in findings[0].message


class TestTier001:
    def test_the_real_registry_satisfies_the_contract(self, scratch_tree):
        assert lint_paths([scratch_tree / "decoders/registry.py"]) == []

    def test_registered_class_missing_the_batch_hook_fails_lint(self, scratch_tree):
        (scratch_tree / "decoders/lookup.py").write_text(
            LOOKUP_DECODER, encoding="utf-8"
        )
        registry = scratch_tree / "decoders/registry.py"
        edit(
            registry,
            "from repro.decoders.mwpm import MWPMDecoder\n",
            "from repro.decoders.lookup import LookupDecoder\n"
            "from repro.decoders.mwpm import MWPMDecoder\n",
        )
        edit(
            registry,
            '    "union_find": ClusteringDecoder,\n',
            '    "union_find": ClusteringDecoder,\n    "lookup": LookupDecoder,\n',
        )
        findings = lint_paths([registry])
        assert [(f.rule, f.line) for f in findings] == [
            ("TIER001", line_of(registry, '"lookup": LookupDecoder'))
        ]
        assert "decode_events_bitmap" in findings[0].message
        assert "'lookup'" in findings[0].message

    def test_unresolvable_registration_is_an_explicit_finding(self, scratch_tree):
        # A class the linter cannot trace to an in-tree module (here: defined
        # behind a local name with no import binding) is reported, not
        # silently trusted.
        registry = scratch_tree / "decoders/registry.py"
        edit(
            registry,
            '    "union_find": ClusteringDecoder,\n',
            '    "union_find": ClusteringDecoder,\n    "mystery": MysteryDecoder,\n',
        )
        findings = lint_paths([registry])
        assert [f.rule for f in findings] == ["TIER001"]
        assert "cannot statically resolve" in findings[0].message
