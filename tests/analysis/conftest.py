"""Shared fixtures for the linter test suite.

``scratch_tree`` copies the contract-bearing slice of the real package into
a temp directory, so cross-file rules (KEY001, TIER001) can be exercised —
and deliberately broken — without touching the working tree.
"""

from __future__ import annotations

from pathlib import Path

import pytest

#: The real package the scratch tree is copied from.
REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Files the cross-file contracts reference (runners, resolvers, the
#: exclusion list, the tier registry, and the decoder class hierarchy the
#: TIER001 base walk follows).
_COPIED = (
    "simulation/memory.py",
    "simulation/coverage.py",
    "experiments/fig14.py",
    "store/keys.py",
    "decoders/base.py",
    "decoders/registry.py",
    "decoders/mwpm.py",
    "decoders/union_find.py",
)

_PACKAGES = ("", "simulation", "experiments", "store", "decoders")


@pytest.fixture
def scratch_tree(tmp_path: Path) -> Path:
    """A copy of the contract slice of ``repro`` under a fresh package root.

    Returns the ``repro`` package directory; its parent is the package root
    ``split_root`` resolves, so package-relative paths match the real tree.
    """
    pkg = tmp_path / "pkgroot" / "repro"
    for sub in _PACKAGES:
        (pkg / sub).mkdir(parents=True, exist_ok=True)
        (pkg / sub / "__init__.py").write_text("", encoding="utf-8")
    for rel in _COPIED:
        (pkg / rel).write_text((REPO_SRC / rel).read_text(encoding="utf-8"))
    return pkg
