"""Framework behaviour: pragmas, selection, meta findings, path handling."""

from __future__ import annotations

import pytest

from repro.analysis import lint_paths, lint_source
from repro.analysis.core import META_PRAGMA, META_SYNTAX, all_rules, resolve_rules
from repro.exceptions import ConfigurationError

#: One DET001 violation (line 2) and one IMP001 violation (line 3).
TWO_RULE_SOURCE = "import numpy as np\nnp.random.seed(3)\nimport networkx\n"


class TestSuppressionPragmas:
    def test_same_line_pragma_suppresses_the_finding(self):
        assert (
            lint_source(
                "import numpy as np\n"
                "np.random.seed(3)  # repro: allow[DET001]\n",
                rel="repro/experiments/x.py",
            )
            == []
        )

    def test_pragma_can_name_several_rules(self):
        assert (
            lint_source(
                "import time\n"
                "import numpy as np\n"
                "buf = np.zeros(int(time.time()))  # repro: allow[DET002,DTY001]\n",
                rel="repro/simulation/x.py",
            )
            == []
        )

    def test_pragma_for_a_different_rule_does_not_suppress(self):
        findings = lint_source(
            "import numpy as np\n"
            "np.random.seed(3)  # repro: allow[DTY001]\n",
            rel="repro/experiments/x.py",
        )
        assert [f.rule for f in findings] == ["DET001"]

    def test_pragma_only_covers_its_own_line(self):
        findings = lint_source(
            "import numpy as np  # repro: allow[DET001]\nnp.random.seed(3)\n",
            rel="repro/experiments/x.py",
        )
        assert [(f.rule, f.line) for f in findings] == [("DET001", 2)]

    def test_unknown_rule_pragma_is_itself_a_finding(self):
        findings = lint_source("x = 1  # repro: allow[NOPE999]\n")
        assert [(f.rule, f.line) for f in findings] == [(META_PRAGMA, 1)]
        assert "NOPE999" in findings[0].message

    def test_empty_pragma_is_itself_a_finding(self):
        findings = lint_source("x = 1  # repro: allow[]\n")
        assert [(f.rule, f.line) for f in findings] == [(META_PRAGMA, 1)]

    def test_bad_pragma_does_not_suppress_and_both_are_reported(self):
        findings = lint_source(
            "import numpy as np\n"
            "np.random.seed(3)  # repro: allow[DET01]\n",  # typo'd id
            rel="repro/experiments/x.py",
        )
        assert sorted((f.rule, f.line) for f in findings) == [
            ("DET001", 2),
            (META_PRAGMA, 2),
        ]

    def test_meta_pragma_finding_is_not_suppressible(self):
        # LNT001 cannot be pragma'd away — it is not a valid rule id, so
        # naming it is itself another bad pragma.
        findings = lint_source("x = 1  # repro: allow[LNT001]\n")
        assert [f.rule for f in findings] == [META_PRAGMA]

    def test_pragma_syntax_inside_strings_is_ignored(self):
        # Docstrings and string literals documenting the pragma must neither
        # suppress findings nor trip LNT001 validation.
        findings = lint_source(
            '"""Docs: write `# repro: allow[BOGUS]` on the line."""\n'
            "import numpy as np\n"
            "np.random.seed(3)\n",
            rel="repro/experiments/x.py",
        )
        assert [(f.rule, f.line) for f in findings] == [("DET001", 3)]


class TestRuleSelection:
    def test_registry_has_the_eight_contract_rules(self):
        assert sorted(all_rules()) == [
            "DET001",
            "DET002",
            "DET003",
            "DTY001",
            "IMP001",
            "KEY001",
            "PKL001",
            "TIER001",
        ]

    def test_select_narrows_to_the_named_rules(self):
        findings = lint_source(TWO_RULE_SOURCE, select=["DET001"])
        assert [f.rule for f in findings] == ["DET001"]

    def test_ignore_drops_the_named_rules(self):
        findings = lint_source(TWO_RULE_SOURCE, ignore=["DET001"])
        assert [f.rule for f in findings] == ["IMP001"]

    def test_unknown_select_id_raises(self):
        with pytest.raises(ConfigurationError, match="NOPE999"):
            resolve_rules(select=["NOPE999"])

    def test_unknown_ignore_id_raises(self):
        with pytest.raises(ConfigurationError, match="--ignore"):
            resolve_rules(ignore=["DET001", "NOPE999"])

    def test_meta_findings_survive_select(self):
        # LNT001 is framework-level: selecting an unrelated rule must not
        # turn off pragma validation.
        findings = lint_source("x = 1  # repro: allow[NOPE999]\n", select=["DET001"])
        assert [f.rule for f in findings] == [META_PRAGMA]


class TestLintPaths:
    def test_nonexistent_path_is_a_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            lint_paths([tmp_path / "missing.py"])

    def test_syntax_error_becomes_a_finding_not_a_crash(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n", encoding="utf-8")
        clean = tmp_path / "also_linted.py"
        clean.write_text("import numpy as np\nnp.random.seed(3)\n", encoding="utf-8")
        findings = lint_paths([tmp_path])
        # The broken file reports LNT002 and does not mask the sibling.
        assert [(f.rule, f.path.rsplit("/", 1)[-1]) for f in findings] == [
            ("DET001", "also_linted.py"),
            (META_SYNTAX, "broken.py"),
        ]

    def test_directory_findings_are_sorted_and_deduplicated(self, tmp_path):
        for name in ("b.py", "a.py"):
            (tmp_path / name).write_text(
                "import numpy as np\nnp.random.seed(3)\nnp.random.rand(2)\n",
                encoding="utf-8",
            )
        # Passing the directory and a member file must not double-report.
        findings = lint_paths([tmp_path, tmp_path / "a.py"])
        coordinates = [(f.path.rsplit("/", 1)[-1], f.line) for f in findings]
        assert coordinates == [("a.py", 2), ("a.py", 3), ("b.py", 2), ("b.py", 3)]

    def test_files_outside_any_package_are_not_kernel_scope(self, tmp_path):
        # No __init__.py chain: path-scoped rules must not fire whatever the
        # directory happens to be called.
        kernel_lookalike = tmp_path / "simulation"
        kernel_lookalike.mkdir()
        target = kernel_lookalike / "x.py"
        target.write_text("import numpy as np\nbuf = np.zeros(4)\n", encoding="utf-8")
        assert lint_paths([target]) == []
