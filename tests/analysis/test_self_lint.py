"""Tier-1 gate: the repo's own code lints clean.

These tests are the CI teeth of the linter — every contract rule runs over
``src/repro`` (the linter included: it lints itself) and ``benchmarks``.
They carry the ``lint`` marker so the lane can also be run alone:

    PYTHONPATH=src python -m pytest -m lint -q
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import format_text, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]

pytestmark = pytest.mark.lint


def assert_lints_clean(*paths: Path) -> None:
    findings = lint_paths(paths)
    assert findings == [], "\n" + format_text(findings)


def test_src_repro_lints_clean():
    assert_lints_clean(REPO_ROOT / "src" / "repro")


def test_benchmarks_lint_clean():
    assert_lints_clean(REPO_ROOT / "benchmarks")


def test_the_linter_lints_itself_clean():
    # Subsumed by the src/repro run, but pinned separately so a future
    # reorganisation (e.g. moving analysis/ out of the package) keeps the
    # self-check.
    assert_lints_clean(REPO_ROOT / "src" / "repro" / "analysis")
