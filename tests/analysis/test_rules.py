"""Per-rule good/bad fixture tests for the module-local lint rules.

Every bad fixture pins *exactly one* finding with its rule id and line
(the acceptance contract of the linter: seeding a violation yields one
finding with correct coordinates); every good fixture pins zero.
"""

from __future__ import annotations

from repro.analysis import lint_source

#: Default virtual locations: kernel scope and non-kernel scope.
KERNEL = "repro/simulation/snippet.py"
OUTSIDE = "repro/experiments/snippet.py"


def findings_of(source: str, rel: str) -> list[tuple[str, int]]:
    return [(f.rule, f.line) for f in lint_source(source, rel=rel)]


def assert_one(source: str, rel: str, rule: str, line: int) -> None:
    assert findings_of(source, rel) == [(rule, line)]


def assert_clean(source: str, rel: str) -> None:
    assert findings_of(source, rel) == []


class TestDet001GlobalRng:
    def test_np_random_seed_is_flagged(self):
        assert_one("import numpy as np\nnp.random.seed(3)\n", OUTSIDE, "DET001", 2)

    def test_aliasing_does_not_hide_the_call(self):
        assert_one(
            "from numpy import random\nrandom.shuffle([1, 2])\n",
            OUTSIDE,
            "DET001",
            2,
        )
        assert_one(
            "import numpy.random as npr\nnpr.rand(3)\n", OUTSIDE, "DET001", 2
        )

    def test_unseeded_default_rng_is_flagged(self):
        assert_one(
            "from numpy.random import default_rng\nrng = default_rng()\n",
            OUTSIDE,
            "DET001",
            2,
        )

    def test_seeded_default_rng_passes(self):
        assert_clean("import numpy as np\nrng = np.random.default_rng(7)\n", OUTSIDE)

    def test_explicit_generator_machinery_passes(self):
        assert_clean(
            "import numpy as np\n"
            "ss = np.random.SeedSequence(7)\n"
            "rng = np.random.Generator(np.random.PCG64(ss))\n",
            OUTSIDE,
        )

    def test_stdlib_random_is_flagged(self):
        assert_one("import random\nrandom.random()\n", OUTSIDE, "DET001", 2)

    def test_unseeded_stdlib_random_instance_is_flagged(self):
        assert_one("import random\nr = random.Random()\n", OUTSIDE, "DET001", 2)

    def test_seeded_stdlib_random_instance_passes(self):
        assert_clean("import random\nr = random.Random(7)\n", OUTSIDE)

    def test_the_rng_module_itself_is_exempt(self):
        assert_clean("import numpy as np\nnp.random.seed(3)\n", "repro/noise/rng.py")

    def test_local_names_are_not_mistaken_for_the_module(self):
        # A local variable that happens to be called `random` is not an
        # import binding; the alias resolver must return None for it.
        assert_clean("random = object()\nrandom.random()\n", OUTSIDE)


class TestDet002WallClock:
    def test_time_time_in_kernel_scope_is_flagged(self):
        assert_one(
            "import time\n\ndef kernel():\n    return time.time()\n",
            KERNEL,
            "DET002",
            4,
        )

    def test_duration_probes_pass(self):
        assert_clean(
            "import time\nt0 = time.monotonic()\nt1 = time.perf_counter()\n",
            KERNEL,
        )

    def test_outside_kernel_scope_is_out_of_scope(self):
        assert_clean("import time\ntime.time()\n", OUTSIDE)

    def test_bitplane_module_counts_as_kernel_scope(self):
        assert_one("import time\ntime.time()\n", "repro/bitplane.py", "DET002", 2)

    def test_uuid_and_os_urandom_are_flagged(self):
        assert_one("import uuid\nuuid.uuid4()\n", KERNEL, "DET002", 2)
        assert_one("import os\nos.urandom(8)\n", KERNEL, "DET002", 2)

    def test_argless_seedsequence_is_flagged(self):
        assert_one(
            "import numpy as np\nss = np.random.SeedSequence()\n",
            KERNEL,
            "DET002",
            2,
        )

    def test_seeded_seedsequence_passes(self):
        assert_clean("import numpy as np\nss = np.random.SeedSequence(7)\n", KERNEL)


class TestDet003SetOrder:
    def test_for_loop_over_set_call_is_flagged(self):
        assert_one(
            "def f(xs):\n    for x in set(xs):\n        pass\n", KERNEL, "DET003", 2
        )

    def test_for_loop_over_set_literal_is_flagged(self):
        assert_one("for x in {1, 2}:\n    pass\n", KERNEL, "DET003", 1)

    def test_list_over_set_comprehension_is_flagged(self):
        assert_one(
            "def f(xs):\n    return list({x for x in xs})\n", KERNEL, "DET003", 2
        )

    def test_set_union_operands_are_recognised(self):
        assert_one(
            "def f(a, b):\n    for x in set(a) | set(b):\n        pass\n",
            KERNEL,
            "DET003",
            2,
        )

    def test_sorted_set_passes(self):
        assert_clean(
            "def f(a, b):\n"
            "    for x in sorted(set(a)):\n"
            "        pass\n"
            "    return sorted(set(a) | set(b))\n",
            KERNEL,
        )

    def test_outside_kernel_scope_is_out_of_scope(self):
        assert_clean("def f(xs):\n    return list(set(xs))\n", OUTSIDE)


class TestImp001LazyHeavyImports:
    def test_top_level_import_is_flagged_everywhere(self):
        assert_one("import networkx\n", OUTSIDE, "IMP001", 1)
        assert_one("import networkx as nx\n", KERNEL, "IMP001", 1)

    def test_submodule_and_from_forms_are_flagged(self):
        assert_one("import matplotlib.pyplot as plt\n", OUTSIDE, "IMP001", 1)
        assert_one("from matplotlib import pyplot\n", OUTSIDE, "IMP001", 1)
        assert_one("from networkx.algorithms import matching\n", OUTSIDE, "IMP001", 1)

    def test_function_local_import_passes(self):
        assert_clean(
            "def plot():\n    import matplotlib.pyplot as plt\n    return plt\n",
            OUTSIDE,
        )

    def test_type_checking_import_passes(self):
        assert_clean(
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    import networkx\n",
            OUTSIDE,
        )

    def test_light_imports_pass(self):
        assert_clean("import numpy as np\nfrom pathlib import Path\n", OUTSIDE)


class TestDty001ExplicitDtype:
    def test_dtypeless_zeros_in_kernel_scope_is_flagged(self):
        assert_one("import numpy as np\nbuf = np.zeros(4)\n", KERNEL, "DTY001", 2)

    def test_from_import_alias_is_resolved(self):
        assert_one("from numpy import zeros\nbuf = zeros(4)\n", KERNEL, "DTY001", 2)

    def test_dtype_keyword_passes(self):
        assert_clean(
            "import numpy as np\nbuf = np.zeros(4, dtype=np.uint8)\n", KERNEL
        )

    def test_positional_dtype_passes(self):
        assert_clean("import numpy as np\nbuf = np.zeros(4, np.uint8)\n", KERNEL)

    def test_full_needs_three_positionals(self):
        assert_one(
            "import numpy as np\nbuf = np.full((2, 2), 0)\n", KERNEL, "DTY001", 2
        )
        assert_clean("import numpy as np\nbuf = np.full((2, 2), 0, np.uint8)\n", KERNEL)

    def test_kwargs_splat_is_given_the_benefit_of_the_doubt(self):
        assert_clean(
            "import numpy as np\n\ndef alloc(**kw):\n    return np.zeros(4, **kw)\n",
            KERNEL,
        )

    def test_outside_kernel_scope_is_out_of_scope(self):
        assert_clean("import numpy as np\nbuf = np.zeros(4)\n", OUTSIDE)


class TestPkl001PicklableKernels:
    def test_lambda_kernel_is_flagged(self):
        assert_one(
            "from repro.simulation.shard import run_sharded\n"
            "run_sharded(lambda rng: 0, trials=10)\n",
            OUTSIDE,
            "PKL001",
            2,
        )

    def test_lambda_via_kernel_keyword_is_flagged(self):
        assert_one(
            "from repro.simulation.shard import run_sharded\n"
            "run_sharded(trials=10, kernel=lambda rng: 0)\n",
            OUTSIDE,
            "PKL001",
            2,
        )

    def test_locally_defined_kernel_is_flagged(self):
        assert_one(
            "from repro.simulation.shard import run_sharded\n"
            "\n"
            "def outer():\n"
            "    def kernel(rng):\n"
            "        return 0\n"
            "    return run_sharded(kernel, trials=10)\n",
            OUTSIDE,
            "PKL001",
            6,
        )

    def test_partial_wrapping_a_local_function_is_flagged(self):
        assert_one(
            "import functools\n"
            "from repro.simulation.shard import run_sharded_adaptive\n"
            "\n"
            "def outer():\n"
            "    def kernel(rng, scale):\n"
            "        return 0\n"
            "    bound = functools.partial(kernel, scale=2)\n"
            "    return run_sharded_adaptive(functools.partial(kernel, 2), trials=9)\n",
            OUTSIDE,
            "PKL001",
            8,
        )

    def test_module_level_kernel_passes(self):
        assert_clean(
            "from repro.simulation.shard import run_sharded\n"
            "\n"
            "def kernel(rng):\n"
            "    return 0\n"
            "\n"
            "def main():\n"
            "    return run_sharded(kernel, trials=10)\n",
            OUTSIDE,
        )

    def test_attribute_spelled_runner_is_recognised(self):
        assert_one(
            "from repro.simulation import shard\n"
            "shard.run_sharded(lambda rng: 0, trials=10)\n",
            OUTSIDE,
            "PKL001",
            2,
        )
