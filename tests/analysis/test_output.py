"""Output formatting: human text and byte-stable JSON."""

from __future__ import annotations

import json

from repro.analysis import format_json, format_text
from repro.analysis.core import Finding
from repro.analysis.reporting import JSON_VERSION

FINDINGS = [
    Finding("src/b.py", 9, 5, "DTY001", "np.zeros() without an explicit dtype"),
    Finding("src/a.py", 2, 1, "DET001", "numpy.random.seed() uses the global stream"),
    Finding("src/a.py", 2, 1, "DET002", "wall clock in kernel code"),
]


class TestTextOutput:
    def test_clean_run_says_so(self):
        assert format_text([]) == "clean: no findings"

    def test_one_line_per_finding_plus_summary(self):
        text = format_text(FINDINGS[:1])
        assert text == (
            "src/b.py:9:5: DTY001 np.zeros() without an explicit dtype\n"
            "1 finding(s)"
        )

    def test_coordinates_are_editor_clickable(self):
        assert FINDINGS[0].coordinate == "src/b.py:9:5"


class TestJsonOutput:
    def test_payload_round_trips_with_version(self):
        payload = json.loads(format_json(FINDINGS))
        assert payload["version"] == JSON_VERSION
        assert [f["rule"] for f in payload["findings"]] == [
            "DET001",
            "DET002",
            "DTY001",
        ]
        assert payload["findings"][0] == {
            "path": "src/a.py",
            "line": 2,
            "col": 1,
            "rule": "DET001",
            "message": "numpy.random.seed() uses the global stream",
        }

    def test_output_is_byte_stable_under_input_order(self):
        # Same findings, any order, any duplication of the call: identical
        # bytes — CI can cache or diff the artifact.
        forward = format_json(FINDINGS)
        assert format_json(list(reversed(FINDINGS))) == forward
        assert format_json(sorted(FINDINGS)) == forward

    def test_empty_payload_is_stable_too(self):
        assert format_json([]) == f'{{"findings":[],"version":{JSON_VERSION}}}'
