"""Smoke lane for the ``examples/`` scripts.

The examples are the repo's public quickstarts, and several engine refactors
have already churned the API underneath them — this lane subprocess-runs
every script with shrunken Monte-Carlo budgets (the ``REPRO_EXAMPLE_*`` env
knobs) so an API break surfaces in tier-1 instead of in a user's terminal.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
EXAMPLES_DIR = REPO_ROOT / "examples"

#: script name -> (extra env, a string its stdout must contain)
EXAMPLES = {
    "quickstart.py": ({}, "Logical qubit survived"),
    "decoder_accuracy_study.py": (
        {"REPRO_EXAMPLE_TRIALS": "40"},
        "logical error rate",
    ),
    "bandwidth_provisioning.py": (
        {"REPRO_EXAMPLE_CYCLES": "2000"},
        "bandwidth x",
    ),
    "cryogenic_budget_planner.py": (
        {"REPRO_EXAMPLE_CYCLES": "2000"},
        "Clique decoder",
    ),
    "fault_tolerant_sweep.py": (
        {"REPRO_EXAMPLE_TRIALS": "64"},
        "bit-identical",
    ),
}


def _run_example(name: str, extra_env: dict[str, str]) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.update(extra_env)
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
        cwd=REPO_ROOT,
    )


def test_every_example_is_covered_by_this_lane():
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLES), (
        "examples/ and the smoke lane drifted apart; add the new script here"
    )


@pytest.mark.parametrize("name", sorted(EXAMPLES))
def test_example_runs_clean(name):
    extra_env, marker = EXAMPLES[name]
    completed = _run_example(name, extra_env)
    assert completed.returncode == 0, (
        f"{name} exited {completed.returncode}\n"
        f"stdout:\n{completed.stdout}\nstderr:\n{completed.stderr}"
    )
    assert marker in completed.stdout
    assert completed.stderr == ""
