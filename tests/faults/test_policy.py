"""Unit tests for FaultPolicy validation and the deterministic backoff."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.faults import FaultPolicy, FaultReport, SkippedShard


class TestFaultPolicyValidation:
    def test_defaults_are_valid_and_not_passive(self):
        policy = FaultPolicy()
        assert policy.max_retries == 2
        assert policy.shard_timeout is None
        assert policy.on_exhausted == "raise"
        assert not policy.is_passive

    def test_zero_retries_without_timeout_is_passive(self):
        assert FaultPolicy(max_retries=0).is_passive
        assert not FaultPolicy(max_retries=0, shard_timeout=5.0).is_passive
        assert not FaultPolicy(max_retries=1).is_passive

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_base": -0.1},
            {"backoff_cap": -1.0},
            {"shard_timeout": 0},
            {"shard_timeout": -2.5},
            {"on_exhausted": "ignore"},
            {"max_pool_respawns": -1},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultPolicy(**kwargs)


class TestBackoffDelay:
    def test_deterministic_for_fixed_seed_shard_retry(self):
        policy = FaultPolicy(backoff_base=0.1)
        first = policy.backoff_delay(42, 3, 1)
        assert first == policy.backoff_delay(42, 3, 1)

    def test_distinct_shards_and_retries_decorrelate(self):
        policy = FaultPolicy(backoff_base=0.1)
        delays = {
            policy.backoff_delay(42, shard, retry)
            for shard in range(4)
            for retry in (1, 2)
        }
        assert len(delays) == 8

    def test_exponential_envelope_with_jitter_band(self):
        policy = FaultPolicy(backoff_base=0.1, backoff_cap=100.0)
        for retry in (1, 2, 3, 4):
            ceiling = 0.1 * 2 ** (retry - 1)
            delay = policy.backoff_delay(7, 0, retry)
            assert ceiling * 0.5 <= delay < ceiling

    def test_cap_bounds_the_delay(self):
        policy = FaultPolicy(backoff_base=1.0, backoff_cap=2.0)
        assert policy.backoff_delay(7, 0, 10) < 2.0

    def test_zero_base_means_no_sleep(self):
        assert FaultPolicy(backoff_base=0.0).backoff_delay(7, 0, 3) == 0.0

    def test_retry_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FaultPolicy().backoff_delay(7, 0, 0)


class TestFaultReport:
    def test_aggregates(self):
        report = FaultReport()
        assert report.faults_handled == 0
        assert report.skipped_trials == 0
        report.retries = 3
        report.pool_respawns = 1
        report.skipped_shards.append(
            SkippedShard(shard_index=2, trials=500, attempts=4, error="boom")
        )
        assert report.faults_handled == 5
        assert report.skipped_trials == 500
