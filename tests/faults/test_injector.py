"""Unit tests for the fault-plan grammar and the injection harness."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, ShardTimeoutError
from repro.faults import (
    FAULT_PLAN_ENV,
    FaultInjector,
    FaultPlan,
    InjectedWorkerCrash,
    InjectedWorkerError,
    ShardFault,
    parse_fault_plan,
)


class TestPlanGrammar:
    def test_full_plan_parses(self):
        plan = parse_fault_plan(
            "shard 1 attempt 0 raise; shard 2 attempts 0-1 kill; "
            "shard 0 attempt 3 hang 5.5; store line 4 corrupt; "
            "checkpoint truncate 1"
        )
        assert plan.shard_faults == (
            ShardFault(1, 0, 0, "raise"),
            ShardFault(2, 0, 1, "kill"),
            ShardFault(0, 3, 3, "hang", 5.5),
        )
        assert plan.corrupt_store_lines == (4,)
        assert plan.truncate_checkpoint_saves == (1,)
        assert not plan.is_empty

    def test_attempts_default_to_first(self):
        plan = parse_fault_plan("shard 3 raise")
        assert plan.shard_faults == (ShardFault(3, 0, 0, "raise"),)

    def test_checkpoint_truncate_defaults_to_first_save(self):
        assert parse_fault_plan("checkpoint truncate").truncate_checkpoint_saves == (0,)

    def test_case_insensitive_and_whitespace_tolerant(self):
        plan = parse_fault_plan("  SHARD 1 Attempts 2-4 KILL ;; Store Line 0 Corrupt ")
        assert plan.shard_faults == (ShardFault(1, 2, 4, "kill"),)
        assert plan.corrupt_store_lines == (0,)

    def test_empty_text_is_empty_plan(self):
        assert parse_fault_plan("").is_empty
        assert parse_fault_plan(" ; ; ").is_empty

    @pytest.mark.parametrize(
        "text",
        [
            "shard",  # missing index
            "shard x raise",  # bad index
            "shard -1 raise",  # negative index
            "shard 1",  # missing action
            "shard 1 explode",  # unknown action
            "shard 1 hang",  # hang without duration
            "shard 1 hang zero",  # bad duration
            "shard 1 hang 0",  # non-positive duration
            "shard 1 attempts 2-1 raise",  # inverted range
            "shard 1 attempt raise",  # missing range value
            "shard 1 raise extra",  # trailing tokens
            "store line corrupt",  # missing line number
            "store row 1 corrupt",  # wrong keyword
            "checkpoint truncate 1 2",  # too many tokens
            "disk full",  # unknown subject
        ],
    )
    def test_malformed_clauses_rejected(self, text):
        with pytest.raises(ConfigurationError):
            parse_fault_plan(text)


class TestPlanQueries:
    def test_shard_fault_matching_by_attempt_window(self):
        plan = parse_fault_plan("shard 2 attempts 1-3 raise")
        assert plan.shard_fault(2, 0) is None
        assert plan.shard_fault(2, 1) is not None
        assert plan.shard_fault(2, 3) is not None
        assert plan.shard_fault(2, 4) is None
        assert plan.shard_fault(1, 1) is None

    def test_store_and_checkpoint_queries(self):
        plan = parse_fault_plan("store line 3 corrupt; checkpoint truncate 2")
        assert plan.corrupts_store_line(3)
        assert not plan.corrupts_store_line(0)
        assert plan.truncates_checkpoint_save(2)
        assert not plan.truncates_checkpoint_save(0)


class TestInjector:
    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert FaultInjector.from_env() is None
        monkeypatch.setenv(FAULT_PLAN_ENV, "  ")
        assert FaultInjector.from_env() is None
        monkeypatch.setenv(FAULT_PLAN_ENV, "shard 0 raise")
        injector = FaultInjector.from_env()
        assert injector is not None
        assert injector.plan.shard_fault(0, 0).action == "raise"

    def test_no_fault_scheduled_is_a_no_op(self):
        injector = FaultInjector.from_text("shard 5 raise")
        injector.fire_shard_fault(0, 0, in_process=True, timeout=None)

    def test_raise_action(self):
        injector = FaultInjector.from_text("shard 1 attempt 0 raise")
        with pytest.raises(InjectedWorkerError):
            injector.fire_shard_fault(1, 0, in_process=True, timeout=None)
        injector.fire_shard_fault(1, 1, in_process=True, timeout=None)  # retry clean

    def test_kill_simulated_in_process(self):
        injector = FaultInjector.from_text("shard 2 kill")
        with pytest.raises(InjectedWorkerCrash):
            injector.fire_shard_fault(2, 0, in_process=True, timeout=None)

    def test_long_hang_simulates_timeout_in_process(self):
        injector = FaultInjector.from_text("shard 0 hang 60")
        with pytest.raises(ShardTimeoutError):
            injector.fire_shard_fault(0, 0, in_process=True, timeout=0.01)

    def test_short_hang_just_sleeps(self):
        injector = FaultInjector.from_text("shard 0 hang 0.01")
        injector.fire_shard_fault(0, 0, in_process=True, timeout=5.0)

    def test_injector_is_picklable(self):
        import pickle

        injector = FaultInjector.from_text("shard 1 kill; store line 0 corrupt")
        clone = pickle.loads(pickle.dumps(injector))
        assert clone.plan == injector.plan

    def test_plan_is_immutable(self):
        plan = FaultPlan(shard_faults=(ShardFault(0, 0, 0, "raise"),))
        with pytest.raises(AttributeError):
            plan.shard_faults = ()
