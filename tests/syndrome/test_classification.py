"""Tests for ground-truth signature classification (Fig. 4 buckets)."""

from __future__ import annotations

import pytest

from repro.syndrome.classification import (
    SignatureCounts,
    classify_error_configuration,
    classify_signature_counts,
)
from repro.types import Coord, SignatureClass, StabilizerType


class TestClassifyErrorConfiguration:
    def test_no_errors_is_all_zeros(self, code_d5, stype):
        assert (
            classify_error_configuration(code_d5, stype, frozenset())
            is SignatureClass.ALL_ZEROS
        )

    def test_single_data_error_is_local(self, code_d5, stype):
        error = {code_d5.data_qubits[code_d5.num_data_qubits // 2]}
        assert (
            classify_error_configuration(code_d5, stype, error)
            is SignatureClass.LOCAL_ONES
        )

    def test_single_measurement_error_is_local(self, code_d5, stype):
        ancilla = code_d5.ancillas(stype)[0].coord
        assert (
            classify_error_configuration(code_d5, stype, frozenset(), {ancilla})
            is SignatureClass.LOCAL_ONES
        )

    def test_two_distant_errors_are_local(self, code_d7):
        errors = {Coord(0, 0), Coord(12, 12)}
        assert (
            classify_error_configuration(code_d7, StabilizerType.X, errors)
            is SignatureClass.LOCAL_ONES
        )

    def test_adjacent_error_chain_is_complex(self, code_d5):
        # Two data errors sharing an X ancilla form a chain of length 2.
        ancilla = next(
            a for a in code_d5.ancillas(StabilizerType.X) if a.weight == 4
        )
        errors = set(ancilla.data_qubits[:2])
        assert (
            classify_error_configuration(code_d5, StabilizerType.X, errors)
            is SignatureClass.COMPLEX
        )

    def test_data_error_next_to_measurement_error_is_complex(self, code_d5):
        ancilla = next(a for a in code_d5.ancillas(StabilizerType.X) if a.weight == 4)
        # Use a shared (non-boundary) data qubit so the two events do not
        # cancel each other's signature on the common ancilla.
        data_error = {ancilla.shared_qubits[0]}
        assert (
            classify_error_configuration(
                code_d5, StabilizerType.X, data_error, {ancilla.coord}
            )
            is SignatureClass.COMPLEX
        )

    def test_cancelled_signature_counts_as_all_zeros(self, code_d5):
        # A measurement error on an ancilla plus a boundary data error that
        # flips only that ancilla cancel out: nothing is detected.
        ancilla = next(
            a for a in code_d5.ancillas(StabilizerType.X) if a.boundary_qubits
        )
        result = classify_error_configuration(
            code_d5,
            StabilizerType.X,
            {ancilla.boundary_qubits[0]},
            {ancilla.coord},
        )
        assert result is SignatureClass.ALL_ZEROS


class TestSignatureCounts:
    def test_add_and_total(self):
        counts = SignatureCounts()
        counts.add(SignatureClass.ALL_ZEROS, 3)
        counts.add(SignatureClass.LOCAL_ONES)
        counts.add(SignatureClass.COMPLEX, 2)
        assert counts.total == 6
        assert counts.all_zeros == 3
        assert counts.local_ones == 1
        assert counts.complex_ == 2

    def test_fractions_sum_to_one(self):
        counts = SignatureCounts(all_zeros=5, local_ones=3, complex_=2)
        fractions = counts.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_empty_fractions_are_zero(self):
        assert all(value == 0.0 for value in SignatureCounts().fractions().values())

    def test_classify_signature_counts_aggregates(self):
        counts = classify_signature_counts(
            [SignatureClass.ALL_ZEROS, SignatureClass.ALL_ZEROS, SignatureClass.COMPLEX]
        )
        assert counts.all_zeros == 2
        assert counts.complex_ == 1
        assert counts.local_ones == 0
