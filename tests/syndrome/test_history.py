"""Tests for syndrome histories and detection events."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SyndromeShapeError
from repro.syndrome.history import DetectionEvent, SyndromeHistory


class TestSyndromeHistory:
    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            SyndromeHistory(0)

    def test_record_validates_length(self):
        history = SyndromeHistory(4)
        with pytest.raises(SyndromeShapeError):
            history.record(np.zeros(3, dtype=np.uint8))

    def test_empty_history_has_empty_detection_matrix(self):
        history = SyndromeHistory(4)
        assert history.detection_matrix().shape == (0, 4)
        assert history.detection_events() == []

    def test_first_round_compared_against_zero_frame(self):
        history = SyndromeHistory(3)
        history.record(np.array([1, 0, 1], dtype=np.uint8))
        assert history.detection_matrix().tolist() == [[1, 0, 1]]

    def test_detection_is_difference_of_consecutive_rounds(self):
        history = SyndromeHistory(3)
        history.record(np.array([1, 0, 0], dtype=np.uint8))
        history.record(np.array([1, 1, 0], dtype=np.uint8))
        history.record(np.array([0, 1, 0], dtype=np.uint8))
        assert history.detection_matrix().tolist() == [
            [1, 0, 0],
            [0, 1, 0],
            [1, 0, 0],
        ]

    def test_persistent_flip_generates_single_event(self):
        # A data error flips the syndrome once and it stays flipped: only the
        # first round shows a detection event.
        history = SyndromeHistory(2)
        history.record(np.array([1, 0], dtype=np.uint8))
        history.record(np.array([1, 0], dtype=np.uint8))
        history.record(np.array([1, 0], dtype=np.uint8))
        assert history.total_detection_count() == 1

    def test_transient_flip_generates_event_pair(self):
        # A measurement error flips one round only: two detection events on
        # the same ancilla in consecutive rounds.
        history = SyndromeHistory(2)
        history.record(np.array([0, 1], dtype=np.uint8))
        history.record(np.array([0, 0], dtype=np.uint8))
        events = history.detection_events()
        assert events == [
            DetectionEvent(round=0, ancilla_index=1),
            DetectionEvent(round=1, ancilla_index=1),
        ]

    def test_events_in_round(self):
        history = SyndromeHistory(3)
        history.record(np.array([1, 1, 0], dtype=np.uint8))
        history.record(np.array([1, 1, 0], dtype=np.uint8))
        assert len(history.events_in_round(0)) == 2
        assert history.events_in_round(1) == []

    def test_events_in_round_bounds_checked(self):
        history = SyndromeHistory(3)
        history.record(np.zeros(3, dtype=np.uint8))
        with pytest.raises(IndexError):
            history.events_in_round(5)

    def test_observed_returns_copy(self):
        history = SyndromeHistory(2)
        history.record(np.array([1, 0], dtype=np.uint8))
        observed = history.observed(0)
        observed[0] = 0
        assert history.observed(0)[0] == 1

    def test_num_rounds_tracks_records(self):
        history = SyndromeHistory(2)
        assert history.num_rounds == 0
        history.record(np.zeros(2, dtype=np.uint8))
        history.record(np.zeros(2, dtype=np.uint8))
        assert history.num_rounds == 2


class TestDetectionEvent:
    def test_ordering_by_round_then_index(self):
        events = [
            DetectionEvent(round=1, ancilla_index=0),
            DetectionEvent(round=0, ancilla_index=5),
            DetectionEvent(round=0, ancilla_index=2),
        ]
        assert sorted(events) == [
            DetectionEvent(round=0, ancilla_index=2),
            DetectionEvent(round=0, ancilla_index=5),
            DetectionEvent(round=1, ancilla_index=0),
        ]
