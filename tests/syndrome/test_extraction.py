"""Tests for syndrome extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SyndromeShapeError
from repro.noise.events import errors_to_vector
from repro.syndrome.extraction import extract_syndrome, flipped_ancillas, observed_syndrome
from repro.types import Coord, StabilizerType


class TestExtractSyndrome:
    def test_matches_code_syndrome_of(self, code_d5, stype, rng):
        error = {q for q in code_d5.data_qubits if rng.random() < 0.2}
        vector = errors_to_vector(error, code_d5.data_index)
        assert np.array_equal(
            extract_syndrome(code_d5, stype, vector), code_d5.syndrome_of(error, stype)
        )

    def test_rejects_wrong_length(self, code_d3):
        with pytest.raises(SyndromeShapeError):
            extract_syndrome(code_d3, StabilizerType.X, np.zeros(5, dtype=np.uint8))

    def test_zero_error_zero_syndrome(self, code_d3, stype):
        vector = np.zeros(code_d3.num_data_qubits, dtype=np.uint8)
        assert not extract_syndrome(code_d3, stype, vector).any()


class TestObservedSyndrome:
    def test_no_flips_returns_true_syndrome(self):
        true = np.array([1, 0, 1, 0], dtype=np.uint8)
        assert np.array_equal(observed_syndrome(true), true)

    def test_flips_are_xored(self):
        true = np.array([1, 0, 1, 0], dtype=np.uint8)
        flips = np.array([1, 1, 0, 0], dtype=np.uint8)
        assert observed_syndrome(true, flips).tolist() == [0, 1, 1, 0]

    def test_rejects_length_mismatch(self):
        with pytest.raises(SyndromeShapeError):
            observed_syndrome(np.zeros(4, dtype=np.uint8), np.zeros(3, dtype=np.uint8))


class TestFlippedAncillas:
    def test_returns_coordinates_of_set_bits(self, code_d3):
        ancillas = code_d3.ancillas(StabilizerType.X)
        syndrome = np.zeros(len(ancillas), dtype=np.uint8)
        syndrome[1] = 1
        syndrome[3] = 1
        assert flipped_ancillas(code_d3, StabilizerType.X, syndrome) == frozenset(
            {ancillas[1].coord, ancillas[3].coord}
        )

    def test_empty_syndrome_gives_empty_set(self, code_d3, stype):
        size = code_d3.num_ancillas_of_type(stype)
        assert flipped_ancillas(code_d3, stype, np.zeros(size, dtype=np.uint8)) == frozenset()

    def test_rejects_wrong_length(self, code_d3):
        with pytest.raises(SyndromeShapeError):
            flipped_ancillas(code_d3, StabilizerType.X, np.zeros(3, dtype=np.uint8))

    def test_single_bulk_error_flips_adjacent_ancillas(self, code_d5):
        centre = Coord(4, 4)
        syndrome = code_d5.syndrome_of({centre}, StabilizerType.X)
        flipped = flipped_ancillas(code_d5, StabilizerType.X, syndrome)
        assert len(flipped) == 2
        for coord in flipped:
            assert abs(coord.row - centre.row) == 1 and abs(coord.col - centre.col) == 1
