"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codes.rotated_surface import RotatedSurfaceCode
from repro.noise.models import CodeCapacityNoise, PhenomenologicalNoise
from repro.types import StabilizerType


@pytest.fixture(scope="session")
def code_d3() -> RotatedSurfaceCode:
    return RotatedSurfaceCode(3)


@pytest.fixture(scope="session")
def code_d5() -> RotatedSurfaceCode:
    return RotatedSurfaceCode(5)


@pytest.fixture(scope="session")
def code_d7() -> RotatedSurfaceCode:
    return RotatedSurfaceCode(7)


@pytest.fixture(scope="session")
def code_d9() -> RotatedSurfaceCode:
    return RotatedSurfaceCode(9)


@pytest.fixture(params=[3, 5, 7])
def code(request) -> RotatedSurfaceCode:
    """Parametrised small codes for geometry-independent tests."""
    return RotatedSurfaceCode(request.param)


@pytest.fixture(params=[StabilizerType.X, StabilizerType.Z])
def stype(request) -> StabilizerType:
    return request.param


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def phenomenological_1pct() -> PhenomenologicalNoise:
    return PhenomenologicalNoise(1e-2)


@pytest.fixture
def code_capacity_1pct() -> CodeCapacityNoise:
    return CodeCapacityNoise(1e-2)
