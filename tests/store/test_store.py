"""Tests for the on-disk result store, checkpoints, and the sweep cache."""

from __future__ import annotations

import json

import pytest

from repro.simulation.coverage import CoverageResult
from repro.store import ResultStore, SweepCache, open_store, result_key


def _coverage(cycles: int = 100, onchip: int = 90) -> CoverageResult:
    return CoverageResult(
        physical_error_rate=1e-2,
        code_distance=3,
        measurement_rounds=2,
        cycles=cycles,
        onchip_cycles=onchip,
        all_zero_cycles=onchip // 2,
    )


class TestResultStore:
    def test_get_missing_returns_none(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.get("0" * 64) is None
        assert "0" * 64 not in store

    def test_put_then_get_round_trips(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = result_key("fig11", {"cycles": 100}, 7)
        store.put(key, _coverage())
        assert store.get(key) == _coverage()
        assert key in store
        assert len(store) == 1

    def test_results_persist_across_instances(self, tmp_path):
        root = tmp_path / "store"
        key = result_key("fig11", {"cycles": 100}, 7)
        ResultStore(root).put(key, _coverage())
        assert ResultStore(root).get(key) == _coverage()

    def test_last_write_wins(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = result_key("fig11", {"cycles": 100}, 7)
        store.put(key, _coverage(onchip=80))
        store.put(key, _coverage(onchip=95))
        assert ResultStore(tmp_path / "store").get(key).onchip_cycles == 95

    def test_torn_final_line_is_ignored(self, tmp_path):
        # A kill mid-append leaves a partial JSON line; the store must keep
        # serving every complete line instead of failing to load.
        root = tmp_path / "store"
        store = ResultStore(root)
        key = result_key("fig11", {"cycles": 100}, 7)
        store.put(key, _coverage())
        with (root / "results.jsonl").open("a", encoding="utf-8") as handle:
            handle.write('{"key": "deadbeef", "record": {"__ty')
        reopened = ResultStore(root)
        assert reopened.get(key) == _coverage()
        assert len(reopened) == 1

    def test_creates_directory_tree(self, tmp_path):
        root = tmp_path / "a" / "b" / "store"
        ResultStore(root)
        assert root.is_dir()

    def test_path_naming_a_file_raises_configuration_error(self, tmp_path):
        from repro.exceptions import ConfigurationError

        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        with pytest.raises(ConfigurationError, match="not a usable directory"):
            ResultStore(blocker)


class TestAdaptiveCheckpoint:
    def test_load_missing_returns_none(self, tmp_path):
        assert ResultStore(tmp_path).checkpoint("k" * 64).load() is None

    def test_save_load_clear(self, tmp_path):
        checkpoint = ResultStore(tmp_path).checkpoint("k" * 64)
        state = {"version": 1, "trials_done": 200, "merged": [3, 200]}
        checkpoint.save(state)
        assert checkpoint.load() == state
        checkpoint.clear()
        assert checkpoint.load() is None

    def test_clear_is_idempotent(self, tmp_path):
        checkpoint = ResultStore(tmp_path).checkpoint("k" * 64)
        checkpoint.clear()
        checkpoint.clear()

    def test_save_replaces_atomically(self, tmp_path):
        checkpoint = ResultStore(tmp_path).checkpoint("k" * 64)
        checkpoint.save({"wave": 1})
        checkpoint.save({"wave": 2})
        assert checkpoint.load() == {"wave": 2}
        # No stray tmp file left behind.
        leftovers = [p for p in checkpoint.path.parent.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_corrupt_checkpoint_reads_as_none(self, tmp_path):
        checkpoint = ResultStore(tmp_path).checkpoint("k" * 64)
        checkpoint.save({"wave": 1})
        checkpoint.path.write_text('{"wave": ', encoding="utf-8")
        assert checkpoint.load() is None


class TestSweepCache:
    def test_none_store_is_transparent(self):
        cache = SweepCache(None, "fig11")
        calls = []
        result = cache.point({"cycles": 1}, 7, lambda: calls.append(1) or _coverage())
        assert result == _coverage()
        assert calls == [1]
        assert cache.checkpoint({"cycles": 1}, 7) is None

    def test_second_run_hits_instead_of_computing(self, tmp_path):
        store = ResultStore(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return _coverage()

        first = SweepCache(store, "fig11")
        assert first.point({"cycles": 1}, 7, compute) == _coverage()
        second = SweepCache(store, "fig11")
        assert second.point({"cycles": 1}, 7, compute) == _coverage()
        assert calls == [1]
        assert (first.hits, first.computed) == (0, 1)
        assert (second.hits, second.computed) == (1, 0)

    def test_force_recomputes_and_overwrites(self, tmp_path):
        store = ResultStore(tmp_path)
        SweepCache(store, "fig11").point({"cycles": 1}, 7, lambda: _coverage(onchip=80))
        forced = SweepCache(store, "fig11", force=True)
        assert forced.point({"cycles": 1}, 7, lambda: _coverage(onchip=95)).onchip_cycles == 95
        assert forced.hits == 0
        # The overwrite is persistent.
        assert SweepCache(store, "fig11").point(
            {"cycles": 1}, 7, lambda: pytest.fail("should be cached")
        ).onchip_cycles == 95

    def test_force_discards_stale_checkpoint(self, tmp_path):
        store = ResultStore(tmp_path)
        cache = SweepCache(store, "fig11")
        cache.checkpoint({"cycles": 1}, 7).save({"wave": 1})
        forced = SweepCache(store, "fig11", force=True)
        assert forced.checkpoint({"cycles": 1}, 7).load() is None

    def test_distinct_configs_do_not_collide(self, tmp_path):
        store = ResultStore(tmp_path)
        cache = SweepCache(store, "fig11")
        cache.point({"cycles": 1}, 7, lambda: _coverage(onchip=80))
        other = cache.point({"cycles": 2}, 7, lambda: _coverage(onchip=95))
        assert other.onchip_cycles == 95
        assert len(store) == 2


class TestOpenStore:
    def test_none_passes_through(self):
        assert open_store(None) is None

    def test_path_opens_store(self, tmp_path):
        store = open_store(tmp_path / "s")
        assert isinstance(store, ResultStore)

    def test_ready_store_passes_through(self, tmp_path):
        store = ResultStore(tmp_path)
        assert open_store(store) is store

    def test_string_path_accepted(self, tmp_path):
        assert isinstance(open_store(str(tmp_path / "s")), ResultStore)


class TestStoreFileFormat:
    def test_results_are_json_lines(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key("fig11", {"cycles": 100}, 7)
        store.put(key, _coverage())
        lines = (tmp_path / "results.jsonl").read_text().splitlines()
        assert len(lines) == 1
        entry = json.loads(lines[0])
        assert entry["key"] == key
        assert entry["record"]["__type__"] == "CoverageResult"


class TestCompact:
    def test_last_write_wins_records_survive(self, tmp_path):
        store = ResultStore(tmp_path)
        key_a = result_key("fig11", {"cycles": 100}, 7)
        key_b = result_key("fig11", {"cycles": 200}, 7)
        store.put(key_a, _coverage(onchip=10))
        store.put(key_b, _coverage(onchip=20))
        store.put(key_a, _coverage(onchip=30))  # overwrite: the line to keep
        summary = store.compact()
        assert summary == {
            "records_kept": 2,
            "lines_dropped": 1,
            "lines_quarantined": 0,
            "checkpoints_dropped": 0,
        }
        lines = (tmp_path / "results.jsonl").read_text().splitlines()
        assert len(lines) == 2
        assert store.get(key_a).onchip_cycles == 30
        assert store.get(key_b).onchip_cycles == 20

    def test_fresh_store_reads_the_compacted_file(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key("fig11", {"cycles": 100}, 7)
        for onchip in (10, 20, 30):
            store.put(key, _coverage(onchip=onchip))
        store.compact()
        reread = ResultStore(tmp_path)
        assert reread.get(key).onchip_cycles == 30
        assert len(reread) == 1

    def test_torn_tail_is_dropped(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key("fig11", {"cycles": 100}, 7)
        store.put(key, _coverage())
        with (tmp_path / "results.jsonl").open("a") as handle:
            handle.write('{"key": "torn-li')  # kill mid-append
        summary = ResultStore(tmp_path).compact()
        assert summary["records_kept"] == 1
        assert summary["lines_dropped"] == 1
        assert ResultStore(tmp_path).get(key) is not None

    def test_orphaned_checkpoints_are_dropped_live_ones_kept(self, tmp_path):
        store = ResultStore(tmp_path)
        done_key = result_key("fig14", {"trials": 100}, 7)
        live_key = result_key("fig14", {"trials": 200}, 7)
        store.put(done_key, _coverage())
        store.checkpoint(done_key).save({"wave": 3})  # orphan: result is durable
        store.checkpoint(live_key).save({"wave": 1})  # live mid-point state
        summary = store.compact()
        assert summary["checkpoints_dropped"] == 1
        assert store.checkpoint(done_key).load() is None
        assert store.checkpoint(live_key).load() == {"wave": 1}

    def test_empty_store_compacts_cleanly(self, tmp_path):
        summary = ResultStore(tmp_path / "fresh").compact()
        assert summary == {
            "records_kept": 0,
            "lines_dropped": 0,
            "lines_quarantined": 0,
            "checkpoints_dropped": 0,
        }
