"""Round-trip tests for the store's result (de)serialisation."""

from __future__ import annotations

import json

import pytest

from repro.bandwidth.allocation import BandwidthPlan
from repro.bandwidth.stalling import CycleRecord, StallSimulationResult
from repro.simulation.coverage import CoverageResult
from repro.simulation.memory import MemoryExperimentResult
from repro.store import from_dict, to_dict

MEMORY = MemoryExperimentResult(
    physical_error_rate=1e-2,
    code_distance=5,
    rounds=5,
    trials=1000,
    logical_failures=37,
    decoder_name="Clique+MWPM",
    onchip_rounds=4200,
    total_rounds=5000,
)

COVERAGE = CoverageResult(
    physical_error_rate=5e-3,
    code_distance=7,
    measurement_rounds=2,
    cycles=20_000,
    onchip_cycles=19_211,
    all_zero_cycles=14_887,
)

PLAN = BandwidthPlan(
    num_logical_qubits=1000, offchip_rate=0.0123, percentile=99.0, decodes_per_cycle=21
)

STALL = StallSimulationResult(
    plan=PLAN,
    program_cycles=20_000,
    stall_cycles=312,
    completed=True,
    max_backlog=58,
    records=[CycleRecord(cycle=0, new_requests=3, carryover=0, served=3, is_stall=False)],
)


class TestRoundTrips:
    @pytest.mark.parametrize("result", [MEMORY, COVERAGE, PLAN, STALL])
    def test_round_trip_reconstructs_equal_object(self, result):
        assert from_dict(to_dict(result)) == result

    @pytest.mark.parametrize("result", [MEMORY, COVERAGE, PLAN, STALL])
    def test_round_trip_survives_json(self, result):
        # The store writes JSON lines: the encoding must survive an actual
        # dump/load cycle, floats bit-exactly included.
        assert from_dict(json.loads(json.dumps(to_dict(result)))) == result

    def test_derived_properties_survive(self):
        clone = from_dict(to_dict(MEMORY))
        assert clone.logical_error_rate == MEMORY.logical_error_rate
        assert clone.confidence_interval == MEMORY.confidence_interval
        assert clone.onchip_round_fraction == MEMORY.onchip_round_fraction

    def test_nested_plan_is_typed(self):
        clone = from_dict(to_dict(STALL))
        assert isinstance(clone.plan, BandwidthPlan)
        assert isinstance(clone.records[0], CycleRecord)


class TestErrorHandling:
    def test_unregistered_type_rejected_on_encode(self):
        with pytest.raises(TypeError):
            to_dict({"not": "a dataclass"})

    def test_missing_tag_rejected_on_decode(self):
        with pytest.raises(ValueError):
            from_dict({"cycles": 10})

    def test_unknown_tag_rejected_on_decode(self):
        with pytest.raises(ValueError):
            from_dict({"__type__": "NoSuchResult"})
