"""Tests for the result store's canonical keying contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro.store import canonical_json, canonical_value, result_key

CONFIG = {"distance": 5, "error_rate": 1e-2, "cycles": 2000, "sharded": False}


class TestCanonicalValue:
    def test_tuples_and_lists_unify(self):
        assert canonical_value((3, 5, 7)) == canonical_value([3, 5, 7])

    def test_numpy_scalars_collapse_to_python(self):
        assert canonical_value(np.int64(3)) == 3
        assert canonical_value(np.float64(0.5)) == 0.5

    def test_nested_mappings_normalise(self):
        value = {"a": (1, 2), "b": {"c": np.int64(3)}}
        assert canonical_value(value) == {"a": [1, 2], "b": {"c": 3}}

    def test_unsupported_types_rejected(self):
        with pytest.raises(TypeError):
            canonical_value(object())


class TestCanonicalJson:
    def test_key_order_does_not_matter(self):
        forward = {"a": 1, "b": 2}
        backward = {"b": 2, "a": 1}
        assert canonical_json(forward) == canonical_json(backward)

    def test_floats_round_trip_exactly(self):
        import json

        for value in (1e-2, 0.1 + 0.2, 1 / 3):
            assert json.loads(canonical_json(value)) == value


class TestResultKey:
    def test_deterministic_across_calls(self):
        assert result_key("fig11", CONFIG, 7) == result_key("fig11", CONFIG, 7)

    def test_dict_ordering_is_canonical(self):
        shuffled = dict(reversed(list(CONFIG.items())))
        assert result_key("fig11", CONFIG, 7) == result_key("fig11", shuffled, 7)

    def test_experiment_id_separates_keys(self):
        assert result_key("fig11", CONFIG, 7) != result_key("fig12", CONFIG, 7)

    def test_seed_separates_keys(self):
        assert result_key("fig11", CONFIG, 7) != result_key("fig11", CONFIG, 8)

    def test_config_separates_keys(self):
        other = dict(CONFIG, cycles=CONFIG["cycles"] + 1)
        assert result_key("fig11", CONFIG, 7) != result_key("fig11", other, 7)

    def test_salt_separates_keys(self):
        # Bumping the code-version salt must invalidate every stored result.
        assert result_key("fig11", CONFIG, 7) != result_key(
            "fig11", CONFIG, 7, salt="some-other-salt"
        )

    def test_key_is_hex_sha256(self):
        key = result_key("fig11", CONFIG, 7)
        assert len(key) == 64
        assert int(key, 16) >= 0
