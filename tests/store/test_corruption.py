"""Store hardening: CRC lines, quarantine, strict mode, injected damage."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import StoreCorruptionError
from repro.faults import FaultInjector
from repro.simulation.coverage import CoverageResult
from repro.store import (
    AdaptiveCheckpoint,
    ResultStore,
    StoreCorruptionWarning,
    result_key,
)


def _coverage(cycles: int = 100, onchip: int = 90) -> CoverageResult:
    return CoverageResult(
        physical_error_rate=1e-2,
        code_distance=3,
        measurement_rounds=2,
        cycles=cycles,
        onchip_cycles=onchip,
        all_zero_cycles=onchip // 2,
    )


def _key(n: int) -> str:
    return result_key("fig11", {"cycles": n}, 7)


def _populated_store(root, n: int = 3) -> ResultStore:
    store = ResultStore(root)
    for i in range(n):
        store.put(_key(i), _coverage(cycles=100 + i))
    return store


def _stomp_line(root, line_number: int, payload: bytes = b"#CORRUPTED#") -> int:
    """Overwrite bytes inside one line of results.jsonl; return its offset."""
    path = root / "results.jsonl"
    data = path.read_bytes()
    offset = 0
    for _ in range(line_number):
        offset = data.index(b"\n", offset) + 1
    with path.open("r+b") as handle:
        handle.seek(offset + 2)
        handle.write(payload)
    return offset


class TestQuarantine:
    def test_midfile_damage_is_quarantined_with_coordinates(self, tmp_path):
        root = tmp_path / "store"
        _populated_store(root)
        offset = _stomp_line(root, 1)
        with pytest.warns(
            StoreCorruptionWarning, match=f"line 1 at byte {offset}"
        ):
            reopened = ResultStore(root)
            assert len(reopened) == 2
        assert reopened.get(_key(0)) == _coverage(cycles=100)
        assert reopened.get(_key(1)) is None  # the damaged record
        assert reopened.get(_key(2)) == _coverage(cycles=102)
        (entry,) = reopened.quarantined
        assert entry["line_number"] == 1
        assert entry["byte_offset"] == offset
        assert "unparseable JSON" in entry["reason"]

    def test_crc_mismatch_on_valid_json_is_quarantined(self, tmp_path):
        # Damage that stays parseable — a flipped digit in a numeric field —
        # is exactly what the CRC exists to catch.
        root = tmp_path / "store"
        _populated_store(root, n=2)
        path = root / "results.jsonl"
        lines = path.read_text(encoding="utf-8").splitlines()
        entry = json.loads(lines[0])
        entry["record"]["cycles"] += 1  # silent bit-rot, still valid JSON
        lines[0] = json.dumps(entry, sort_keys=True)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.warns(StoreCorruptionWarning, match="CRC mismatch"):
            reopened = ResultStore(root)
            assert len(reopened) == 1
        assert reopened.get(_key(0)) is None

    def test_parseable_non_store_line_is_quarantined(self, tmp_path):
        root = tmp_path / "store"
        _populated_store(root, n=1)
        with (root / "results.jsonl").open("a", encoding="utf-8") as handle:
            handle.write('{"not": "a store line"}\n')
            handle.write("[1, 2, 3]\n")
        with pytest.warns(StoreCorruptionWarning):
            reopened = ResultStore(root)
            assert len(reopened) == 1
        assert len(reopened.quarantined) == 2

    def test_legacy_crc_less_lines_are_served(self, tmp_path):
        root = tmp_path / "store"
        _populated_store(root, n=1)
        path = root / "results.jsonl"
        entry = json.loads(path.read_text(encoding="utf-8"))
        del entry["crc"]
        path.write_text(json.dumps(entry, sort_keys=True) + "\n", encoding="utf-8")
        reopened = ResultStore(root)
        assert reopened.get(_key(0)) == _coverage(cycles=100)
        assert not reopened.quarantined

    def test_compact_drops_quarantined_lines(self, tmp_path):
        root = tmp_path / "store"
        _populated_store(root)
        _stomp_line(root, 1)
        store = ResultStore(root)
        summary = store.compact()
        assert summary == {
            "records_kept": 2,
            "lines_dropped": 1,
            "lines_quarantined": 1,
            "checkpoints_dropped": 0,
        }
        # The rewritten file is clean: a strict open succeeds.
        assert len(ResultStore(root, strict=True)) == 2

    def test_equal_content_compacts_to_identical_bytes(self, tmp_path):
        # Canonical form: write order must not leak into the compacted file.
        root_a, root_b = tmp_path / "a", tmp_path / "b"
        store_a, store_b = ResultStore(root_a), ResultStore(root_b)
        for i in (0, 1, 2):
            store_a.put(_key(i), _coverage(cycles=100 + i))
        for i in (2, 0, 1):
            store_b.put(_key(i), _coverage(cycles=100 + i))
        store_b.put(_key(1), _coverage(cycles=101))  # dead duplicate line
        store_a.compact()
        store_b.compact()
        assert (root_a / "results.jsonl").read_bytes() == (
            root_b / "results.jsonl"
        ).read_bytes()


class TestStrictMode:
    def test_strict_open_raises_with_line_and_offset(self, tmp_path):
        root = tmp_path / "store"
        _populated_store(root)
        offset = _stomp_line(root, 1)
        with pytest.raises(StoreCorruptionError) as info:
            len(ResultStore(root, strict=True))
        assert info.value.line_number == 1
        assert info.value.byte_offset == offset
        assert f"line 1 at byte {offset}" in str(info.value)

    def test_strict_still_skips_torn_tail(self, tmp_path):
        root = tmp_path / "store"
        _populated_store(root, n=1)
        with (root / "results.jsonl").open("a", encoding="utf-8") as handle:
            handle.write('{"key": "deadbeef", "record": {"__ty')
        assert len(ResultStore(root, strict=True)) == 1

    def test_strict_compact_refuses_to_rewrite(self, tmp_path):
        root = tmp_path / "store"
        _populated_store(root)
        _stomp_line(root, 0)
        before = (root / "results.jsonl").read_bytes()
        with pytest.raises(StoreCorruptionError):
            ResultStore(root, strict=True).compact()
        assert (root / "results.jsonl").read_bytes() == before


class TestInjectedStoreFaults:
    def test_injected_line_corruption_surfaces_on_fresh_open(self, tmp_path):
        root = tmp_path / "store"
        injector = FaultInjector.from_text("store line 1 corrupt")
        store = ResultStore(root, fault_injector=injector)
        for i in range(3):
            store.put(_key(i), _coverage(cycles=100 + i))
        # Realistic bit rot: the writer's in-memory index still serves the
        # record; only a fresh open sees the on-disk damage.
        assert store.get(_key(1)) == _coverage(cycles=101)
        with pytest.warns(StoreCorruptionWarning, match="line 1"):
            reopened = ResultStore(root)
            assert len(reopened) == 2
        assert reopened.get(_key(1)) is None

    def test_injected_checkpoint_truncation_loads_as_none(self, tmp_path):
        path = tmp_path / "ckpt.json"
        injector = FaultInjector.from_text("checkpoint truncate 1")
        checkpoint = AdaptiveCheckpoint(path, fault_injector=injector)
        checkpoint.save({"wave": 1})
        assert AdaptiveCheckpoint(path).load() == {"wave": 1}  # save 0 intact
        checkpoint.save({"wave": 2})  # save 1 is truncated mid-write
        assert AdaptiveCheckpoint(path).load() is None


class TestSkippedResultsNeverPersist:
    def test_point_returns_but_does_not_store_degraded_results(self, tmp_path):
        from types import SimpleNamespace

        from repro.store import SweepCache

        store = ResultStore(tmp_path / "store")
        cache = SweepCache(store, "fig14")
        config = {"kind": "memory", "distance": 5}
        checkpoint = cache.checkpoint(config, 7)
        checkpoint.save({"wave": 3})
        degraded = SimpleNamespace(skipped_trials=20)
        assert cache.point(config, 7, lambda: degraded) is degraded
        # Nothing persisted, and the mid-point checkpoint survives so a
        # healthier re-run resumes instead of restarting.
        assert len(store) == 0
        assert checkpoint.load() == {"wave": 3}


class TestCheckpointEnvelope:
    def test_crc_envelope_round_trips(self, tmp_path):
        path = tmp_path / "ckpt.json"
        AdaptiveCheckpoint(path).save({"trials_done": 400, "seed": 7})
        data = json.loads(path.read_text(encoding="utf-8"))
        assert set(data) == {"crc", "state"}
        assert AdaptiveCheckpoint(path).load() == {"trials_done": 400, "seed": 7}

    def test_tampered_state_fails_crc_and_loads_none(self, tmp_path):
        path = tmp_path / "ckpt.json"
        AdaptiveCheckpoint(path).save({"trials_done": 400})
        data = json.loads(path.read_text(encoding="utf-8"))
        data["state"]["trials_done"] = 800
        path.write_text(json.dumps(data), encoding="utf-8")
        assert AdaptiveCheckpoint(path).load() is None

    def test_legacy_plain_dict_checkpoint_passes_through(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text(json.dumps({"version": 1, "trials_done": 10}))
        assert AdaptiveCheckpoint(path).load() == {"version": 1, "trials_done": 10}
