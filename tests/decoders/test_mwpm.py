"""Tests for the MWPM baseline decoder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.decoders.lookup import LookupDecoder
from repro.decoders.mwpm import DEFAULT_BOUNDARY_CLIQUE_CACHE_LIMIT, MWPMDecoder
from repro.exceptions import SyndromeShapeError
from repro.noise.events import errors_to_vector, vector_to_errors
from repro.types import Coord, StabilizerType


@pytest.fixture(scope="module")
def mwpm_d5():
    from repro.codes.rotated_surface import get_code

    return MWPMDecoder(get_code(5), StabilizerType.X)


class TestSingleRoundDecoding:
    def test_empty_syndrome_gives_empty_correction(self, mwpm_d5, code_d5):
        result = mwpm_d5.decode(np.zeros(code_d5.num_ancillas_of_type(StabilizerType.X)))
        assert result.correction == frozenset()
        assert result.handled

    def test_rejects_wrong_width(self, mwpm_d5):
        with pytest.raises(SyndromeShapeError):
            mwpm_d5.decode(np.zeros(3, dtype=np.uint8))

    @pytest.mark.parametrize("qubit_index", range(0, 25, 3))
    def test_single_error_correction_cancels_syndrome(self, mwpm_d5, code_d5, qubit_index):
        error = {code_d5.data_qubits[qubit_index]}
        syndrome = code_d5.syndrome_of(error, StabilizerType.X)
        result = mwpm_d5.decode(syndrome)
        residual = frozenset(error) ^ result.correction
        assert not code_d5.syndrome_of(residual, StabilizerType.X).any()
        assert not code_d5.is_logical_error(residual, StabilizerType.X)

    def test_correction_has_zero_residual_for_random_errors(self, mwpm_d5, code_d5, rng):
        for _ in range(25):
            error = {q for q in code_d5.data_qubits if rng.random() < 0.08}
            syndrome = code_d5.syndrome_of(error, StabilizerType.X)
            result = mwpm_d5.decode(syndrome)
            residual = frozenset(error) ^ result.correction
            assert not code_d5.syndrome_of(residual, StabilizerType.X).any()

    def test_matches_lookup_decoder_weight_on_small_code(self, code_d3):
        # MWPM must find a minimum-weight explanation for every weight-1 and
        # weight-2 error pattern on the d=3 code (code capacity).
        lookup = LookupDecoder(code_d3, StabilizerType.X)
        mwpm = MWPMDecoder(code_d3, StabilizerType.X)
        qubits = code_d3.data_qubits
        for i in range(len(qubits)):
            error = {qubits[i]}
            syndrome = code_d3.syndrome_of(error, StabilizerType.X)
            optimal = lookup.decode(syndrome).correction
            matched = mwpm.decode(syndrome).correction
            assert len(matched) == len(optimal)

    def test_metadata_reports_event_counts(self, mwpm_d5, code_d5):
        error = {code_d5.data_qubits[6], code_d5.data_qubits[18]}
        syndrome = code_d5.syndrome_of(error, StabilizerType.X)
        result = mwpm_d5.decode(syndrome)
        assert result.metadata["num_events"] == int(syndrome.sum())


class TestSpaceTimeDecoding:
    def test_measurement_error_pair_needs_no_data_correction(self, mwpm_d5, code_d5):
        width = code_d5.num_ancillas_of_type(StabilizerType.X)
        detections = np.zeros((3, width), dtype=np.uint8)
        detections[0, 4] = 1
        detections[1, 4] = 1
        result = mwpm_d5.decode(detections)
        assert result.correction == frozenset()

    def test_data_error_in_one_round_is_corrected(self, mwpm_d5, code_d5):
        error = {Coord(4, 4)}
        syndrome = code_d5.syndrome_of(error, StabilizerType.X)
        width = code_d5.num_ancillas_of_type(StabilizerType.X)
        detections = np.zeros((3, width), dtype=np.uint8)
        detections[1] = syndrome
        result = mwpm_d5.decode(detections)
        residual = frozenset(error) ^ result.correction
        assert not code_d5.syndrome_of(residual, StabilizerType.X).any()
        assert not code_d5.is_logical_error(residual, StabilizerType.X)

    def test_full_memory_history_has_zero_residual_syndrome(self, code_d5, rng):
        from repro.noise.models import PhenomenologicalNoise
        from repro.syndrome.history import SyndromeHistory

        noise = PhenomenologicalNoise(0.03)
        decoder = MWPMDecoder(code_d5, StabilizerType.X)
        parity = code_d5.parity_check(StabilizerType.X)
        for _ in range(10):
            history = SyndromeHistory(code_d5.num_ancillas_of_type(StabilizerType.X))
            accumulated = np.zeros(code_d5.num_data_qubits, dtype=np.uint8)
            for _round in range(5):
                accumulated ^= noise.sample_data_vector(code_d5, rng)
                flips = noise.sample_measurement_vector(code_d5, StabilizerType.X, rng)
                history.record(((parity @ accumulated) % 2) ^ flips)
            history.record((parity @ accumulated) % 2)
            result = decoder.decode(history.detection_matrix())
            correction = errors_to_vector(result.correction, code_d5.data_index)
            residual = accumulated ^ correction
            residual_set = vector_to_errors(residual, code_d5.data_qubits)
            assert not code_d5.syndrome_of(residual_set, StabilizerType.X).any()


class TestSmallCaseSolver:
    def test_subset_dp_matches_blossom_weight(self, mwpm_d5, code_d5, rng):
        # The exact small-case DP must find the same minimum total distance as
        # the blossom auxiliary-graph path for every event count it handles.
        import numpy as np

        from repro.decoders.matching_graph import SpaceTimeEvent

        graph = mwpm_d5.matching_graph
        width = code_d5.num_ancillas_of_type(StabilizerType.X)

        def total_weight(pairs, boundary_matches):
            return sum(
                graph.event_distance(a, b) for a, b in pairs
            ) + sum(graph.event_boundary_distance(e) for e in boundary_matches)

        for _ in range(60):
            num = int(rng.integers(1, MWPMDecoder._SMALL_CASE_LIMIT + 1))
            cells = rng.choice(5 * width, size=num, replace=False)
            events = sorted(
                SpaceTimeEvent(round=int(c // width), ancilla_index=int(c % width))
                for c in cells
            )
            ancilla = np.array([e.ancilla_index for e in events])
            rounds = np.array([e.round for e in events])
            distance = (
                graph.spatial_distance_matrix[np.ix_(ancilla, ancilla)]
                + np.abs(rounds[:, None] - rounds[None, :])
            ).tolist()
            boundary = graph.boundary_distance_array[ancilla].tolist()
            dp_pairs, dp_boundary = mwpm_d5._match_small(distance, boundary)
            dp_weight = total_weight(
                [(events[i], events[j]) for i, j in dp_pairs],
                [events[i] for i in dp_boundary],
            )

            limit = MWPMDecoder._SMALL_CASE_LIMIT
            MWPMDecoder._SMALL_CASE_LIMIT = 0
            try:
                blossom_weight = total_weight(*mwpm_d5._match(events))
            finally:
                MWPMDecoder._SMALL_CASE_LIMIT = limit
            assert dp_weight == blossom_weight

    def test_all_zero_distance_tie_breaks_deterministically(self, mwpm_d5):
        # Pathological degenerate input: every pair and boundary assignment
        # ties at zero weight.  The DP must pick one canonical assignment
        # (everything to the boundary) so sharded and unsharded runs can
        # never diverge on equal-weight choices.
        for num in (1, 2, 3, 5):
            distance = [[0] * num for _ in range(num)]
            boundary = [0] * num
            pairs, boundary_matches = mwpm_d5._match_small(distance, boundary)
            assert pairs == []
            assert sorted(boundary_matches) == list(range(num))
            # Repeated calls agree exactly.
            assert (pairs, boundary_matches) == mwpm_d5._match_small(distance, boundary)


class TestBoundaryCliqueCache:
    def test_cache_is_bounded(self, code_d3):
        decoder = MWPMDecoder(code_d3, StabilizerType.X)
        for num in range(2, 2 + 3 * DEFAULT_BOUNDARY_CLIQUE_CACHE_LIMIT):
            edges = decoder._boundary_clique_edges(num)
            assert len(edges) == num * (num - 1) // 2
        assert (
            len(decoder._boundary_clique_cache)
            <= DEFAULT_BOUNDARY_CLIQUE_CACHE_LIMIT
        )

    def test_uncached_counts_still_build_correct_edges(self, code_d3):
        decoder = MWPMDecoder(code_d3, StabilizerType.X)
        # Fill the cache, then request a count that will not be retained.
        for num in range(2, 2 + DEFAULT_BOUNDARY_CLIQUE_CACHE_LIMIT):
            decoder._boundary_clique_edges(num)
        overflow = 100
        edges = decoder._boundary_clique_edges(overflow)
        assert overflow not in decoder._boundary_clique_cache
        assert len(edges) == overflow * (overflow - 1) // 2
        # Boundary copies occupy the node range [num, 2 * num).
        assert all(overflow <= a < 2 * overflow for a, b, w in edges)

    def test_cache_limit_is_configurable(self, code_d3):
        decoder = MWPMDecoder(code_d3, StabilizerType.X, boundary_clique_cache_limit=3)
        for num in range(2, 12):
            decoder._boundary_clique_edges(num)
        assert len(decoder._boundary_clique_cache) == 3

    def test_cache_limit_rejects_negative(self, code_d3):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            MWPMDecoder(code_d3, StabilizerType.X, boundary_clique_cache_limit=-1)

    def test_cache_can_be_shared_between_instances(self, code_d3):
        shared = {}
        first = MWPMDecoder(code_d3, StabilizerType.X, boundary_clique_cache=shared)
        second = MWPMDecoder(code_d3, StabilizerType.X, boundary_clique_cache=shared)
        edges = first._boundary_clique_edges(4)
        assert second._boundary_clique_edges(4) is edges
        assert set(shared) == {4}


class TestLogicalPerformance:
    def test_higher_distance_suppresses_code_capacity_errors(self):
        # Under code-capacity noise (perfect measurements, single round) the
        # MWPM threshold is around 10%, so at p = 5% a d=5 code must clearly
        # outperform a d=3 code.
        from repro.codes.rotated_surface import get_code
        from repro.noise.models import CodeCapacityNoise
        from repro.simulation.memory import run_memory_experiment

        noise = CodeCapacityNoise(0.03)
        results = {}
        for distance in (3, 5):
            results[distance] = run_memory_experiment(
                get_code(distance),
                noise,
                lambda code, stype: MWPMDecoder(code, stype),
                trials=1500,
                rounds=1,
                rng=99,
            ).logical_error_rate
        assert results[5] < results[3]

    def test_logical_error_rate_increases_with_physical_rate(self):
        from repro.codes.rotated_surface import get_code
        from repro.noise.models import PhenomenologicalNoise
        from repro.simulation.memory import run_memory_experiment

        code = get_code(3)
        rates = []
        for p in (0.005, 0.03):
            rates.append(
                run_memory_experiment(
                    code,
                    PhenomenologicalNoise(p),
                    lambda c, s: MWPMDecoder(c, s),
                    trials=400,
                    rng=7,
                ).logical_error_rate
            )
        assert rates[0] < rates[1]


class TestEventBitmapPath:
    def test_bitmap_matches_decode(self, mwpm_d5, code_d5, rng):
        width = code_d5.num_ancillas_of_type(StabilizerType.X)
        data_index = code_d5.data_index
        # Densities chosen so event counts land both under and over the
        # subset-DP limit, covering the DP and blossom branches.
        for density in (0.05, 0.25):
            detections = (rng.random((5, width)) < density).astype(np.uint8)
            rounds, ancillas = np.nonzero(detections)
            bitmap = mwpm_d5.decode_events_bitmap(rounds, ancillas)
            expected = np.zeros(code_d5.num_data_qubits, dtype=np.uint8)
            for qubit in mwpm_d5.decode(detections).correction:
                expected[data_index[qubit]] ^= 1
            assert np.array_equal(bitmap, expected)

    def test_empty_events_give_zero_bitmap(self, mwpm_d5, code_d5):
        bitmap = mwpm_d5.decode_events_bitmap(np.array([]), np.array([]))
        assert bitmap.shape == (code_d5.num_data_qubits,)
        assert not bitmap.any()
