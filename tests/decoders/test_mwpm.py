"""Tests for the MWPM baseline decoder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.decoders.lookup import LookupDecoder
from repro.decoders.mwpm import (
    DEFAULT_BOUNDARY_CLIQUE_CACHE_LIMIT,
    SUBSET_DP_MAX_EVENTS,
    MWPMDecoder,
    match_events_small,
)
from repro.exceptions import ConfigurationError, DecodingError, SyndromeShapeError
from repro.noise.events import errors_to_vector, vector_to_errors
from repro.types import Coord, StabilizerType


@pytest.fixture(scope="module")
def mwpm_d5():
    from repro.codes.rotated_surface import get_code

    return MWPMDecoder(get_code(5), StabilizerType.X)


class TestSingleRoundDecoding:
    def test_empty_syndrome_gives_empty_correction(self, mwpm_d5, code_d5):
        result = mwpm_d5.decode(np.zeros(code_d5.num_ancillas_of_type(StabilizerType.X)))
        assert result.correction == frozenset()
        assert result.handled

    def test_rejects_wrong_width(self, mwpm_d5):
        with pytest.raises(SyndromeShapeError):
            mwpm_d5.decode(np.zeros(3, dtype=np.uint8))

    @pytest.mark.parametrize("qubit_index", range(0, 25, 3))
    def test_single_error_correction_cancels_syndrome(self, mwpm_d5, code_d5, qubit_index):
        error = {code_d5.data_qubits[qubit_index]}
        syndrome = code_d5.syndrome_of(error, StabilizerType.X)
        result = mwpm_d5.decode(syndrome)
        residual = frozenset(error) ^ result.correction
        assert not code_d5.syndrome_of(residual, StabilizerType.X).any()
        assert not code_d5.is_logical_error(residual, StabilizerType.X)

    def test_correction_has_zero_residual_for_random_errors(self, mwpm_d5, code_d5, rng):
        for _ in range(25):
            error = {q for q in code_d5.data_qubits if rng.random() < 0.08}
            syndrome = code_d5.syndrome_of(error, StabilizerType.X)
            result = mwpm_d5.decode(syndrome)
            residual = frozenset(error) ^ result.correction
            assert not code_d5.syndrome_of(residual, StabilizerType.X).any()

    def test_matches_lookup_decoder_weight_on_small_code(self, code_d3):
        # MWPM must find a minimum-weight explanation for every weight-1 and
        # weight-2 error pattern on the d=3 code (code capacity).
        lookup = LookupDecoder(code_d3, StabilizerType.X)
        mwpm = MWPMDecoder(code_d3, StabilizerType.X)
        qubits = code_d3.data_qubits
        for i in range(len(qubits)):
            error = {qubits[i]}
            syndrome = code_d3.syndrome_of(error, StabilizerType.X)
            optimal = lookup.decode(syndrome).correction
            matched = mwpm.decode(syndrome).correction
            assert len(matched) == len(optimal)

    def test_metadata_reports_event_counts(self, mwpm_d5, code_d5):
        error = {code_d5.data_qubits[6], code_d5.data_qubits[18]}
        syndrome = code_d5.syndrome_of(error, StabilizerType.X)
        result = mwpm_d5.decode(syndrome)
        assert result.metadata["num_events"] == int(syndrome.sum())


class TestSpaceTimeDecoding:
    def test_measurement_error_pair_needs_no_data_correction(self, mwpm_d5, code_d5):
        width = code_d5.num_ancillas_of_type(StabilizerType.X)
        detections = np.zeros((3, width), dtype=np.uint8)
        detections[0, 4] = 1
        detections[1, 4] = 1
        result = mwpm_d5.decode(detections)
        assert result.correction == frozenset()

    def test_data_error_in_one_round_is_corrected(self, mwpm_d5, code_d5):
        error = {Coord(4, 4)}
        syndrome = code_d5.syndrome_of(error, StabilizerType.X)
        width = code_d5.num_ancillas_of_type(StabilizerType.X)
        detections = np.zeros((3, width), dtype=np.uint8)
        detections[1] = syndrome
        result = mwpm_d5.decode(detections)
        residual = frozenset(error) ^ result.correction
        assert not code_d5.syndrome_of(residual, StabilizerType.X).any()
        assert not code_d5.is_logical_error(residual, StabilizerType.X)

    def test_full_memory_history_has_zero_residual_syndrome(self, code_d5, rng):
        from repro.noise.models import PhenomenologicalNoise
        from repro.syndrome.history import SyndromeHistory

        noise = PhenomenologicalNoise(0.03)
        decoder = MWPMDecoder(code_d5, StabilizerType.X)
        parity = code_d5.parity_check(StabilizerType.X)
        for _ in range(10):
            history = SyndromeHistory(code_d5.num_ancillas_of_type(StabilizerType.X))
            accumulated = np.zeros(code_d5.num_data_qubits, dtype=np.uint8)
            for _round in range(5):
                accumulated ^= noise.sample_data_vector(code_d5, rng)
                flips = noise.sample_measurement_vector(code_d5, StabilizerType.X, rng)
                history.record(((parity @ accumulated) % 2) ^ flips)
            history.record((parity @ accumulated) % 2)
            result = decoder.decode(history.detection_matrix())
            correction = errors_to_vector(result.correction, code_d5.data_index)
            residual = accumulated ^ correction
            residual_set = vector_to_errors(residual, code_d5.data_qubits)
            assert not code_d5.syndrome_of(residual_set, StabilizerType.X).any()


class TestSmallCaseSolver:
    def test_subset_dp_matches_blossom_weight(self, mwpm_d5, code_d5, rng):
        # The exact small-case DP must find the same minimum total distance as
        # the blossom auxiliary-graph path for every event count it handles.
        import numpy as np

        from repro.decoders.matching_graph import SpaceTimeEvent

        graph = mwpm_d5.matching_graph
        width = code_d5.num_ancillas_of_type(StabilizerType.X)

        def total_weight(pairs, boundary_matches):
            return sum(
                graph.event_distance(a, b) for a, b in pairs
            ) + sum(graph.event_boundary_distance(e) for e in boundary_matches)

        for _ in range(60):
            num = int(rng.integers(1, MWPMDecoder._SMALL_CASE_LIMIT + 1))
            cells = rng.choice(5 * width, size=num, replace=False)
            events = sorted(
                SpaceTimeEvent(round=int(c // width), ancilla_index=int(c % width))
                for c in cells
            )
            ancilla = np.array([e.ancilla_index for e in events])
            rounds = np.array([e.round for e in events])
            distance = (
                graph.spatial_distance_matrix[np.ix_(ancilla, ancilla)]
                + np.abs(rounds[:, None] - rounds[None, :])
            ).tolist()
            boundary = graph.boundary_distance_array[ancilla].tolist()
            dp_pairs, dp_boundary = mwpm_d5._match_small(distance, boundary)
            dp_weight = total_weight(
                [(events[i], events[j]) for i, j in dp_pairs],
                [events[i] for i in dp_boundary],
            )

            limit = MWPMDecoder._SMALL_CASE_LIMIT
            MWPMDecoder._SMALL_CASE_LIMIT = 0
            try:
                blossom_weight = total_weight(*mwpm_d5._match(events))
            finally:
                MWPMDecoder._SMALL_CASE_LIMIT = limit
            assert dp_weight == blossom_weight

    def test_all_zero_distance_tie_breaks_deterministically(self, mwpm_d5):
        # Pathological degenerate input: every pair and boundary assignment
        # ties at zero weight.  The DP must pick one canonical assignment
        # (everything to the boundary) so sharded and unsharded runs can
        # never diverge on equal-weight choices.
        for num in (1, 2, 3, 5):
            distance = [[0] * num for _ in range(num)]
            boundary = [0] * num
            pairs, boundary_matches = mwpm_d5._match_small(distance, boundary)
            assert pairs == []
            assert sorted(boundary_matches) == list(range(num))
            # Repeated calls agree exactly.
            assert (pairs, boundary_matches) == mwpm_d5._match_small(distance, boundary)

    def test_subset_dp_rejects_over_cap_event_counts(self):
        # The DP tables are O(2^n): a mid-30s event count would attempt a
        # multi-GB allocation, so the solver must refuse loudly instead.
        num = SUBSET_DP_MAX_EVENTS + 1
        distance = [[0] * num for _ in range(num)]
        boundary = [0] * num
        with pytest.raises(ConfigurationError, match="SUBSET_DP_MAX_EVENTS"):
            match_events_small(distance, boundary)


class TestBoundaryCliqueCache:
    def test_cache_is_bounded(self, code_d3):
        decoder = MWPMDecoder(code_d3, StabilizerType.X)
        for num in range(2, 2 + 3 * DEFAULT_BOUNDARY_CLIQUE_CACHE_LIMIT):
            edges = decoder._boundary_clique_edges(num)
            assert len(edges) == num * (num - 1) // 2
        assert (
            len(decoder._boundary_clique_cache)
            <= DEFAULT_BOUNDARY_CLIQUE_CACHE_LIMIT
        )

    def test_lru_eviction_order(self, code_d3):
        # Pin the cache's recency semantics: a hit moves the count to the
        # back of the eviction order, an insert at capacity evicts the least
        # recently used count — not simply the first ever inserted.
        decoder = MWPMDecoder(code_d3, StabilizerType.X, boundary_clique_cache_limit=3)
        for num in (2, 3, 4):
            decoder._boundary_clique_edges(num)
        assert list(decoder._boundary_clique_cache) == [2, 3, 4]
        # A hit on the oldest count marks it most recently used...
        decoder._boundary_clique_edges(2)
        assert list(decoder._boundary_clique_cache) == [3, 4, 2]
        # ...so the next inserts evict 3 then 4, never the freshly-hit 2.
        decoder._boundary_clique_edges(5)
        assert list(decoder._boundary_clique_cache) == [4, 2, 5]
        decoder._boundary_clique_edges(6)
        assert list(decoder._boundary_clique_cache) == [2, 5, 6]

    def test_evicted_counts_rebuild_correct_edges(self, code_d3):
        decoder = MWPMDecoder(code_d3, StabilizerType.X, boundary_clique_cache_limit=2)
        first = decoder._boundary_clique_edges(4)
        for num in (5, 6):  # evicts 4
            decoder._boundary_clique_edges(num)
        assert 4 not in decoder._boundary_clique_cache
        rebuilt = decoder._boundary_clique_edges(4)
        assert rebuilt == first
        assert len(rebuilt) == 4 * 3 // 2
        # Boundary copies occupy the node range [num, 2 * num).
        assert all(4 <= a < 8 for a, b, w in rebuilt)

    def test_zero_limit_disables_caching(self, code_d3):
        decoder = MWPMDecoder(code_d3, StabilizerType.X, boundary_clique_cache_limit=0)
        edges = decoder._boundary_clique_edges(10)
        assert decoder._boundary_clique_cache == {}
        assert len(edges) == 10 * 9 // 2
        assert all(10 <= a < 20 for a, b, w in edges)

    def test_cache_limit_is_configurable(self, code_d3):
        decoder = MWPMDecoder(code_d3, StabilizerType.X, boundary_clique_cache_limit=3)
        for num in range(2, 12):
            decoder._boundary_clique_edges(num)
        assert len(decoder._boundary_clique_cache) == 3

    def test_cache_limit_rejects_negative(self, code_d3):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            MWPMDecoder(code_d3, StabilizerType.X, boundary_clique_cache_limit=-1)

    def test_cache_can_be_shared_between_instances(self, code_d3):
        shared = {}
        first = MWPMDecoder(code_d3, StabilizerType.X, boundary_clique_cache=shared)
        second = MWPMDecoder(code_d3, StabilizerType.X, boundary_clique_cache=shared)
        edges = first._boundary_clique_edges(4)
        assert second._boundary_clique_edges(4) is edges
        assert set(shared) == {4}


class TestMatcherSelection:
    def test_invalid_matcher_is_rejected(self, code_d3):
        with pytest.raises(ConfigurationError, match="matcher"):
            MWPMDecoder(code_d3, StabilizerType.X, matcher="pymatching")

    def test_default_matcher_is_blossom(self, mwpm_d5):
        assert mwpm_d5.matcher == "blossom"

    def test_networkx_oracle_agrees_with_blossom_weight(self, code_d5, rng):
        pytest.importorskip("networkx")
        blossom_decoder = MWPMDecoder(code_d5, StabilizerType.X)
        oracle = MWPMDecoder(
            code_d5,
            StabilizerType.X,
            matching_graph=blossom_decoder.matching_graph,
            matcher="networkx",
        )
        graph = blossom_decoder.matching_graph
        width = code_d5.num_ancillas_of_type(StabilizerType.X)

        def total_weight(ancillas, rounds, pairs, boundary_matches):
            weight = 0
            for i, j in pairs:
                weight += int(
                    graph.spatial_distance_matrix[ancillas[i], ancillas[j]]
                ) + abs(int(rounds[i]) - int(rounds[j]))
            for i in boundary_matches:
                weight += int(graph.boundary_distance_array[ancillas[i]])
            return weight

        checked_large = 0
        for _ in range(30):
            detections = (rng.random((6, width)) < 0.25).astype(np.uint8)
            rounds, ancillas = np.nonzero(detections)
            ancillas = ancillas.astype(np.int64)
            rounds = rounds.astype(np.int64)
            if rounds.size <= MWPMDecoder._SMALL_CASE_LIMIT:
                continue
            checked_large += 1
            ours = blossom_decoder._match_indices(ancillas, rounds)
            theirs = oracle._match_indices(ancillas, rounds)
            assert total_weight(ancillas, rounds, *ours) == total_weight(
                ancillas, rounds, *theirs
            )
        assert checked_large >= 10

    def test_imperfect_matching_error_names_events_and_config(
        self, code_d5, monkeypatch
    ):
        nx = pytest.importorskip("networkx")
        decoder = MWPMDecoder(code_d5, StabilizerType.X, matcher="networkx")
        monkeypatch.setattr(
            nx, "max_weight_matching", lambda graph, maxcardinality=True: set()
        )
        width = code_d5.num_ancillas_of_type(StabilizerType.X)
        detections = np.zeros((5, width), dtype=np.uint8)
        detections[:3, :4] = 1  # 12 events, past the subset-DP limit
        with pytest.raises(DecodingError) as excinfo:
            decoder.decode(detections)
        message = str(excinfo.value)
        # The error must name the decoder configuration and the event
        # coordinates so a failure deep inside a sharded sweep is actionable.
        assert "MWPMDecoder" in message
        assert "distance=5" in message
        assert "stype=X" in message
        assert "matcher='networkx'" in message
        assert "(round, ancilla_index)" in message
        assert "(0, 0)" in message and "(2, 3)" in message


class TestLogicalPerformance:
    def test_higher_distance_suppresses_code_capacity_errors(self):
        # Under code-capacity noise (perfect measurements, single round) the
        # MWPM threshold is around 10%, so at p = 5% a d=5 code must clearly
        # outperform a d=3 code.
        from repro.codes.rotated_surface import get_code
        from repro.noise.models import CodeCapacityNoise
        from repro.simulation.memory import run_memory_experiment

        noise = CodeCapacityNoise(0.03)
        results = {}
        for distance in (3, 5):
            results[distance] = run_memory_experiment(
                get_code(distance),
                noise,
                lambda code, stype: MWPMDecoder(code, stype),
                trials=1500,
                rounds=1,
                rng=99,
            ).logical_error_rate
        assert results[5] < results[3]

    def test_logical_error_rate_increases_with_physical_rate(self):
        from repro.codes.rotated_surface import get_code
        from repro.noise.models import PhenomenologicalNoise
        from repro.simulation.memory import run_memory_experiment

        code = get_code(3)
        rates = []
        for p in (0.005, 0.03):
            rates.append(
                run_memory_experiment(
                    code,
                    PhenomenologicalNoise(p),
                    lambda c, s: MWPMDecoder(c, s),
                    trials=400,
                    rng=7,
                ).logical_error_rate
            )
        assert rates[0] < rates[1]


class TestEventBitmapPath:
    def test_bitmap_matches_decode(self, mwpm_d5, code_d5, rng):
        width = code_d5.num_ancillas_of_type(StabilizerType.X)
        data_index = code_d5.data_index
        # Densities chosen so event counts land both under and over the
        # subset-DP limit, covering the DP and blossom branches.
        for density in (0.05, 0.25):
            detections = (rng.random((5, width)) < density).astype(np.uint8)
            rounds, ancillas = np.nonzero(detections)
            bitmap = mwpm_d5.decode_events_bitmap(rounds, ancillas)
            expected = np.zeros(code_d5.num_data_qubits, dtype=np.uint8)
            for qubit in mwpm_d5.decode(detections).correction:
                expected[data_index[qubit]] ^= 1
            assert np.array_equal(bitmap, expected)

    def test_empty_events_give_zero_bitmap(self, mwpm_d5, code_d5):
        bitmap = mwpm_d5.decode_events_bitmap(np.array([]), np.array([]))
        assert bitmap.shape == (code_d5.num_data_qubits,)
        assert not bitmap.any()
