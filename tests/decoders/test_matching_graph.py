"""Tests for the space-time matching graph."""

from __future__ import annotations

import pytest

from repro.decoders.matching_graph import MatchingGraph, SpaceTimeEvent, get_matching_graph
from repro.types import StabilizerType


@pytest.fixture(scope="module")
def graph_d5() -> MatchingGraph:
    return get_matching_graph(5, StabilizerType.X)


class TestSpatialDistances:
    def test_distance_to_self_is_zero(self, graph_d5):
        for index in range(graph_d5.num_ancillas):
            assert graph_d5.spatial_distance(index, index) == 0

    def test_distances_are_symmetric(self, graph_d5):
        for a in range(graph_d5.num_ancillas):
            for b in range(graph_d5.num_ancillas):
                assert graph_d5.spatial_distance(a, b) == graph_d5.spatial_distance(b, a)

    def test_all_pairs_reachable(self, graph_d5):
        for a in range(graph_d5.num_ancillas):
            for b in range(graph_d5.num_ancillas):
                assert graph_d5.spatial_distance(a, b) >= 0

    def test_clique_neighbors_are_at_distance_one(self, code_d5):
        graph = MatchingGraph(code_d5, StabilizerType.X)
        index_of = code_d5.ancilla_index(StabilizerType.X)
        for ancilla in code_d5.ancillas(StabilizerType.X):
            for neighbor in ancilla.clique_neighbors:
                assert graph.spatial_distance(ancilla.index, index_of[neighbor]) == 1

    def test_triangle_inequality(self, graph_d5):
        n = graph_d5.num_ancillas
        for a in range(n):
            for b in range(n):
                for c in range(0, n, 3):
                    assert graph_d5.spatial_distance(a, b) <= (
                        graph_d5.spatial_distance(a, c) + graph_d5.spatial_distance(c, b)
                    )


class TestPathsProduceCorrectSyndromes:
    def test_pairwise_path_flips_exactly_the_endpoints(self, code_d5):
        graph = MatchingGraph(code_d5, StabilizerType.X)
        ancillas = code_d5.ancillas(StabilizerType.X)
        for a in range(len(ancillas)):
            for b in range(a + 1, len(ancillas)):
                path = graph.spatial_path(a, b)
                assert len(path) == graph.spatial_distance(a, b)
                syndrome = code_d5.syndrome_of(path, StabilizerType.X)
                flipped = {i for i in range(len(ancillas)) if syndrome[i]}
                assert flipped == {a, b}

    def test_boundary_path_flips_only_the_source(self, code_d5):
        graph = MatchingGraph(code_d5, StabilizerType.X)
        ancillas = code_d5.ancillas(StabilizerType.X)
        for a in range(len(ancillas)):
            path = graph.boundary_path(a)
            assert len(path) == graph.boundary_distance(a)
            syndrome = code_d5.syndrome_of(path, StabilizerType.X)
            flipped = {i for i in range(len(ancillas)) if syndrome[i]}
            assert flipped == {a}

    def test_boundary_distance_is_one_for_boundary_ancillas(self, code_d5, stype):
        graph = MatchingGraph(code_d5, stype)
        for ancilla in code_d5.ancillas(stype):
            if ancilla.boundary_qubits:
                assert graph.boundary_distance(ancilla.index) == 1

    def test_boundary_distance_bounded_by_half_lattice(self, code_d7):
        graph = MatchingGraph(code_d7, StabilizerType.X)
        for index in range(graph.num_ancillas):
            assert 1 <= graph.boundary_distance(index) <= code_d7.distance


class TestSpaceTimeMetric:
    def test_event_distance_adds_time_separation(self, graph_d5):
        near = SpaceTimeEvent(round=0, ancilla_index=0)
        far = SpaceTimeEvent(round=3, ancilla_index=0)
        assert graph_d5.event_distance(near, far) == 3

    def test_event_distance_combines_space_and_time(self, graph_d5):
        a = SpaceTimeEvent(round=1, ancilla_index=0)
        b = SpaceTimeEvent(round=4, ancilla_index=5)
        expected = graph_d5.spatial_distance(0, 5) + 3
        assert graph_d5.event_distance(a, b) == expected

    def test_boundary_distance_is_purely_spatial(self, graph_d5):
        event = SpaceTimeEvent(round=7, ancilla_index=2)
        assert graph_d5.event_boundary_distance(event) == graph_d5.boundary_distance(2)

    def test_correction_between_same_ancilla_events_is_empty(self, graph_d5):
        a = SpaceTimeEvent(round=0, ancilla_index=3)
        b = SpaceTimeEvent(round=2, ancilla_index=3)
        assert graph_d5.correction_between(a, b) == frozenset()


class TestCaching:
    def test_get_matching_graph_caches(self):
        assert get_matching_graph(3, StabilizerType.X) is get_matching_graph(
            3, StabilizerType.X
        )

    def test_types_have_separate_graphs(self):
        assert get_matching_graph(3, StabilizerType.X) is not get_matching_graph(
            3, StabilizerType.Z
        )
