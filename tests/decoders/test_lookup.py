"""Tests for the exhaustive lookup-table decoder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.decoders.lookup import LookupDecoder
from repro.exceptions import ConfigurationError, DecodingError
from repro.types import StabilizerType


@pytest.fixture(scope="module")
def lookup_d3():
    from repro.codes.rotated_surface import get_code

    return LookupDecoder(get_code(3), StabilizerType.X)


class TestConstruction:
    def test_rejects_large_distances(self, code_d7):
        with pytest.raises(ConfigurationError):
            LookupDecoder(code_d7, StabilizerType.X)

    def test_table_covers_every_syndrome(self, lookup_d3, code_d3):
        expected = 2 ** code_d3.num_ancillas_of_type(StabilizerType.X)
        assert lookup_d3.table_size == expected


class TestDecoding:
    def test_zero_syndrome_zero_correction(self, lookup_d3, code_d3):
        width = code_d3.num_ancillas_of_type(StabilizerType.X)
        assert lookup_d3.decode(np.zeros(width, dtype=np.uint8)).correction == frozenset()

    def test_corrections_always_cancel_the_syndrome(self, lookup_d3, code_d3):
        width = code_d3.num_ancillas_of_type(StabilizerType.X)
        for pattern in range(2**width):
            syndrome = np.array(
                [(pattern >> bit) & 1 for bit in range(width)], dtype=np.uint8
            )
            correction = lookup_d3.decode(syndrome).correction
            assert np.array_equal(
                code_d3.syndrome_of(correction, StabilizerType.X), syndrome
            )

    def test_single_errors_are_corrected_exactly(self, lookup_d3, code_d3):
        for qubit in code_d3.data_qubits:
            syndrome = code_d3.syndrome_of({qubit}, StabilizerType.X)
            correction = lookup_d3.decode(syndrome).correction
            residual = {qubit} ^ set(correction)
            assert not code_d3.syndrome_of(residual, StabilizerType.X).any()
            assert not code_d3.is_logical_error(residual, StabilizerType.X)

    def test_corrections_are_minimum_weight(self, lookup_d3, code_d3):
        # No other error pattern of strictly smaller weight may produce the
        # same syndrome (spot-checked on all weight-2 patterns).
        from itertools import combinations

        for pair in combinations(code_d3.data_qubits, 2):
            syndrome = code_d3.syndrome_of(set(pair), StabilizerType.X)
            correction = lookup_d3.decode(syndrome).correction
            assert len(correction) <= 2

    def test_rejects_multiround_input(self, lookup_d3, code_d3):
        width = code_d3.num_ancillas_of_type(StabilizerType.X)
        with pytest.raises(DecodingError):
            lookup_d3.decode(np.zeros((2, width), dtype=np.uint8))

    def test_metadata_reports_weight(self, lookup_d3, code_d3):
        syndrome = code_d3.syndrome_of({code_d3.data_qubits[4]}, StabilizerType.X)
        result = lookup_d3.decode(syndrome)
        assert result.metadata["correction_weight"] == len(result.correction)
