"""Tests for the clustering (union-find style) decoder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.decoders.mwpm import SUBSET_DP_MAX_EVENTS
from repro.decoders.union_find import (
    ClusteringDecoder,
    _DisjointSets,
    default_escalation_cluster_size,
)
from repro.types import Coord, StabilizerType


class TestDisjointSets:
    def test_initially_all_singletons(self):
        sets = _DisjointSets(4)
        assert len({sets.find(i) for i in range(4)}) == 4

    def test_union_merges_roots(self):
        sets = _DisjointSets(4)
        sets.union(0, 1)
        sets.union(1, 2)
        assert sets.find(0) == sets.find(2)
        assert sets.find(3) != sets.find(0)

    def test_union_is_idempotent(self):
        sets = _DisjointSets(3)
        sets.union(0, 1)
        sets.union(0, 1)
        assert sets.find(0) == sets.find(1)


@pytest.fixture(scope="module")
def clustering_d5():
    from repro.codes.rotated_surface import get_code

    return ClusteringDecoder(get_code(5), StabilizerType.X)


class TestClusteringDecoder:
    def test_empty_syndrome(self, clustering_d5, code_d5):
        width = code_d5.num_ancillas_of_type(StabilizerType.X)
        assert clustering_d5.decode(np.zeros(width, dtype=np.uint8)).correction == frozenset()

    def test_single_bulk_error_is_corrected(self, clustering_d5, code_d5):
        error = {Coord(4, 4)}
        syndrome = code_d5.syndrome_of(error, StabilizerType.X)
        result = clustering_d5.decode(syndrome)
        residual = frozenset(error) ^ result.correction
        assert not code_d5.syndrome_of(residual, StabilizerType.X).any()
        assert not code_d5.is_logical_error(residual, StabilizerType.X)

    def test_zero_residual_syndrome_for_random_errors(self, clustering_d5, code_d5, rng):
        for _ in range(25):
            error = {q for q in code_d5.data_qubits if rng.random() < 0.06}
            syndrome = code_d5.syndrome_of(error, StabilizerType.X)
            result = clustering_d5.decode(syndrome)
            residual = frozenset(error) ^ result.correction
            assert not code_d5.syndrome_of(residual, StabilizerType.X).any()

    def test_measurement_error_pair_resolved_in_time(self, clustering_d5, code_d5):
        width = code_d5.num_ancillas_of_type(StabilizerType.X)
        detections = np.zeros((4, width), dtype=np.uint8)
        detections[1, 3] = 1
        detections[2, 3] = 1
        result = clustering_d5.decode(detections)
        # Matching the pair temporally needs no data correction; any residual
        # correction must at least have zero syndrome.
        assert not code_d5.syndrome_of(result.correction, StabilizerType.X).any()

    def test_metadata_reports_clusters(self, clustering_d5, code_d5):
        error = {Coord(0, 0), Coord(8, 8)}
        syndrome = code_d5.syndrome_of(error, StabilizerType.X)
        result = clustering_d5.decode(syndrome)
        assert result.metadata["num_events"] >= 1
        assert result.metadata["num_clusters"] >= 1

    def test_accuracy_between_random_and_mwpm(self, code_d3):
        # On the d=3 code the clustering decoder must correct every single
        # data error without inducing a logical error.
        decoder = ClusteringDecoder(code_d3, StabilizerType.X)
        for qubit in code_d3.data_qubits:
            syndrome = code_d3.syndrome_of({qubit}, StabilizerType.X)
            result = decoder.decode(syndrome)
            residual = {qubit} ^ set(result.correction)
            assert not code_d3.syndrome_of(residual, StabilizerType.X).any()
            assert not code_d3.is_logical_error(residual, StabilizerType.X)


class TestStatelessness:
    def test_decode_leaves_no_growth_state_behind(self, clustering_d5, code_d5):
        error = {Coord(2, 2), Coord(6, 4)}
        syndrome = code_d5.syndrome_of(error, StabilizerType.X)
        clustering_d5.decode(syndrome)
        # _grow_clusters must keep all growth state local: the decoder holds
        # no per-call attributes, so instances are safe to share across
        # threads and repeated decodes cannot observe each other.
        assert not hasattr(clustering_d5, "_radius")
        assert not hasattr(clustering_d5, "_boundary_distance")

    def test_repeated_decodes_are_identical(self, clustering_d5, code_d5, rng):
        width = code_d5.num_ancillas_of_type(StabilizerType.X)
        detections = (rng.random((5, width)) < 0.15).astype(np.uint8)
        first = clustering_d5.decode(detections)
        second = clustering_d5.decode(detections)
        assert first.correction == second.correction
        assert first.metadata == second.metadata


class TestEventBitmapPath:
    def test_bitmap_matches_decode(self, clustering_d5, code_d5, rng):
        width = code_d5.num_ancillas_of_type(StabilizerType.X)
        data_index = code_d5.data_index
        for density in (0.06, 0.2):
            detections = (rng.random((4, width)) < density).astype(np.uint8)
            rounds, ancillas = np.nonzero(detections)
            bitmap = clustering_d5.decode_events_bitmap(rounds, ancillas)
            expected = np.zeros(code_d5.num_data_qubits, dtype=np.uint8)
            for qubit in clustering_d5.decode(detections).correction:
                expected[data_index[qubit]] ^= 1
            assert np.array_equal(bitmap, expected)

    def test_empty_events_give_zero_bitmap(self, clustering_d5, code_d5):
        bitmap = clustering_d5.decode_events_bitmap(np.array([]), np.array([]))
        assert bitmap.shape == (code_d5.num_data_qubits,)
        assert not bitmap.any()

    def test_bitmap_path_never_escalates(self, code_d5, rng):
        # decode_events_bitmap is the *final-tier* entry point: even with an
        # escalation policy configured it must resolve everything itself.
        policy = ClusteringDecoder(
            code_d5, StabilizerType.X, escalation_cluster_size=1
        )
        plain = ClusteringDecoder(code_d5, StabilizerType.X)
        width = code_d5.num_ancillas_of_type(StabilizerType.X)
        detections = (rng.random((4, width)) < 0.2).astype(np.uint8)
        rounds, ancillas = np.nonzero(detections)
        assert np.array_equal(
            policy.decode_events_bitmap(rounds, ancillas),
            plain.decode_events_bitmap(rounds, ancillas),
        )


class TestAdaptiveEscalationThreshold:
    def test_grows_with_distance_within_dp_cap(self):
        assert default_escalation_cluster_size(3) == 8
        assert default_escalation_cluster_size(5) == 8
        assert default_escalation_cluster_size(7) == 10
        assert default_escalation_cluster_size(13) == 16
        # Never beyond the subset-DP hard cap.
        assert default_escalation_cluster_size(31) == SUBSET_DP_MAX_EVENTS


class TestOverCapClusterRouting:
    def test_large_kept_cluster_routes_to_blossom_not_dp(self, code_d5, monkeypatch):
        # Regression test for the O(2^n) footgun: a threshold in the mid-30s
        # used to send every kept cluster to the subset-DP, whose tables for
        # a ~34-event cluster would be a multi-GB allocation.  Kept clusters
        # beyond SUBSET_DP_MAX_EVENTS must route to the blossom matcher.
        decoder = ClusteringDecoder(
            code_d5, StabilizerType.X, escalation_cluster_size=34
        )

        def _dp_guard(distance, boundary):
            raise AssertionError("subset-DP called on an over-cap cluster")

        monkeypatch.setattr(
            "repro.decoders.union_find.match_events_small", _dp_guard
        )
        # 17 events on one ancilla across consecutive rounds grow into a
        # single 17-event cluster: kept (17 <= 34) but past the DP cap.
        rounds = np.arange(17)
        ancillas = np.zeros(17, dtype=np.int64)
        bitmap, escalated = decoder.decode_events_tiered(rounds, ancillas)
        assert escalated.size == 0
        # Exact matching pairs 8 adjacent temporal pairs (no data correction)
        # and sends one event to the boundary.
        assert np.array_equal(bitmap, decoder._graph.boundary_path_bitmaps[0])
