"""Differential tests for the in-tree blossom matcher.

The matcher must agree on *total* assignment cost with both independent
oracles on the same instances:

* the exact subset-DP (``match_events_small``) for small event sets, and
* networkx's ``max_weight_matching`` on the legacy auxiliary graph
  (explicit boundary copies + zero-weight clique), when networkx is
  available.

Equal-cost solutions may pick different pairings — cost is the quantity
that fixes decoding accuracy — but every solution must be a valid
partition of the events and repeated runs must be bit-identical.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.decoders.blossom import match_events, max_weight_matching
from repro.decoders.mwpm import match_events_small


def _total_cost(distance, boundary, pairs, boundary_matches):
    return sum(distance[i][j] for i, j in pairs) + sum(
        boundary[i] for i in boundary_matches
    )


def _assert_valid_assignment(num, pairs, boundary_matches):
    """Every event appears exactly once, as a pair member or at the boundary."""
    seen = sorted([v for pair in pairs for v in pair] + list(boundary_matches))
    assert seen == list(range(num))


def _networkx_total_cost(distance, boundary):
    """Optimal cost via the legacy auxiliary-graph formulation."""
    nx = pytest.importorskip("networkx")
    num = len(boundary)
    if num == 0:
        return 0
    graph = nx.Graph()
    graph.add_nodes_from(range(2 * num))
    for i in range(num):
        graph.add_edge(i, num + i, weight=-boundary[i])
        for j in range(i + 1, num):
            graph.add_edge(i, j, weight=-distance[i][j])
            graph.add_edge(num + i, num + j, weight=0)
    matching = nx.max_weight_matching(graph, maxcardinality=True)
    matched_nodes = {node for pair in matching for node in pair}
    assert len(matched_nodes) == 2 * num
    cost = 0
    for a, b in matching:
        low, high = min(a, b), max(a, b)
        if high < num:
            cost += distance[low][high]
        elif low < num <= high:
            cost += boundary[low]
    return cost


@st.composite
def matching_instance(draw, max_events=8, max_distance=6):
    """A symmetric integer distance table plus boundary distances.

    Distances are drawn from a small range so equal-weight ties — the
    regime where matcher implementations legitimately differ — occur
    constantly.
    """
    num = draw(st.integers(min_value=0, max_value=max_events))
    boundary = draw(
        st.lists(st.integers(1, max_distance), min_size=num, max_size=num)
    )
    upper = draw(
        st.lists(
            st.integers(1, max_distance),
            min_size=num * (num - 1) // 2,
            max_size=num * (num - 1) // 2,
        )
    )
    distance = [[0] * num for _ in range(num)]
    position = 0
    for i in range(num):
        for j in range(i + 1, num):
            distance[i][j] = distance[j][i] = upper[position]
            position += 1
    return distance, boundary


class TestDifferentialSmall:
    @settings(max_examples=300, deadline=None)
    @given(instance=matching_instance())
    def test_matches_subset_dp_cost(self, instance):
        distance, boundary = instance
        num = len(boundary)
        dp_pairs, dp_boundary = match_events_small(distance, boundary)
        pairs, boundary_matches = match_events(
            np.asarray(distance, dtype=np.int64).reshape(num, num),
            np.asarray(boundary, dtype=np.int64),
        )
        _assert_valid_assignment(num, pairs, boundary_matches)
        assert _total_cost(distance, boundary, pairs, boundary_matches) == (
            _total_cost(distance, boundary, dp_pairs, dp_boundary)
        )

    @settings(max_examples=100, deadline=None)
    @given(instance=matching_instance())
    def test_matches_networkx_cost(self, instance):
        distance, boundary = instance
        num = len(boundary)
        pairs, boundary_matches = match_events(
            np.asarray(distance, dtype=np.int64).reshape(num, num),
            np.asarray(boundary, dtype=np.int64),
        )
        assert _total_cost(
            distance, boundary, pairs, boundary_matches
        ) == _networkx_total_cost(distance, boundary)

    @settings(max_examples=100, deadline=None)
    @given(instance=matching_instance())
    def test_repeated_runs_are_bit_identical(self, instance):
        distance, boundary = instance
        num = len(boundary)
        dist = np.asarray(distance, dtype=np.int64).reshape(num, num)
        bound = np.asarray(boundary, dtype=np.int64)
        assert match_events(dist, bound) == match_events(dist, bound)


class TestLargeInstances:
    def test_matches_networkx_cost_beyond_dp_reach(self):
        # Event counts far past the subset-DP cap, where only the polynomial
        # matchers can play; instances seeded so failures reproduce.
        rng = np.random.default_rng(20230807)
        for num in (20, 33, 48):
            spatial = rng.integers(1, 9, size=(num, num))
            distance = (spatial + spatial.T).astype(np.int64)
            np.fill_diagonal(distance, 0)
            boundary = rng.integers(1, 9, size=num).astype(np.int64)
            pairs, boundary_matches = match_events(distance, boundary)
            _assert_valid_assignment(num, pairs, boundary_matches)
            assert _total_cost(
                distance, boundary.tolist(), pairs, boundary_matches
            ) == _networkx_total_cost(distance.tolist(), boundary.tolist())


class TestEdgeCases:
    def test_empty_and_singleton(self):
        assert match_events(np.zeros((0, 0), dtype=np.int64), np.zeros(0)) == ([], [])
        assert match_events(np.zeros((1, 1), dtype=np.int64), np.array([3])) == (
            [],
            [0],
        )

    def test_pair_boundary_tie_resolves_to_boundary(self):
        # profit(0, 1) = 1 + 1 - 2 = 0: pairing does not strictly beat the
        # boundary, so the canonical choice (shared with the subset-DP) is
        # the boundary for both events.
        distance = np.array([[0, 2], [2, 0]], dtype=np.int64)
        boundary = np.array([1, 1], dtype=np.int64)
        assert match_events(distance, boundary) == ([], [0, 1])

    def test_profitable_pair_is_taken(self):
        distance = np.array([[0, 1], [1, 0]], dtype=np.int64)
        boundary = np.array([4, 4], dtype=np.int64)
        assert match_events(distance, boundary) == ([(0, 1)], [])

    def test_max_weight_matching_empty_graph(self):
        assert max_weight_matching(3, [], [], []) == [-1, -1, -1]

    def test_max_weight_matching_prefers_heavier_edge(self):
        # Path a-b-c: taking the single heavier edge beats the lighter one.
        mate = max_weight_matching(3, [0, 1], [1, 2], [2, 5])
        assert mate == [-1, 2, 1]
