"""Tests for the command-line front-end."""

from __future__ import annotations

import argparse

import pytest

from repro.cli import _parse_param, _parse_scalar, build_parser, main
from repro.experiments.registry import available_experiments


class TestParamParsing:
    def test_int_value(self):
        assert _parse_param("cycles=500") == ("cycles", 500)

    def test_float_value(self):
        assert _parse_param("rate=0.01") == ("rate", 0.01)

    def test_bool_value(self):
        assert _parse_param("flag=true") == ("flag", True)
        assert _parse_param("flag=False") == ("flag", False)

    def test_string_value(self):
        assert _parse_param("name=fig11") == ("name", "fig11")

    def test_comma_separated_values_become_tuples(self):
        assert _parse_param("distances=3,5,7") == ("distances", (3, 5, 7))
        assert _parse_param("error_rates=1e-3,1e-2") == ("error_rates", (0.001, 0.01))

    def test_trailing_comma_forces_one_element_tuple(self):
        assert _parse_param("distances=3,") == ("distances", (3,))

    def test_missing_equals_raises(self):
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_param("cycles")

    def test_empty_value_raises(self):
        # `trials=` used to parse as the empty string and reach the runner.
        with pytest.raises(argparse.ArgumentTypeError, match="empty value"):
            _parse_param("trials=")

    def test_empty_tuple_element_raises(self):
        # `distances=3,,5` used to silently drop the hole and parse as (3, 5).
        with pytest.raises(argparse.ArgumentTypeError, match="empty element"):
            _parse_param("distances=3,,5")

    def test_leading_empty_tuple_element_raises(self):
        with pytest.raises(argparse.ArgumentTypeError, match="empty element"):
            _parse_param("distances=,3")

    def test_lone_comma_raises(self):
        with pytest.raises(argparse.ArgumentTypeError, match="empty element"):
            _parse_param("distances=,")

    def test_underscore_int_literal_raises(self):
        # `trials=1_0` used to parse as 10 via Python's digit separators.
        with pytest.raises(argparse.ArgumentTypeError, match="digit separators"):
            _parse_param("trials=1_0")

    def test_underscore_float_literal_raises(self):
        with pytest.raises(argparse.ArgumentTypeError, match="digit separators"):
            _parse_param("rate=1_000.5")

    def test_underscore_in_tuple_element_raises(self):
        with pytest.raises(argparse.ArgumentTypeError, match="digit separators"):
            _parse_param("distances=3,1_1")

    def test_underscore_strings_still_pass_through(self):
        assert _parse_param("fallback=union_find") == ("fallback", "union_find")
        assert _parse_scalar("union_find") == "union_find"

    @pytest.mark.parametrize("raw", ["trials=", "distances=3,,5"])
    def test_malformed_param_exits_nonzero_via_main(self, raw, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "fig14", "--param", raw])
        assert excinfo.value.code not in (0, None)
        assert "error" in capsys.readouterr().err


class TestCommands:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out.split()
        assert set(output) == set(available_experiments())

    def test_run_prints_table(self, capsys):
        exit_code = main(["run", "table1"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "XOR2" in out

    def test_run_with_params(self, capsys):
        exit_code = main(["run", "fig15", "--param", "distances=3"])
        # A single int is not iterable for the runner, so fall back to a tuple
        # param form instead; this asserts clean error handling, not a crash.
        assert exit_code in (0, 1)

    def test_run_unknown_experiment_fails_cleanly(self, capsys):
        exit_code = main(["run", "fig99"])
        assert exit_code == 1
        assert "error" in capsys.readouterr().err

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_subcommand_may_be_omitted(self, capsys):
        assert main(["table1"]) == 0
        shorthand = capsys.readouterr().out
        assert main(["run", "table1"]) == 0
        assert capsys.readouterr().out == shorthand

    def test_unknown_experiment_via_shorthand_fails_cleanly(self, capsys):
        assert main(["fig99"]) == 1
        assert "error" in capsys.readouterr().err


class TestShardedCoverageCli:
    FIG11_ARGS = [
        "fig11",
        "--param",
        "cycles=2000",
        "--param",
        "distances=3,5",
        "--param",
        "error_rates=1e-2,",
    ]

    def _run(self, extra, capsys):
        assert main(self.FIG11_ARGS + extra) == 0
        return capsys.readouterr().out

    def test_fig11_workers_produce_byte_identical_rows(self, capsys):
        # The PR's acceptance criterion, through the real CLI: at a fixed
        # seed the sharded coverage sweep is byte-identical across workers.
        single = self._run(["--workers", "1"], capsys)
        pooled = self._run(["--workers", "4"], capsys)
        assert single == pooled
        assert "coverage_pct" in single

    def test_fig11_chunk_cycles_flag_is_forwarded(self, capsys):
        # Different chunking = different per-shard streams: still valid, but
        # legitimately different counts — the flag must reach the runner.
        coarse = self._run(["--workers", "1"], capsys)
        fine = self._run(["--workers", "1", "--chunk-cycles", "500"], capsys)
        assert coarse != fine

    def test_fig11_adaptive_width_flag_caps_cycles(self, capsys):
        out = self._run(
            ["--workers", "1", "--chunk-cycles", "500", "--target-ci-width", "0.05"],
            capsys,
        )
        # d=3 at p=1e-2 converges far below the 2000-cycle budget, so the
        # cycles column must report fewer than the budget for every row —
        # which also pins that the flag actually reaches the runner.
        data_rows = [
            line.split()
            for line in out.splitlines()
            if line and line[0].isdigit()
        ]
        assert data_rows
        cycles_consumed = [int(fields[2]) for fields in data_rows]
        assert all(cycles < 2000 for cycles in cycles_consumed)


class TestStoreCli:
    FIG11_ARGS = [
        "fig11",
        "--param",
        "cycles=400",
        "--param",
        "distances=3,",
        "--param",
        "error_rates=1e-2,",
    ]

    def _run(self, extra, capsys):
        assert main(self.FIG11_ARGS + extra) == 0
        return capsys.readouterr().out

    def test_warm_store_rerun_is_byte_identical(self, tmp_path, capsys):
        store = ["--store", str(tmp_path / "store")]
        cold = self._run(store, capsys)
        warm = self._run(store, capsys)
        assert warm == cold
        assert (tmp_path / "store" / "results.jsonl").exists()

    def test_explicit_resume_flag_accepted(self, tmp_path, capsys):
        store = ["--store", str(tmp_path / "store")]
        cold = self._run(store, capsys)
        assert self._run(store + ["--resume"], capsys) == cold

    def test_force_flag_recomputes_and_matches(self, tmp_path, capsys):
        # Deterministic seeds: forcing recomputation must reproduce the
        # stored numbers exactly (and exit cleanly while overwriting).
        store = ["--store", str(tmp_path / "store")]
        cold = self._run(store, capsys)
        assert self._run(store + ["--force"], capsys) == cold

    def test_force_without_store_errors(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(self.FIG11_ARGS + ["--force"])
        assert excinfo.value.code not in (0, None)
        assert "--store" in capsys.readouterr().err

    def test_resume_and_force_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(self.FIG11_ARGS + ["--store", "s", "--resume", "--force"])

    def test_store_path_that_is_a_file_fails_cleanly(self, tmp_path, capsys):
        # A --store path naming an existing file must produce the standard
        # 'error:' message and exit 1, not a raw FileExistsError traceback.
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        assert main(self.FIG11_ARGS + ["--store", str(blocker)]) == 1
        assert "error" in capsys.readouterr().err

    def test_store_with_non_sweep_experiment_fails_cleanly(self, tmp_path, capsys):
        # table1 takes no store kwarg: the CLI reports the TypeError as a
        # normal parameter error instead of crashing.
        assert main(["run", "table1", "--store", str(tmp_path)]) == 1
        assert "error" in capsys.readouterr().err


class TestCascadeTiersCli:
    FIG14_ARGS = [
        "fig14_fallbacks",
        "--param",
        "trials=60",
        "--param",
        "distances=5,",
    ]

    def test_tiers_spec_runs_three_tier_cascade(self, capsys):
        assert main(self.FIG14_ARGS + ["--tiers", "clique,union_find,mwpm"]) == 0
        out = capsys.readouterr().out
        assert "clique,union_find,mwpm" in out
        assert "escalation_rates" in out
        assert "offchip_rounds_per_trial" in out

    def test_tiers_spec_reaches_fig14_sweep(self, capsys):
        assert (
            main(
                [
                    "fig14",
                    "--tiers",
                    "clique,union_find,mwpm",
                    "--param",
                    "trials=40",
                    "--param",
                    "distances=3,",
                    "--param",
                    "error_rates=2e-2,",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Clique+UF+MWPM" in out
        assert "tiers=clique,union_find,mwpm" in out

    def test_unknown_tier_name_lists_valid_decoders(self, capsys):
        # The satellite fix: a typo'd tier must produce the registry's clean
        # error naming the valid decoders, not a KeyError traceback.
        assert main(self.FIG14_ARGS + ["--tiers", "clique,blossom"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "mwpm" in err and "union_find" in err
        assert "Traceback" not in err

    def test_unknown_fallback_name_lists_valid_decoders(self, capsys):
        assert main(self.FIG14_ARGS + ["--fallback", "blossom"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "mwpm" in err and "union_find" in err

    def test_unknown_fallback_via_param_lists_valid_decoders(self, capsys):
        assert main(self.FIG14_ARGS + ["--param", "fallback=blossom"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "mwpm" in err and "union_find" in err

    def test_escalation_cluster_size_flag_threads_through(self, capsys):
        assert (
            main(
                self.FIG14_ARGS
                + [
                    "--tiers",
                    "clique,union_find,mwpm",
                    "--escalation-cluster-size",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "clique,union_find,mwpm" in out

    def test_tiers_and_fallback_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(self.FIG14_ARGS + ["--tiers", "clique,mwpm", "--fallback", "mwpm"])
        assert excinfo.value.code not in (0, None)
        assert "mutually exclusive" in capsys.readouterr().err


class TestPackedCli:
    FIG14_ARGS = [
        "fig14",
        "--param",
        "trials=80",
        "--param",
        "distances=5,",
        "--param",
        "error_rates=1e-2,",
    ]

    def _run(self, extra, capsys):
        assert main(self.FIG14_ARGS + extra) == 0
        return capsys.readouterr().out

    def test_no_packed_flag_is_byte_identical(self, capsys):
        # The packed kernels' hard invariant, through the real CLI: the
        # default (packed) sweep and the --no-packed escape hatch print
        # byte-identical tables — which also pins that the flag is actually
        # forwarded into the experiment runner.
        packed = self._run([], capsys)
        unpacked = self._run(["--no-packed"], capsys)
        assert packed == unpacked
        assert "logical_error_rate" in packed


class TestStoreCompactCli:
    FIG11_ARGS = [
        "fig11",
        "--param",
        "cycles=400",
        "--param",
        "distances=3,",
        "--param",
        "error_rates=1e-2,",
    ]

    def test_compact_reports_summary_and_preserves_results(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main(self.FIG11_ARGS + ["--store", store_dir]) == 0
        cold = capsys.readouterr().out
        # A --force re-run appends duplicate lines for every point.
        assert main(self.FIG11_ARGS + ["--store", store_dir, "--force"]) == 0
        capsys.readouterr()
        assert main(["store", "compact", store_dir]) == 0
        out = capsys.readouterr().out
        assert "kept 1 records" in out
        assert "dropped 1 stale lines" in out
        # The compacted store still serves the sweep byte-identically.
        assert main(self.FIG11_ARGS + ["--store", store_dir]) == 0
        assert capsys.readouterr().out == cold

    def test_compact_on_fresh_directory(self, tmp_path, capsys):
        assert main(["store", "compact", str(tmp_path / "empty")]) == 0
        assert "kept 0 records" in capsys.readouterr().out

    def test_compact_on_file_path_fails_cleanly(self, tmp_path, capsys):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        assert main(["store", "compact", str(blocker)]) == 1
        assert "error" in capsys.readouterr().err

    def test_store_without_subcommand_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["store"])


class TestLintCli:
    @staticmethod
    def _violation_file(tmp_path):
        target = tmp_path / "snippet.py"
        target.write_text(
            "import numpy as np\nnp.random.seed(3)\n", encoding="utf-8"
        )
        return target

    def test_clean_path_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("import numpy as np\n", encoding="utf-8")
        assert main(["lint", str(clean)]) == 0
        assert "clean: no findings" in capsys.readouterr().out

    def test_findings_exit_one_with_coordinates(self, tmp_path, capsys):
        target = self._violation_file(tmp_path)
        assert main(["lint", str(target)]) == 1
        out = capsys.readouterr().out
        assert f"{target}:2:1: DET001" in out
        assert "1 finding(s)" in out

    def test_json_format_is_machine_readable(self, tmp_path, capsys):
        import json

        target = self._violation_file(tmp_path)
        assert main(["lint", "--format", "json", str(target)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert [(f["rule"], f["line"]) for f in payload["findings"]] == [
            ("DET001", 2)
        ]

    def test_select_and_ignore_narrow_the_rule_set(self, tmp_path, capsys):
        target = self._violation_file(tmp_path)
        assert main(["lint", "--select", "DTY001", str(target)]) == 0
        capsys.readouterr()
        assert main(["lint", "--ignore", "DET001", str(target)]) == 0

    def test_unknown_rule_id_exits_two(self, tmp_path, capsys):
        target = self._violation_file(tmp_path)
        assert main(["lint", "--select", "NOPE999", str(target)]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_nonexistent_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "missing.py")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_list_rules_names_every_contract(self, capsys):
        from repro.analysis.core import all_rules

        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in all_rules():
            assert rule_id in out

    def test_default_paths_lint_the_installed_package(self, capsys):
        # `repro-qec lint` with no paths lints src/repro itself — the same
        # invariant the tier-1 self-lint test pins, via the CLI surface.
        assert main(["lint"]) == 0
        assert "clean: no findings" in capsys.readouterr().out
