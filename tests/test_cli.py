"""Tests for the command-line front-end."""

from __future__ import annotations

import pytest

from repro.cli import _parse_param, build_parser, main
from repro.experiments.registry import available_experiments


class TestParamParsing:
    def test_int_value(self):
        assert _parse_param("cycles=500") == ("cycles", 500)

    def test_float_value(self):
        assert _parse_param("rate=0.01") == ("rate", 0.01)

    def test_bool_value(self):
        assert _parse_param("flag=true") == ("flag", True)
        assert _parse_param("flag=False") == ("flag", False)

    def test_string_value(self):
        assert _parse_param("name=fig11") == ("name", "fig11")

    def test_missing_equals_raises(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_param("cycles")


class TestCommands:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out.split()
        assert set(output) == set(available_experiments())

    def test_run_prints_table(self, capsys):
        exit_code = main(["run", "table1"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "XOR2" in out

    def test_run_with_params(self, capsys):
        exit_code = main(["run", "fig15", "--param", "distances=3"])
        # A single int is not iterable for the runner, so fall back to a tuple
        # param form instead; this asserts clean error handling, not a crash.
        assert exit_code in (0, 1)

    def test_run_unknown_experiment_fails_cleanly(self, capsys):
        exit_code = main(["run", "fig99"])
        assert exit_code == 1
        assert "error" in capsys.readouterr().err

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
