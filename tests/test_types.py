"""Tests for the shared value types."""

from __future__ import annotations

import pytest

from repro.types import Coord, DecodeLocation, PauliError, SignatureClass, StabilizerType


class TestCoord:
    def test_is_data_for_even_even(self):
        assert Coord(0, 0).is_data
        assert Coord(4, 2).is_data

    def test_is_ancilla_for_odd_odd(self):
        assert Coord(1, 1).is_ancilla
        assert Coord(3, 5).is_ancilla

    def test_mixed_parity_is_neither(self):
        mixed = Coord(1, 2)
        assert not mixed.is_data
        assert not mixed.is_ancilla

    def test_offset_returns_new_coord(self):
        coord = Coord(2, 2)
        shifted = coord.offset(1, -1)
        assert shifted == Coord(3, 1)
        assert coord == Coord(2, 2)

    def test_coords_are_ordered_tuples(self):
        assert Coord(0, 1) < Coord(1, 0)
        assert sorted([Coord(2, 0), Coord(0, 2)]) == [Coord(0, 2), Coord(2, 0)]

    def test_coords_are_hashable(self):
        assert len({Coord(0, 0), Coord(0, 0), Coord(2, 0)}) == 2


class TestStabilizerType:
    def test_x_detects_z_errors(self):
        assert StabilizerType.X.detects is PauliError.Z

    def test_z_detects_x_errors(self):
        assert StabilizerType.Z.detects is PauliError.X

    def test_opposite_is_involutive(self):
        for stype in StabilizerType:
            assert stype.opposite.opposite is stype


class TestPauliError:
    def test_z_detected_by_x_checks(self):
        assert PauliError.Z.detected_by is StabilizerType.X

    def test_x_detected_by_z_checks(self):
        assert PauliError.X.detected_by is StabilizerType.Z

    def test_y_detected_by_raises(self):
        with pytest.raises(ValueError):
            _ = PauliError.Y.detected_by


class TestEnumsValues:
    def test_signature_class_values(self):
        assert SignatureClass.ALL_ZEROS.value == "all-0s"
        assert SignatureClass.LOCAL_ONES.value == "local-1s"
        assert SignatureClass.COMPLEX.value == "complex"

    def test_decode_location_values(self):
        assert DecodeLocation.ON_CHIP.value == "on-chip"
        assert DecodeLocation.OFF_CHIP.value == "off-chip"
