"""AFS sparse-representation syndrome compression (Section 7.2 / Fig. 13).

AFS (Das et al., HPCA 2022) reduces off-chip traffic by compressing the
syndrome before shipping it.  Its most effective scheme, *Sparse
Representation*, sends a single bit when the ``N``-bit syndrome is all zeros
and otherwise sends the indices of the ``k`` non-zero bits:

    bits(k) = 1                      if k == 0
    bits(k) = 1 + k * ceil(log2(N))  otherwise

Clique instead eliminates the transfer entirely whenever the signature is
trivially decodable on-chip and ships the *full* syndrome otherwise, so its
average off-chip traffic is ``offchip_fraction * N`` bits per cycle.  The
functions below compute both averages (analytically, using the per-ancilla
flip probabilities of :mod:`repro.bandwidth.traffic`) so the Fig. 13
comparison can be regenerated for any distance / error-rate grid.
"""

from __future__ import annotations

import math

from repro.bandwidth.traffic import (
    expected_nonzero_syndrome_bits,
    syndrome_bits_per_cycle,
)
from repro.codes.rotated_surface import get_code
from repro.exceptions import ConfigurationError, InvalidProbabilityError
from repro.types import StabilizerType


def sparse_representation_bits(syndrome_length: int, num_nonzero: int) -> int:
    """Compressed size (bits) of one syndrome under AFS Sparse Representation."""
    if syndrome_length <= 0:
        raise ConfigurationError(f"syndrome_length must be positive, got {syndrome_length}")
    if not 0 <= num_nonzero <= syndrome_length:
        raise ConfigurationError(
            f"num_nonzero must be in [0, {syndrome_length}], got {num_nonzero}"
        )
    if num_nonzero == 0:
        return 1
    index_bits = max(1, math.ceil(math.log2(syndrome_length)))
    return 1 + num_nonzero * index_bits


def afs_average_compressed_bits(
    distance: int,
    data_error_rate: float,
    measurement_error_rate: float | None = None,
) -> float:
    """Expected per-cycle compressed syndrome size under AFS.

    Because the compressed size is affine in the number of set bits
    (``1 + k * ceil(log2 N)``), its expectation only needs ``E[k]``.
    """
    if not 0.0 < data_error_rate < 1.0:
        raise InvalidProbabilityError("data_error_rate", data_error_rate)
    length = syndrome_bits_per_cycle(distance)
    expected_nonzero = expected_nonzero_syndrome_bits(
        distance, data_error_rate, measurement_error_rate
    )
    index_bits = max(1, math.ceil(math.log2(length)))
    return 1.0 + index_bits * expected_nonzero


def afs_compression_reduction(
    distance: int,
    data_error_rate: float,
    measurement_error_rate: float | None = None,
) -> float:
    """Average off-chip data reduction factor achieved by AFS compression."""
    length = syndrome_bits_per_cycle(distance)
    return length / afs_average_compressed_bits(
        distance, data_error_rate, measurement_error_rate
    )


def clique_offchip_reduction(offchip_fraction: float) -> float:
    """Average off-chip data reduction factor achieved by the Clique decoder.

    Args:
        offchip_fraction: fraction of decode cycles whose signature must be
            shipped off-chip (``1 - coverage``, measured by
            :mod:`repro.simulation.coverage`).  When this is zero the
            reduction is unbounded; ``math.inf`` is returned.
    """
    if not 0.0 <= offchip_fraction <= 1.0:
        raise InvalidProbabilityError("offchip_fraction", offchip_fraction)
    if offchip_fraction == 0.0:
        return math.inf
    return 1.0 / offchip_fraction


def zero_suppression_reduction(
    distance: int,
    data_error_rate: float,
    measurement_error_rate: float | None = None,
) -> float:
    """Reduction achieved by shipping the syndrome only when it is non-zero.

    This is the strawman the paper's Fig. 12 argues against: near threshold
    almost every cycle has a non-zero signature, so zero suppression alone
    saves little.  Because neighbouring ancillas share data qubits their
    flips are strongly correlated, so the all-zero probability is estimated
    to first order as "no error event at all this cycle" (cancelling error
    patterns are negligible at the rates of interest).
    """
    if measurement_error_rate is None:
        measurement_error_rate = data_error_rate
    code = get_code(distance)
    num_measurements = sum(
        code.num_ancillas_of_type(stype) for stype in StabilizerType
    )
    all_zero_probability = (1.0 - data_error_rate) ** code.num_data_qubits * (
        1.0 - measurement_error_rate
    ) ** num_measurements
    nonzero_fraction = 1.0 - all_zero_probability
    if nonzero_fraction == 0.0:
        return math.inf
    return 1.0 / nonzero_fraction


__all__ = [
    "sparse_representation_bits",
    "afs_average_compressed_bits",
    "afs_compression_reduction",
    "clique_offchip_reduction",
    "zero_suppression_reduction",
]
