"""Off-chip bandwidth accounting, AFS compression, allocation and stalling.

Implements Section 5 (statistical bandwidth allocation and decode-overflow
stalling) and Section 7.2 (comparison against AFS syndrome compression).
"""

from repro.bandwidth.afs import (
    afs_average_compressed_bits,
    afs_compression_reduction,
    clique_offchip_reduction,
    sparse_representation_bits,
)
from repro.bandwidth.allocation import (
    BandwidthPlan,
    provision_for_percentile,
    provisioning_sweep,
)
from repro.bandwidth.machine import (
    LogicalMachine,
    MachineSimulationResult,
    empirical_plan,
)
from repro.bandwidth.stalling import CycleRecord, StallSimulationResult, StallSimulator
from repro.bandwidth.traffic import (
    expected_nonzero_syndrome_bits,
    syndrome_bits_per_cycle,
)

__all__ = [
    "sparse_representation_bits",
    "afs_average_compressed_bits",
    "afs_compression_reduction",
    "clique_offchip_reduction",
    "syndrome_bits_per_cycle",
    "expected_nonzero_syndrome_bits",
    "BandwidthPlan",
    "provision_for_percentile",
    "provisioning_sweep",
    "LogicalMachine",
    "MachineSimulationResult",
    "empirical_plan",
    "StallSimulator",
    "StallSimulationResult",
    "CycleRecord",
]
