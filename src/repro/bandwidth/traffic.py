"""Raw off-chip syndrome traffic accounting.

The reference point for every bandwidth-reduction number in the paper is the
naive design that ships the full error signature of every logical qubit
off-chip every decode cycle: ``d*d - 1`` syndrome bits per logical qubit per
round (Section 2.3 notes the additional factor of ``d`` measurement rounds
per decode for full fault tolerance).
"""

from __future__ import annotations

from repro.codes.rotated_surface import RotatedSurfaceCode, get_code
from repro.exceptions import ConfigurationError, InvalidProbabilityError
from repro.types import StabilizerType


def syndrome_bits_per_cycle(distance: int, measurement_rounds: int = 1) -> int:
    """Uncompressed syndrome bits per logical qubit per decode cycle."""
    if distance < 3 or distance % 2 == 0:
        raise ConfigurationError(f"distance must be an odd integer >= 3, got {distance}")
    if measurement_rounds < 1:
        raise ConfigurationError(
            f"measurement_rounds must be >= 1, got {measurement_rounds}"
        )
    return (distance * distance - 1) * measurement_rounds


def ancilla_flip_probability(weight: int, data_error_rate: float, measurement_error_rate: float) -> float:
    """Probability that a single ancilla's syndrome bit is non-zero in one cycle.

    The bit flips when an odd number of its ``weight`` adjacent data qubits
    erred XOR the measurement itself flipped.  With independent errors the
    odd-parity probability of ``n`` events of probability ``p`` is
    ``(1 - (1 - 2p)^n) / 2``.
    """
    for name, value in (
        ("data_error_rate", data_error_rate),
        ("measurement_error_rate", measurement_error_rate),
    ):
        if not 0.0 <= value <= 1.0:
            raise InvalidProbabilityError(name, value)
    odd_data = 0.5 * (1.0 - (1.0 - 2.0 * data_error_rate) ** weight)
    # XOR with the measurement flip.
    return odd_data * (1.0 - measurement_error_rate) + (1.0 - odd_data) * measurement_error_rate


def expected_nonzero_syndrome_bits(
    distance: int,
    data_error_rate: float,
    measurement_error_rate: float | None = None,
    code: RotatedSurfaceCode | None = None,
) -> float:
    """Expected number of set bits in one cycle's full (both-type) signature."""
    if measurement_error_rate is None:
        measurement_error_rate = data_error_rate
    code = code or get_code(distance)
    total = 0.0
    for stype in StabilizerType:
        for ancilla in code.ancillas(stype):
            total += ancilla_flip_probability(
                ancilla.weight, data_error_rate, measurement_error_rate
            )
    return total


__all__ = [
    "syndrome_bits_per_cycle",
    "ancilla_flip_probability",
    "expected_nonzero_syndrome_bits",
]
