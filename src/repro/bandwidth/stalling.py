"""Decode-overflow execution stalling (Section 5.2, Figs. 9 and 16).

When a cycle produces more off-chip decode requests than the provisioned
link can serve, the unserved requests *carry over* and the next cycle must be
a stall cycle: the waveform generator performs identities on every logical
qubit so no new gates depend on the undecoded corrections.  Crucially, a
stall cycle is not error-free — qubits keep decohering — so it produces new
decode requests of its own.  The simulator below reproduces that dynamic and
reports how much the program's execution is stretched for a given
provisioning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bandwidth.allocation import BandwidthPlan
from repro.exceptions import BandwidthConfigurationError
from repro.noise.rng import make_rng


@dataclass(frozen=True)
class CycleRecord:
    """Per-cycle accounting used to draw Fig. 9-style timelines."""

    cycle: int
    new_requests: int
    carryover: int
    served: int
    is_stall: bool

    @property
    def demand(self) -> int:
        return self.new_requests + self.carryover


@dataclass
class StallSimulationResult:
    """Outcome of simulating a program under a bandwidth plan.

    Attributes:
        plan: the provisioning that was simulated.
        program_cycles: number of useful (non-stall) cycles executed.
        stall_cycles: number of stall cycles inserted.
        completed: False when the backlog kept growing and the run was
            aborted (the "infinite stalling" regime of mean provisioning).
        max_backlog: largest carryover observed.
        records: per-cycle trace (only kept when requested).
    """

    plan: BandwidthPlan
    program_cycles: int
    stall_cycles: int
    completed: bool
    max_backlog: int
    records: list[CycleRecord] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return self.program_cycles + self.stall_cycles

    @property
    def execution_time_increase(self) -> float:
        """Fractional slowdown: stall cycles per useful cycle (inf if aborted)."""
        if not self.completed:
            return float("inf")
        if self.program_cycles == 0:
            return 0.0
        return self.stall_cycles / self.program_cycles

    @property
    def stall_fraction(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        return self.stall_cycles / self.total_cycles


class StallSimulator:
    """Monte-Carlo simulator of the off-chip link under a bandwidth plan.

    Args:
        plan: the provisioning to simulate.
        seed: RNG seed (or a ready generator) for the per-cycle demand draws.
    """

    def __init__(self, plan: BandwidthPlan, seed: int | np.random.Generator | None = None) -> None:
        if plan.decodes_per_cycle < 0:
            raise BandwidthConfigurationError(
                "provisioned bandwidth must be >= 0 decodes/cycle"
            )
        self._plan = plan
        self._rng = make_rng(seed)

    @property
    def plan(self) -> BandwidthPlan:
        return self._plan

    # ------------------------------------------------------------------
    def run(
        self,
        program_cycles: int,
        keep_records: bool = False,
        abort_backlog_factor: float = 100.0,
    ) -> StallSimulationResult:
        """Execute ``program_cycles`` useful cycles, inserting stalls as needed.

        Args:
            program_cycles: how many non-stall cycles the program needs.
            keep_records: keep the per-cycle trace (memory heavy for long runs).
            abort_backlog_factor: abort and report ``completed=False`` once the
                carryover backlog exceeds this multiple of the provisioned
                per-cycle capacity — the signature of an unstable allocation.

        A zero-capacity plan with a non-zero ``offchip_rate`` is the
        degenerate instance of that regime and returns the infinite-stalling
        report immediately: ``completed=False`` and therefore
        ``execution_time_increase == inf`` (with ``offchip_rate == 0`` there
        is nothing to serve and the program completes stall-free).
        """
        if program_cycles <= 0:
            raise BandwidthConfigurationError(
                f"program_cycles must be positive, got {program_cycles}"
            )
        plan = self._plan
        capacity = plan.decodes_per_cycle
        if capacity == 0 and plan.offchip_rate > 0.0:
            # Zero provisioned capacity with any demand is the "infinite
            # stalling" regime by definition: the first off-chip request can
            # never be served, so the backlog diverges with certainty.  With
            # the general loop below this would also fall out implicitly —
            # ``abort_threshold = abort_backlog_factor * 0 = 0`` makes the
            # first carryover abort — but that path hinges on a product that
            # a refactor could easily turn into a ZeroDivision or an
            # infinite loop, so the regime is reported explicitly (and
            # without consuming any RNG stream).
            return StallSimulationResult(
                plan=plan,
                program_cycles=0,
                stall_cycles=0,
                completed=False,
                max_backlog=0,
                records=[],
            )
        abort_threshold = abort_backlog_factor * capacity

        executed = 0
        stalls = 0
        carryover = 0
        max_backlog = 0
        cycle_index = 0
        records: list[CycleRecord] = []
        completed = True

        while executed < program_cycles:
            is_stall = carryover > 0
            new_requests = int(
                self._rng.binomial(plan.num_logical_qubits, plan.offchip_rate)
            )
            demand = carryover + new_requests
            served = min(demand, capacity)
            carryover = demand - served
            max_backlog = max(max_backlog, carryover)

            if keep_records:
                records.append(
                    CycleRecord(
                        cycle=cycle_index,
                        new_requests=new_requests,
                        carryover=demand - new_requests,
                        served=served,
                        is_stall=is_stall,
                    )
                )
            if is_stall:
                stalls += 1
            else:
                executed += 1
            cycle_index += 1

            if carryover > abort_threshold:
                completed = False
                break

        return StallSimulationResult(
            plan=plan,
            program_cycles=executed,
            stall_cycles=stalls,
            completed=completed,
            max_backlog=max_backlog,
            records=records,
        )


def tradeoff_curve(
    plans: list[BandwidthPlan],
    program_cycles: int,
    seed: int | None = None,
) -> list[tuple[BandwidthPlan, StallSimulationResult]]:
    """Simulate a list of plans and return (plan, result) pairs (Fig. 16 material)."""
    results = []
    for offset, plan in enumerate(plans):
        simulator = StallSimulator(plan, seed=None if seed is None else seed + offset)
        results.append((plan, simulator.run(program_cycles)))
    return results


__all__ = ["CycleRecord", "StallSimulationResult", "StallSimulator", "tradeoff_curve"]
