"""Statistical off-chip bandwidth allocation (Section 5.1 of the paper).

A machine with ``Q`` logical qubits generates, every decode cycle, a random
number of off-chip decode requests: each logical qubit independently needs
the complex decoder with probability ``1 - coverage``.  Provisioning the
off-chip link for the *mean* of that distribution leads to an unbounded
decode backlog (Fig. 9 top), so the paper provisions for a high percentile
instead (Fig. 9 bottom) and falls back to execution stalling for the rare
overflow cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy import stats

from repro.exceptions import BandwidthConfigurationError, InvalidProbabilityError


@dataclass(frozen=True)
class BandwidthPlan:
    """A provisioning decision for the off-chip decode link.

    Attributes:
        num_logical_qubits: number of logical qubits sharing the link.
        offchip_rate: per-qubit, per-cycle probability of needing an off-chip
            decode (``1 - coverage``).
        percentile: the percentile of the per-cycle request distribution the
            link is provisioned for.
        decodes_per_cycle: the resulting provisioned link capacity, in
            off-chip decodes per cycle.
    """

    num_logical_qubits: int
    offchip_rate: float
    percentile: float
    decodes_per_cycle: int

    @property
    def mean_requests_per_cycle(self) -> float:
        return self.num_logical_qubits * self.offchip_rate

    @property
    def bandwidth_reduction(self) -> float:
        """Reduction versus shipping every logical qubit's syndrome every cycle."""
        if self.decodes_per_cycle == 0:
            return float("inf")
        return self.num_logical_qubits / self.decodes_per_cycle

    @property
    def headroom(self) -> float:
        """Provisioned capacity divided by the mean demand (must exceed 1 to drain backlogs)."""
        mean = self.mean_requests_per_cycle
        if mean == 0:
            return float("inf")
        return self.decodes_per_cycle / mean


def provision_for_percentile(
    num_logical_qubits: int,
    offchip_rate: float,
    percentile: float,
) -> BandwidthPlan:
    """Provision the off-chip link for a percentile of the per-cycle demand.

    The per-cycle demand is Binomial(``num_logical_qubits``, ``offchip_rate``);
    the provisioned capacity is the smallest integer ``B`` with
    ``P(demand <= B) >= percentile / 100``, never less than one decode per
    cycle so the link can always make progress.
    """
    if num_logical_qubits <= 0:
        raise BandwidthConfigurationError(
            f"num_logical_qubits must be positive, got {num_logical_qubits}"
        )
    if not 0.0 <= offchip_rate <= 1.0:
        raise InvalidProbabilityError("offchip_rate", offchip_rate)
    if not 0.0 < percentile < 100.0:
        raise BandwidthConfigurationError(
            f"percentile must lie strictly between 0 and 100, got {percentile}"
        )
    demand = stats.binom(num_logical_qubits, offchip_rate)
    capacity = int(demand.ppf(percentile / 100.0))
    capacity = max(capacity, 1)
    return BandwidthPlan(
        num_logical_qubits=num_logical_qubits,
        offchip_rate=offchip_rate,
        percentile=percentile,
        decodes_per_cycle=capacity,
    )


def provisioning_sweep(
    num_logical_qubits: int,
    offchip_rate: float,
    percentiles: tuple[float, ...] = (50.0, 90.0, 95.0, 99.0, 99.9, 99.99),
) -> list[BandwidthPlan]:
    """Plans for a range of percentiles (the x-axis material of Fig. 16)."""
    return [
        provision_for_percentile(num_logical_qubits, offchip_rate, percentile)
        for percentile in percentiles
    ]


__all__ = ["BandwidthPlan", "provision_for_percentile", "provisioning_sweep"]
