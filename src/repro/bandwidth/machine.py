"""Multi-logical-qubit machine simulation (the Section 6.1 methodology).

The bandwidth-allocation evaluation of the paper simulates a machine with
1000 logical qubits over a million execution cycles and records, per cycle,
how many of them needed an off-chip decode.  :class:`LogicalMachine` does the
same directly from the Clique decision logic (rather than assuming a binomial
demand model): every cycle, every logical qubit independently samples fresh
data errors and persistent measurement faults, and the vectorised Clique
decision marks it on-chip or off-chip.

The resulting empirical per-cycle demand distribution can be fed straight
into :func:`empirical_plan`, the measured counterpart of
:func:`repro.bandwidth.allocation.provision_for_percentile`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bandwidth.allocation import BandwidthPlan
from repro.clique.decoder import CliqueDecoder
from repro.codes.rotated_surface import RotatedSurfaceCode
from repro.exceptions import BandwidthConfigurationError, ConfigurationError
from repro.noise.models import NoiseModel
from repro.noise.rng import make_rng
from repro.types import StabilizerType


@dataclass(frozen=True)
class MachineSimulationResult:
    """Per-cycle off-chip demand trace of a multi-logical-qubit machine."""

    num_logical_qubits: int
    physical_error_rate: float
    code_distance: int
    offchip_requests_per_cycle: np.ndarray

    @property
    def cycles(self) -> int:
        return len(self.offchip_requests_per_cycle)

    @property
    def mean_requests_per_cycle(self) -> float:
        return float(self.offchip_requests_per_cycle.mean())

    @property
    def peak_requests_per_cycle(self) -> int:
        return int(self.offchip_requests_per_cycle.max(initial=0))

    @property
    def offchip_rate_per_qubit(self) -> float:
        """Empirical per-qubit, per-cycle off-chip probability (1 - coverage)."""
        return self.mean_requests_per_cycle / self.num_logical_qubits

    def demand_percentile(self, percentile: float) -> int:
        """Empirical percentile of the per-cycle demand distribution."""
        if not 0.0 < percentile < 100.0:
            raise BandwidthConfigurationError(
                f"percentile must lie strictly between 0 and 100, got {percentile}"
            )
        return int(np.percentile(self.offchip_requests_per_cycle, percentile))


class LogicalMachine:
    """A machine of identical logical qubits sharing one off-chip decode link.

    Args:
        code: the surface code every logical qubit uses.
        noise: per-cycle noise model (identical across qubits, as in the paper).
        num_logical_qubits: machine size (the paper evaluates 1000).
        measurement_rounds: Clique persistence-filter window.
    """

    def __init__(
        self,
        code: RotatedSurfaceCode,
        noise: NoiseModel,
        num_logical_qubits: int = 1000,
        measurement_rounds: int = 2,
    ) -> None:
        if num_logical_qubits <= 0:
            raise ConfigurationError(
                f"num_logical_qubits must be positive, got {num_logical_qubits}"
            )
        if measurement_rounds < 1:
            raise ConfigurationError(
                f"measurement_rounds must be >= 1, got {measurement_rounds}"
            )
        self._code = code
        self._noise = noise
        self._num_qubits = num_logical_qubits
        self._rounds = measurement_rounds
        self._clique = CliqueDecoder(code, StabilizerType.X)
        self._parity_check = code.parity_check(StabilizerType.X).astype(np.int64)

    @property
    def num_logical_qubits(self) -> int:
        return self._num_qubits

    @property
    def code(self) -> RotatedSurfaceCode:
        return self._code

    # ------------------------------------------------------------------
    def simulate(
        self,
        cycles: int,
        rng: np.random.Generator | int | None = None,
        batch_cycles: int = 64,
    ) -> MachineSimulationResult:
        """Simulate ``cycles`` machine cycles and record the off-chip demand.

        Each (cycle, logical qubit) pair samples an independent signature; the
        work is batched so that at most ``batch_cycles * num_logical_qubits``
        signatures are held in memory at once.
        """
        if cycles <= 0:
            raise ConfigurationError(f"cycles must be positive, got {cycles}")
        generator = make_rng(rng)
        persistent_rate = self._noise.measurement_error_rate**self._rounds
        num_data = self._code.num_data_qubits
        num_ancillas = self._code.num_ancillas_of_type(StabilizerType.X)

        demand = np.zeros(cycles, dtype=np.int64)
        done = 0
        while done < cycles:
            batch = min(batch_cycles, cycles - done)
            rows = batch * self._num_qubits
            data_errors = (
                generator.random((rows, num_data)) < self._noise.data_error_rate
            ).astype(np.int64)
            persistent_flips = (
                generator.random((rows, num_ancillas)) < persistent_rate
            ).astype(np.int64)
            signatures = (
                (data_errors @ self._parity_check.T + persistent_flips) % 2
            ).astype(np.uint8)
            offchip = ~self._clique.is_trivial_batch(signatures)
            demand[done : done + batch] = (
                offchip.reshape(batch, self._num_qubits).sum(axis=1)
            )
            done += batch

        return MachineSimulationResult(
            num_logical_qubits=self._num_qubits,
            physical_error_rate=self._noise.data_error_rate,
            code_distance=self._code.distance,
            offchip_requests_per_cycle=demand,
        )


def empirical_plan(result: MachineSimulationResult, percentile: float) -> BandwidthPlan:
    """Provision the off-chip link from a measured demand trace.

    The measured counterpart of
    :func:`repro.bandwidth.allocation.provision_for_percentile`: instead of a
    binomial model, the capacity is the empirical percentile of the simulated
    per-cycle demand (never below one decode per cycle).
    """
    capacity = max(result.demand_percentile(percentile), 1)
    return BandwidthPlan(
        num_logical_qubits=result.num_logical_qubits,
        offchip_rate=result.offchip_rate_per_qubit,
        percentile=percentile,
        decodes_per_cycle=capacity,
    )


__all__ = ["MachineSimulationResult", "LogicalMachine", "empirical_plan"]
