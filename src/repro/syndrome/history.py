"""Multi-round syndrome histories and detection events.

Decoders for circuit-level or phenomenological noise do not operate on raw
syndromes but on *detection events*: the XOR of consecutive rounds' observed
syndromes (a "difference syndrome").  A fresh data error produces a pair of
detection events in the same round (one per adjacent ancilla, or a single
event next to a boundary); a measurement error produces a pair of detection
events on the *same ancilla* in consecutive rounds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SyndromeShapeError


@dataclass(frozen=True, order=True)
class DetectionEvent:
    """A single space-time detection event.

    Attributes:
        round: measurement round index (0-based).
        ancilla_index: index of the ancilla within its stabilizer type.
    """

    round: int
    ancilla_index: int


class SyndromeHistory:
    """Accumulates observed syndromes round by round and derives detection events."""

    def __init__(self, num_ancillas: int) -> None:
        if num_ancillas <= 0:
            raise ValueError(f"num_ancillas must be positive, got {num_ancillas}")
        self._num_ancillas = num_ancillas
        self._rounds: list[np.ndarray] = []

    @property
    def num_ancillas(self) -> int:
        return self._num_ancillas

    @property
    def num_rounds(self) -> int:
        return len(self._rounds)

    def record(self, observed: np.ndarray) -> None:
        """Append one round's observed syndrome."""
        if len(observed) != self._num_ancillas:
            raise SyndromeShapeError(self._num_ancillas, len(observed))
        self._rounds.append(observed.astype(np.uint8) & 1)

    def observed(self, round_index: int) -> np.ndarray:
        """The observed syndrome recorded for a given round."""
        return self._rounds[round_index].copy()

    def detection_matrix(self) -> np.ndarray:
        """Matrix of detection events, shape ``(num_rounds, num_ancillas)``.

        Round ``t``'s detections are the XOR of round ``t`` with round
        ``t - 1`` (round 0 is compared against the all-zero reference frame).
        """
        if not self._rounds:
            return np.zeros((0, self._num_ancillas), dtype=np.uint8)
        stacked = np.stack(self._rounds)
        previous = np.vstack(
            [np.zeros((1, self._num_ancillas), dtype=np.uint8), stacked[:-1]]
        )
        return stacked ^ previous

    def detection_events(self) -> list[DetectionEvent]:
        """All detection events as a sorted list."""
        matrix = self.detection_matrix()
        rounds, ancillas = np.nonzero(matrix)
        return sorted(
            DetectionEvent(round=int(r), ancilla_index=int(a))
            for r, a in zip(rounds, ancillas)
        )

    def events_in_round(self, round_index: int) -> list[DetectionEvent]:
        """Detection events whose round equals ``round_index``."""
        matrix = self.detection_matrix()
        if not 0 <= round_index < len(matrix):
            raise IndexError(
                f"round {round_index} out of range for {len(matrix)} recorded rounds"
            )
        return [
            DetectionEvent(round=round_index, ancilla_index=int(a))
            for a in np.flatnonzero(matrix[round_index])
        ]

    def total_detection_count(self) -> int:
        """Number of detection events across all rounds."""
        return int(self.detection_matrix().sum())


__all__ = ["DetectionEvent", "SyndromeHistory"]
