"""Syndrome extraction, multi-round histories and signature classification."""

from repro.syndrome.classification import (
    classify_error_configuration,
    classify_signature_counts,
)
from repro.syndrome.extraction import (
    extract_syndrome,
    flipped_ancillas,
    observed_syndrome,
)
from repro.syndrome.history import DetectionEvent, SyndromeHistory

__all__ = [
    "extract_syndrome",
    "observed_syndrome",
    "flipped_ancillas",
    "SyndromeHistory",
    "DetectionEvent",
    "classify_error_configuration",
    "classify_signature_counts",
]
