"""Syndrome extraction from data-error states.

The surface code's ancilla qubits measure the parity of their neighbouring
data qubits.  In vector form the *true* syndrome of an error state ``e`` is
``H @ e mod 2`` where ``H`` is the parity-check matrix of the measuring
stabilizer type; the *observed* syndrome additionally XORs in any measurement
flips for that round.
"""

from __future__ import annotations

import numpy as np

from repro.codes.rotated_surface import RotatedSurfaceCode
from repro.exceptions import SyndromeShapeError
from repro.types import Coord, StabilizerType


def extract_syndrome(
    code: RotatedSurfaceCode,
    stype: StabilizerType,
    data_error_vector: np.ndarray,
) -> np.ndarray:
    """True syndrome (uint8 vector) of a binary data-error vector."""
    if len(data_error_vector) != code.num_data_qubits:
        raise SyndromeShapeError(code.num_data_qubits, len(data_error_vector))
    return (code.parity_check(stype) @ (data_error_vector.astype(np.uint8) & 1)) % 2


def observed_syndrome(
    true_syndrome: np.ndarray,
    measurement_flips: np.ndarray | None = None,
) -> np.ndarray:
    """Observed syndrome after applying measurement flips (XOR)."""
    if measurement_flips is None:
        return true_syndrome.astype(np.uint8)
    if len(measurement_flips) != len(true_syndrome):
        raise SyndromeShapeError(len(true_syndrome), len(measurement_flips))
    return (true_syndrome.astype(np.uint8) ^ measurement_flips.astype(np.uint8)) & 1


def flipped_ancillas(
    code: RotatedSurfaceCode,
    stype: StabilizerType,
    syndrome: np.ndarray,
) -> frozenset[Coord]:
    """Coordinates of the ancillas whose syndrome bit is set."""
    ancillas = code.ancillas(stype)
    if len(syndrome) != len(ancillas):
        raise SyndromeShapeError(len(ancillas), len(syndrome))
    return frozenset(ancillas[i].coord for i in np.flatnonzero(syndrome))


__all__ = ["extract_syndrome", "observed_syndrome", "flipped_ancillas"]
