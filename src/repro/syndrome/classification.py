"""Ground-truth classification of per-cycle error signatures (Fig. 4).

The paper buckets each decode cycle's error signature into three classes:

* **All-0s** - the signature is empty (no ancilla detected anything);
* **Local-1s** - errors occurred but all of them are *isolated*: no two error
  events interact with a common ancilla, so purely local reasoning suffices;
* **Complex** - at least one chain of two or more interacting errors exists,
  so a global decoder is needed.

This module classifies from the *injected* error configuration (which the
Monte-Carlo simulator knows), mirroring how the paper's own lifetime
simulation labels cycles.  The behavioural counterpart — what the Clique
decoder actually handles on-chip — is measured separately by
:mod:`repro.simulation.coverage`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.codes.rotated_surface import RotatedSurfaceCode
from repro.types import Coord, SignatureClass, StabilizerType


def classify_error_configuration(
    code: RotatedSurfaceCode,
    stype: StabilizerType,
    data_errors: frozenset[Coord] | set[Coord],
    measurement_errors: frozenset[Coord] | set[Coord] = frozenset(),
) -> SignatureClass:
    """Classify one cycle's injected errors into All-0s / Local-1s / Complex.

    ``data_errors`` are errors of the species detected by ``stype`` checks;
    ``measurement_errors`` are ancillas (of type ``stype``) whose readout
    flipped this cycle.

    Two error events are considered part of the same chain when they touch a
    common ancilla of the measuring type: two data errors sharing an ancilla,
    a data error adjacent to a flipped measurement, or (degenerately) two
    measurement flips on the same ancilla.  A configuration with any chain of
    length >= 2 is Complex; otherwise it is Local-1s if the resulting
    signature is non-empty and All-0s if it is empty.
    """
    signature = code.syndrome_of(data_errors, stype)
    meas_index = code.ancilla_index(stype)
    for coord in measurement_errors:
        signature[meas_index[coord]] ^= 1
    if not signature.any():
        return SignatureClass.ALL_ZEROS

    # Count, per ancilla, how many error events touch it.  Any ancilla touched
    # by two or more events witnesses an interacting chain.
    touches: Counter[Coord] = Counter()
    parity_check_supports = {
        ancilla.coord: set(ancilla.data_qubits) for ancilla in code.ancillas(stype)
    }
    for ancilla_coord, support in parity_check_supports.items():
        for qubit in data_errors:
            if qubit in support:
                touches[ancilla_coord] += 1
    for coord in measurement_errors:
        touches[coord] += 1

    if any(count >= 2 for count in touches.values()):
        return SignatureClass.COMPLEX
    return SignatureClass.LOCAL_ONES


@dataclass
class SignatureCounts:
    """Tally of signature classes over many simulated cycles."""

    all_zeros: int = 0
    local_ones: int = 0
    complex_: int = 0

    @property
    def total(self) -> int:
        return self.all_zeros + self.local_ones + self.complex_

    def add(self, cls: SignatureClass, count: int = 1) -> None:
        if cls is SignatureClass.ALL_ZEROS:
            self.all_zeros += count
        elif cls is SignatureClass.LOCAL_ONES:
            self.local_ones += count
        else:
            self.complex_ += count

    def fractions(self) -> dict[SignatureClass, float]:
        """Normalised distribution (empty tallies return all zeros)."""
        if self.total == 0:
            return {cls: 0.0 for cls in SignatureClass}
        return {
            SignatureClass.ALL_ZEROS: self.all_zeros / self.total,
            SignatureClass.LOCAL_ONES: self.local_ones / self.total,
            SignatureClass.COMPLEX: self.complex_ / self.total,
        }


def classify_signature_counts(
    classifications: list[SignatureClass] | tuple[SignatureClass, ...],
) -> SignatureCounts:
    """Aggregate a list of per-cycle classifications into a tally."""
    counts = SignatureCounts()
    for cls in classifications:
        counts.add(cls)
    return counts


__all__ = [
    "classify_error_configuration",
    "SignatureCounts",
    "classify_signature_counts",
]
