"""Better Than Worst-Case (BTWC) decoding for quantum error correction.

A from-scratch reproduction of the ASPLOS 2023 paper "Better Than Worst-Case
Decoding for Quantum Error Correction" (Ravi et al.): a rotated-surface-code
substrate, the lightweight on-chip Clique decoder, an MWPM off-chip baseline,
the statistical off-chip bandwidth allocation / execution-stalling machinery,
and an ERSFQ hardware cost model — plus Monte-Carlo harnesses and experiment
runners that regenerate every figure of the paper's evaluation.

Quickstart::

    from repro import (
        RotatedSurfaceCode, PhenomenologicalNoise, CliqueDecoder,
        MWPMDecoder, HierarchicalDecoder, StabilizerType,
    )

    code = RotatedSurfaceCode(distance=5)
    noise = PhenomenologicalNoise(1e-2)
    decoder = HierarchicalDecoder(code, StabilizerType.X)
"""

from repro._version import __version__
from repro.clique import (
    CliqueDecision,
    CliqueDecoder,
    DecoderCascade,
    HierarchicalDecoder,
    PersistenceFilter,
)
from repro.codes import (
    PAPER_OPERATING_POINTS,
    OperatingPoint,
    RotatedSurfaceCode,
    logical_error_rate_estimate,
    required_code_distance,
)
from repro.decoders import (
    ClusteringDecoder,
    DecodeResult,
    Decoder,
    LookupDecoder,
    MWPMDecoder,
)
from repro.exceptions import ReproError
from repro.faults import FaultInjector, FaultPolicy, FaultReport, parse_fault_plan
from repro.hardware import clique_overheads, compare_with_nisqplus
from repro.noise import CodeCapacityNoise, PhenomenologicalNoise
from repro.simulation import (
    run_memory_experiment,
    run_sharded,
    run_sharded_adaptive,
    simulate_clique_coverage,
    simulate_signature_distribution,
    until_wilson,
)
from repro.types import Coord, DecodeLocation, PauliError, SignatureClass, StabilizerType

__all__ = [
    "__version__",
    # geometry / codes
    "RotatedSurfaceCode",
    "OperatingPoint",
    "PAPER_OPERATING_POINTS",
    "required_code_distance",
    "logical_error_rate_estimate",
    # types
    "Coord",
    "StabilizerType",
    "PauliError",
    "SignatureClass",
    "DecodeLocation",
    # noise
    "PhenomenologicalNoise",
    "CodeCapacityNoise",
    # decoders
    "Decoder",
    "DecodeResult",
    "MWPMDecoder",
    "ClusteringDecoder",
    "LookupDecoder",
    "CliqueDecoder",
    "CliqueDecision",
    "PersistenceFilter",
    "HierarchicalDecoder",
    "DecoderCascade",
    # hardware
    "clique_overheads",
    "compare_with_nisqplus",
    # simulation
    "simulate_signature_distribution",
    "simulate_clique_coverage",
    "run_memory_experiment",
    "run_sharded",
    "run_sharded_adaptive",
    "until_wilson",
    # fault tolerance
    "FaultInjector",
    "FaultPolicy",
    "FaultReport",
    "parse_fault_plan",
    # errors
    "ReproError",
]
