"""The N-tier decoder cascade (paper Section 8.1): Clique, then ever-heavier
off-chip decoders, each fed only its predecessor's escalation set.

The two-tier hierarchy of Fig. 2 — Clique on-chip, one robust decoder
off-chip — need not stop at two levels.  Section 8.1 of the paper sketches
the generalisation this module implements: a cheap on-chip Clique tier backed
by a mid-cost decoder (e.g. near-linear union-find clustering), with the
expensive exact matcher reserved for the residual *disagreement set* — the
trials the middle tier declines to resolve.  Deeper cascades buy
deeper-distance accuracy at a fraction of the final tier's cost and of the
off-chip bandwidth.

Tier contract
-------------
* Tier 0 is always the on-chip Clique front-end.  It owns the round-by-round
  measurement-persistence filtering and triage, applies purely local
  corrections for trivial rounds, and accumulates the complex rounds'
  detection events into the trial's *off-chip window*.
* Tiers ``1 .. N-1`` (intermediate) implement
  ``decode_events_tiered(rounds, ancillas) -> (bitmap, escalated)``: given
  one trial's off-chip events as flat index arrays, resolve what it can in
  place (the partial correction ``bitmap``) and name the *event subset* it
  declines — ``escalated`` is a sorted int64 array of positions into the
  input arrays (empty when fully resolved).  Escalation is per cluster, not
  per trial: only the members of each oversized cluster travel to the next
  tier.  The PR 5 all-or-nothing form — ``(bitmap | None, bool)`` — is still
  accepted from custom decoder instances and normalised by the cascade.
* Tier ``N`` (final) must resolve everything it receives, through
  ``decode_events_bitmap(rounds, ancillas)`` when available (MWPM,
  clustering) or a per-trial ``decode`` call on the escalated events'
  reconstructed sub-mask otherwise.

Event subsets flow tier-to-tier as index arrays: the batched path performs a
single ``np.nonzero`` pass over the stacked off-chip masks, then each
off-chip trial descends the tiers with its surviving event subset — no
per-trial Python bookkeeping beyond the unavoidable per-trial decode calls of
the rare off-chip minority.  ``tier_rounds[k]`` for ``k >= 1`` counts the
distinct detection rounds actually shipped *into* tier ``k`` (the off-chip
bandwidth figure): per-cluster escalation shrinks deeper tiers' share even
when a trial technically escalates.

:class:`repro.clique.hierarchical.HierarchicalDecoder` is the two-tier alias
of this class and stays bit-compatible with the pre-cascade implementation;
the equivalence is pinned against frozen seeded outputs in
``tests/clique/test_cascade.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import bitplane
from repro.clique.decoder import CliqueDecoder
from repro.clique.measurement_filter import PersistenceFilter
from repro.codes.rotated_surface import RotatedSurfaceCode
from repro.decoders.base import (
    BatchDecodeResult,
    Decoder,
    DecodeResult,
    PackedBatchDecodeResult,
)
from repro.decoders.matching_graph import MatchingGraph
from repro.decoders.mwpm import DEFAULT_BOUNDARY_CLIQUE_CACHE_LIMIT, MWPMDecoder
from repro.decoders.registry import CLIQUE_TIER, resolve_tier_name
from repro.decoders.union_find import (
    ClusteringDecoder,
    default_escalation_cluster_size,
)
from repro.exceptions import ConfigurationError
from repro.types import Coord, DecodeLocation, StabilizerType


def _normalize_escalation(escalated, num_events: int) -> np.ndarray:
    """Normalise a tier's escalation result to an event-index array.

    The PR 5 contract was all-or-nothing per trial: ``True`` meant "ship the
    whole trial", ``False`` meant "fully resolved".  Custom decoder instances
    may still return that bool; in-tree tiers return the index subset
    directly.
    """
    if isinstance(escalated, (bool, np.bool_)):
        if escalated:
            return np.arange(num_events, dtype=np.int64)
        return np.empty(0, dtype=np.int64)
    return np.asarray(escalated, dtype=np.int64)


@dataclass(frozen=True)
class CascadeResult:
    """Outcome of decoding a full multi-round history through the cascade.

    Attributes:
        correction: combined data-qubit correction (on-chip XOR off-chip).
        onchip_correction: the part applied by the Clique tier.
        offchip_correction: the combined correction of all off-chip tiers —
            with per-cluster escalation, several tiers may each resolve part
            of the window.
        round_locations: per measurement round, whether it was resolved
            on-chip or had to go off-chip.
        offchip_rounds: indices of the rounds sent off-chip.
        handled_tier: index of the deepest tier that received any of the
            trial's events — 0 when every round stayed on-chip, ``k >= 1``
            when off-chip tier ``k`` resolved the last escalated subset
            (earlier off-chip tiers may have contributed partial
            corrections along the way).
        tier_shipped_rounds: per off-chip tier, the count of distinct
            detection rounds shipped into it (entry ``k`` is off-chip tier
            ``k + 1``); per-cluster escalation makes deeper entries shrink.
            Empty when every round stayed on-chip.
        tier_names: the cascade's tier names (``("clique", ...)``).
    """

    correction: frozenset[Coord]
    onchip_correction: frozenset[Coord]
    offchip_correction: frozenset[Coord]
    round_locations: tuple[DecodeLocation, ...]
    offchip_rounds: tuple[int, ...] = ()
    handled_tier: int = 0
    tier_shipped_rounds: tuple[int, ...] = ()
    tier_names: tuple[str, ...] = ()

    @property
    def num_rounds(self) -> int:
        return len(self.round_locations)

    @property
    def num_offchip_rounds(self) -> int:
        return len(self.offchip_rounds)

    @property
    def onchip_fraction(self) -> float:
        """Fraction of rounds fully handled inside the refrigerator."""
        if not self.round_locations:
            return 1.0
        return 1.0 - self.num_offchip_rounds / self.num_rounds


class DecoderCascade(Decoder):
    """N-tier decode cascade: Clique triage, then escalating off-chip tiers.

    Args:
        code: the surface code instance.
        stype: stabilizer type to decode.
        tiers: the tier spec — a comma-separated string
            (``"clique,union_find,mwpm"``), or a sequence whose first entry
            is ``"clique"`` (or a ready :class:`CliqueDecoder`) and whose
            remaining entries are registered decoder names
            (:data:`repro.decoders.registry.TIER_DECODERS`) or ready
            :class:`~repro.decoders.base.Decoder` instances.  Named tiers
            share one :class:`~repro.decoders.matching_graph.MatchingGraph`
            (and, for MWPM tiers, one boundary-clique edge cache); every tier
            except the last must be able to escalate (expose
            ``decode_events_tiered``).
        measurement_rounds: window size of the Clique persistence filter
            (2 in the paper's primary design).
        escalation_cluster_size: escalation threshold applied to named
            ``"union_find"`` tiers constructed in *intermediate* position —
            each grown cluster larger than this many events escalates its
            members to the next tier.  The default ``"auto"`` resolves to
            :func:`repro.decoders.union_find.default_escalation_cluster_size`
            for the code's distance (a deterministic per-distance value
            tuned offline against measured blossom cost — never a runtime
            timing, so seeded results stay machine-independent).  Instances
            passed directly keep their own policy.
        boundary_clique_cache_limit: bound on the shared boundary-clique edge
            cache of named ``"mwpm"`` tiers (see
            :class:`~repro.decoders.mwpm.MWPMDecoder`; only their
            ``matcher="networkx"`` oracle path uses it).
    """

    def __init__(
        self,
        code: RotatedSurfaceCode,
        stype: StabilizerType,
        tiers: str | Sequence["str | Decoder"] = (CLIQUE_TIER, "mwpm"),
        measurement_rounds: int = 2,
        escalation_cluster_size: int | str = "auto",
        boundary_clique_cache_limit: int = DEFAULT_BOUNDARY_CLIQUE_CACHE_LIMIT,
    ) -> None:
        super().__init__(code, stype)
        if escalation_cluster_size == "auto":
            escalation_cluster_size = default_escalation_cluster_size(code.distance)
        elif isinstance(escalation_cluster_size, bool) or not isinstance(
            escalation_cluster_size, (int, np.integer)
        ):
            raise ConfigurationError(
                f"escalation_cluster_size must be an integer or 'auto', "
                f"got {escalation_cluster_size!r}"
            )
        self._escalation_cluster_size = int(escalation_cluster_size)
        if isinstance(tiers, str):
            tiers = tuple(part.strip() for part in tiers.split(","))
        else:
            tiers = tuple(tiers)
        if not tiers:
            raise ConfigurationError("a cascade needs at least two tiers")
        front = tiers[0]
        if isinstance(front, CliqueDecoder):
            self._clique = front
        elif front == CLIQUE_TIER:
            self._clique = CliqueDecoder(code, stype)
        else:
            raise ConfigurationError(
                f"the first cascade tier must be {CLIQUE_TIER!r} (or a "
                f"CliqueDecoder instance), got {front!r}"
            )
        if len(tiers) < 2:
            raise ConfigurationError(
                f"a cascade needs at least one off-chip tier after "
                f"{CLIQUE_TIER!r}"
            )
        self._filter = PersistenceFilter(measurement_rounds)

        # Named tiers share one matching graph and, for MWPM, one
        # boundary-clique cache: the edge lists depend only on the event
        # count, so separate per-tier caches would just duplicate warm-up.
        shared_graph: MatchingGraph | None = None
        shared_boundary_cache: dict[int, list] = {}
        offchip: list[Decoder] = []
        names: list[str] = [CLIQUE_TIER]
        for position, spec in enumerate(tiers[1:]):
            is_last = position == len(tiers) - 2
            if isinstance(spec, str):
                tier_cls = resolve_tier_name(spec)
                if shared_graph is None:
                    shared_graph = MatchingGraph(code, stype)
                if tier_cls is MWPMDecoder:
                    tier: Decoder = MWPMDecoder(
                        code,
                        stype,
                        matching_graph=shared_graph,
                        boundary_clique_cache_limit=boundary_clique_cache_limit,
                        boundary_clique_cache=shared_boundary_cache,
                    )
                elif tier_cls is ClusteringDecoder:
                    tier = ClusteringDecoder(
                        code,
                        stype,
                        matching_graph=shared_graph,
                        escalation_cluster_size=(
                            None if is_last else escalation_cluster_size
                        ),
                    )
                else:  # pragma: no cover - future registry entries
                    tier = tier_cls(code, stype)
                names.append(spec)
            elif isinstance(spec, Decoder):
                tier = spec
                names.append(spec.name)
            else:
                raise ConfigurationError(
                    f"cascade tier {position + 1} must be a registered "
                    f"decoder name or a Decoder instance, got {spec!r}"
                )
            if not is_last and getattr(tier, "decode_events_tiered", None) is None:
                raise ConfigurationError(
                    f"tier {names[-1]!r} at position {position + 1} cannot "
                    f"escalate (no decode_events_tiered); only the final "
                    f"cascade tier may lack an escalation path"
                )
            offchip.append(tier)
        self._offchip_tiers = tuple(offchip)
        self._tier_names = tuple(names)

    # ------------------------------------------------------------------
    @property
    def clique(self) -> CliqueDecoder:
        return self._clique

    @property
    def offchip_tiers(self) -> tuple[Decoder, ...]:
        """The off-chip tiers, in escalation order (tier 1 first)."""
        return self._offchip_tiers

    @property
    def tier_names(self) -> tuple[str, ...]:
        """All tier names, the on-chip Clique tier first."""
        return self._tier_names

    @property
    def num_tiers(self) -> int:
        return 1 + len(self._offchip_tiers)

    @property
    def measurement_rounds(self) -> int:
        return self._filter.rounds

    @property
    def escalation_cluster_size(self) -> int:
        """The resolved intermediate-tier escalation threshold."""
        return self._escalation_cluster_size

    @property
    def name(self) -> str:
        if type(self) is DecoderCascade:
            return "Cascade[" + ",".join(self._tier_names) + "]"
        return type(self).__name__

    # ------------------------------------------------------------------
    def decode_history(self, detections: np.ndarray) -> CascadeResult:
        """Decode a full detection-event history round by round."""
        matrix = self._as_detection_matrix(detections)
        num_rounds = matrix.shape[0]
        consumed = np.zeros_like(matrix)
        offchip_mask = np.zeros_like(matrix)
        onchip_correction: set[Coord] = set()
        locations: list[DecodeLocation] = []
        offchip_rounds: list[int] = []

        for round_index in range(num_rounds):
            visible = matrix[round_index] & ~consumed[round_index] & 1
            sticky, transient = self._filter.split(
                matrix & ~consumed & 1, round_index
            )
            sticky &= visible
            transient &= visible
            decision = self._clique.decide(sticky)
            if decision.is_trivial:
                onchip_correction ^= set(decision.correction)
                # Transient events and their future partners are explained as
                # measurement errors and never leave the chip.
                partner_mask = self._filter.transient_partner_mask(
                    matrix & ~consumed & 1, round_index, transient
                )
                consumed |= partner_mask
                consumed[round_index] |= transient | sticky
                locations.append(DecodeLocation.ON_CHIP)
            else:
                # The whole round's (unconsumed) events go to the off-chip cascade.
                offchip_mask[round_index] = visible
                consumed[round_index] |= visible
                locations.append(DecodeLocation.OFF_CHIP)
                offchip_rounds.append(round_index)

        offchip_correction: set[Coord] = set()
        handled_tier = 0
        shipped: list[int] = []
        if offchip_mask.any():
            event_rounds, event_ancillas = np.nonzero(offchip_mask)
            bitmap, handled_tier, shipped = self._cascade_trial(
                event_rounds, event_ancillas, offchip_mask.shape
            )
            offchip_correction = self._bitmap_coords(bitmap)

        total = set(onchip_correction) ^ offchip_correction
        return CascadeResult(
            correction=frozenset(total),
            onchip_correction=frozenset(onchip_correction),
            offchip_correction=frozenset(offchip_correction),
            round_locations=tuple(locations),
            offchip_rounds=tuple(offchip_rounds),
            handled_tier=handled_tier,
            tier_shipped_rounds=tuple(shipped),
            tier_names=self._tier_names,
        )

    def _bitmap_coords(self, bitmap: np.ndarray) -> set[Coord]:
        """Convert a data-qubit correction bitmap back to coordinate form."""
        data_qubits = self._code.data_qubits
        return {data_qubits[i] for i in np.flatnonzero(bitmap)}

    # ------------------------------------------------------------------
    def _cascade_trial(
        self,
        event_rounds: np.ndarray,
        event_ancillas: np.ndarray,
        mask_shape: tuple[int, int],
    ) -> tuple[np.ndarray, int, list[int]]:
        """Send one trial's off-chip events down the off-chip tiers.

        The single shared descent used by both :meth:`decode_history` and
        the batched paths — which is what keeps them bit-identical.  Each
        intermediate tier XORs its partial correction into the trial's
        bitmap and hands the surviving event subset (oversized clusters'
        members) to the next tier; the final tier resolves whatever reaches
        it.  Returns ``(bitmap, handled_tier, shipped_rounds)`` where
        ``handled_tier`` is the deepest tier reached (1-based over off-chip
        tiers) and ``shipped_rounds[k]`` counts the distinct detection
        rounds shipped into off-chip tier ``k`` — the per-tier bandwidth
        figure behind ``tier_rounds``.
        """
        bitmap = np.zeros(self._code.num_data_qubits, dtype=np.uint8)
        rounds = event_rounds
        ancillas = event_ancillas
        shipped: list[int] = []
        handled = 0
        last = len(self._offchip_tiers) - 1
        for tier_index, tier in enumerate(self._offchip_tiers):
            shipped.append(int(np.unique(rounds).size))
            handled = tier_index + 1
            if tier_index == last:
                decode_events = getattr(tier, "decode_events_bitmap", None)
                if decode_events is not None:
                    bitmap ^= decode_events(rounds, ancillas)
                else:
                    # Custom final tiers see the matrix-level decode() entry
                    # point they expect, on the escalated events' sub-mask.
                    submask = np.zeros(mask_shape, dtype=np.uint8)
                    submask[rounds, ancillas] = 1
                    data_index = self._code.data_index
                    for qubit in tier.decode(submask).correction:
                        bitmap[data_index[qubit]] ^= 1
                break
            partial, escalated = tier.decode_events_tiered(rounds, ancillas)
            escalated = _normalize_escalation(escalated, rounds.size)
            if partial is not None:
                bitmap ^= partial
            if escalated.size == 0:
                break
            rounds = rounds[escalated]
            ancillas = ancillas[escalated]
        return bitmap, handled, shipped

    # ------------------------------------------------------------------
    def decode_batch(self, histories: np.ndarray) -> BatchDecodeResult:
        """Vectorised batch decoding: triage all trials' rounds at once.

        This is the paper's own triage insight applied to the simulator: the
        overwhelming majority of rounds are trivially explainable by the
        Clique logic, so their filtering, decision, and correction assembly
        run as whole-batch array operations (a Python loop over *rounds*, not
        over ``trials x rounds``).  Only the rare off-chip minority pays a
        per-trial tier decode, and each deeper tier sees only its
        predecessor's escalation subset.  The round-by-round dynamics below
        mirror :meth:`decode_history` statement for statement, so the result
        is bit-identical to the per-trial reference path.
        """
        batch = self._as_detection_batch(histories)
        trials, num_rounds, _ = batch.shape
        window = self._filter.rounds
        active = batch.astype(bool)
        consumed = np.zeros_like(active)
        offchip_mask = np.zeros_like(batch)
        offchip_round_counts = np.zeros(trials, dtype=np.int64)
        corrections = np.zeros((trials, self._code.num_data_qubits), dtype=np.uint8)

        for round_index in range(num_rounds):
            # Only the filter window [round_index, round_index + window) is
            # ever read, so the masked view is sliced to it.
            window_end = min(round_index + window, num_rounds)
            masked = (
                active[:, round_index:window_end] & ~consumed[:, round_index:window_end]
            )
            visible = masked[:, 0]
            if masked.shape[1] > 1:
                repeats = masked[:, 1:].any(axis=1)
            else:
                repeats = np.zeros_like(visible)
            sticky = visible & ~repeats
            transient = visible & repeats
            trivial = self._clique.is_trivial_batch(sticky)

            # On-chip branch: corrections accumulate with XOR-across-rounds
            # semantics, and each transient event consumes its first future
            # partner flip so it is never decoded twice.
            corrections ^= self._clique.correction_bitmap(sticky & trivial[:, None])
            remaining = transient & trivial[:, None]
            for offset in range(1, window_end - round_index):
                if not remaining.any():
                    break
                hit = remaining & masked[:, offset]
                consumed[:, round_index + offset] |= hit
                remaining &= ~hit

            # Off-chip branch: the round's whole visible signature is queued
            # for the off-chip tiers.
            complex_rows = ~trivial
            offchip_mask[complex_rows, round_index] = visible[complex_rows]
            offchip_round_counts += complex_rows

            # Both branches consume everything visible this round.
            consumed[:, round_index] |= visible

        tier_trials = np.zeros(self.num_tiers, dtype=np.int64)
        tier_rounds = np.zeros(self.num_tiers, dtype=np.int64)
        offchip_trials = np.flatnonzero(offchip_round_counts)
        tier_trials[0] = trials - offchip_trials.size
        tier_rounds[0] = trials * num_rounds - int(offchip_round_counts.sum())
        if offchip_trials.size:
            corrections[offchip_trials] ^= self._offchip_corrections(
                offchip_mask[offchip_trials],
                tier_trials,
                tier_rounds,
            )

        return BatchDecodeResult(
            corrections=corrections,
            onchip_rounds=num_rounds - offchip_round_counts,
            total_rounds=np.full(trials, num_rounds, dtype=np.int64),
            tier_trials=tier_trials,
            tier_rounds=tier_rounds,
        )

    # ------------------------------------------------------------------
    def decode_batch_packed(
        self, detections: np.ndarray, trials: int
    ) -> PackedBatchDecodeResult:
        """Native packed triage: the whole batch as uint64 trial bitplanes.

        Word-level mirror of :meth:`decode_batch`: every boolean per
        ``(trial, ancilla)`` entry there becomes one bit of a
        ``(num_ancillas, words)`` plane pair here, with AND/OR/XOR/NOT
        standing in for the boolean algebra 64 trials at a time.  Trivial
        rounds never leave word space; the escalated minority is extracted
        (in increasing trial order, so the shared ``np.nonzero``-fixed
        tie-breaks are preserved) and runs through the identical unpacked
        off-chip tier path, keeping results and per-tier statistics
        bit-identical to :meth:`decode_batch`.  Padding bits of the ragged
        last word stay zero throughout, so they are never sticky, complex,
        or counted.
        """
        planes = self._as_packed_detection_batch(detections, trials)
        num_rounds = planes.shape[0]
        words = planes.shape[2]
        window = self._filter.rounds
        consumed = np.zeros_like(planes)
        offchip_planes = np.zeros_like(planes)
        offchip_words = np.zeros((num_rounds, words), dtype=np.uint64)
        corrections = np.zeros(
            (self._code.num_data_qubits, words), dtype=np.uint64
        )

        for round_index in range(num_rounds):
            window_end = min(round_index + window, num_rounds)
            masked = (
                planes[round_index:window_end] & ~consumed[round_index:window_end]
            )
            visible = masked[0]
            if masked.shape[0] > 1:
                repeats = np.bitwise_or.reduce(masked[1:], axis=0)
            else:
                repeats = np.zeros_like(visible)
            sticky = visible & ~repeats
            transient = visible & repeats
            complex_word = self._clique.complex_any_packed(sticky)
            trivial_word = ~complex_word

            # On-chip branch: XOR-across-rounds corrections, and each
            # transient event consumes its first future partner flip.
            corrections ^= self._clique.correction_planes_packed(
                sticky & trivial_word
            )
            remaining = transient & trivial_word
            for offset in range(1, window_end - round_index):
                if not remaining.any():
                    break
                hit = remaining & masked[offset]
                consumed[round_index + offset] |= hit
                remaining &= ~hit

            # Off-chip branch: complex trials queue the round's whole
            # visible signature for the off-chip tiers.
            offchip_planes[round_index] = visible & complex_word
            offchip_words[round_index] = complex_word

            # Both branches consume everything visible this round.
            consumed[round_index] |= visible

        # Per-trial off-chip round counts (real trials only — padding bits
        # are zero in every complex word by the trivial default above).
        offchip_round_counts = (
            bitplane.unpack_trials(offchip_words, trials)
            .sum(axis=1, dtype=np.int64)
        )

        tier_trials = np.zeros(self.num_tiers, dtype=np.int64)
        tier_rounds = np.zeros(self.num_tiers, dtype=np.int64)
        offchip_trials = np.flatnonzero(offchip_round_counts)
        tier_trials[0] = trials - offchip_trials.size
        tier_rounds[0] = trials * num_rounds - int(offchip_round_counts.sum())
        if offchip_trials.size:
            masks = bitplane.extract_trial_bits(offchip_planes, offchip_trials)
            bitplane.scatter_xor_trial_bits(
                corrections,
                offchip_trials,
                self._offchip_corrections(
                    masks,
                    tier_trials,
                    tier_rounds,
                ),
            )

        return PackedBatchDecodeResult(
            corrections=corrections,
            trials=trials,
            onchip_rounds=num_rounds - offchip_round_counts,
            total_rounds=np.full(trials, num_rounds, dtype=np.int64),
            tier_trials=tier_trials,
            tier_rounds=tier_rounds,
        )

    # ------------------------------------------------------------------
    def _offchip_corrections(
        self,
        masks: np.ndarray,
        tier_trials: np.ndarray,
        tier_rounds: np.ndarray,
    ) -> np.ndarray:
        """Cascade the off-chip trials' detection masks down the tiers.

        One ``np.nonzero`` pass over the stacked masks yields every off-chip
        trial's event list at once — in the same row-major
        ``(round, ancilla)`` order a per-trial ``np.nonzero`` would produce,
        which keeps equal-weight tie-breaks, and therefore results,
        bit-identical to per-trial decoding.  Each trial then descends the
        tiers via :meth:`_cascade_trial`: intermediate tiers resolve small
        clusters in place and escalate only oversized clusters' event
        subsets, the final tier resolves the rest.
        ``tier_trials``/``tier_rounds`` are updated in place (tier 0 entries
        are the caller's): trials count toward the deepest tier they
        reached, rounds toward every tier their events were shipped into.
        """
        num_trials = masks.shape[0]
        corrections = np.zeros((num_trials, self._code.num_data_qubits), dtype=np.uint8)
        trial_ids, rounds, ancillas = np.nonzero(masks)
        bounds = np.searchsorted(trial_ids, np.arange(num_trials + 1))
        mask_shape = masks.shape[1:]

        for trial in range(num_trials):
            start, end = bounds[trial], bounds[trial + 1]
            if start == end:  # pragma: no cover - off-chip trials have events
                tier_trials[1] += 1
                continue
            bitmap, handled, shipped = self._cascade_trial(
                rounds[start:end], ancillas[start:end], mask_shape
            )
            corrections[trial] = bitmap
            tier_trials[handled] += 1
            for offset, count in enumerate(shipped):
                tier_rounds[1 + offset] += count
        return corrections

    # ------------------------------------------------------------------
    def decode(self, detections: np.ndarray) -> DecodeResult:
        """Decoder-interface wrapper returning the combined correction."""
        result = self.decode_history(detections)
        return DecodeResult(
            correction=result.correction,
            handled=True,
            metadata={
                "num_offchip_rounds": result.num_offchip_rounds,
                "num_rounds": result.num_rounds,
                "onchip_fraction": result.onchip_fraction,
                "handled_tier": result.handled_tier,
                "tier_shipped_rounds": result.tier_shipped_rounds,
            },
        )


__all__ = ["CascadeResult", "DecoderCascade"]
