"""The Clique decoder proper (Section 4.2 and Figs. 5-6 of the paper).

Decision rule, for every ancilla ``a`` whose syndrome bit is set (an *active
clique*):

* count how many of its clique leaves (same-type neighbouring ancillas) are
  also set;
* **odd** count  -> the active bit is explained by isolated single data
  errors; the correction flips the data qubit shared with each set leaf;
* **even** count -> a longer chain is present, unless the clique sits on the
  lattice boundary and *no* leaf is set, in which case a single data error on
  one of the clique's boundary qubits explains it (the paper's "1+1" and
  "1+2" special cases) and flipping any one such qubit is a valid correction;
* any active clique judged complex makes the whole signature complex and the
  syndrome is handed to the off-chip decoder.

The decision logic is a handful of combinational gates per clique (Fig. 6),
which is what makes the decoder cheap enough for cryogenic implementation;
its hardware cost is modelled in :mod:`repro.hardware`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.clique.cliques import Clique, build_cliques
from repro.codes.rotated_surface import RotatedSurfaceCode
from repro.decoders.base import Decoder, DecodeResult
from repro.types import Coord, StabilizerType


@dataclass(frozen=True)
class _PackedCliqueTables:
    """Precomputed index tables for the uint64 bitplane decision helpers.

    ``boundary_mask`` holds one all-ones/all-zeros word per clique (the
    has-boundary flag broadcast over 64 trials).  The contribution tables
    flatten the one-hot correction matrices into sparse (source, target
    qubit) pairs sorted by target so a single ``np.bitwise_or.reduceat``
    collapses same-qubit contributions with the same set-union semantics as
    :meth:`CliqueDecoder.correction_bitmap`.
    """

    boundary_mask: np.ndarray  # (num_cliques, 1) uint64
    leaf_rows: np.ndarray  # (K_leaf,) flat 4*clique + slot indices
    lone_cliques: np.ndarray  # (K_lone,) clique indices with a boundary qubit
    order: np.ndarray  # (K_leaf + K_lone,) argsort by target qubit
    segment_starts: np.ndarray  # reduceat starts into the sorted contributions
    target_qubits: np.ndarray  # unique target qubits, one per segment


def clique_rule(active: bool, set_neighbor_count: int, has_boundary: bool) -> bool:
    """The per-clique decision of Fig. 5: return True when the clique is *complex*.

    Args:
        active: whether the clique's primary ancilla is set.
        set_neighbor_count: how many of its clique leaves are set.
        has_boundary: whether the clique owns at least one boundary data qubit.
    """
    if not active:
        return False
    if set_neighbor_count % 2 == 1:
        return False
    if set_neighbor_count == 0 and has_boundary:
        return False
    return True


@dataclass(frozen=True)
class CliqueDecision:
    """Outcome of running the Clique decision logic on one signature.

    Attributes:
        is_trivial: True when every active clique is locally explainable and
            the correction below is valid; False when the signature must go
            off-chip.
        correction: data qubits to flip (empty when ``is_trivial`` is False or
            the signature was all zeros).
        active_cliques: coordinates of the ancillas that were set.
        complex_cliques: coordinates of the active ancillas whose local parity
            test failed (non-empty exactly when ``is_trivial`` is False).
    """

    is_trivial: bool
    correction: frozenset[Coord] = frozenset()
    active_cliques: tuple[Coord, ...] = ()
    complex_cliques: tuple[Coord, ...] = ()

    @property
    def is_all_zeros(self) -> bool:
        return not self.active_cliques


class CliqueDecoder(Decoder):
    """Lightweight local decoder for one stabilizer type of a surface code.

    The decoder is stateless between calls; all lattice structure is
    precomputed at construction time into flat numpy index tables so that the
    decision for a full signature is a few vectorised operations (mirroring
    the constant-depth combinational hardware it models).
    """

    def __init__(self, code: RotatedSurfaceCode, stype: StabilizerType) -> None:
        super().__init__(code, stype)
        self._cliques = build_cliques(code, stype)
        num = len(self._cliques)
        # Cliques with fewer than four leaves are padded with index ``num``,
        # which addresses the always-zero sentinel column appended to the
        # syndrome inside :meth:`complex_mask`.
        self._neighbor_table = np.full((num, 4), num, dtype=np.int64)
        for clique in self._cliques:
            for slot, neighbor_index in enumerate(clique.neighbor_indices):
                self._neighbor_table[clique.ancilla_index, slot] = neighbor_index
        self._has_boundary = np.array(
            [clique.has_boundary for clique in self._cliques], dtype=bool
        )
        # One-hot gather tables for fully vectorised correction assembly
        # (mirroring the index tables a hardware implementation would bake
        # into its correction ROM): row ``4*i + slot`` of the leaf table maps
        # "clique i sees its slot-th leaf set" to the shared data qubit, and
        # row ``i`` of the boundary table maps "clique i active with no set
        # leaf" to its first boundary qubit.
        data_index = code.data_index
        num_data = code.num_data_qubits
        self._leaf_correction_table = np.zeros((num * 4, num_data), dtype=np.int64)
        self._boundary_correction_table = np.zeros((num, num_data), dtype=np.int64)
        for clique in self._cliques:
            for slot, shared in enumerate(clique.shared_qubits):
                row = clique.ancilla_index * 4 + slot
                self._leaf_correction_table[row, data_index[shared]] = 1
            if clique.boundary_qubits:
                self._boundary_correction_table[
                    clique.ancilla_index, data_index[clique.boundary_qubits[0]]
                ] = 1
        self._packed_tables_cache: _PackedCliqueTables | None = None

    @property
    def cliques(self) -> tuple[Clique, ...]:
        return self._cliques

    # ------------------------------------------------------------------
    # Vectorised decision helpers
    # ------------------------------------------------------------------
    def complex_mask(self, signatures: np.ndarray) -> np.ndarray:
        """Per-clique complex flags for a batch of signatures.

        Args:
            signatures: array of shape ``(..., num_ancillas)`` with 0/1 entries.

        Returns:
            Boolean array of the same shape: True where the corresponding
            clique is active and judged complex.
        """
        signatures = np.asarray(signatures, dtype=np.uint8) & 1
        padded = np.concatenate(
            [signatures, np.zeros(signatures.shape[:-1] + (1,), dtype=np.uint8)],
            axis=-1,
        )
        neighbor_counts = padded[..., self._neighbor_table].sum(axis=-1)
        active = signatures.astype(bool)
        even = neighbor_counts % 2 == 0
        boundary_escape = (neighbor_counts == 0) & self._has_boundary
        return active & even & ~boundary_escape

    def is_trivial_batch(self, signatures: np.ndarray) -> np.ndarray:
        """True per signature row when no clique is complex (on-chip decodable)."""
        return ~self.complex_mask(signatures).any(axis=-1)

    def correction_bitmap(self, signatures: np.ndarray) -> np.ndarray:
        """Vectorised correction assembly for a batch of *trivial* signatures.

        Args:
            signatures: array of shape ``(..., num_ancillas)`` with 0/1
                entries; every row must already have passed
                :meth:`is_trivial_batch` (rows with complex cliques produce
                garbage, never an error).

        Returns:
            uint8 bitmap of shape ``(..., num_data_qubits)`` in
            ``code.data_index`` column order, equal per row to the bitmap of
            :meth:`decide`'s ``correction`` set: within one signature,
            contributions from different cliques to the same qubit collapse
            (set-union semantics), matching the idempotent hardware OR.
        """
        signatures = np.asarray(signatures, dtype=np.uint8) & 1
        batch_shape = signatures.shape[:-1]
        num = len(self._cliques)
        padded = np.concatenate(
            [signatures, np.zeros(batch_shape + (1,), dtype=np.uint8)], axis=-1
        )
        leaf_set = padded[..., self._neighbor_table].astype(bool)
        active = signatures.astype(bool)
        # Odd-leaf case: flip the qubit shared with each set leaf.
        pair_contrib = (active[..., None] & leaf_set).reshape(batch_shape + (num * 4,))
        counts = pair_contrib.astype(np.int64) @ self._leaf_correction_table
        # Boundary case: active clique with no set leaf flips a boundary qubit.
        lone = active & ~leaf_set.any(axis=-1)
        counts += lone.astype(np.int64) @ self._boundary_correction_table
        return (counts > 0).astype(np.uint8)

    # ------------------------------------------------------------------
    # Packed (uint64 bitplane) decision helpers — trial ``t`` of every plane
    # lives at bit ``t % 64`` of word ``t // 64`` (repro.bitplane layout).
    # ------------------------------------------------------------------
    def _packed_tables(self) -> _PackedCliqueTables:
        tables = self._packed_tables_cache
        if tables is None:
            boundary_mask = np.where(
                self._has_boundary, ~np.uint64(0), np.uint64(0)
            )[:, None]
            leaf_rows, leaf_qubits = np.nonzero(self._leaf_correction_table)
            lone_cliques, lone_qubits = np.nonzero(self._boundary_correction_table)
            targets = np.concatenate([leaf_qubits, lone_qubits])
            order = np.argsort(targets, kind="stable")
            sorted_targets = targets[order]
            if sorted_targets.size:
                segment_starts = np.flatnonzero(
                    np.r_[True, sorted_targets[1:] != sorted_targets[:-1]]
                )
            else:  # pragma: no cover - no real code is contribution-free
                segment_starts = np.zeros(0, dtype=np.int64)
            tables = _PackedCliqueTables(
                boundary_mask=boundary_mask,
                leaf_rows=leaf_rows,
                lone_cliques=lone_cliques,
                order=order,
                segment_starts=segment_starts,
                target_qubits=sorted_targets[segment_starts],
            )
            self._packed_tables_cache = tables
        return tables

    def _packed_leaves(self, signatures: np.ndarray) -> np.ndarray:
        """Gather each clique's leaf planes: ``(ancillas, words)`` → ``(cliques, 4, words)``."""
        words = signatures.shape[-1]
        padded = np.concatenate(
            [signatures, np.zeros((1, words), dtype=np.uint64)], axis=0
        )
        return padded[self._neighbor_table]

    def complex_any_packed(self, signatures: np.ndarray) -> np.ndarray:
        """Per-trial "some clique is complex" word vector for packed signatures.

        Args:
            signatures: uint64 planes of shape ``(num_ancillas, words)``.

        Returns:
            ``(words,)`` uint64: bit ``t`` is set iff trial ``t``'s signature
            has at least one complex clique — the packed negation of
            :meth:`is_trivial_batch`.  Padding trials (all-zero planes) come
            back 0, i.e. trivial.
        """
        tables = self._packed_tables()
        leaves = self._packed_leaves(signatures)
        parity = np.bitwise_xor.reduce(leaves, axis=1)
        any_leaf = np.bitwise_or.reduce(leaves, axis=1)
        # active & even-leaf-count & not the lone-boundary escape: even count
        # is XOR-parity 0, zero count is OR 0 (cf. clique_rule / complex_mask).
        complex_planes = signatures & ~parity & ~(~any_leaf & tables.boundary_mask)
        return np.bitwise_or.reduce(complex_planes, axis=0)

    def correction_planes_packed(self, signatures: np.ndarray) -> np.ndarray:
        """Packed correction assembly for trivial packed signatures.

        Args:
            signatures: uint64 planes ``(num_ancillas, words)``; every trial
                whose bits are set must already be trivial per
                :meth:`complex_any_packed` (complex trials produce garbage,
                never an error) — callers mask with the trivial word vector.

        Returns:
            uint64 correction planes of shape ``(num_data_qubits, words)``,
            bit-identical to packing :meth:`correction_bitmap`'s rows:
            same-qubit contributions collapse by OR (set-union semantics).
        """
        tables = self._packed_tables()
        leaves = self._packed_leaves(signatures)
        leaves_flat = leaves.reshape(-1, leaves.shape[-1])
        any_leaf = np.bitwise_or.reduce(leaves, axis=1)
        # Odd-leaf case: active clique XOR set leaf → flip the shared qubit.
        leaf_contrib = (
            signatures[tables.leaf_rows // 4] & leaves_flat[tables.leaf_rows]
        )
        # Boundary case: active clique with no set leaf flips a boundary qubit.
        lone_contrib = (
            signatures[tables.lone_cliques] & ~any_leaf[tables.lone_cliques]
        )
        contributions = np.concatenate([leaf_contrib, lone_contrib], axis=0)
        planes = np.zeros(
            (self._code.num_data_qubits, signatures.shape[-1]), dtype=np.uint64
        )
        planes[tables.target_qubits] = np.bitwise_or.reduceat(
            contributions[tables.order], tables.segment_starts, axis=0
        )
        return planes

    # ------------------------------------------------------------------
    def decide(self, signature: np.ndarray) -> CliqueDecision:
        """Run the full decision (including corrections) on a single signature."""
        signature = np.asarray(signature, dtype=np.uint8).reshape(-1) & 1
        active_indices = np.flatnonzero(signature)
        if active_indices.size == 0:
            return CliqueDecision(is_trivial=True)

        complex_flags = self.complex_mask(signature)
        active_coords = tuple(self._cliques[i].ancilla for i in active_indices)
        if complex_flags.any():
            complex_coords = tuple(
                self._cliques[i].ancilla for i in np.flatnonzero(complex_flags)
            )
            return CliqueDecision(
                is_trivial=False,
                active_cliques=active_coords,
                complex_cliques=complex_coords,
            )

        correction: set[Coord] = set()
        for index in active_indices:
            clique = self._cliques[index]
            set_leaves = [
                slot
                for slot, neighbor_index in enumerate(clique.neighbor_indices)
                if signature[neighbor_index]
            ]
            if set_leaves:
                # Odd number of set leaves: fix the data qubit shared with each.
                correction.update(clique.shared_qubits[slot] for slot in set_leaves)
            else:
                # Boundary special case: a single boundary data error explains it;
                # any of the clique's boundary qubits is an equivalent fix.
                correction.add(clique.boundary_qubits[0])
        return CliqueDecision(
            is_trivial=True,
            correction=frozenset(correction),
            active_cliques=active_coords,
        )

    # ------------------------------------------------------------------
    def decode(self, detections: np.ndarray) -> DecodeResult:
        """Decoder-interface wrapper: single-round signatures only.

        Multi-round histories are the responsibility of
        :class:`repro.clique.hierarchical.HierarchicalDecoder`, which combines
        this decoder with the measurement-persistence filter and an off-chip
        fallback.
        """
        matrix = self._as_detection_matrix(detections)
        if matrix.shape[0] != 1:
            raise ValueError(
                "CliqueDecoder.decode expects a single round; use "
                "HierarchicalDecoder for multi-round histories"
            )
        decision = self.decide(matrix[0])
        return DecodeResult(
            correction=decision.correction,
            handled=decision.is_trivial,
            metadata={
                "active_cliques": len(decision.active_cliques),
                "complex_cliques": len(decision.complex_cliques),
            },
        )


__all__ = ["clique_rule", "CliqueDecision", "CliqueDecoder"]
