"""The full BTWC decoding hierarchy: Clique on-chip, complex decoder off-chip.

This module glues the pieces of Fig. 2 together for a single logical qubit:

* every measurement round, the round's detection events are passed through
  the measurement-persistence filter and then through the Clique decision
  logic;
* if every active clique is trivial, the corrections are applied on-chip and
  nothing leaves the refrigerator;
* otherwise the round is flagged *off-chip*: its raw detection events are
  accumulated and eventually decoded jointly by the robust off-chip decoder
  (MWPM by default) over the full space-time history it received.

The per-round on-chip/off-chip tally produced here is the raw material for
the bandwidth-allocation experiments (Figs. 9 and 16) and for the coverage
experiments (Figs. 11 and 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.clique.decoder import CliqueDecoder
from repro.clique.measurement_filter import PersistenceFilter
from repro.codes.rotated_surface import RotatedSurfaceCode
from repro.decoders.base import BatchDecodeResult, Decoder, DecodeResult
from repro.decoders.mwpm import MWPMDecoder
from repro.decoders.union_find import ClusteringDecoder
from repro.exceptions import ConfigurationError
from repro.types import Coord, DecodeLocation, StabilizerType

#: Named off-chip fallbacks selectable with ``HierarchicalDecoder(fallback=...)``.
FALLBACK_DECODERS = {
    "mwpm": MWPMDecoder,
    "union_find": ClusteringDecoder,
}


@dataclass(frozen=True)
class HierarchicalResult:
    """Outcome of decoding a full multi-round history through the hierarchy.

    Attributes:
        correction: combined data-qubit correction (on-chip XOR off-chip).
        onchip_correction: the part applied by the Clique decoder.
        offchip_correction: the part applied by the off-chip fallback.
        round_locations: per measurement round, whether it was resolved
            on-chip or had to go off-chip.
        offchip_rounds: indices of the rounds sent off-chip.
    """

    correction: frozenset[Coord]
    onchip_correction: frozenset[Coord]
    offchip_correction: frozenset[Coord]
    round_locations: tuple[DecodeLocation, ...]
    offchip_rounds: tuple[int, ...] = ()

    @property
    def num_rounds(self) -> int:
        return len(self.round_locations)

    @property
    def num_offchip_rounds(self) -> int:
        return len(self.offchip_rounds)

    @property
    def onchip_fraction(self) -> float:
        """Fraction of rounds fully handled inside the refrigerator."""
        if not self.round_locations:
            return 1.0
        return 1.0 - self.num_offchip_rounds / self.num_rounds


class HierarchicalDecoder(Decoder):
    """Clique decoder + off-chip fallback, operating on multi-round histories.

    Args:
        code: the surface code instance.
        stype: stabilizer type to decode.
        fallback: the off-chip complex decoder — a ready-made
            :class:`~repro.decoders.base.Decoder` instance, or one of the
            names in :data:`FALLBACK_DECODERS` (``"mwpm"`` for the blossom
            baseline, ``"union_find"`` for the near-linear clustering
            decoder).  Defaults to a fresh MWPM decoder.
        measurement_rounds: window size of the Clique persistence filter
            (2 in the paper's primary design).
    """

    def __init__(
        self,
        code: RotatedSurfaceCode,
        stype: StabilizerType,
        fallback: Decoder | str | None = None,
        measurement_rounds: int = 2,
    ) -> None:
        super().__init__(code, stype)
        self._clique = CliqueDecoder(code, stype)
        if fallback is None:
            fallback = "mwpm"
        if isinstance(fallback, str):
            try:
                fallback = FALLBACK_DECODERS[fallback](code, stype)
            except KeyError:
                raise ConfigurationError(
                    f"unknown fallback {fallback!r}; expected one of "
                    f"{sorted(FALLBACK_DECODERS)} or a Decoder instance"
                ) from None
        self._fallback = fallback
        self._filter = PersistenceFilter(measurement_rounds)

    @property
    def clique(self) -> CliqueDecoder:
        return self._clique

    @property
    def fallback(self) -> Decoder:
        return self._fallback

    @property
    def measurement_rounds(self) -> int:
        return self._filter.rounds

    # ------------------------------------------------------------------
    def decode_history(self, detections: np.ndarray) -> HierarchicalResult:
        """Decode a full detection-event history round by round."""
        matrix = self._as_detection_matrix(detections)
        num_rounds = matrix.shape[0]
        consumed = np.zeros_like(matrix)
        offchip_mask = np.zeros_like(matrix)
        onchip_correction: set[Coord] = set()
        locations: list[DecodeLocation] = []
        offchip_rounds: list[int] = []

        for round_index in range(num_rounds):
            visible = matrix[round_index] & ~consumed[round_index] & 1
            sticky, transient = self._filter.split(
                matrix & ~consumed & 1, round_index
            )
            sticky &= visible
            transient &= visible
            decision = self._clique.decide(sticky)
            if decision.is_trivial:
                onchip_correction ^= set(decision.correction)
                # Transient events and their future partners are explained as
                # measurement errors and never leave the chip.
                partner_mask = self._filter.transient_partner_mask(
                    matrix & ~consumed & 1, round_index, transient
                )
                consumed |= partner_mask
                consumed[round_index] |= transient | sticky
                locations.append(DecodeLocation.ON_CHIP)
            else:
                # The whole round's (unconsumed) events go to the off-chip decoder.
                offchip_mask[round_index] = visible
                consumed[round_index] |= visible
                locations.append(DecodeLocation.OFF_CHIP)
                offchip_rounds.append(round_index)

        if offchip_mask.any():
            fallback_result = self._fallback.decode(offchip_mask)
            offchip_correction = set(fallback_result.correction)
        else:
            offchip_correction = set()

        total = set(onchip_correction) ^ offchip_correction
        return HierarchicalResult(
            correction=frozenset(total),
            onchip_correction=frozenset(onchip_correction),
            offchip_correction=frozenset(offchip_correction),
            round_locations=tuple(locations),
            offchip_rounds=tuple(offchip_rounds),
        )

    # ------------------------------------------------------------------
    def decode_batch(self, histories: np.ndarray) -> BatchDecodeResult:
        """Vectorised batch decoding: triage all trials' rounds at once.

        This is the paper's own triage insight applied to the simulator: the
        overwhelming majority of rounds are trivially explainable by the
        Clique logic, so their filtering, decision, and correction assembly
        run as whole-batch array operations (a Python loop over *rounds*, not
        over ``trials x rounds``).  Only the rare off-chip minority pays a
        per-trial fallback decode.  The round-by-round dynamics below mirror
        :meth:`decode_history` statement for statement, so the result is
        bit-identical to the per-trial reference path.
        """
        batch = self._as_detection_batch(histories)
        trials, num_rounds, _ = batch.shape
        window = self._filter.rounds
        active = batch.astype(bool)
        consumed = np.zeros_like(active)
        offchip_mask = np.zeros_like(batch)
        offchip_round_counts = np.zeros(trials, dtype=np.int64)
        corrections = np.zeros((trials, self._code.num_data_qubits), dtype=np.uint8)

        for round_index in range(num_rounds):
            # Only the filter window [round_index, round_index + window) is
            # ever read, so the masked view is sliced to it.
            window_end = min(round_index + window, num_rounds)
            masked = (
                active[:, round_index:window_end] & ~consumed[:, round_index:window_end]
            )
            visible = masked[:, 0]
            if masked.shape[1] > 1:
                repeats = masked[:, 1:].any(axis=1)
            else:
                repeats = np.zeros_like(visible)
            sticky = visible & ~repeats
            transient = visible & repeats
            trivial = self._clique.is_trivial_batch(sticky)

            # On-chip branch: corrections accumulate with XOR-across-rounds
            # semantics, and each transient event consumes its first future
            # partner flip so it is never decoded twice.
            corrections ^= self._clique.correction_bitmap(sticky & trivial[:, None])
            remaining = transient & trivial[:, None]
            for offset in range(1, window_end - round_index):
                if not remaining.any():
                    break
                hit = remaining & masked[:, offset]
                consumed[:, round_index + offset] |= hit
                remaining &= ~hit

            # Off-chip branch: the round's whole visible signature is queued
            # for the fallback decoder.
            complex_rows = ~trivial
            offchip_mask[complex_rows, round_index] = visible[complex_rows]
            offchip_round_counts += complex_rows

            # Both branches consume everything visible this round.
            consumed[:, round_index] |= visible

        offchip_trials = np.flatnonzero(offchip_round_counts)
        if offchip_trials.size:
            corrections[offchip_trials] ^= self._offchip_corrections(
                offchip_mask[offchip_trials]
            )

        return BatchDecodeResult(
            corrections=corrections,
            onchip_rounds=num_rounds - offchip_round_counts,
            total_rounds=np.full(trials, num_rounds, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    def _offchip_corrections(self, masks: np.ndarray) -> np.ndarray:
        """Batched fallback decode of the off-chip trials' detection masks.

        Fallbacks exposing ``decode_events_bitmap`` (MWPM, clustering) get the
        fast path: one ``np.nonzero`` pass over the stacked masks yields every
        off-chip trial's event list at once — in the same row-major
        ``(round, ancilla)`` order a per-trial ``np.nonzero`` would produce,
        which keeps equal-weight tie-breaks, and therefore results,
        bit-identical to per-trial decoding.  Generic decoders fall back to a
        per-trial :meth:`~repro.decoders.base.Decoder.decode` loop.
        """
        num_trials = masks.shape[0]
        corrections = np.zeros((num_trials, self._code.num_data_qubits), dtype=np.uint8)
        decode_events = getattr(self._fallback, "decode_events_bitmap", None)
        if decode_events is None:
            data_index = self._code.data_index
            for trial in range(num_trials):
                for qubit in self._fallback.decode(masks[trial]).correction:
                    corrections[trial, data_index[qubit]] ^= 1
            return corrections

        trial_ids, rounds, ancillas = np.nonzero(masks)
        bounds = np.searchsorted(trial_ids, np.arange(num_trials + 1))
        for trial in range(num_trials):
            start, end = bounds[trial], bounds[trial + 1]
            if start == end:
                continue
            corrections[trial] = decode_events(
                rounds[start:end], ancillas[start:end]
            )
        return corrections

    # ------------------------------------------------------------------
    def decode(self, detections: np.ndarray) -> DecodeResult:
        """Decoder-interface wrapper returning the combined correction."""
        result = self.decode_history(detections)
        return DecodeResult(
            correction=result.correction,
            handled=True,
            metadata={
                "num_offchip_rounds": result.num_offchip_rounds,
                "num_rounds": result.num_rounds,
                "onchip_fraction": result.onchip_fraction,
            },
        )


__all__ = ["FALLBACK_DECODERS", "HierarchicalDecoder", "HierarchicalResult"]
