"""The two-tier BTWC decoding hierarchy: Clique on-chip, complex decoder off-chip.

This module glues the pieces of Fig. 2 together for a single logical qubit:

* every measurement round, the round's detection events are passed through
  the measurement-persistence filter and then through the Clique decision
  logic;
* if every active clique is trivial, the corrections are applied on-chip and
  nothing leaves the refrigerator;
* otherwise the round is flagged *off-chip*: its raw detection events are
  accumulated and eventually decoded jointly by the robust off-chip decoder
  (MWPM by default) over the full space-time history it received.

Since the N-tier generalisation landed, :class:`HierarchicalDecoder` is a
thin alias for the two-tier :class:`~repro.clique.cascade.DecoderCascade`
(``tiers=("clique", fallback)``) — API- and bit-compatible with the original
two-tier implementation, which the seeded-equivalence tests in
``tests/clique/test_cascade.py`` pin.  The per-round on-chip/off-chip tally
produced here is the raw material for the bandwidth-allocation experiments
(Figs. 9 and 16) and for the coverage experiments (Figs. 11 and 12).
"""

from __future__ import annotations

from repro.clique.cascade import CascadeResult, DecoderCascade
from repro.codes.rotated_surface import RotatedSurfaceCode
from repro.decoders.base import Decoder
from repro.decoders.mwpm import DEFAULT_BOUNDARY_CLIQUE_CACHE_LIMIT
from repro.decoders.registry import CLIQUE_TIER, TIER_DECODERS
from repro.types import StabilizerType

#: Named off-chip fallbacks selectable with ``HierarchicalDecoder(fallback=...)``
#: — the off-chip half of :data:`repro.decoders.registry.TIER_DECODERS`
#: (re-exported here for backwards compatibility).
FALLBACK_DECODERS = TIER_DECODERS

#: Backwards-compatible name for the cascade's history-decode result.
HierarchicalResult = CascadeResult


class HierarchicalDecoder(DecoderCascade):
    """Clique decoder + off-chip fallback, operating on multi-round histories.

    A two-tier :class:`~repro.clique.cascade.DecoderCascade` with the
    original hierarchy API: ``fallback`` names (or provides) the single
    off-chip tier.

    Args:
        code: the surface code instance.
        stype: stabilizer type to decode.
        fallback: the off-chip complex decoder — a ready-made
            :class:`~repro.decoders.base.Decoder` instance, or one of the
            names in :data:`FALLBACK_DECODERS` (``"mwpm"`` for the blossom
            baseline, ``"union_find"`` for the near-linear clustering
            decoder).  Defaults to a fresh MWPM decoder.
        measurement_rounds: window size of the Clique persistence filter
            (2 in the paper's primary design).
        boundary_clique_cache_limit: bound on the MWPM tier's boundary-clique
            edge cache (see :class:`~repro.decoders.mwpm.MWPMDecoder`).
    """

    def __init__(
        self,
        code: RotatedSurfaceCode,
        stype: StabilizerType,
        fallback: Decoder | str | None = None,
        measurement_rounds: int = 2,
        boundary_clique_cache_limit: int = DEFAULT_BOUNDARY_CLIQUE_CACHE_LIMIT,
    ) -> None:
        if fallback is None:
            fallback = "mwpm"
        super().__init__(
            code,
            stype,
            tiers=(CLIQUE_TIER, fallback),
            measurement_rounds=measurement_rounds,
            boundary_clique_cache_limit=boundary_clique_cache_limit,
        )

    @property
    def fallback(self) -> Decoder:
        """The single off-chip tier of the two-tier hierarchy."""
        return self.offchip_tiers[0]


__all__ = ["FALLBACK_DECODERS", "HierarchicalDecoder", "HierarchicalResult"]
