"""Clique neighbourhood construction (Fig. 5 of the paper).

A *clique* is the local view of one ancilla ``a``: the same-type ancillas
that share a data qubit with it (its "leaves" ``p``, ``q``, ``r``, ``s`` in
the paper's notation), the data qubit shared with each leaf, and — for
edge/corner ancillas — the data qubits through which an error chain can
terminate directly on the lattice boundary.

Bulk ancillas have four leaves; the paper's "1+2" and "1+1" special cases
correspond to edge and corner cliques with two or one leaves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codes.rotated_surface import Ancilla, RotatedSurfaceCode
from repro.types import Coord, StabilizerType


@dataclass(frozen=True)
class Clique:
    """The Clique decoder's local view of a single ancilla.

    Attributes:
        ancilla: coordinate of the primary ("a") ancilla.
        ancilla_index: syndrome-bit index of the primary ancilla.
        neighbor_indices: syndrome-bit indices of the clique leaves.
        neighbor_coords: coordinates of the clique leaves.
        shared_qubits: for each leaf, the data qubit shared with the primary
            ancilla (the qubit corrected when both are active).
        boundary_qubits: data qubits adjacent to the primary ancilla that no
            other same-type ancilla touches; non-empty only for edge/corner
            cliques and used by the boundary special cases.
    """

    ancilla: Coord
    ancilla_index: int
    neighbor_indices: tuple[int, ...]
    neighbor_coords: tuple[Coord, ...]
    shared_qubits: tuple[Coord, ...]
    boundary_qubits: tuple[Coord, ...]

    @property
    def num_neighbors(self) -> int:
        return len(self.neighbor_indices)

    @property
    def has_boundary(self) -> bool:
        return bool(self.boundary_qubits)


def _clique_from_ancilla(ancilla: Ancilla, index_of: dict[Coord, int]) -> Clique:
    return Clique(
        ancilla=ancilla.coord,
        ancilla_index=ancilla.index,
        neighbor_indices=tuple(index_of[coord] for coord in ancilla.clique_neighbors),
        neighbor_coords=ancilla.clique_neighbors,
        shared_qubits=ancilla.shared_qubits,
        boundary_qubits=ancilla.boundary_qubits,
    )


def build_cliques(code: RotatedSurfaceCode, stype: StabilizerType) -> tuple[Clique, ...]:
    """Build one :class:`Clique` per ancilla of the given type, in index order."""
    index_of = code.ancilla_index(stype)
    return tuple(
        _clique_from_ancilla(ancilla, index_of) for ancilla in code.ancillas(stype)
    )


__all__ = ["Clique", "build_cliques"]
