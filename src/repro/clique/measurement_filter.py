"""Measurement-error persistence filter (Section 4.3 and Fig. 7 of the paper).

A measurement error flips an ancilla's reported value for a single round, so
in the difference-syndrome picture it shows up as a pair of detection events
on the *same ancilla* in consecutive rounds.  A genuine data error instead
produces detection events that appear once and then stay quiet.

The Clique decoder therefore only acts on detections that *persist*: a
detection at round ``t`` is accepted if the same ancilla does not flip again
within the next ``rounds - 1`` measurement rounds.  The paper's primary
design uses two rounds; more rounds buy extra robustness at extra hardware
cost, which is exactly the trade-off exposed here through the ``rounds``
parameter (and costed by :mod:`repro.hardware`).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError


class PersistenceFilter:
    """Splits a round's detection events into *sticky* and *transient* sets.

    Args:
        rounds: total number of measurement rounds combined by the filter.
            ``rounds=1`` disables filtering (every detection is sticky);
            ``rounds=2`` is the paper's primary design.
    """

    def __init__(self, rounds: int = 2) -> None:
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        self._rounds = rounds

    @property
    def rounds(self) -> int:
        return self._rounds

    def split(
        self, detection_matrix: np.ndarray, round_index: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Split round ``round_index``'s detections into (sticky, transient).

        Args:
            detection_matrix: full detection-event matrix, shape
                ``(num_rounds, num_ancillas)``.
            round_index: which round to filter.

        Returns:
            A pair of binary vectors ``(sticky, transient)``.  ``sticky`` are
            detections with no repeat flip in the look-ahead window (treated
            as data errors); ``transient`` are detections that flip again
            (treated as measurement errors and ignored on-chip).  The final
            rounds of the history have a truncated look-ahead window, so their
            detections are always sticky — exactly as in hardware, where the
            filter simply has not seen the future yet.
        """
        matrix = np.atleast_2d(np.asarray(detection_matrix, dtype=np.uint8)) & 1
        if not 0 <= round_index < matrix.shape[0]:
            raise IndexError(
                f"round {round_index} out of range for {matrix.shape[0]} rounds"
            )
        row = matrix[round_index]
        lookahead = matrix[round_index + 1 : round_index + self._rounds]
        if lookahead.size == 0:
            return row.copy(), np.zeros_like(row)
        repeats = lookahead.any(axis=0).astype(np.uint8)
        sticky = row & ~repeats & 1
        transient = row & repeats & 1
        return sticky, transient

    def transient_partner_mask(
        self, detection_matrix: np.ndarray, round_index: int, transient: np.ndarray
    ) -> np.ndarray:
        """Mask of future detections explained by this round's transient events.

        For every transient detection at ``(ancilla, round_index)`` the first
        repeat flip of the same ancilla inside the look-ahead window is its
        partner; returning a mask over the full matrix lets the caller mark
        those partner events as consumed so they are not decoded twice.
        """
        matrix = np.atleast_2d(np.asarray(detection_matrix, dtype=np.uint8)) & 1
        mask = np.zeros_like(matrix)
        transient = np.asarray(transient, dtype=np.uint8) & 1
        for ancilla in np.flatnonzero(transient):
            for future in range(
                round_index + 1, min(round_index + self._rounds, matrix.shape[0])
            ):
                if matrix[future, ancilla]:
                    mask[future, ancilla] = 1
                    break
        return mask


__all__ = ["PersistenceFilter"]
