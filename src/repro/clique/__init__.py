"""The paper's primary contribution: the on-chip Clique decoder.

The Clique decoder (Section 4 of the paper) inspects, for every *active*
ancilla (syndrome bit set), the parity of the same-type ancillas in its local
clique.  Odd parity means the active ancilla is explained by isolated single
data errors and the correction is purely local; even parity (modulo the
boundary special cases) means a longer error chain is present and the
syndrome must be shipped to the off-chip complex decoder.
"""

from repro.clique.cascade import CascadeResult, DecoderCascade
from repro.clique.cliques import Clique, build_cliques
from repro.clique.decoder import CliqueDecision, CliqueDecoder, clique_rule
from repro.clique.hierarchical import HierarchicalDecoder, HierarchicalResult
from repro.clique.measurement_filter import PersistenceFilter

__all__ = [
    "Clique",
    "build_cliques",
    "CascadeResult",
    "CliqueDecoder",
    "CliqueDecision",
    "clique_rule",
    "DecoderCascade",
    "PersistenceFilter",
    "HierarchicalDecoder",
    "HierarchicalResult",
]
