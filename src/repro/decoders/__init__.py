"""Off-chip ("complex") decoders used as the robust fallback in the BTWC hierarchy.

The paper's baseline is Minimum Weight Perfect Matching (MWPM) [Dennis et al.].
A clustering (union-find style) decoder and an exhaustive lookup-table decoder
are included as additional baselines and as cross-validation oracles for the
test suite.
"""

from repro.decoders.base import BatchDecodeResult, Decoder, DecodeResult
from repro.decoders.blossom import match_events
from repro.decoders.lookup import LookupDecoder
from repro.decoders.matching_graph import MatchingGraph, SpaceTimeEvent
from repro.decoders.mwpm import SUBSET_DP_MAX_EVENTS, MWPMDecoder
from repro.decoders.registry import (
    TIER_DECODERS,
    resolve_tier_spec,
    tier_decoder_names,
)
from repro.decoders.union_find import (
    ClusteringDecoder,
    default_escalation_cluster_size,
)

__all__ = [
    "BatchDecodeResult",
    "Decoder",
    "DecodeResult",
    "MatchingGraph",
    "SpaceTimeEvent",
    "MWPMDecoder",
    "ClusteringDecoder",
    "LookupDecoder",
    "SUBSET_DP_MAX_EVENTS",
    "TIER_DECODERS",
    "match_events",
    "default_escalation_cluster_size",
    "resolve_tier_spec",
    "tier_decoder_names",
]
