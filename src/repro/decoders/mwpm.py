"""Minimum Weight Perfect Matching decoder (the paper's off-chip baseline).

MWPM pairs up detection events (or matches them to the lattice boundary) so
that the total length of the implied error chains is minimal, which under an
independent-error model is the most probable explanation of the observed
syndrome (Dennis et al., "Topological quantum memory").

The implementation builds the standard auxiliary graph:

* one node per detection event, plus one *boundary copy* per event;
* event-event edges weighted by (negative) space-time distance;
* event-to-own-boundary-copy edges weighted by (negative) boundary distance;
* boundary-copy-to-boundary-copy edges of weight zero, so unused copies can
  pair among themselves;

and solves it with :func:`networkx.max_weight_matching` (blossom algorithm)
with ``maxcardinality=True``, which yields a minimum-total-distance perfect
matching.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from repro.codes.rotated_surface import RotatedSurfaceCode
from repro.decoders.base import Decoder, DecodeResult
from repro.decoders.matching_graph import MatchingGraph, SpaceTimeEvent
from repro.exceptions import DecodingError
from repro.types import Coord, StabilizerType


class MWPMDecoder(Decoder):
    """Space-time MWPM decoder for one stabilizer type of a rotated surface code.

    Args:
        code: the surface code instance.
        stype: which stabilizer type's detection events this decoder handles.
        matching_graph: optionally share a precomputed :class:`MatchingGraph`
            (they are deterministic per ``(code, stype)``).
    """

    def __init__(
        self,
        code: RotatedSurfaceCode,
        stype: StabilizerType,
        matching_graph: MatchingGraph | None = None,
    ) -> None:
        super().__init__(code, stype)
        self._graph = matching_graph or MatchingGraph(code, stype)

    @property
    def matching_graph(self) -> MatchingGraph:
        return self._graph

    # ------------------------------------------------------------------
    def decode(self, detections: np.ndarray) -> DecodeResult:
        matrix = self._as_detection_matrix(detections)
        events = [
            SpaceTimeEvent(round=int(r), ancilla_index=int(a))
            for r, a in zip(*np.nonzero(matrix))
        ]
        if not events:
            return DecodeResult(correction=frozenset(), metadata={"num_events": 0})
        pairs, boundary_matches = self._match(events)
        correction: set[Coord] = set()
        for event_a, event_b in pairs:
            correction ^= self._graph.correction_between(event_a, event_b)
        for event in boundary_matches:
            correction ^= self._graph.correction_to_boundary(event)
        return DecodeResult(
            correction=frozenset(correction),
            metadata={
                "num_events": len(events),
                "num_pairs": len(pairs),
                "num_boundary_matches": len(boundary_matches),
            },
        )

    # ------------------------------------------------------------------
    def _match(
        self, events: list[SpaceTimeEvent]
    ) -> tuple[list[tuple[SpaceTimeEvent, SpaceTimeEvent]], list[SpaceTimeEvent]]:
        """Solve the auxiliary matching problem for a list of detection events."""
        graph = nx.Graph()
        num = len(events)
        for i in range(num):
            graph.add_node(("event", i))
            graph.add_node(("boundary", i))
        for i in range(num):
            graph.add_edge(
                ("event", i),
                ("boundary", i),
                weight=-self._graph.event_boundary_distance(events[i]),
            )
            for j in range(i + 1, num):
                graph.add_edge(
                    ("event", i),
                    ("event", j),
                    weight=-self._graph.event_distance(events[i], events[j]),
                )
                graph.add_edge(("boundary", i), ("boundary", j), weight=0)

        matching = nx.max_weight_matching(graph, maxcardinality=True)
        matched_nodes = {node for pair in matching for node in pair}
        if len(matched_nodes) != 2 * num:
            raise DecodingError(
                f"matching is not perfect: {len(matched_nodes)} of {2 * num} nodes matched"
            )

        pairs: list[tuple[SpaceTimeEvent, SpaceTimeEvent]] = []
        boundary_matches: list[SpaceTimeEvent] = []
        for node_a, node_b in matching:
            kind_a, idx_a = node_a
            kind_b, idx_b = node_b
            if kind_a == "event" and kind_b == "event":
                pairs.append((events[idx_a], events[idx_b]))
            elif kind_a == "event" and kind_b == "boundary":
                boundary_matches.append(events[idx_a])
            elif kind_b == "event" and kind_a == "boundary":
                boundary_matches.append(events[idx_b])
            # boundary-boundary pairs need no correction
        return pairs, boundary_matches


__all__ = ["MWPMDecoder"]
