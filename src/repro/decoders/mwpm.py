"""Minimum Weight Perfect Matching decoder (the paper's off-chip baseline).

MWPM pairs up detection events (or matches them to the lattice boundary) so
that the total length of the implied error chains is minimal, which under an
independent-error model is the most probable explanation of the observed
syndrome (Dennis et al., "Topological quantum memory").

Large event sets are solved by the in-tree O(n^3) blossom matcher
(:mod:`repro.decoders.blossom`): boundary copies are handled *implicitly*
through a profit transformation, so the matcher runs on ``n`` event nodes
instead of the ``2n``-node auxiliary graph the networkx formulation needed.

Small event sets — the common case for the hierarchy's off-chip fallback,
which only ever sees the rare complex rounds — skip general matching
entirely: an exact subset-DP over pair/boundary assignments finds the same
minimum-total-distance solution in microseconds.

networkx is *not* a runtime dependency anymore.  ``matcher="networkx"``
keeps the legacy auxiliary-graph path available (lazy import) as a
differential-test oracle and as the pre-blossom baseline for benchmarking:

* one node per detection event, plus one *boundary copy* per event;
* event-event edges weighted by (negative) space-time distance;
* event-to-own-boundary-copy edges weighted by (negative) boundary distance;
* boundary-copy-to-boundary-copy edges of weight zero (cached per event
  count, LRU), so unused copies can pair among themselves;

solved with ``networkx.max_weight_matching(maxcardinality=True)``.
"""

from __future__ import annotations

import numpy as np

from repro.codes.rotated_surface import RotatedSurfaceCode
from repro.decoders import blossom
from repro.decoders.base import Decoder, DecodeResult
from repro.decoders.matching_graph import MatchingGraph, SpaceTimeEvent
from repro.exceptions import ConfigurationError, DecodingError
from repro.types import StabilizerType

#: Default bound on how many distinct event counts keep their boundary-clique
#: edge lists cached (see ``boundary_clique_cache_limit``).
DEFAULT_BOUNDARY_CLIQUE_CACHE_LIMIT = 16

#: Hard cap on the subset-DP's event count.  The DP tables are O(2^n), so a
#: caller-supplied threshold in the mid-30s would attempt a multi-GB
#: allocation; beyond this cap callers must route to the polynomial blossom
#: matcher instead (:func:`repro.decoders.blossom.match_events`).
SUBSET_DP_MAX_EVENTS = 16


def match_events_small(
    distance: list[list[int]],
    boundary_distance: list[int],
) -> tuple[list[tuple[int, int]], list[int]]:
    """Exact minimum-total-distance assignment by DP over event subsets.

    ``best[mask]`` is the cheapest way to resolve the event subset ``mask``,
    where every event is either paired with another event in the subset or
    matched to the boundary — the same solution space the auxiliary matching
    graph encodes.  Returns ``(pairs, boundary)`` as event *indices* into the
    caller's arrays.  Module-level so other decoders (the clustering
    decoder's intermediate-tier cluster resolution) can reuse the exact
    matcher on their own small event sets.

    Ties are broken deterministically: candidates are scanned in a fixed
    order (the boundary first, then partners by ascending index) and only
    a strictly cheaper candidate displaces the incumbent.  Even the
    pathological all-zero-distance case therefore yields one canonical
    assignment — every event to the boundary — so sharded and unsharded
    runs can never diverge on equal-weight choices.

    Raises :class:`~repro.exceptions.ConfigurationError` beyond
    :data:`SUBSET_DP_MAX_EVENTS` events instead of attempting the O(2^n)
    table allocation.
    """
    num = len(boundary_distance)
    if num > SUBSET_DP_MAX_EVENTS:
        raise ConfigurationError(
            f"match_events_small is O(2^n) and capped at "
            f"SUBSET_DP_MAX_EVENTS={SUBSET_DP_MAX_EVENTS} events, got {num}; "
            f"route larger sets to repro.decoders.blossom.match_events"
        )
    full = (1 << num) - 1
    best = [0] * (full + 1)
    choice: list[tuple[int, int]] = [(-1, -1)] * (full + 1)
    for mask in range(1, full + 1):
        lowest = (mask & -mask).bit_length() - 1
        rest = mask ^ (1 << lowest)
        best_cost = boundary_distance[lowest] + best[rest]
        best_choice = (lowest, -1)
        row = distance[lowest]
        partners = rest
        while partners:
            partner = (partners & -partners).bit_length() - 1
            partners &= partners - 1
            cost = row[partner] + best[rest ^ (1 << partner)]
            if cost < best_cost:
                best_cost = cost
                best_choice = (lowest, partner)
        best[mask] = best_cost
        choice[mask] = best_choice

    pairs: list[tuple[int, int]] = []
    boundary_matches: list[int] = []
    mask = full
    while mask:
        event, partner = choice[mask]
        if partner == -1:
            boundary_matches.append(event)
            mask ^= 1 << event
        else:
            pairs.append((event, partner))
            mask ^= (1 << event) | (1 << partner)
    return pairs, boundary_matches


class MWPMDecoder(Decoder):
    """Space-time MWPM decoder for one stabilizer type of a rotated surface code.

    Args:
        code: the surface code instance.
        stype: which stabilizer type's detection events this decoder handles.
        matching_graph: optionally share a precomputed :class:`MatchingGraph`
            (they are deterministic per ``(code, stype)``).
        boundary_clique_cache_limit: how many distinct event counts retain
            their zero-weight boundary-clique edge lists (LRU; only the
            ``matcher="networkx"`` oracle path builds cliques); rarer counts
            are rebuilt on demand so the cache cannot grow unboundedly over
            a long sharded run.
        boundary_clique_cache: optionally share one cache dict across several
            decoder instances — the edge lists depend only on the event
            count, so tiers of a :class:`~repro.clique.cascade.DecoderCascade`
            built on the same :class:`MatchingGraph` share a single cache
            instead of each warming its own.
        matcher: which solver handles event sets beyond the subset-DP limit.
            ``"blossom"`` (the default) is the in-tree O(n^3) matcher with
            implicit boundary handling; ``"networkx"`` is the legacy
            auxiliary-graph path, kept as an optional differential-test
            oracle and pre-blossom benchmark baseline (imports networkx
            lazily, on first use).
    """

    def __init__(
        self,
        code: RotatedSurfaceCode,
        stype: StabilizerType,
        matching_graph: MatchingGraph | None = None,
        boundary_clique_cache_limit: int = DEFAULT_BOUNDARY_CLIQUE_CACHE_LIMIT,
        boundary_clique_cache: dict[int, list] | None = None,
        matcher: str = "blossom",
    ) -> None:
        super().__init__(code, stype)
        self._graph = matching_graph or MatchingGraph(code, stype)
        if boundary_clique_cache_limit < 0:
            raise ConfigurationError(
                f"boundary_clique_cache_limit must be >= 0, "
                f"got {boundary_clique_cache_limit}"
            )
        if matcher not in ("blossom", "networkx"):
            raise ConfigurationError(
                f"matcher must be 'blossom' or 'networkx', got {matcher!r}"
            )
        self._matcher = matcher
        self._boundary_clique_cache_limit = boundary_clique_cache_limit
        # The zero-weight boundary-copy clique depends only on the event
        # count, so the edge lists are built once per count and reused.
        self._boundary_clique_cache: dict[int, list] = (
            {} if boundary_clique_cache is None else boundary_clique_cache
        )

    @property
    def matcher(self) -> str:
        return self._matcher

    @property
    def matching_graph(self) -> MatchingGraph:
        return self._graph

    # ------------------------------------------------------------------
    def decode(self, detections: np.ndarray) -> DecodeResult:
        matrix = self._as_detection_matrix(detections)
        rounds, ancillas = np.nonzero(matrix)
        if rounds.size == 0:
            return DecodeResult(correction=frozenset(), metadata={"num_events": 0})
        ancillas = ancillas.astype(np.int64)
        pairs, boundary_matches = self._match_indices(ancillas, rounds.astype(np.int64))
        bitmap = self._assemble_bitmap(ancillas, pairs, boundary_matches)
        data_qubits = self._code.data_qubits
        return DecodeResult(
            correction=frozenset(data_qubits[i] for i in np.flatnonzero(bitmap)),
            metadata={
                "num_events": int(rounds.size),
                "num_pairs": len(pairs),
                "num_boundary_matches": len(boundary_matches),
            },
        )

    def decode_events_bitmap(self, rounds: np.ndarray, ancillas: np.ndarray) -> np.ndarray:
        """Decode one trial's detection events given as flat index arrays.

        This is the batched-fallback entry point used by
        :meth:`repro.clique.hierarchical.HierarchicalDecoder.decode_batch`:
        the caller extracts all off-chip trials' events with a single
        ``np.nonzero`` pass and hands each trial's ``(rounds, ancillas)``
        slice here, skipping per-trial matrix validation, ``SpaceTimeEvent``
        construction, and coordinate-set assembly.  Events must arrive in
        row-major ``(round, ancilla)`` order — the order ``np.nonzero``
        produces — so that equal-weight ties break exactly as they do in
        :meth:`decode`; the returned uint8 bitmap (``code.data_index`` column
        order) is then bit-identical to the per-trial path.
        """
        ancillas = np.asarray(ancillas, dtype=np.int64)
        if ancillas.size == 0:
            return np.zeros(self._code.num_data_qubits, dtype=np.uint8)
        pairs, boundary_matches = self._match_indices(
            ancillas, np.asarray(rounds, dtype=np.int64)
        )
        return self._assemble_bitmap(ancillas, pairs, boundary_matches)

    def _assemble_bitmap(
        self,
        ancillas: np.ndarray,
        pairs: list[tuple[int, int]],
        boundary_matches: list[int],
    ) -> np.ndarray:
        """XOR the matched chains' correction paths into a data-qubit bitmap."""
        bitmap = np.zeros(self._code.num_data_qubits, dtype=np.uint8)
        data_index = self._code.data_index
        for i, j in pairs:
            for qubit in self._graph.spatial_path(int(ancillas[i]), int(ancillas[j])):
                bitmap[data_index[qubit]] ^= 1
        for i in boundary_matches:
            for qubit in self._graph.boundary_path(int(ancillas[i])):
                bitmap[data_index[qubit]] ^= 1
        return bitmap

    # ------------------------------------------------------------------
    #: Largest event count routed to the exact subset-DP solver; beyond it the
    #: O(2^n n) DP loses to blossom's polynomial scaling.
    _SMALL_CASE_LIMIT = 8

    def _match_small(
        self,
        distance: list[list[int]],
        boundary_distance: list[int],
    ) -> tuple[list[tuple[int, int]], list[int]]:
        return match_events_small(distance, boundary_distance)

    def _boundary_clique_edges(self, num: int) -> list:
        """Zero-weight clique among the ``num`` boundary copies (nodes
        ``num .. 2 * num - 1``), LRU-cached for the most common event counts.

        Only the ``matcher="networkx"`` oracle path builds boundary cliques;
        the blossom matcher handles the boundary implicitly.  A hit moves the
        count to the back of the insertion order, an insert at capacity
        evicts the least-recently-used count, so a long sweep whose
        event-count distribution drifts cannot pin cold entries forever.
        """
        cache = self._boundary_clique_cache
        edges = cache.get(num)
        if edges is not None:
            cache[num] = cache.pop(num)  # move-to-end: mark most recently used
            return edges
        edges = [
            (num + i, num + j, 0)
            for i in range(num)
            for j in range(i + 1, num)
        ]
        if self._boundary_clique_cache_limit > 0:
            while len(cache) >= self._boundary_clique_cache_limit:
                cache.pop(next(iter(cache)))  # evict least recently used
            cache[num] = edges
        return edges

    def _match_indices(
        self, ancillas: np.ndarray, rounds: np.ndarray
    ) -> tuple[list[tuple[int, int]], list[int]]:
        """Solve the event/boundary matching problem on flat event-index arrays.

        Both decode entry points (per-trial :meth:`decode` and the batched
        :meth:`decode_events_bitmap`) funnel through here, which is what
        guarantees their bit-identity on equal-weight ties.
        """
        num = int(ancillas.size)
        # All pairwise space-time distances in two vectorised gathers.
        distance = self._graph.spatial_distance_matrix[
            np.ix_(ancillas, ancillas)
        ] + np.abs(rounds[:, None] - rounds[None, :])
        boundary_distance = self._graph.boundary_distance_array[ancillas]

        if num <= self._SMALL_CASE_LIMIT:
            return self._match_small(distance.tolist(), boundary_distance.tolist())
        if self._matcher == "networkx":
            return self._match_indices_networkx(
                distance.tolist(), boundary_distance.tolist(), ancillas, rounds
            )
        return blossom.match_events(distance, boundary_distance)

    def _match_indices_networkx(
        self,
        distance: list[list[int]],
        boundary_distance: list[int],
        ancillas: np.ndarray,
        rounds: np.ndarray,
    ) -> tuple[list[tuple[int, int]], list[int]]:
        """Legacy auxiliary-graph path via ``networkx.max_weight_matching``.

        Kept as an optional differential-test oracle and as the pre-blossom
        baseline for benchmarking; networkx is imported lazily so the default
        decode path never touches it.
        """
        try:
            import networkx as nx
        except ImportError as exc:  # pragma: no cover - env without networkx
            raise ConfigurationError(
                "matcher='networkx' requires the optional networkx package; "
                "the default matcher='blossom' has no such dependency"
            ) from exc

        num = len(boundary_distance)
        # Auxiliary blossom graph on integer nodes: event ``i`` is node ``i``,
        # its boundary copy is node ``num + i``.
        edges = [(i, num + i, -boundary_distance[i]) for i in range(num)]
        for i in range(num):
            row = distance[i]
            edges.extend((i, j, -row[j]) for j in range(i + 1, num))
        graph = nx.Graph()
        graph.add_weighted_edges_from(edges)
        graph.add_weighted_edges_from(self._boundary_clique_edges(num))

        matching = nx.max_weight_matching(graph, maxcardinality=True)
        matched_nodes = {node for pair in matching for node in pair}
        if len(matched_nodes) != 2 * num:
            coords = list(zip(rounds.tolist(), np.asarray(ancillas).tolist()))
            raise DecodingError(
                f"matching is not perfect: {len(matched_nodes)} of "
                f"{2 * num} nodes matched; decoder="
                f"{type(self).__name__}(distance={self._code.distance}, "
                f"stype={self._stype.name}, matcher={self._matcher!r}); "
                f"events as (round, ancilla_index) pairs: {coords}"
            )

        pairs: list[tuple[int, int]] = []
        boundary_matches: list[int] = []
        for node_a, node_b in matching:
            if node_a < num and node_b < num:
                pairs.append((node_a, node_b))
            elif node_a < num <= node_b:
                boundary_matches.append(node_a)
            elif node_b < num <= node_a:
                boundary_matches.append(node_b)
            # boundary-boundary pairs need no correction
        return pairs, boundary_matches

    def _match(
        self, events: list[SpaceTimeEvent]
    ) -> tuple[list[tuple[SpaceTimeEvent, SpaceTimeEvent]], list[SpaceTimeEvent]]:
        """Object-level wrapper around :meth:`_match_indices`."""
        num = len(events)
        ancillas = np.fromiter(
            (event.ancilla_index for event in events), dtype=np.int64, count=num
        )
        rounds = np.fromiter(
            (event.round for event in events), dtype=np.int64, count=num
        )
        pairs, boundary_matches = self._match_indices(ancillas, rounds)
        return (
            [(events[i], events[j]) for i, j in pairs],
            [events[i] for i in boundary_matches],
        )


__all__ = [
    "DEFAULT_BOUNDARY_CLIQUE_CACHE_LIMIT",
    "MWPMDecoder",
    "SUBSET_DP_MAX_EVENTS",
    "match_events_small",
]
