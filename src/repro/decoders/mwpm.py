"""Minimum Weight Perfect Matching decoder (the paper's off-chip baseline).

MWPM pairs up detection events (or matches them to the lattice boundary) so
that the total length of the implied error chains is minimal, which under an
independent-error model is the most probable explanation of the observed
syndrome (Dennis et al., "Topological quantum memory").

The implementation builds the standard auxiliary graph:

* one node per detection event, plus one *boundary copy* per event;
* event-event edges weighted by (negative) space-time distance;
* event-to-own-boundary-copy edges weighted by (negative) boundary distance;
* boundary-copy-to-boundary-copy edges of weight zero, so unused copies can
  pair among themselves;

and solves it with :func:`networkx.max_weight_matching` (blossom algorithm)
with ``maxcardinality=True``, which yields a minimum-total-distance perfect
matching.

Small event sets — the common case for the hierarchy's off-chip fallback,
which only ever sees the rare complex rounds — skip the auxiliary graph
entirely: an exact subset-DP over pair/boundary assignments finds the same
minimum-total-distance solution in microseconds.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from repro.codes.rotated_surface import RotatedSurfaceCode
from repro.decoders.base import Decoder, DecodeResult
from repro.decoders.matching_graph import MatchingGraph, SpaceTimeEvent
from repro.exceptions import DecodingError
from repro.types import Coord, StabilizerType


class MWPMDecoder(Decoder):
    """Space-time MWPM decoder for one stabilizer type of a rotated surface code.

    Args:
        code: the surface code instance.
        stype: which stabilizer type's detection events this decoder handles.
        matching_graph: optionally share a precomputed :class:`MatchingGraph`
            (they are deterministic per ``(code, stype)``).
    """

    def __init__(
        self,
        code: RotatedSurfaceCode,
        stype: StabilizerType,
        matching_graph: MatchingGraph | None = None,
    ) -> None:
        super().__init__(code, stype)
        self._graph = matching_graph or MatchingGraph(code, stype)
        # The zero-weight boundary-copy clique depends only on the event
        # count, so the edge lists are built once per count and reused.
        self._boundary_clique_cache: dict[int, list] = {}

    @property
    def matching_graph(self) -> MatchingGraph:
        return self._graph

    # ------------------------------------------------------------------
    def decode(self, detections: np.ndarray) -> DecodeResult:
        matrix = self._as_detection_matrix(detections)
        events = [
            SpaceTimeEvent(round=int(r), ancilla_index=int(a))
            for r, a in zip(*np.nonzero(matrix))
        ]
        if not events:
            return DecodeResult(correction=frozenset(), metadata={"num_events": 0})
        pairs, boundary_matches = self._match(events)
        correction: set[Coord] = set()
        for event_a, event_b in pairs:
            correction ^= self._graph.correction_between(event_a, event_b)
        for event in boundary_matches:
            correction ^= self._graph.correction_to_boundary(event)
        return DecodeResult(
            correction=frozenset(correction),
            metadata={
                "num_events": len(events),
                "num_pairs": len(pairs),
                "num_boundary_matches": len(boundary_matches),
            },
        )

    # ------------------------------------------------------------------
    #: Largest event count routed to the exact subset-DP solver; beyond it the
    #: O(2^n n) DP loses to blossom's polynomial scaling.
    _SMALL_CASE_LIMIT = 8

    def _match_small(
        self,
        events: list[SpaceTimeEvent],
        distance: list[list[int]],
        boundary_distance: list[int],
    ) -> tuple[list[tuple[SpaceTimeEvent, SpaceTimeEvent]], list[SpaceTimeEvent]]:
        """Exact minimum-total-distance assignment by DP over event subsets.

        ``best[mask]`` is the cheapest way to resolve the event subset
        ``mask``, where every event is either paired with another event in the
        subset or matched to the boundary — the same solution space the
        auxiliary matching graph encodes.
        """
        num = len(events)
        full = (1 << num) - 1
        best = [0] * (full + 1)
        choice: list[tuple[int, int]] = [(-1, -1)] * (full + 1)
        for mask in range(1, full + 1):
            lowest = (mask & -mask).bit_length() - 1
            rest = mask ^ (1 << lowest)
            best_cost = boundary_distance[lowest] + best[rest]
            best_choice = (lowest, -1)
            row = distance[lowest]
            partners = rest
            while partners:
                partner = (partners & -partners).bit_length() - 1
                partners &= partners - 1
                cost = row[partner] + best[rest ^ (1 << partner)]
                if cost < best_cost:
                    best_cost = cost
                    best_choice = (lowest, partner)
            best[mask] = best_cost
            choice[mask] = best_choice

        pairs: list[tuple[SpaceTimeEvent, SpaceTimeEvent]] = []
        boundary_matches: list[SpaceTimeEvent] = []
        mask = full
        while mask:
            event, partner = choice[mask]
            if partner == -1:
                boundary_matches.append(events[event])
                mask ^= 1 << event
            else:
                pairs.append((events[event], events[partner]))
                mask ^= (1 << event) | (1 << partner)
        return pairs, boundary_matches

    def _boundary_clique_edges(self, num: int) -> list:
        """Cached zero-weight clique among the ``num`` boundary copies."""
        edges = self._boundary_clique_cache.get(num)
        if edges is None:
            edges = [
                (("boundary", i), ("boundary", j), 0)
                for i in range(num)
                for j in range(i + 1, num)
            ]
            self._boundary_clique_cache[num] = edges
        return edges

    def _match(
        self, events: list[SpaceTimeEvent]
    ) -> tuple[list[tuple[SpaceTimeEvent, SpaceTimeEvent]], list[SpaceTimeEvent]]:
        """Solve the auxiliary matching problem for a list of detection events."""
        num = len(events)
        ancilla = np.fromiter(
            (event.ancilla_index for event in events), dtype=np.int64, count=num
        )
        rounds = np.fromiter(
            (event.round for event in events), dtype=np.int64, count=num
        )
        # All pairwise space-time distances in two vectorised gathers.
        distance = (
            self._graph.spatial_distance_matrix[np.ix_(ancilla, ancilla)]
            + np.abs(rounds[:, None] - rounds[None, :])
        ).tolist()
        boundary_distance = self._graph.boundary_distance_array[ancilla].tolist()

        if num <= self._SMALL_CASE_LIMIT:
            return self._match_small(events, distance, boundary_distance)

        edges = [
            (("event", i), ("boundary", i), -boundary_distance[i]) for i in range(num)
        ]
        for i in range(num):
            row = distance[i]
            edges.extend(
                (("event", i), ("event", j), -row[j]) for j in range(i + 1, num)
            )
        graph = nx.Graph()
        graph.add_weighted_edges_from(edges)
        graph.add_weighted_edges_from(self._boundary_clique_edges(num))

        matching = nx.max_weight_matching(graph, maxcardinality=True)
        matched_nodes = {node for pair in matching for node in pair}
        if len(matched_nodes) != 2 * num:
            raise DecodingError(
                f"matching is not perfect: {len(matched_nodes)} of {2 * num} nodes matched"
            )

        pairs: list[tuple[SpaceTimeEvent, SpaceTimeEvent]] = []
        boundary_matches: list[SpaceTimeEvent] = []
        for node_a, node_b in matching:
            kind_a, idx_a = node_a
            kind_b, idx_b = node_b
            if kind_a == "event" and kind_b == "event":
                pairs.append((events[idx_a], events[idx_b]))
            elif kind_a == "event" and kind_b == "boundary":
                boundary_matches.append(events[idx_a])
            elif kind_b == "event" and kind_a == "boundary":
                boundary_matches.append(events[idx_b])
            # boundary-boundary pairs need no correction
        return pairs, boundary_matches


__all__ = ["MWPMDecoder"]
