"""Decoder interface shared by on-chip and off-chip decoders."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro import bitplane
from repro.codes.rotated_surface import RotatedSurfaceCode
from repro.exceptions import SyndromeShapeError
from repro.types import Coord, StabilizerType


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of a decode call.

    Attributes:
        correction: data qubits whose error species should be flipped.  The
            set has XOR semantics: applying it twice is a no-op.
        handled: whether the decoder actually produced a correction.  The
            Clique decoder sets ``handled=False`` when it declares a syndrome
            complex and defers to the off-chip decoder.
        metadata: free-form diagnostic information (e.g. number of matched
            pairs, growth steps), useful for benchmarking.
    """

    correction: frozenset[Coord] = frozenset()
    handled: bool = True
    metadata: dict = field(default_factory=dict)


@dataclass(frozen=True)
class BatchDecodeResult:
    """Outcome of decoding a batch of detection-event histories at once.

    Corrections are returned as a dense bitmap rather than coordinate sets so
    that batched callers (the vectorised Monte-Carlo engine) can XOR them
    against accumulated-error bitmaps without any per-trial set manipulation.

    Attributes:
        corrections: uint8 matrix of shape ``(trials, num_data_qubits)`` in
            ``code.data_index`` column order; entry 1 means "flip this qubit".
        onchip_rounds: per-trial count of measurement rounds resolved on-chip
            (all-zero for decoders that do not track decode locations).
        total_rounds: per-trial count of rounds with location tracking
            (all-zero for decoders that do not track decode locations).
        tier_trials: for cascade decoders, int64 vector of length ``num_tiers``
            counting the trials whose decoding terminated at each tier (tier 0
            is the on-chip Clique tier; the entries sum to the trial count).
            ``None`` for decoders without tier structure.
        tier_rounds: for cascade decoders, int64 vector of length
            ``num_tiers``: entry 0 is the total count of rounds resolved
            on-chip, entry ``k >= 1`` is the total count of detection rounds
            *shipped into* tier ``k`` — the tier boundary's bandwidth in
            rounds (a trial escalated past tier 1 re-ships its whole off-chip
            window, so its rounds count toward every tier it visited).
            ``None`` for decoders without tier structure.
    """

    corrections: np.ndarray
    onchip_rounds: np.ndarray
    total_rounds: np.ndarray
    tier_trials: np.ndarray | None = None
    tier_rounds: np.ndarray | None = None

    @property
    def num_trials(self) -> int:
        return self.corrections.shape[0]


@dataclass(frozen=True)
class PackedBatchDecodeResult:
    """Outcome of decoding a batch given as uint64 trial bitplanes.

    The packed counterpart of :class:`BatchDecodeResult`: corrections come
    back as bitplanes so the packed Monte-Carlo engine XORs them straight
    into packed accumulated-error planes.  Per-trial statistics stay unpacked
    (they are ``O(trials)`` integers, not part of the memory-bound hot path)
    and cover only the ``trials`` real trials, never the ragged-tail padding.

    Attributes:
        corrections: uint64 planes of shape ``(num_data_qubits, words)`` in
            ``code.data_index`` plane order; trial ``t``'s correction bit for
            a qubit lives at bit ``t % 64`` of word ``t // 64``.
        trials: number of real trials (``words == ceil(trials / 64)``).
        onchip_rounds: per-trial count of rounds resolved on-chip,
            shape ``(trials,)``.
        total_rounds: per-trial count of rounds with location tracking,
            shape ``(trials,)``.
        tier_trials: see :attr:`BatchDecodeResult.tier_trials`.
        tier_rounds: see :attr:`BatchDecodeResult.tier_rounds`.
    """

    corrections: np.ndarray
    trials: int
    onchip_rounds: np.ndarray
    total_rounds: np.ndarray
    tier_trials: np.ndarray | None = None
    tier_rounds: np.ndarray | None = None

    @property
    def num_trials(self) -> int:
        return self.trials


class Decoder(abc.ABC):
    """A decoder for one stabilizer type of one surface code instance.

    Decoders consume *detection events* in matrix form — shape
    ``(num_rounds, num_ancillas_of_type)`` — and return a
    :class:`DecodeResult` whose correction is expressed on data qubits.  A
    one-dimensional syndrome is accepted as shorthand for a single round.

    Cascade tier contract (all optional):

    * ``decode_events_bitmap(rounds, ancillas) -> uint8 bitmap`` — batched
      final-tier decode of one trial's events given as flat index arrays in
      row-major ``(round, ancilla)`` order (the order ``np.nonzero``
      produces, which fixes equal-weight tie-breaks).  Decoders without it
      are decoded per trial through :meth:`decode`.
    * ``decode_events_tiered(rounds, ancillas) -> (bitmap, escalated)`` —
      decode-or-escalate for *intermediate* cascade tiers: resolve what the
      tier can in place (the partial correction ``bitmap``) and return the
      sorted int64 array of event positions it declines (``escalated``,
      indices into the input arrays; empty when fully resolved).  Escalation
      is per cluster, not per trial — only oversized clusters' members
      travel on.  The cascade also still accepts the legacy PR 5
      all-or-nothing form ``(bitmap | None, bool)`` from custom decoder
      instances (``True`` = ship every event, ``False`` = fully resolved).
      A tier without this hook can only sit last in a
      :class:`~repro.clique.cascade.DecoderCascade`.
    """

    def __init__(self, code: RotatedSurfaceCode, stype: StabilizerType) -> None:
        self._code = code
        self._stype = stype

    @property
    def code(self) -> RotatedSurfaceCode:
        return self._code

    @property
    def stabilizer_type(self) -> StabilizerType:
        return self._stype

    @property
    def name(self) -> str:
        """Short identifier used in experiment reports."""
        return type(self).__name__

    def _as_detection_matrix(self, detections: np.ndarray) -> np.ndarray:
        """Normalise input to a 2-D uint8 matrix and validate its width."""
        matrix = np.atleast_2d(np.asarray(detections, dtype=np.uint8)) & 1
        expected = self._code.num_ancillas_of_type(self._stype)
        if matrix.shape[1] != expected:
            raise SyndromeShapeError(expected, matrix.shape[1])
        return matrix

    def _as_detection_batch(self, histories: np.ndarray) -> np.ndarray:
        """Normalise input to a 3-D uint8 tensor ``(trials, rounds, ancillas)``."""
        batch = np.asarray(histories, dtype=np.uint8) & 1
        if batch.ndim == 2:
            batch = batch[np.newaxis]
        if batch.ndim != 3:
            raise ValueError(
                f"expected a (trials, rounds, ancillas) tensor, got {batch.ndim}-D input"
            )
        expected = self._code.num_ancillas_of_type(self._stype)
        if batch.shape[2] != expected:
            raise SyndromeShapeError(expected, batch.shape[2])
        return batch

    @abc.abstractmethod
    def decode(self, detections: np.ndarray) -> DecodeResult:
        """Decode a detection-event matrix into a data-qubit correction."""

    def decode_batch(self, histories: np.ndarray) -> BatchDecodeResult:
        """Decode a batch of detection-event histories.

        Args:
            histories: tensor of shape ``(trials, rounds, num_ancillas)``
                (a single 2-D history is accepted as a batch of one).

        The base implementation decodes trial by trial through :meth:`decode`
        and repackages the results; decoders with a vectorised fast path (the
        Clique hierarchy) override it.  Subclass overrides must stay
        bit-identical to this reference semantics — the batched Monte-Carlo
        engine's equivalence guarantee depends on it.
        """
        batch = self._as_detection_batch(histories)
        trials = batch.shape[0]
        corrections = np.zeros((trials, self._code.num_data_qubits), dtype=np.uint8)
        onchip_rounds = np.zeros(trials, dtype=np.int64)
        total_rounds = np.zeros(trials, dtype=np.int64)
        data_index = self._code.data_index
        for trial in range(trials):
            result = self.decode(batch[trial])
            for qubit in result.correction:
                corrections[trial, data_index[qubit]] ^= 1
            metadata = result.metadata
            if "num_offchip_rounds" in metadata and "num_rounds" in metadata:
                onchip_rounds[trial] = (
                    metadata["num_rounds"] - metadata["num_offchip_rounds"]
                )
                total_rounds[trial] = metadata["num_rounds"]
        return BatchDecodeResult(
            corrections=corrections,
            onchip_rounds=onchip_rounds,
            total_rounds=total_rounds,
        )

    def _as_packed_detection_batch(
        self, detections: np.ndarray, trials: int
    ) -> np.ndarray:
        """Validate a packed ``(rounds, ancillas, words)`` uint64 tensor."""
        planes = np.asarray(detections)
        if planes.ndim != 3 or planes.dtype != np.uint64:
            raise ValueError(
                "expected a (rounds, ancillas, words) uint64 tensor, got "
                f"{planes.dtype} with {planes.ndim} dimension(s)"
            )
        expected = self._code.num_ancillas_of_type(self._stype)
        if planes.shape[1] != expected:
            raise SyndromeShapeError(expected, planes.shape[1])
        if planes.shape[2] != bitplane.num_words(trials):
            raise ValueError(
                f"expected {bitplane.num_words(trials)} packed words for "
                f"{trials} trials, got {planes.shape[2]}"
            )
        return planes

    def decode_batch_packed(
        self, detections: np.ndarray, trials: int
    ) -> PackedBatchDecodeResult:
        """Decode a batch given as packed trial bitplanes.

        Args:
            detections: uint64 tensor of shape ``(rounds, num_ancillas,
                words)`` in the trials-major layout of
                :mod:`repro.bitplane` (padding bits of the ragged last word
                must be zero).
            trials: the number of real trials packed into the planes.

        The base implementation unpacks, delegates to :meth:`decode_batch`,
        and re-packs the corrections — semantics, including RNG-free
        tie-breaks, are therefore exactly :meth:`decode_batch`'s.  Decoders
        with a native packed path (:class:`repro.clique.cascade.DecoderCascade`)
        override it and must stay bit-identical to this reference; the packed
        Monte-Carlo engine's equivalence guarantee depends on it.
        """
        planes = self._as_packed_detection_batch(detections, trials)
        result = self.decode_batch(bitplane.unpack_trials(planes, trials))
        return PackedBatchDecodeResult(
            corrections=bitplane.pack_trials(result.corrections),
            trials=trials,
            onchip_rounds=result.onchip_rounds,
            total_rounds=result.total_rounds,
            tier_trials=result.tier_trials,
            tier_rounds=result.tier_rounds,
        )


__all__ = ["BatchDecodeResult", "Decoder", "DecodeResult", "PackedBatchDecodeResult"]
