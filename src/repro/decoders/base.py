"""Decoder interface shared by on-chip and off-chip decoders."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.codes.rotated_surface import RotatedSurfaceCode
from repro.exceptions import SyndromeShapeError
from repro.types import Coord, StabilizerType


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of a decode call.

    Attributes:
        correction: data qubits whose error species should be flipped.  The
            set has XOR semantics: applying it twice is a no-op.
        handled: whether the decoder actually produced a correction.  The
            Clique decoder sets ``handled=False`` when it declares a syndrome
            complex and defers to the off-chip decoder.
        metadata: free-form diagnostic information (e.g. number of matched
            pairs, growth steps), useful for benchmarking.
    """

    correction: frozenset[Coord] = frozenset()
    handled: bool = True
    metadata: dict = field(default_factory=dict)


class Decoder(abc.ABC):
    """A decoder for one stabilizer type of one surface code instance.

    Decoders consume *detection events* in matrix form — shape
    ``(num_rounds, num_ancillas_of_type)`` — and return a
    :class:`DecodeResult` whose correction is expressed on data qubits.  A
    one-dimensional syndrome is accepted as shorthand for a single round.
    """

    def __init__(self, code: RotatedSurfaceCode, stype: StabilizerType) -> None:
        self._code = code
        self._stype = stype

    @property
    def code(self) -> RotatedSurfaceCode:
        return self._code

    @property
    def stabilizer_type(self) -> StabilizerType:
        return self._stype

    @property
    def name(self) -> str:
        """Short identifier used in experiment reports."""
        return type(self).__name__

    def _as_detection_matrix(self, detections: np.ndarray) -> np.ndarray:
        """Normalise input to a 2-D uint8 matrix and validate its width."""
        matrix = np.atleast_2d(np.asarray(detections, dtype=np.uint8)) & 1
        expected = self._code.num_ancillas_of_type(self._stype)
        if matrix.shape[1] != expected:
            raise SyndromeShapeError(expected, matrix.shape[1])
        return matrix

    @abc.abstractmethod
    def decode(self, detections: np.ndarray) -> DecodeResult:
        """Decode a detection-event matrix into a data-qubit correction."""


__all__ = ["Decoder", "DecodeResult"]
