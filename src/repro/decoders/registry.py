"""Named decoder registry for cascade tier specs.

A decoder cascade is configured by a *tier spec*: a sequence of tier names,
e.g. ``("clique", "union_find", "mwpm")`` or the comma-separated CLI form
``"clique,union_find,mwpm"``.  The first tier is always the on-chip Clique
front-end (it owns the round-by-round persistence filtering and triage and is
constructed by :class:`repro.clique.cascade.DecoderCascade` itself); every
later tier names an off-chip decoder class registered here.  Intermediate
tiers must expose the per-cluster escalation hook ``decode_events_tiered``
(see :class:`repro.decoders.base.Decoder`); the final tier only needs a
decode path.

The registry lives in :mod:`repro.decoders` (not :mod:`repro.clique`) so the
spec can be validated *eagerly* — at CLI-argument and experiment-config time —
instead of surfacing as a lookup error deep inside a worker process.
"""

from __future__ import annotations

from typing import Iterable

from repro.decoders.base import Decoder
from repro.decoders.mwpm import MWPMDecoder
from repro.decoders.union_find import ClusteringDecoder
from repro.exceptions import ConfigurationError

#: Name of the mandatory on-chip front-end tier.
CLIQUE_TIER = "clique"

#: Off-chip decoder classes selectable by name in a cascade tier spec (and as
#: ``HierarchicalDecoder(fallback=...)``, which aliases a two-tier cascade).
TIER_DECODERS: dict[str, type[Decoder]] = {
    "mwpm": MWPMDecoder,
    "union_find": ClusteringDecoder,
}


def tier_decoder_names() -> tuple[str, ...]:
    """Sorted names accepted for off-chip cascade tiers."""
    return tuple(sorted(TIER_DECODERS))


def resolve_tier_name(name: str) -> type[Decoder]:
    """Look up one off-chip tier name, with a clean error for unknown names."""
    try:
        return TIER_DECODERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown decoder tier {name!r}; valid off-chip tiers are "
            f"{list(tier_decoder_names())} (the first tier is always "
            f"{CLIQUE_TIER!r})"
        ) from None


def resolve_tier_spec(spec: str | Iterable[str]) -> tuple[str, ...]:
    """Normalise and validate a cascade tier spec into a tuple of tier names.

    Accepts the comma-separated CLI form (``"clique,union_find,mwpm"``) or any
    iterable of names.  The spec must start with :data:`CLIQUE_TIER`, contain
    at least one off-chip tier, every off-chip name must be registered in
    :data:`TIER_DECODERS`, and every *intermediate* tier's decoder must be
    able to escalate (expose ``decode_events_tiered``) — violations raise
    :class:`~repro.exceptions.ConfigurationError` listing the valid names, so
    a typo on the command line never becomes a traceback from inside the
    decoder stack (or a pooled worker process), nor an error surfacing only
    after a sweep has already burned Monte-Carlo time.
    """
    if isinstance(spec, str):
        names = tuple(part.strip() for part in spec.split(","))
    else:
        names = tuple(spec)
    if any(not isinstance(name, str) or not name for name in names):
        raise ConfigurationError(
            f"malformed tier spec {spec!r}: expected comma-separated decoder "
            f"names like 'clique,union_find,mwpm'"
        )
    if not names or names[0] != CLIQUE_TIER:
        raise ConfigurationError(
            f"a cascade tier spec must start with the on-chip {CLIQUE_TIER!r} "
            f"tier, got {list(names)!r}"
        )
    if len(names) < 2:
        raise ConfigurationError(
            f"a cascade needs at least one off-chip tier after {CLIQUE_TIER!r}; "
            f"valid off-chip tiers are {list(tier_decoder_names())}"
        )
    for position, name in enumerate(names[1:]):
        tier_cls = resolve_tier_name(name)
        is_last = position == len(names) - 2
        if not is_last and getattr(tier_cls, "decode_events_tiered", None) is None:
            raise ConfigurationError(
                f"tier {name!r} cannot sit mid-cascade: it has no escalation "
                f"path (decode_events_tiered), so only the final tier may "
                f"use it"
            )
    return names


__all__ = [
    "CLIQUE_TIER",
    "TIER_DECODERS",
    "resolve_tier_name",
    "resolve_tier_spec",
    "tier_decoder_names",
]
