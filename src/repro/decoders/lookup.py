"""Exhaustive lookup-table decoder for small code distances.

For small codes under *code-capacity* noise (perfect measurements, single
round) it is feasible to precompute the minimum-weight correction for every
possible syndrome by enumerating error patterns in order of increasing
weight.  The result is provably optimal, which makes this decoder a useful
oracle for cross-validating MWPM in the test suite (and mirrors the LUT
decoders of Tomita & Svore / LILLIPUT referenced by the paper).
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.codes.rotated_surface import RotatedSurfaceCode
from repro.decoders.base import Decoder, DecodeResult
from repro.exceptions import ConfigurationError, DecodingError
from repro.types import Coord, StabilizerType


class LookupDecoder(Decoder):
    """Optimal single-round decoder built from an exhaustive syndrome table.

    Args:
        code: surface code instance (distances above ``max_distance`` are
            rejected because the table grows exponentially).
        stype: stabilizer type to decode.
        max_distance: safety limit on the supported code distance.
    """

    def __init__(
        self,
        code: RotatedSurfaceCode,
        stype: StabilizerType,
        max_distance: int = 5,
    ) -> None:
        super().__init__(code, stype)
        if code.distance > max_distance:
            raise ConfigurationError(
                f"LookupDecoder supports distance <= {max_distance}, "
                f"got {code.distance}"
            )
        self._table = self._build_table()

    # ------------------------------------------------------------------
    def _build_table(self) -> dict[bytes, frozenset[Coord]]:
        """Map every reachable syndrome to a minimum-weight correction."""
        code = self._code
        stype = self._stype
        num_syndromes = 2 ** code.num_ancillas_of_type(stype)
        table: dict[bytes, frozenset[Coord]] = {}
        qubits = code.data_qubits
        for weight in range(0, code.num_data_qubits + 1):
            if len(table) == num_syndromes:
                break
            for combo in combinations(qubits, weight):
                error = frozenset(combo)
                key = code.syndrome_of(error, stype).tobytes()
                if key not in table:
                    table[key] = error
        return table

    @property
    def table_size(self) -> int:
        """Number of distinct syndromes the table covers."""
        return len(self._table)

    # ------------------------------------------------------------------
    def decode(self, detections: np.ndarray) -> DecodeResult:
        matrix = self._as_detection_matrix(detections)
        if matrix.shape[0] != 1:
            raise DecodingError(
                "LookupDecoder only supports single-round (code capacity) decoding"
            )
        key = matrix[0].astype(np.uint8).tobytes()
        try:
            correction = self._table[key]
        except KeyError as exc:  # pragma: no cover - table is exhaustive
            raise DecodingError("syndrome missing from lookup table") from exc
        return DecodeResult(
            correction=correction, metadata={"correction_weight": len(correction)}
        )


__all__ = ["LookupDecoder"]
