"""Space-time matching graph for phenomenological-noise decoding.

Detection events live on a three-dimensional lattice: the two spatial
dimensions of the ancilla grid plus the measurement-round (time) axis.
Under the paper's phenomenological noise model every edge has the same
weight, so the distance between two events decomposes into

    distance = spatial_distance(ancilla_a, ancilla_b) + |round_a - round_b|

where the spatial distance is the shortest chain of data-qubit errors
connecting the two ancillas, and the time component counts measurement
errors.  Chains may also terminate on the lattice boundary, which is modelled
as a virtual node each ancilla has a precomputed distance (and correction
path) to.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.codes.rotated_surface import RotatedSurfaceCode
from repro.types import Coord, StabilizerType

#: Sentinel node index representing the lattice boundary in the spatial graph.
BOUNDARY = -1


@dataclass(frozen=True, order=True)
class SpaceTimeEvent:
    """A detection event located at (round, ancilla index)."""

    round: int
    ancilla_index: int


class MatchingGraph:
    """Precomputed spatial distances and correction paths for one stabilizer type.

    The graph's nodes are the ancillas of the given type plus a virtual
    boundary node.  Two ancillas are connected when they share a data qubit
    (a single data error flips both); an ancilla is connected to the boundary
    through each of its boundary data qubits (a single data error there flips
    only that ancilla).  All edges carry unit weight and are labelled by the
    data qubit whose correction they correspond to.
    """

    def __init__(self, code: RotatedSurfaceCode, stype: StabilizerType) -> None:
        self._code = code
        self._stype = stype
        ancillas = code.ancillas(stype)
        self._num_nodes = len(ancillas)
        index_of = code.ancilla_index(stype)

        # adjacency[i] -> list of (neighbor index or BOUNDARY, data qubit label)
        adjacency: list[list[tuple[int, Coord]]] = [[] for _ in ancillas]
        for ancilla in ancillas:
            i = ancilla.index
            for neighbor_coord, shared in zip(
                ancilla.clique_neighbors, ancilla.shared_qubits
            ):
                adjacency[i].append((index_of[neighbor_coord], shared))
            for boundary_qubit in ancilla.boundary_qubits:
                adjacency[i].append((BOUNDARY, boundary_qubit))
        self._adjacency = adjacency

        self._spatial_distance: list[list[int]] = []
        self._spatial_path: list[list[frozenset[Coord]]] = []
        self._boundary_distance: list[int] = []
        self._boundary_path: list[frozenset[Coord]] = []
        self._precompute()

    # ------------------------------------------------------------------
    def _precompute(self) -> None:
        for source in range(self._num_nodes):
            distances, paths = self._bfs(source, allow_boundary=False)
            self._spatial_distance.append(distances)
            self._spatial_path.append(paths)
            boundary_distance, boundary_path = self._bfs_to_boundary(source)
            self._boundary_distance.append(boundary_distance)
            self._boundary_path.append(boundary_path)
        # Dense copies for batched consumers: pairwise event distances become
        # a single fancy-indexing gather instead of O(n^2) method calls.
        self._spatial_distance_matrix = np.asarray(
            self._spatial_distance, dtype=np.int64
        )
        self._boundary_distance_array = np.asarray(
            self._boundary_distance, dtype=np.int64
        )
        self._spatial_distance_matrix.flags.writeable = False
        self._boundary_distance_array.flags.writeable = False

    def _bfs(
        self, source: int, allow_boundary: bool
    ) -> tuple[list[int], list[frozenset[Coord]]]:
        """Breadth-first search over ancilla nodes, tracking correction paths."""
        distances = [-1] * self._num_nodes
        paths: list[frozenset[Coord]] = [frozenset()] * self._num_nodes
        distances[source] = 0
        queue: deque[int] = deque([source])
        while queue:
            node = queue.popleft()
            for neighbor, qubit in self._adjacency[node]:
                if neighbor == BOUNDARY:
                    if not allow_boundary:
                        continue
                    continue  # boundary handled separately
                if distances[neighbor] == -1:
                    distances[neighbor] = distances[node] + 1
                    paths[neighbor] = paths[node] | {qubit}
                    queue.append(neighbor)
        return distances, paths

    def _bfs_to_boundary(self, source: int) -> tuple[int, frozenset[Coord]]:
        """Shortest path from an ancilla to the virtual boundary node."""
        distances = [-1] * self._num_nodes
        paths: list[frozenset[Coord]] = [frozenset()] * self._num_nodes
        distances[source] = 0
        queue: deque[int] = deque([source])
        best_distance = -1
        best_path: frozenset[Coord] = frozenset()
        while queue:
            node = queue.popleft()
            if best_distance != -1 and distances[node] >= best_distance:
                continue
            for neighbor, qubit in self._adjacency[node]:
                if neighbor == BOUNDARY:
                    candidate = distances[node] + 1
                    if best_distance == -1 or candidate < best_distance:
                        best_distance = candidate
                        best_path = paths[node] | {qubit}
                    continue
                if distances[neighbor] == -1:
                    distances[neighbor] = distances[node] + 1
                    paths[neighbor] = paths[node] | {qubit}
                    queue.append(neighbor)
        return best_distance, best_path

    # ------------------------------------------------------------------
    @property
    def code(self) -> RotatedSurfaceCode:
        return self._code

    @property
    def stabilizer_type(self) -> StabilizerType:
        return self._stype

    @property
    def num_ancillas(self) -> int:
        return self._num_nodes

    @property
    def spatial_distance_matrix(self) -> np.ndarray:
        """Pairwise ancilla-to-ancilla chain lengths, shape ``(n, n)`` (read-only)."""
        return self._spatial_distance_matrix

    @property
    def boundary_distance_array(self) -> np.ndarray:
        """Per-ancilla chain length to the boundary, shape ``(n,)`` (read-only)."""
        return self._boundary_distance_array

    @property
    def spatial_path_bitmaps(self) -> np.ndarray:
        """Correction-path bitmaps per ancilla pair, shape ``(n, n, data)``.

        ``spatial_path_bitmaps[a, b]`` is :meth:`spatial_path`'s qubit set as
        a uint8 bitmap in ``code.data_index`` column order, so batched
        decoders can XOR whole chains without per-qubit set manipulation.
        Built lazily on first access (read-only).
        """
        if not hasattr(self, "_spatial_path_bitmaps"):
            data_index = self._code.data_index
            num_data = self._code.num_data_qubits
            bitmaps = np.zeros(
                (self._num_nodes, self._num_nodes, num_data), dtype=np.uint8
            )
            for a in range(self._num_nodes):
                for b in range(self._num_nodes):
                    for qubit in self._spatial_path[a][b]:
                        bitmaps[a, b, data_index[qubit]] = 1
            bitmaps.flags.writeable = False
            self._spatial_path_bitmaps = bitmaps
        return self._spatial_path_bitmaps

    @property
    def boundary_path_bitmaps(self) -> np.ndarray:
        """Boundary correction-path bitmaps per ancilla, shape ``(n, data)``.

        Row ``a`` is :meth:`boundary_path`'s qubit set as a uint8 bitmap in
        ``code.data_index`` column order.  Built lazily on first access
        (read-only).
        """
        if not hasattr(self, "_boundary_path_bitmaps"):
            data_index = self._code.data_index
            bitmaps = np.zeros(
                (self._num_nodes, self._code.num_data_qubits), dtype=np.uint8
            )
            for a in range(self._num_nodes):
                for qubit in self._boundary_path[a]:
                    bitmaps[a, data_index[qubit]] = 1
            bitmaps.flags.writeable = False
            self._boundary_path_bitmaps = bitmaps
        return self._boundary_path_bitmaps

    def spatial_distance(self, ancilla_a: int, ancilla_b: int) -> int:
        """Shortest data-error chain length connecting two ancillas."""
        return self._spatial_distance[ancilla_a][ancilla_b]

    def spatial_path(self, ancilla_a: int, ancilla_b: int) -> frozenset[Coord]:
        """Data qubits along one shortest chain between two ancillas."""
        return self._spatial_path[ancilla_a][ancilla_b]

    def boundary_distance(self, ancilla: int) -> int:
        """Shortest data-error chain length from an ancilla to the boundary."""
        return self._boundary_distance[ancilla]

    def boundary_path(self, ancilla: int) -> frozenset[Coord]:
        """Data qubits along one shortest chain from an ancilla to the boundary."""
        return self._boundary_path[ancilla]

    def event_distance(self, event_a: SpaceTimeEvent, event_b: SpaceTimeEvent) -> int:
        """Space-time distance between two detection events."""
        return self.spatial_distance(event_a.ancilla_index, event_b.ancilla_index) + abs(
            event_a.round - event_b.round
        )

    def event_boundary_distance(self, event: SpaceTimeEvent) -> int:
        """Space-time distance from an event to the boundary (purely spatial)."""
        return self.boundary_distance(event.ancilla_index)

    def correction_between(
        self, event_a: SpaceTimeEvent, event_b: SpaceTimeEvent
    ) -> frozenset[Coord]:
        """Data-qubit correction for matching two events to each other.

        The temporal component of the match corresponds to measurement errors
        and therefore contributes no data-qubit correction.
        """
        return self.spatial_path(event_a.ancilla_index, event_b.ancilla_index)

    def correction_to_boundary(self, event: SpaceTimeEvent) -> frozenset[Coord]:
        """Data-qubit correction for matching an event to the boundary."""
        return self.boundary_path(event.ancilla_index)


@lru_cache(maxsize=64)
def get_matching_graph(distance: int, stype: StabilizerType) -> MatchingGraph:
    """Cached matching graph for a given code distance and stabilizer type."""
    from repro.codes.rotated_surface import get_code

    return MatchingGraph(get_code(distance), stype)


__all__ = ["BOUNDARY", "SpaceTimeEvent", "MatchingGraph", "get_matching_graph"]
