"""In-tree O(n^3) blossom matcher for large detection-event sets.

:mod:`networkx`'s ``max_weight_matching`` solved the off-chip matching problem
on an *auxiliary* graph: one node per detection event plus one boundary copy
per event, a zero-weight clique among the boundary copies so unused copies can
pair off, and ``maxcardinality=True`` to force a perfect matching.  That
doubles the node count (an 8x swing on an O(n^3) algorithm), materialises
O(n^2) boundary-clique edges as Python tuples, and pays networkx's
dict-of-dicts graph construction on every trial.

This module solves the identical assignment problem directly on the ``n``
event nodes via a standard *profit transformation*: choosing between "pair
events ``i`` and ``j``" and "send both to the boundary" is worth

    ``profit(i, j) = boundary[i] + boundary[j] - distance[i, j]``

so a minimum-total-distance pairing-or-boundary assignment is exactly a
**maximum-weight (non-perfect) matching** over the positive-profit edges:
events the matching leaves unmatched go to the boundary, and

    ``total_distance = sum(boundary) - matching_weight``.

Boundary copies are therefore *implicit* — no clique, no cache, no doubled
node count.  Edges with non-positive profit are dropped up front (pairing can
never beat the boundary through them), which also pins the tie-break: an
equal-cost pair-vs-boundary choice resolves to the boundary, matching the
subset-DP's canonical ordering.

The matching core is the classic Galil / van Rantwijk O(n^3) blossom
algorithm specialised to this workload: maximum weight (no max-cardinality
phase), strictly positive integer weights, plain-list scaffolding with numpy
only at the edges (profit-matrix construction and positive-edge extraction).
Iteration order over vertices and edges is fixed by the row-major
``np.nonzero`` extraction, so results are deterministic for a given input —
a requirement of the repo-wide seeded-bit-identity contract.

References: Galil, "Efficient algorithms for finding maximum matching in
graphs" (ACM Computing Surveys, 1986); van Rantwijk's ``mwmatching``, the
same formulation networkx derives from.
"""

from __future__ import annotations

import numpy as np

__all__ = ["match_events", "max_weight_matching"]


def match_events(
    distance,
    boundary_distance,
) -> tuple[list[tuple[int, int]], list[int]]:
    """Exact minimum-total-distance event/boundary assignment.

    Drop-in contract-compatible with
    :func:`repro.decoders.mwpm.match_events_small`: ``distance`` is the
    ``(n, n)`` pairwise space-time distance table, ``boundary_distance`` the
    per-event boundary distances, and the result is ``(pairs, boundary)`` as
    event indices into the caller's arrays.  Unlike the subset-DP this scales
    to hundreds of events (O(n^3) instead of O(2^n n)).

    Equal-weight solutions may differ from both the subset-DP and the
    networkx oracle — all three agree on the *total* distance (asserted by
    the differential test suite), which is the quantity that fixes decoding
    accuracy.
    """
    boundary = np.asarray(boundary_distance, dtype=np.int64)
    num = int(boundary.size)
    if num == 0:
        return [], []
    if num == 1:
        return [], [0]
    dist = np.asarray(distance, dtype=np.int64).reshape(num, num)
    # Pairing i-j beats sending both to the boundary only when the profit is
    # strictly positive; ties resolve to the boundary (the subset-DP's
    # canonical tie-break), so non-positive edges are dropped entirely.
    profit = boundary[:, None] + boundary[None, :] - dist
    heads, tails = np.nonzero(np.triu(profit > 0, k=1))
    if heads.size == 0:
        return [], list(range(num))
    mate = max_weight_matching(
        num,
        heads.tolist(),
        tails.tolist(),
        profit[heads, tails].tolist(),
    )
    pairs = [(i, mate[i]) for i in range(num) if mate[i] > i]
    boundary_matches = [i for i in range(num) if mate[i] < 0]
    return pairs, boundary_matches


def max_weight_matching(
    num_vertices: int,
    edge_heads: list[int],
    edge_tails: list[int],
    edge_weights: list[int],
) -> list[int]:
    """Maximum-weight matching on a general graph (O(V^3) blossom algorithm).

    Takes the graph as three parallel edge lists (vertex indices in
    ``range(num_vertices)``, strictly positive integer weights) and returns
    ``mate``: ``mate[v]`` is the vertex matched to ``v``, or ``-1`` if ``v``
    is left unmatched.  Iteration order — and therefore the choice among
    equal-weight optima — is a deterministic function of the edge list order.

    Primal-dual scheme: vertex duals start at the maximum edge weight, and
    each *stage* grows a forest of alternating trees from the free vertices
    (S/T labels), shrinking odd cycles into blossoms, until an augmenting
    path of tight edges appears; between scans the duals move by the largest
    step that keeps the solution feasible (delta types 1-4).  With integer
    weights every dual and slack stays integral, so all arithmetic below is
    exact.
    """
    nedge = len(edge_weights)
    if num_vertices == 0 or nedge == 0:
        return [-1] * num_vertices
    edges = list(zip(edge_heads, edge_tails, edge_weights))
    maxweight = max(edge_weights)

    # Edge endpoint p (0 <= p < 2*nedge) denotes vertex edges[p // 2][p % 2];
    # p ^ 1 is the opposite end of the same edge.
    endpoint = [edges[p // 2][p % 2] for p in range(2 * nedge)]
    # neighbend[v] lists the *remote* endpoints of edges incident to v.
    neighbend: list[list[int]] = [[] for _ in range(num_vertices)]
    for k, (i, j, _) in enumerate(edges):
        neighbend[i].append(2 * k + 1)
        neighbend[j].append(2 * k)

    # mate[v] is the remote endpoint of v's matched edge (-1 while single);
    # converted to a plain vertex index on return.
    mate = [-1] * num_vertices

    # Labels live on top-level blossoms: 0 free, 1 S (outer), 2 T (inner);
    # labelend[b] is the endpoint through which b acquired its label.
    label = [0] * (2 * num_vertices)
    labelend = [-1] * (2 * num_vertices)

    # Blossom bookkeeping: ids 0..n-1 are the vertices themselves (trivial
    # blossoms), ids n..2n-1 are available for nested non-trivial blossoms.
    inblossom = list(range(num_vertices))
    blossomparent = [-1] * (2 * num_vertices)
    blossomchilds: list[list[int] | None] = [None] * (2 * num_vertices)
    blossombase = list(range(num_vertices)) + [-1] * num_vertices
    blossomendps: list[list[int] | None] = [None] * (2 * num_vertices)
    bestedge = [-1] * (2 * num_vertices)
    blossombestedges: list[list[int] | None] = [None] * (2 * num_vertices)
    unusedblossoms = list(range(num_vertices, 2 * num_vertices))

    # Duals: vertices start at maxweight (so every edge has non-negative
    # slack), blossoms at zero.  All values stay integral for integer input.
    dualvar = [maxweight] * num_vertices + [0] * num_vertices

    allowedge = [False] * nedge
    queue: list[int] = []

    def slack(k: int) -> int:
        (i, j, wt) = edges[k]
        return dualvar[i] + dualvar[j] - 2 * wt

    def blossom_leaves(b: int):
        if b < num_vertices:
            yield b
        else:
            for child in blossomchilds[b]:
                if child < num_vertices:
                    yield child
                else:
                    yield from blossom_leaves(child)

    def assign_label(w: int, t: int, p: int) -> None:
        b = inblossom[w]
        label[w] = label[b] = t
        labelend[w] = labelend[b] = p
        bestedge[w] = bestedge[b] = -1
        if t == 1:
            # b became an S-blossom: scan all its vertices.
            queue.extend(blossom_leaves(b))
        else:
            # b became a T-blossom: its matched base extends the tree as S.
            base = blossombase[b]
            assign_label(endpoint[mate[base]], 1, mate[base] ^ 1)

    def scan_blossom(v: int, w: int) -> int:
        """Trace back from v and w; return their lowest common tree ancestor's
        base vertex (a new blossom closes there) or -1 (augmenting path)."""
        path = []
        base = -1
        while v != -1 or w != -1:
            b = inblossom[v]
            if label[b] & 4:  # breadcrumb from the other path: common ancestor
                base = blossombase[b]
                break
            path.append(b)
            label[b] = 5
            if labelend[b] == -1:
                v = -1  # reached a single (root) vertex; this path ends
            else:
                v = endpoint[labelend[b]]
                b = inblossom[v]  # b is a T-blossom; step through it
                v = endpoint[labelend[b]]
            if w != -1:
                v, w = w, v  # alternate between the two paths
        for b in path:
            label[b] = 1  # remove breadcrumbs
        return base

    def add_blossom(base: int, k: int) -> None:
        """Shrink the odd cycle through edge k and base into a new S-blossom."""
        (v, w, _) = edges[k]
        bb = inblossom[base]
        bv = inblossom[v]
        bw = inblossom[w]
        b = unusedblossoms.pop()
        blossombase[b] = base
        blossomparent[b] = -1
        blossomparent[bb] = b
        blossomchilds[b] = path = []
        blossomendps[b] = endps = []
        # Trace back from v to base.
        while bv != bb:
            blossomparent[bv] = b
            path.append(bv)
            endps.append(labelend[bv])
            v = endpoint[labelend[bv]]
            bv = inblossom[v]
        path.append(bb)
        path.reverse()
        endps.reverse()
        endps.append(2 * k)
        # Trace back from w to base.
        while bw != bb:
            blossomparent[bw] = b
            path.append(bw)
            endps.append(labelend[bw] ^ 1)
            w = endpoint[labelend[bw]]
            bw = inblossom[w]
        label[b] = 1
        labelend[b] = labelend[bb]
        dualvar[b] = 0
        for leaf in blossom_leaves(b):
            if label[inblossom[leaf]] == 2:
                # Former T-vertex turned S by absorption; scan it too.
                queue.append(leaf)
            inblossom[leaf] = b
        # Merge the sub-blossoms' least-slack edge lists (delta3 bookkeeping).
        bestedgeto = [-1] * (2 * num_vertices)
        for bv in path:
            if blossombestedges[bv] is None:
                nblists = [
                    [p // 2 for p in neighbend[leaf]]
                    for leaf in blossom_leaves(bv)
                ]
            else:
                nblists = [blossombestedges[bv]]
            for nblist in nblists:
                for edge in nblist:
                    (i, j, _) = edges[edge]
                    if inblossom[j] == b:
                        i, j = j, i
                    bj = inblossom[j]
                    if (
                        bj != b
                        and label[bj] == 1
                        and (
                            bestedgeto[bj] == -1
                            or slack(edge) < slack(bestedgeto[bj])
                        )
                    ):
                        bestedgeto[bj] = edge
            blossombestedges[bv] = None
            bestedge[bv] = -1
        blossombestedges[b] = [edge for edge in bestedgeto if edge != -1]
        bestedge[b] = -1
        for edge in blossombestedges[b]:
            if bestedge[b] == -1 or slack(edge) < slack(bestedge[b]):
                bestedge[b] = edge

    def expand_blossom(b: int, endstage: bool) -> None:
        """Expand blossom b, promoting its children to top level."""
        for s in blossomchilds[b]:
            blossomparent[s] = -1
            if s < num_vertices:
                inblossom[s] = s
            elif endstage and dualvar[s] == 0:
                expand_blossom(s, endstage)
            else:
                for leaf in blossom_leaves(s):
                    inblossom[leaf] = s
        # Expanding a T-blossom mid-stage: relabel the children along the
        # alternating path from the entry edge to the base, in whichever
        # direction keeps matched/unmatched edges alternating correctly.
        if (not endstage) and label[b] == 2:
            entrychild = inblossom[endpoint[labelend[b] ^ 1]]
            j = blossomchilds[b].index(entrychild)
            if j & 1:
                j -= len(blossomchilds[b])
                jstep = 1
                endptrick = 0
            else:
                jstep = -1
                endptrick = 1
            p = labelend[b]
            while j != 0:
                # T-sub-blossom on the path: relabel from scratch.
                label[endpoint[p ^ 1]] = 0
                label[endpoint[blossomendps[b][j - endptrick] ^ endptrick ^ 1]] = 0
                assign_label(endpoint[p ^ 1], 2, p)
                allowedge[blossomendps[b][j - endptrick] // 2] = True
                j += jstep
                p = blossomendps[b][j - endptrick] ^ endptrick
                allowedge[p // 2] = True
                j += jstep
            # The base child keeps label T without stepping through to its
            # mate (that would re-grow the tree through the matched edge).
            bv = blossomchilds[b][j]
            label[endpoint[p ^ 1]] = label[bv] = 2
            labelend[endpoint[p ^ 1]] = labelend[bv] = p
            bestedge[bv] = -1
            # Children off the path become free, unless an outside S-vertex
            # already reached one of their vertices (tracked via label[v]).
            j += jstep
            while blossomchilds[b][j] != entrychild:
                bv = blossomchilds[b][j]
                if label[bv] == 1:
                    j += jstep
                    continue
                reached = -1
                for leaf in blossom_leaves(bv):
                    if label[leaf] != 0:
                        reached = leaf
                        break
                if reached != -1:
                    label[reached] = 0
                    label[endpoint[mate[blossombase[bv]]]] = 0
                    assign_label(reached, 2, labelend[reached])
                j += jstep
        # Recycle the blossom id.
        label[b] = labelend[b] = -1
        blossomchilds[b] = blossomendps[b] = None
        blossombase[b] = -1
        blossombestedges[b] = None
        bestedge[b] = -1
        unusedblossoms.append(b)

    def augment_blossom(b: int, v: int) -> None:
        """Swap matched/unmatched edges around blossom b so v becomes its base."""
        t = v
        while blossomparent[t] != b:
            t = blossomparent[t]
        if t >= num_vertices:
            augment_blossom(t, v)
        i = j = blossomchilds[b].index(t)
        if i & 1:
            j -= len(blossomchilds[b])
            jstep = 1
            endptrick = 0
        else:
            jstep = -1
            endptrick = 1
        while j != 0:
            j += jstep
            t = blossomchilds[b][j]
            p = blossomendps[b][j - endptrick] ^ endptrick
            if t >= num_vertices:
                augment_blossom(t, endpoint[p])
            j += jstep
            t = blossomchilds[b][j]
            if t >= num_vertices:
                augment_blossom(t, endpoint[p ^ 1])
            mate[endpoint[p]] = p ^ 1
            mate[endpoint[p ^ 1]] = p
        blossomchilds[b] = blossomchilds[b][i:] + blossomchilds[b][:i]
        blossomendps[b] = blossomendps[b][i:] + blossomendps[b][:i]
        blossombase[b] = blossombase[blossomchilds[b][0]]

    def augment_matching(k: int) -> None:
        """Flip matched/unmatched along the augmenting path through edge k."""
        (v, w, _) = edges[k]
        for (s, p) in ((v, 2 * k + 1), (w, 2 * k)):
            while True:
                bs = inblossom[s]
                if bs >= num_vertices:
                    augment_blossom(bs, s)
                mate[s] = p
                if labelend[bs] == -1:
                    break  # reached a single vertex: path ends
                t = endpoint[labelend[bs]]
                bt = inblossom[t]
                s = endpoint[labelend[bt]]
                j = endpoint[labelend[bt] ^ 1]
                if bt >= num_vertices:
                    augment_blossom(bt, j)
                mate[j] = labelend[bt]
                p = labelend[bt] ^ 1

    for _ in range(num_vertices):
        # Each stage either augments the matching by one edge or proves no
        # augmenting path exists at the current duals (then the run is done).
        label[:] = [0] * (2 * num_vertices)
        bestedge[:] = [-1] * (2 * num_vertices)
        for b in range(num_vertices, 2 * num_vertices):
            blossombestedges[b] = None
        allowedge[:] = [False] * nedge
        del queue[:]

        for v in range(num_vertices):
            if mate[v] == -1 and label[inblossom[v]] == 0:
                assign_label(v, 1, -1)

        augmented = False
        while True:
            while queue and not augmented:
                v = queue.pop()
                for p in neighbend[v]:
                    k = p // 2
                    w = endpoint[p]
                    if inblossom[v] == inblossom[w]:
                        continue  # intra-blossom edge
                    if not allowedge[k]:
                        kslack = slack(k)
                        if kslack <= 0:
                            allowedge[k] = True
                    if allowedge[k]:
                        if label[inblossom[w]] == 0:
                            # w free: grow the tree (w becomes T).
                            assign_label(w, 2, p ^ 1)
                        elif label[inblossom[w]] == 1:
                            # S-S edge: blossom or augmenting path.
                            base = scan_blossom(v, w)
                            if base >= 0:
                                add_blossom(base, k)
                            else:
                                augment_matching(k)
                                augmented = True
                                break
                        elif label[w] == 0:
                            # w inside a T-blossom but not individually
                            # reached yet; record for expansion relabeling.
                            label[w] = 2
                            labelend[w] = p ^ 1
                    elif label[inblossom[w]] == 1:
                        b = inblossom[v]
                        if bestedge[b] == -1 or kslack < slack(bestedge[b]):
                            bestedge[b] = k
                    elif label[w] == 0:
                        if bestedge[w] == -1 or kslack < slack(bestedge[w]):
                            bestedge[w] = k
            if augmented:
                break

            # No augmenting path at the current duals: take the largest
            # feasible dual step.  (Duals and slacks carry a factor 2.)
            # delta1: drive some S-vertex dual to zero (it then stays single).
            deltatype = 1
            delta = min(dualvar[:num_vertices])
            deltaedge = -1
            deltablossom = -1
            # delta2: make an S-to-free edge tight.
            for v in range(num_vertices):
                if label[inblossom[v]] == 0 and bestedge[v] != -1:
                    d = slack(bestedge[v])
                    if d < delta:
                        delta = d
                        deltatype = 2
                        deltaedge = bestedge[v]
            # delta3: make an S-to-S edge tight (half its slack).
            for b in range(2 * num_vertices):
                if blossomparent[b] == -1 and label[b] == 1 and bestedge[b] != -1:
                    d = slack(bestedge[b]) // 2
                    if d < delta:
                        delta = d
                        deltatype = 3
                        deltaedge = bestedge[b]
            # delta4: drive a T-blossom's dual to zero (then expand it).
            for b in range(num_vertices, 2 * num_vertices):
                if (
                    blossombase[b] >= 0
                    and blossomparent[b] == -1
                    and label[b] == 2
                    and dualvar[b] < delta
                ):
                    delta = dualvar[b]
                    deltatype = 4
                    deltablossom = b

            for v in range(num_vertices):
                lbl = label[inblossom[v]]
                if lbl == 1:
                    dualvar[v] -= delta
                elif lbl == 2:
                    dualvar[v] += delta
            for b in range(num_vertices, 2 * num_vertices):
                if blossombase[b] >= 0 and blossomparent[b] == -1:
                    if label[b] == 1:
                        dualvar[b] += delta
                    elif label[b] == 2:
                        dualvar[b] -= delta

            if deltatype == 1:
                break  # optimum reached
            if deltatype == 2:
                allowedge[deltaedge] = True
                (i, j, _) = edges[deltaedge]
                if label[inblossom[i]] == 0:
                    i = j
                queue.append(i)
            elif deltatype == 3:
                allowedge[deltaedge] = True
                (i, _, _) = edges[deltaedge]
                queue.append(i)
            else:
                expand_blossom(deltablossom, False)

        if not augmented:
            break
        # End of stage: expand S-blossoms whose dual dropped to zero.
        for b in range(num_vertices, 2 * num_vertices):
            if (
                blossomparent[b] == -1
                and blossombase[b] >= 0
                and label[b] == 1
                and dualvar[b] == 0
            ):
                expand_blossom(b, True)

    return [endpoint[p] if p >= 0 else -1 for p in mate]
