"""Clustering (union-find style) decoder.

A lighter-weight alternative to MWPM in the spirit of the union-find decoder
of Delfosse and Nickerson: detection events grow clusters in the space-time
metric; clusters merge when their growth regions touch; a cluster becomes
*neutral* once it contains an even number of events or reaches the lattice
boundary.  Neutral clusters are then resolved locally — events are paired
greedily inside their own cluster (or matched to the boundary) and the
corresponding shortest-chain corrections are applied.

The decoder always produces a correction whose residual syndrome is zero;
its accuracy sits between the Clique decoder and MWPM, which makes it a
useful point of comparison in the "deeper hierarchy of decoders" direction
the paper sketches in Section 8.1.
"""

from __future__ import annotations

import numpy as np

from repro.codes.rotated_surface import RotatedSurfaceCode
from repro.decoders.base import Decoder, DecodeResult
from repro.decoders.matching_graph import MatchingGraph, SpaceTimeEvent
from repro.types import Coord, StabilizerType


class _DisjointSets:
    """Minimal union-find structure with path compression."""

    def __init__(self, count: int) -> None:
        self._parent = list(range(count))

    def find(self, item: int) -> int:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: int, b: int) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a


class ClusteringDecoder(Decoder):
    """Union-find style clustering decoder over the space-time matching graph."""

    def __init__(
        self,
        code: RotatedSurfaceCode,
        stype: StabilizerType,
        matching_graph: MatchingGraph | None = None,
    ) -> None:
        super().__init__(code, stype)
        self._graph = matching_graph or MatchingGraph(code, stype)

    # ------------------------------------------------------------------
    def decode(self, detections: np.ndarray) -> DecodeResult:
        matrix = self._as_detection_matrix(detections)
        events = [
            SpaceTimeEvent(round=int(r), ancilla_index=int(a))
            for r, a in zip(*np.nonzero(matrix))
        ]
        if not events:
            return DecodeResult(correction=frozenset(), metadata={"num_events": 0})

        clusters, growth_steps = self._grow_clusters(events)
        correction: set[Coord] = set()
        for members in clusters:
            correction ^= self._resolve_cluster([events[i] for i in members])
        return DecodeResult(
            correction=frozenset(correction),
            metadata={
                "num_events": len(events),
                "num_clusters": len(clusters),
                "growth_steps": growth_steps,
            },
        )

    def decode_events_bitmap(self, rounds: np.ndarray, ancillas: np.ndarray) -> np.ndarray:
        """Decode one trial's detection events given as flat index arrays.

        Batched-fallback entry point (see
        :meth:`repro.clique.hierarchical.HierarchicalDecoder.decode_batch`).
        Events must arrive in row-major ``(round, ancilla)`` order — the
        order ``np.nonzero`` produces — so greedy pairing ties break exactly
        as in :meth:`decode`; the returned uint8 bitmap is then bit-identical
        to the per-trial path.
        """
        bitmap = np.zeros(self._code.num_data_qubits, dtype=np.uint8)
        events = [
            SpaceTimeEvent(round=int(r), ancilla_index=int(a))
            for r, a in zip(rounds, ancillas)
        ]
        if not events:
            return bitmap
        clusters, _ = self._grow_clusters(events)
        data_index = self._code.data_index
        for members in clusters:
            for qubit in self._resolve_cluster([events[i] for i in members]):
                bitmap[data_index[qubit]] ^= 1
        return bitmap

    # ------------------------------------------------------------------
    def _grow_clusters(
        self, events: list[SpaceTimeEvent]
    ) -> tuple[list[list[int]], int]:
        """Grow clusters until every cluster is even or touches the boundary.

        Purely functional: all growth state (radii, distances) is local, so
        the decoder instance stays stateless and safe to share across
        threads.  Pair and boundary distances come from the matching graph's
        dense arrays in two vectorised gathers instead of O(n^2) Python
        method calls.
        """
        count = len(events)
        sets = _DisjointSets(count)
        radius = [0] * count  # per-event growth radius; cluster radius is the max
        ancilla = np.fromiter(
            (event.ancilla_index for event in events), dtype=np.int64, count=count
        )
        event_rounds = np.fromiter(
            (event.round for event in events), dtype=np.int64, count=count
        )
        pair_distance = (
            self._graph.spatial_distance_matrix[np.ix_(ancilla, ancilla)]
            + np.abs(event_rounds[:, None] - event_rounds[None, :])
        )
        boundary_distance = self._graph.boundary_distance_array[ancilla]

        def cluster_members() -> dict[int, list[int]]:
            members: dict[int, list[int]] = {}
            for i in range(count):
                members.setdefault(sets.find(i), []).append(i)
            return members

        def cluster_is_neutral(members: list[int]) -> bool:
            if len(members) % 2 == 0:
                return True
            return any(boundary_distance[i] <= radius[i] for i in members)

        growth_steps = 0
        # The space-time graph diameter bounds the number of growth rounds.
        max_steps = 2 * self._code.distance + 2
        while growth_steps < max_steps:
            members = cluster_members()
            odd_roots = [
                root
                for root, items in members.items()
                if not cluster_is_neutral(items)
            ]
            if not odd_roots:
                break
            growth_steps += 1
            for root in odd_roots:
                for i in members[root]:
                    radius[i] += 1
            # Merge any clusters whose growth regions now touch.
            for i in range(count):
                for j in range(i + 1, count):
                    if sets.find(i) == sets.find(j):
                        continue
                    if pair_distance[i, j] <= radius[i] + radius[j]:
                        sets.union(i, j)
        return list(cluster_members().values()), growth_steps

    def _resolve_cluster(self, members: list[SpaceTimeEvent]) -> frozenset[Coord]:
        """Pair up events inside a neutral cluster and emit their correction."""
        correction: set[Coord] = set()
        remaining = list(members)
        if len(remaining) % 2 == 1:
            # Match the event closest to the boundary against the boundary.
            closest = min(remaining, key=self._graph.event_boundary_distance)
            remaining.remove(closest)
            correction ^= self._graph.correction_to_boundary(closest)
        # Greedy nearest-neighbour pairing of the rest.
        while remaining:
            event = remaining.pop()
            partner = min(
                remaining, key=lambda other: self._graph.event_distance(event, other)
            )
            remaining.remove(partner)
            correction ^= self._graph.correction_between(event, partner)
        return frozenset(correction)


__all__ = ["ClusteringDecoder"]
