"""Clustering (union-find style) decoder.

A lighter-weight alternative to MWPM in the spirit of the union-find decoder
of Delfosse and Nickerson: detection events grow clusters in the space-time
metric; clusters merge when their growth regions touch; a cluster becomes
*neutral* once it contains an even number of events or reaches the lattice
boundary.  Neutral clusters are then resolved locally — events are paired
greedily inside their own cluster (or matched to the boundary) and the
corresponding shortest-chain corrections are applied.

The decoder always produces a correction whose residual syndrome is zero;
its accuracy sits between the Clique decoder and MWPM, which makes it a
useful point of comparison in the "deeper hierarchy of decoders" direction
the paper sketches in Section 8.1.
"""

from __future__ import annotations

import numpy as np

from repro.codes.rotated_surface import RotatedSurfaceCode
from repro.decoders import blossom
from repro.decoders.base import Decoder, DecodeResult
from repro.decoders.matching_graph import MatchingGraph, SpaceTimeEvent
from repro.decoders.mwpm import SUBSET_DP_MAX_EVENTS, match_events_small
from repro.exceptions import ConfigurationError
from repro.types import Coord, StabilizerType

#: Default (floor) escalation threshold used when the clustering decoder sits
#: as an *intermediate* cascade tier.  Intermediate-tier clusters up to
#: :data:`~repro.decoders.mwpm.SUBSET_DP_MAX_EVENTS` are resolved with the
#: exact subset-DP matcher (cheap at cluster scale: the DP is exponential in
#: the *cluster* size, not the trial's event count), larger kept clusters by
#: the in-tree blossom matcher; only the members of clusters beyond the
#: threshold — the cases where global blossom-grade matching actually earns
#: its cost — escalate to the next tier.
DEFAULT_ESCALATION_CLUSTER_SIZE = 8

_NO_ESCALATION = np.empty(0, dtype=np.int64)


def default_escalation_cluster_size(distance: int) -> int:
    """Adaptive per-distance escalation threshold for intermediate tiers.

    Tuned offline against measured in-tree blossom cost (the `blossom`
    section of ``BENCH_memory.json``): deeper codes produce larger *benign*
    clusters whose exact local resolution is still far cheaper than shipping
    their events to the final blossom tier, so the threshold grows with
    distance — ``d + 3``, floored at :data:`DEFAULT_ESCALATION_CLUSTER_SIZE`
    and capped at the subset-DP limit (d=3 -> 8, d=7 -> 10, d=13 -> 16).
    Deliberately a *deterministic function of the distance*, never a runtime
    timing measurement, so seeded results stay machine-independent.
    """
    return min(SUBSET_DP_MAX_EVENTS, max(DEFAULT_ESCALATION_CLUSTER_SIZE, distance + 3))


class _DisjointSets:
    """Minimal union-find structure with path compression and size tracking."""

    def __init__(self, count: int) -> None:
        self._parent = list(range(count))
        self._size = [1] * count

    def find(self, item: int) -> int:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: int, b: int) -> int:
        """Merge the two components; return the merged component's size."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a
            self._size[root_a] += self._size[root_b]
        return self._size[root_a]


class ClusteringDecoder(Decoder):
    """Union-find style clustering decoder over the space-time matching graph.

    Args:
        code: the surface code instance.
        stype: which stabilizer type's detection events this decoder handles.
        matching_graph: optionally share a precomputed :class:`MatchingGraph`.
        escalation_cluster_size: when set, enables the *intermediate-tier*
            mode used by :class:`~repro.clique.cascade.DecoderCascade`: every
            grown cluster holding at most this many events is resolved here,
            matched *exactly* — by the subset-DP matcher up to
            :data:`~repro.decoders.mwpm.SUBSET_DP_MAX_EVENTS` events, by the
            in-tree blossom matcher beyond it — while each larger cluster
            escalates only its own members (an index subset of the trial's
            events, not the whole trial) to the next tier via
            :meth:`decode_events_tiered`.  ``None`` (the default) never
            escalates, i.e. final-tier behaviour with the decoder's classic
            greedy intra-cluster pairing; :meth:`decode` and
            :meth:`decode_events_bitmap` always resolve everything regardless
            of this setting.
    """

    def __init__(
        self,
        code: RotatedSurfaceCode,
        stype: StabilizerType,
        matching_graph: MatchingGraph | None = None,
        escalation_cluster_size: int | None = None,
    ) -> None:
        super().__init__(code, stype)
        self._graph = matching_graph or MatchingGraph(code, stype)
        if escalation_cluster_size is not None and escalation_cluster_size < 1:
            raise ConfigurationError(
                f"escalation_cluster_size must be >= 1 (or None), "
                f"got {escalation_cluster_size}"
            )
        self._escalation_cluster_size = escalation_cluster_size
        # Plain-list copies of the dense distance tables: the hot path sees
        # tiny event sets (a handful per off-chip trial), where Python list
        # indexing beats numpy fancy-gather fixed costs by a wide margin.
        self._spatial_distance_rows = self._graph.spatial_distance_matrix.tolist()
        self._boundary_distance_list = self._graph.boundary_distance_array.tolist()

    @property
    def escalation_cluster_size(self) -> int | None:
        return self._escalation_cluster_size

    # ------------------------------------------------------------------
    def decode(self, detections: np.ndarray) -> DecodeResult:
        matrix = self._as_detection_matrix(detections)
        events = [
            SpaceTimeEvent(round=int(r), ancilla_index=int(a))
            for r, a in zip(*np.nonzero(matrix))
        ]
        if not events:
            return DecodeResult(correction=frozenset(), metadata={"num_events": 0})

        clusters, growth_steps = self._grow_clusters(events)
        correction: set[Coord] = set()
        for members in clusters:
            correction ^= self._resolve_cluster([events[i] for i in members])
        return DecodeResult(
            correction=frozenset(correction),
            metadata={
                "num_events": len(events),
                "num_clusters": len(clusters),
                "growth_steps": growth_steps,
            },
        )

    def decode_events_bitmap(self, rounds: np.ndarray, ancillas: np.ndarray) -> np.ndarray:
        """Decode one trial's detection events given as flat index arrays.

        Batched-fallback entry point (see
        :meth:`repro.clique.hierarchical.HierarchicalDecoder.decode_batch`).
        Events must arrive in row-major ``(round, ancilla)`` order — the
        order ``np.nonzero`` produces — so greedy pairing ties break exactly
        as in :meth:`decode`; the returned uint8 bitmap is then bit-identical
        to the per-trial path.
        """
        bitmap, _ = self._decode_events_indices(rounds, ancillas, may_escalate=False)
        return bitmap

    def decode_events_tiered(
        self, rounds: np.ndarray, ancillas: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Intermediate-tier decode-or-escalate over flat event index arrays.

        Returns ``(bitmap, escalated)``: ``bitmap`` is the correction for
        every grown cluster holding at most ``escalation_cluster_size``
        events — each resolved *exactly* in place — and ``escalated`` is the
        sorted int64 array of event positions (indices into the caller's
        ``rounds``/``ancillas``) belonging to larger clusters, which the
        caller ships to the next tier.  An empty ``escalated`` means the
        trial is fully resolved here.

        Escalation is *per cluster*, not per trial: a trial with many small
        clusters and one sprawling one keeps the small clusters' corrections
        in this tier and escalates only the sprawling cluster's own events.
        The decision keys on the actual space-time structure of the trial
        (grown cluster sizes), not the raw event count.
        """
        return self._decode_events_indices(rounds, ancillas, may_escalate=True)

    def _decode_events_indices(
        self, rounds: np.ndarray, ancillas: np.ndarray, may_escalate: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        """Shared index-based decode path (no event objects on the hot path).

        Cluster growth and greedy resolution run on plain int lists plus the
        matching graph's dense distance/path-bitmap arrays; scan orders match
        :meth:`decode`'s object-level path statement for statement, so the
        resulting bitmap is bit-identical to per-trial decoding.
        """
        ancilla_list = np.asarray(ancillas, dtype=np.int64).tolist()
        count = len(ancilla_list)
        if count == 0:
            return np.zeros(self._code.num_data_qubits, dtype=np.uint8), _NO_ESCALATION
        boundary_paths = self._graph.boundary_path_bitmaps
        if count == 1:
            # A lone event always grows to the boundary and resolves there;
            # size-1 clusters never exceed an escalation threshold (>= 1).
            return boundary_paths[ancilla_list[0]].copy(), _NO_ESCALATION
        round_list = np.asarray(rounds, dtype=np.int64).tolist()
        spatial_rows = self._spatial_distance_rows
        pair_distance = [
            [
                row[other] + (round_a - round_b if round_a >= round_b else round_b - round_a)
                for other, round_b in zip(ancilla_list, round_list)
            ]
            for row, round_a in zip(
                (spatial_rows[a] for a in ancilla_list), round_list
            )
        ]
        boundary_distance = [self._boundary_distance_list[a] for a in ancilla_list]
        threshold = self._escalation_cluster_size
        clusters, _ = self._grow_clusters_core(pair_distance, boundary_distance)

        bitmap = np.zeros(self._code.num_data_qubits, dtype=np.uint8)
        spatial_paths = self._graph.spatial_path_bitmaps
        exact = may_escalate and threshold is not None
        escalated: list[int] = []
        for members in clusters:
            if exact:
                if len(members) > threshold:
                    # Oversized cluster: escalate its members only — the
                    # rest of the trial resolves right here.
                    escalated.extend(members)
                    continue
                # Intermediate-tier mode: clusters small enough to stay here
                # are resolved *exactly* — subset-DP while the O(2^n) tables
                # stay tiny, in-tree blossom for larger kept clusters (the
                # DP's hard cap is SUBSET_DP_MAX_EVENTS).
                sub_distance = [
                    [pair_distance[i][j] for j in members] for i in members
                ]
                sub_boundary = [boundary_distance[i] for i in members]
                if len(members) <= SUBSET_DP_MAX_EVENTS:
                    pairs, boundary_matches = match_events_small(
                        sub_distance, sub_boundary
                    )
                else:
                    pairs, boundary_matches = blossom.match_events(
                        sub_distance, sub_boundary
                    )
                for i, j in pairs:
                    bitmap ^= spatial_paths[
                        ancilla_list[members[i]], ancilla_list[members[j]]
                    ]
                for i in boundary_matches:
                    bitmap ^= boundary_paths[ancilla_list[members[i]]]
                continue
            # Final-tier mode mirrors _resolve_cluster: boundary-match the
            # first closest-to-boundary event of an odd cluster, then greedily
            # pair the rest (pop the last, scan remaining in order for the
            # first nearest partner) — XORing precomputed chain bitmaps
            # instead of building coordinate sets.
            remaining = list(members)
            if len(remaining) % 2 == 1:
                closest = min(remaining, key=lambda i: boundary_distance[i])
                remaining.remove(closest)
                bitmap ^= boundary_paths[ancilla_list[closest]]
            while remaining:
                event = remaining.pop()
                row = pair_distance[event]
                partner = min(remaining, key=lambda other: row[other])
                remaining.remove(partner)
                bitmap ^= spatial_paths[ancilla_list[event], ancilla_list[partner]]
        if not escalated:
            return bitmap, _NO_ESCALATION
        # Escalated subsets must preserve the row-major event order the
        # caller's np.nonzero produced — downstream tiers' equal-weight
        # tie-breaks depend on it.
        escalated.sort()
        return bitmap, np.asarray(escalated, dtype=np.int64)

    # ------------------------------------------------------------------
    def _grow_clusters(
        self, events: list[SpaceTimeEvent]
    ) -> tuple[list[list[int]], int]:
        """Grow clusters until every cluster is even or touches the boundary.

        Object-level wrapper around :meth:`_grow_clusters_core`: pair and
        boundary distances come from the matching graph's dense arrays in two
        vectorised gathers instead of O(n^2) Python method calls.
        """
        count = len(events)
        ancilla = np.fromiter(
            (event.ancilla_index for event in events), dtype=np.int64, count=count
        )
        event_rounds = np.fromiter(
            (event.round for event in events), dtype=np.int64, count=count
        )
        pair_distance = (
            self._graph.spatial_distance_matrix[np.ix_(ancilla, ancilla)]
            + np.abs(event_rounds[:, None] - event_rounds[None, :])
        ).tolist()
        boundary_distance = self._graph.boundary_distance_array[ancilla].tolist()
        return self._grow_clusters_core(pair_distance, boundary_distance)

    def _grow_clusters_core(
        self,
        pair_distance: list[list[int]],
        boundary_distance: list[int],
    ) -> tuple[list[list[int]], int]:
        """Grow clusters over precomputed distance tables (plain int lists).

        Purely functional: all growth state (radii, distances) is local, so
        the decoder instance stays stateless and safe to share across
        threads.  Growth always runs to neutrality: per-cluster escalation
        needs the *final* cluster decomposition (to resolve the small
        clusters and name the oversized ones' members), so there is no
        early-abort shortcut anymore.
        """
        count = len(boundary_distance)
        sets = _DisjointSets(count)
        radius = [0] * count  # per-event growth radius; cluster radius is the max

        def cluster_members() -> dict[int, list[int]]:
            members: dict[int, list[int]] = {}
            for i in range(count):
                members.setdefault(sets.find(i), []).append(i)
            return members

        def cluster_is_neutral(members: list[int]) -> bool:
            if len(members) % 2 == 0:
                return True
            return any(boundary_distance[i] <= radius[i] for i in members)

        growth_steps = 0
        # The space-time graph diameter bounds the number of growth rounds.
        max_steps = 2 * self._code.distance + 2
        while growth_steps < max_steps:
            members = cluster_members()
            odd_roots = [
                root
                for root, items in members.items()
                if not cluster_is_neutral(items)
            ]
            if not odd_roots:
                break
            growth_steps += 1
            for root in odd_roots:
                for i in members[root]:
                    radius[i] += 1
            # Merge any clusters whose growth regions now touch.
            for i in range(count):
                row = pair_distance[i]
                radius_i = radius[i]
                for j in range(i + 1, count):
                    if row[j] <= radius_i + radius[j] and sets.find(i) != sets.find(j):
                        sets.union(i, j)
        return list(cluster_members().values()), growth_steps

    def _resolve_cluster(self, members: list[SpaceTimeEvent]) -> frozenset[Coord]:
        """Pair up events inside a neutral cluster and emit their correction."""
        correction: set[Coord] = set()
        remaining = list(members)
        if len(remaining) % 2 == 1:
            # Match the event closest to the boundary against the boundary.
            closest = min(remaining, key=self._graph.event_boundary_distance)
            remaining.remove(closest)
            correction ^= self._graph.correction_to_boundary(closest)
        # Greedy nearest-neighbour pairing of the rest.
        while remaining:
            event = remaining.pop()
            partner = min(
                remaining, key=lambda other: self._graph.event_distance(event, other)
            )
            remaining.remove(partner)
            correction ^= self._graph.correction_between(event, partner)
        return frozenset(correction)


__all__ = [
    "DEFAULT_ESCALATION_CLUSTER_SIZE",
    "ClusteringDecoder",
    "default_escalation_cluster_size",
]
