"""Stochastic error models (Section 6.1 of the paper).

The paper uses the *phenomenological* noise model: every decode cycle, each
data qubit suffers an error with probability ``p`` and each syndrome
measurement is flipped with the same probability ``p``.  X-type and Z-type
errors are decoded independently so a single binary error species is
simulated at a time.
"""

from repro.noise.events import CycleErrors, errors_to_vector, vector_to_errors
from repro.noise.models import (
    CodeCapacityNoise,
    NoiseModel,
    PhenomenologicalNoise,
)
from repro.noise.rng import make_rng, point_seed, spawn_rngs

__all__ = [
    "CycleErrors",
    "errors_to_vector",
    "vector_to_errors",
    "NoiseModel",
    "PhenomenologicalNoise",
    "CodeCapacityNoise",
    "make_rng",
    "point_seed",
    "spawn_rngs",
]
