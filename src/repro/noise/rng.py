"""Seeded random-number-generator utilities.

Every Monte-Carlo entry point in the library takes an explicit ``seed`` (or a
ready-made :class:`numpy.random.Generator`) so that experiments are exactly
repeatable.  Child generators are derived with :class:`numpy.random.SeedSequence`
spawning, which guarantees statistically independent streams.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the given seed.

    Passing an existing generator returns it unchanged, which lets call sites
    accept either a seed or a generator without branching.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one root seed."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


__all__ = ["make_rng", "spawn_rngs"]
