"""Seeded random-number-generator utilities.

Every Monte-Carlo entry point in the library takes an explicit ``seed`` (or a
ready-made :class:`numpy.random.Generator`) so that experiments are exactly
repeatable.  Child generators are derived with :class:`numpy.random.SeedSequence`
spawning, which guarantees statistically independent streams.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the given seed.

    Passing an existing generator returns it unchanged, which lets call sites
    accept either a seed or a generator without branching.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one root seed."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def resolve_entropy(seed: int | None) -> int:
    """Pin ``seed`` down to concrete entropy that can be shipped to workers.

    ``None`` draws fresh OS entropy *once*, so every consumer derived from the
    returned value (e.g. all shards of one experiment) shares the same root.
    """
    if seed is None:
        entropy = np.random.SeedSequence().entropy
        assert entropy is not None  # SeedSequence() always draws entropy
        return int(entropy)
    return int(seed)


def shard_rng(seed: int, shard_index: int) -> np.random.Generator:
    """Generator for one shard of a sharded Monte-Carlo run.

    The stream depends only on ``(seed, shard_index)`` — it is built from
    ``SeedSequence(seed, spawn_key=(shard_index,))``, the exact sequence
    ``SeedSequence(seed).spawn(n)[shard_index]`` would yield for any ``n``
    — so results are reproducible regardless of how many worker processes
    the shards are distributed over, or in which order they run.
    """
    if shard_index < 0:
        raise ValueError(f"shard_index must be non-negative, got {shard_index}")
    return np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(shard_index,))
    )


def point_seed(seed: int | None, *key: int) -> int:
    """Collision-free integer seed for one point of a parameter sweep.

    Arithmetic schemes like ``seed + 1000 * i + j`` collide as soon as one
    sweep axis outgrows the stride; this instead routes the point coordinates
    through ``SeedSequence(seed, spawn_key=key)`` — the same mechanism as
    :func:`shard_rng` — and condenses its state into a 128-bit integer, so
    distinct ``key`` tuples always yield independent streams.  The returned
    value is a plain ``int`` and can therefore seed any downstream consumer,
    including the sharded engines (which re-spawn per-shard children from it).
    """
    if any(k < 0 for k in key):
        raise ValueError(f"spawn-key components must be non-negative, got {key}")
    state = np.random.SeedSequence(seed, spawn_key=tuple(key)).generate_state(
        4, np.uint32
    )
    value = 0
    for word in state:
        value = (value << 32) | int(word)
    return value


__all__ = ["make_rng", "point_seed", "resolve_entropy", "shard_rng", "spawn_rngs"]
