"""Error-event containers and conversions between coordinate and vector form.

Two representations are used in the library:

* *coordinate sets* (``frozenset[Coord]``) — convenient for the Clique
  decoder, whose reasoning is local and geometric;
* *binary numpy vectors* indexed by the code's ``data_index`` /
  ``ancilla_index`` orderings — convenient for syndrome linear algebra and
  for fast Monte-Carlo sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.types import Coord


@dataclass(frozen=True)
class CycleErrors:
    """Errors injected during a single decode cycle for one error species.

    Attributes:
        data_errors: data qubits that suffered a new error this cycle.
        measurement_errors: ancillas whose syndrome measurement was flipped
            this cycle.
    """

    data_errors: frozenset[Coord] = field(default_factory=frozenset)
    measurement_errors: frozenset[Coord] = field(default_factory=frozenset)

    @property
    def is_error_free(self) -> bool:
        """True when the cycle injected no error of either kind."""
        return not self.data_errors and not self.measurement_errors

    @property
    def num_errors(self) -> int:
        return len(self.data_errors) + len(self.measurement_errors)


def errors_to_vector(errors: frozenset[Coord] | set[Coord], index: dict[Coord, int]) -> np.ndarray:
    """Convert a coordinate set into a binary vector following ``index``."""
    vector = np.zeros(len(index), dtype=np.uint8)
    for coord in errors:
        vector[index[coord]] = 1
    return vector


def vector_to_errors(vector: np.ndarray, ordering: tuple[Coord, ...]) -> frozenset[Coord]:
    """Convert a binary vector back into a coordinate set.

    ``ordering`` must list coordinates in the same order the vector was built
    with (e.g. ``code.data_qubits``).
    """
    if len(vector) != len(ordering):
        raise ValueError(
            f"vector length {len(vector)} does not match ordering length {len(ordering)}"
        )
    return frozenset(coord for coord, bit in zip(ordering, vector) if bit)


__all__ = ["CycleErrors", "errors_to_vector", "vector_to_errors"]
