"""Noise models used for benchmarking the decoders.

The paper's evaluation (Section 6.1) uses the *phenomenological* model: each
cycle injects independent errors on every data qubit with probability ``p``
and flips every syndrome measurement with the same probability ``p``.  A
*code-capacity* variant (no measurement errors) is provided for unit tests
and for the lookup-table cross-validation decoder.
"""

from __future__ import annotations

import abc

import numpy as np

from repro import bitplane
from repro.codes.rotated_surface import RotatedSurfaceCode
from repro.exceptions import InvalidProbabilityError
from repro.noise.events import CycleErrors, vector_to_errors
from repro.noise.rng import make_rng
from repro.types import StabilizerType

#: Trials sampled per packing tile in :meth:`NoiseModel.sample_history_packed`.
#: One word of trials at a time keeps the transient float64 uniform tensor at
#: ``64 * rounds * (data + ancilla) * 8`` bytes — cache-sized even at d=17 —
#: while staying word-aligned so each tile fills exactly one packed word.
PACKED_SAMPLE_TILE = bitplane.WORD_BITS


def _validate_probability(name: str, value: float) -> float:
    if not isinstance(value, (int, float)) or not 0.0 <= float(value) <= 1.0:
        raise InvalidProbabilityError(name, value)
    return float(value)


class NoiseModel(abc.ABC):
    """Interface for per-cycle error sampling against a surface code."""

    @property
    @abc.abstractmethod
    def data_error_rate(self) -> float:
        """Per-cycle, per-data-qubit error probability."""

    @property
    @abc.abstractmethod
    def measurement_error_rate(self) -> float:
        """Per-cycle, per-ancilla measurement flip probability."""

    def sample_data_vector(
        self,
        code: RotatedSurfaceCode,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Binary vector of new data errors for one cycle (``code.data_qubits`` order)."""
        return (
            rng.random(code.num_data_qubits) < self.data_error_rate
        ).astype(np.uint8)

    def sample_measurement_vector(
        self,
        code: RotatedSurfaceCode,
        stype: StabilizerType,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Binary vector of measurement flips for the ancillas of one type."""
        return (
            rng.random(code.num_ancillas_of_type(stype)) < self.measurement_error_rate
        ).astype(np.uint8)

    # ------------------------------------------------------------------
    # Batched sampling (the Monte-Carlo engines' hot path)
    # ------------------------------------------------------------------
    def sample_data_matrix(
        self,
        code: RotatedSurfaceCode,
        num_samples: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Binary matrix of fresh data errors, shape ``(num_samples, num_data_qubits)``.

        Row ``i`` is distributed identically to :meth:`sample_data_vector`;
        the whole matrix costs a single RNG call.
        """
        return (
            rng.random((num_samples, code.num_data_qubits)) < self.data_error_rate
        ).astype(np.uint8)

    def sample_measurement_matrix(
        self,
        code: RotatedSurfaceCode,
        stype: StabilizerType,
        num_samples: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Binary matrix of measurement flips, shape ``(num_samples, num_ancillas)``."""
        return (
            rng.random((num_samples, code.num_ancillas_of_type(stype)))
            < self.measurement_error_rate
        ).astype(np.uint8)

    def sample_history(
        self,
        code: RotatedSurfaceCode,
        stype: StabilizerType,
        trials: int,
        rounds: int,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sample full error histories for a batch of memory-experiment trials.

        Returns ``(data_errors, measurement_flips)`` with shapes
        ``(trials, rounds, num_data_qubits)`` and
        ``(trials, rounds, num_ancillas)``.

        Stream-compatibility contract: the single underlying RNG call consumes
        the generator exactly as ``trials * rounds`` sequential
        :meth:`sample_data_vector` / :meth:`sample_measurement_vector` call
        pairs would (numpy generators fill arrays from the bit stream in C
        order), so batched and per-round sampling of the same seed produce
        bit-identical error histories.  The engine-equivalence guarantee of
        :mod:`repro.simulation.batch` rests on this.
        """
        num_data = code.num_data_qubits
        num_ancillas = code.num_ancillas_of_type(stype)
        if (
            type(self).sample_data_vector is not NoiseModel.sample_data_vector
            or type(self).sample_measurement_vector
            is not NoiseModel.sample_measurement_vector
        ):
            # A subclass customises per-vector sampling (correlated noise,
            # biased channels, ...).  Honour its physics — and the exact RNG
            # stream the loop engine would consume — by sampling round by
            # round; the batch engine keeps its decode-side vectorisation.
            data_errors = np.empty((trials, rounds, num_data), dtype=np.uint8)
            measurement_flips = np.empty(
                (trials, rounds, num_ancillas), dtype=np.uint8
            )
            for trial in range(trials):
                for round_index in range(rounds):
                    data_errors[trial, round_index] = self.sample_data_vector(
                        code, rng
                    )
                    measurement_flips[trial, round_index] = (
                        self.sample_measurement_vector(code, stype, rng)
                    )
            return data_errors, measurement_flips
        uniform = rng.random((trials, rounds, num_data + num_ancillas))
        data_errors = (uniform[..., :num_data] < self.data_error_rate).astype(np.uint8)
        measurement_flips = (
            uniform[..., num_data:] < self.measurement_error_rate
        ).astype(np.uint8)
        return data_errors, measurement_flips

    def sample_history_packed(
        self,
        code: RotatedSurfaceCode,
        stype: StabilizerType,
        trials: int,
        rounds: int,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sample error histories directly into uint64 bitplanes.

        Returns ``(data_planes, flip_planes)`` with shapes
        ``(rounds, num_data_qubits, words)`` and ``(rounds, num_ancillas,
        words)`` where ``words = ceil(trials / 64)`` — exactly
        ``bitplane.pack_trials`` applied to :meth:`sample_history`'s output,
        including the zero-padded ragged last word.

        Stream compatibility: the fast path draws the same uniforms in the
        same C order as :meth:`sample_history`, tiled 64 trials at a time
        (tiling along the leading trial axis slices the stream without
        reordering it), so packed and unpacked sampling of the same generator
        state are bit-identical.  Subclasses that override any sampling hook
        fall back to :meth:`sample_history` + pack, mirroring that method's
        own per-vector fallback, so custom physics keeps its exact stream
        too.
        """
        if (
            type(self).sample_history is not NoiseModel.sample_history
            or type(self).sample_data_vector is not NoiseModel.sample_data_vector
            or type(self).sample_measurement_vector
            is not NoiseModel.sample_measurement_vector
        ):
            data_errors, measurement_flips = self.sample_history(
                code, stype, trials, rounds, rng
            )
            return (
                bitplane.pack_trials(data_errors),
                bitplane.pack_trials(measurement_flips),
            )
        num_data = code.num_data_qubits
        num_ancillas = code.num_ancillas_of_type(stype)
        words = bitplane.num_words(trials)
        data_planes = np.zeros((rounds, num_data, words), dtype=np.uint64)
        flip_planes = np.zeros((rounds, num_ancillas, words), dtype=np.uint64)
        done = 0
        while done < trials:
            tile = min(PACKED_SAMPLE_TILE, trials - done)
            uniform = rng.random((tile, rounds, num_data + num_ancillas))
            word = done // bitplane.WORD_BITS
            data_planes[:, :, word] = bitplane.pack_trials(
                uniform[..., :num_data] < self.data_error_rate
            )[..., 0]
            flip_planes[:, :, word] = bitplane.pack_trials(
                uniform[..., num_data:] < self.measurement_error_rate
            )[..., 0]
            done += tile
        return data_planes, flip_planes

    def sample_cycle(
        self,
        code: RotatedSurfaceCode,
        stype: StabilizerType,
        rng: np.random.Generator | int | None = None,
    ) -> CycleErrors:
        """Sample one cycle of errors and return them in coordinate form."""
        generator = make_rng(rng)
        data_vector = self.sample_data_vector(code, generator)
        meas_vector = self.sample_measurement_vector(code, stype, generator)
        ancilla_coords = tuple(a.coord for a in code.ancillas(stype))
        return CycleErrors(
            data_errors=vector_to_errors(data_vector, code.data_qubits),
            measurement_errors=vector_to_errors(meas_vector, ancilla_coords),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(data={self.data_error_rate}, "
            f"measurement={self.measurement_error_rate})"
        )


class PhenomenologicalNoise(NoiseModel):
    """Data and measurement errors, each with (by default the same) probability ``p``.

    Args:
        data_error_rate: per-cycle, per-data-qubit error probability ``p``.
        measurement_error_rate: per-cycle, per-measurement flip probability;
            defaults to ``data_error_rate`` exactly as in the paper.
    """

    def __init__(
        self,
        data_error_rate: float,
        measurement_error_rate: float | None = None,
    ) -> None:
        self._data = _validate_probability("data_error_rate", data_error_rate)
        if measurement_error_rate is None:
            measurement_error_rate = data_error_rate
        self._measurement = _validate_probability(
            "measurement_error_rate", measurement_error_rate
        )

    @property
    def data_error_rate(self) -> float:
        return self._data

    @property
    def measurement_error_rate(self) -> float:
        return self._measurement


class CodeCapacityNoise(NoiseModel):
    """Data errors only; syndrome measurements are perfect.

    Useful for unit tests and for validating decoders against the small-code
    lookup table, where the absence of measurement errors makes exhaustive
    enumeration tractable.
    """

    def __init__(self, data_error_rate: float) -> None:
        self._data = _validate_probability("data_error_rate", data_error_rate)

    @property
    def data_error_rate(self) -> float:
        return self._data

    @property
    def measurement_error_rate(self) -> float:
        return 0.0


__all__ = ["NoiseModel", "PhenomenologicalNoise", "CodeCapacityNoise"]
