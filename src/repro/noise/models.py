"""Noise models used for benchmarking the decoders.

The paper's evaluation (Section 6.1) uses the *phenomenological* model: each
cycle injects independent errors on every data qubit with probability ``p``
and flips every syndrome measurement with the same probability ``p``.  A
*code-capacity* variant (no measurement errors) is provided for unit tests
and for the lookup-table cross-validation decoder.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.codes.rotated_surface import RotatedSurfaceCode
from repro.exceptions import InvalidProbabilityError
from repro.noise.events import CycleErrors, vector_to_errors
from repro.noise.rng import make_rng
from repro.types import StabilizerType


def _validate_probability(name: str, value: float) -> float:
    if not isinstance(value, (int, float)) or not 0.0 <= float(value) <= 1.0:
        raise InvalidProbabilityError(name, value)
    return float(value)


class NoiseModel(abc.ABC):
    """Interface for per-cycle error sampling against a surface code."""

    @property
    @abc.abstractmethod
    def data_error_rate(self) -> float:
        """Per-cycle, per-data-qubit error probability."""

    @property
    @abc.abstractmethod
    def measurement_error_rate(self) -> float:
        """Per-cycle, per-ancilla measurement flip probability."""

    def sample_data_vector(
        self,
        code: RotatedSurfaceCode,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Binary vector of new data errors for one cycle (``code.data_qubits`` order)."""
        return (
            rng.random(code.num_data_qubits) < self.data_error_rate
        ).astype(np.uint8)

    def sample_measurement_vector(
        self,
        code: RotatedSurfaceCode,
        stype: StabilizerType,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Binary vector of measurement flips for the ancillas of one type."""
        return (
            rng.random(code.num_ancillas_of_type(stype)) < self.measurement_error_rate
        ).astype(np.uint8)

    def sample_cycle(
        self,
        code: RotatedSurfaceCode,
        stype: StabilizerType,
        rng: np.random.Generator | int | None = None,
    ) -> CycleErrors:
        """Sample one cycle of errors and return them in coordinate form."""
        generator = make_rng(rng)
        data_vector = self.sample_data_vector(code, generator)
        meas_vector = self.sample_measurement_vector(code, stype, generator)
        ancilla_coords = tuple(a.coord for a in code.ancillas(stype))
        return CycleErrors(
            data_errors=vector_to_errors(data_vector, code.data_qubits),
            measurement_errors=vector_to_errors(meas_vector, ancilla_coords),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(data={self.data_error_rate}, "
            f"measurement={self.measurement_error_rate})"
        )


class PhenomenologicalNoise(NoiseModel):
    """Data and measurement errors, each with (by default the same) probability ``p``.

    Args:
        data_error_rate: per-cycle, per-data-qubit error probability ``p``.
        measurement_error_rate: per-cycle, per-measurement flip probability;
            defaults to ``data_error_rate`` exactly as in the paper.
    """

    def __init__(
        self,
        data_error_rate: float,
        measurement_error_rate: float | None = None,
    ) -> None:
        self._data = _validate_probability("data_error_rate", data_error_rate)
        if measurement_error_rate is None:
            measurement_error_rate = data_error_rate
        self._measurement = _validate_probability(
            "measurement_error_rate", measurement_error_rate
        )

    @property
    def data_error_rate(self) -> float:
        return self._data

    @property
    def measurement_error_rate(self) -> float:
        return self._measurement


class CodeCapacityNoise(NoiseModel):
    """Data errors only; syndrome measurements are perfect.

    Useful for unit tests and for validating decoders against the small-code
    lookup table, where the absence of measurement errors makes exhaustive
    enumeration tractable.
    """

    def __init__(self, data_error_rate: float) -> None:
        self._data = _validate_probability("data_error_rate", data_error_rate)

    @property
    def data_error_rate(self) -> float:
        return self._data

    @property
    def measurement_error_rate(self) -> float:
        return 0.0


__all__ = ["NoiseModel", "PhenomenologicalNoise", "CodeCapacityNoise"]
