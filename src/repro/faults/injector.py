"""Deterministic chaos-injection harness: ``FaultInjector`` + ``REPRO_FAULT_PLAN``.

A *fault plan* is a declarative, fully deterministic schedule of failures —
which shard dies on which attempt and how, which store line gets corrupted,
which checkpoint save gets truncated.  Because the plan is a pure function of
``(shard_index, attempt)`` / line and save counters (never of wall-clock time
or randomness), a chaos test can assert that the recovered run's output is
**byte-identical** to a fault-free run: every injected failure is absorbed by
the retry/quarantine machinery and every retried shard replays the exact same
RNG stream.

Plan grammar (clauses separated by ``;``, keywords case-insensitive)::

    [point <p>] shard <i> [attempts <a>[-<b>]] raise        # raise in the worker
    [point <p>] shard <i> [attempts <a>[-<b>]] kill         # SIGKILL the worker
    [point <p>] shard <i> [attempts <a>[-<b>]] hang <secs>  # sleep in the worker
    store line <k> corrupt                        # flip bytes of line k on write
    checkpoint truncate [<n>]                     # truncate the n-th checkpoint save

``attempts`` defaults to ``0`` (first attempt only); ``attempt`` is accepted
as a synonym.  The optional ``point <p>`` qualifier restricts a shard clause
to the ``p``-th point of a scheduled sweep (the scheduler's enumeration
order); unqualified clauses match the shard index of *every* point — which
is exactly what the same plan did when each point ran its own executor.
Shard/point/attempt/line/save indices are zero-based.  Example::

    REPRO_FAULT_PLAN="shard 1 attempt 0 raise; shard 2 attempts 0-1 kill; \\
                      shard 0 attempt 0 hang 5; store line 3 corrupt"

The sharded runners and the result store pick the plan up from the
``REPRO_FAULT_PLAN`` environment variable automatically (test mode), or take
an explicit :class:`FaultInjector` argument.  In-process (``workers=1`` /
degraded) execution cannot SIGKILL or preempt itself, so ``kill`` is
simulated as an :class:`InjectedWorkerCrash` exception and a ``hang`` longer
than the policy's ``shard_timeout`` sleeps the timeout and raises
:class:`~repro.exceptions.ShardTimeoutError` — the recovery semantics under
test stay identical at every worker count.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

from repro.exceptions import ConfigurationError, ReproError, ShardTimeoutError

#: Environment variable holding the active fault plan (test mode).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


class InjectedFaultError(ReproError):
    """Base class of failures raised by the injection harness itself."""


class InjectedWorkerError(InjectedFaultError):
    """An injected in-worker exception (the plan's ``raise`` action)."""


class InjectedWorkerCrash(InjectedFaultError):
    """An injected worker crash simulated in-process (the ``kill`` action).

    A real ``SIGKILL`` would take the whole interpreter down when the shard
    runs in the parent process, so the in-process path raises this instead;
    the executor treats it like any other worker death.
    """


@dataclass(frozen=True)
class ShardFault:
    """One ``shard ...`` clause: fail a shard on a range of attempts.

    ``point_index`` is ``None`` for unqualified clauses (match the shard
    index within every sweep point, as per-point executors always did) or the
    zero-based scheduler point a ``point <p>`` qualifier pins the clause to.
    """

    shard_index: int
    first_attempt: int
    last_attempt: int
    action: str  # "raise" | "kill" | "hang"
    seconds: float = 0.0
    point_index: int | None = None

    def matches(
        self, shard_index: int, attempt: int, point_index: int | None = None
    ) -> bool:
        if self.point_index is not None and self.point_index != point_index:
            return False
        return (
            shard_index == self.shard_index
            and self.first_attempt <= attempt <= self.last_attempt
        )


@dataclass(frozen=True)
class FaultPlan:
    """A parsed, immutable (and therefore picklable) fault schedule."""

    shard_faults: tuple[ShardFault, ...] = ()
    corrupt_store_lines: tuple[int, ...] = ()
    truncate_checkpoint_saves: tuple[int, ...] = ()

    def shard_fault(
        self, shard_index: int, attempt: int, point_index: int | None = None
    ) -> ShardFault | None:
        """The first clause scheduled for this ``(point, shard, attempt)``."""
        for fault in self.shard_faults:
            if fault.matches(shard_index, attempt, point_index):
                return fault
        return None

    def corrupts_store_line(self, line_number: int) -> bool:
        return line_number in self.corrupt_store_lines

    def truncates_checkpoint_save(self, save_number: int) -> bool:
        return save_number in self.truncate_checkpoint_saves

    @property
    def is_empty(self) -> bool:
        return not (
            self.shard_faults
            or self.corrupt_store_lines
            or self.truncate_checkpoint_saves
        )


def _parse_attempts(tokens: list[str], clause: str) -> tuple[int, int]:
    """Consume an optional ``attempt[s] a[-b]`` prefix from ``tokens``."""
    if not tokens or tokens[0] not in ("attempt", "attempts"):
        return 0, 0
    if len(tokens) < 2:
        raise ConfigurationError(f"missing attempt range in fault clause {clause!r}")
    tokens.pop(0)
    spec = tokens.pop(0)
    first, sep, last = spec.partition("-")
    try:
        lo = int(first)
        hi = int(last) if sep else lo
    except ValueError:
        raise ConfigurationError(
            f"bad attempt range {spec!r} in fault clause {clause!r}"
        ) from None
    if lo < 0 or hi < lo:
        raise ConfigurationError(
            f"attempt range must be non-negative and ordered, got {spec!r} "
            f"in fault clause {clause!r}"
        )
    return lo, hi


def _parse_int(token: str, what: str, clause: str) -> int:
    try:
        value = int(token)
    except ValueError:
        raise ConfigurationError(
            f"bad {what} {token!r} in fault clause {clause!r}"
        ) from None
    if value < 0:
        raise ConfigurationError(
            f"{what} must be non-negative, got {value} in fault clause {clause!r}"
        )
    return value


def parse_fault_plan(text: str) -> FaultPlan:
    """Parse the ``REPRO_FAULT_PLAN`` grammar into a :class:`FaultPlan`."""
    shard_faults: list[ShardFault] = []
    corrupt_lines: list[int] = []
    truncate_saves: list[int] = []
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        tokens = clause.lower().split()
        subject = tokens.pop(0)
        point_index: int | None = None
        if subject == "point":
            if not tokens:
                raise ConfigurationError(f"missing point index in {clause!r}")
            point_index = _parse_int(tokens.pop(0), "point index", clause)
            if not tokens or tokens.pop(0) != "shard":
                raise ConfigurationError(
                    f"'point <p>' must be followed by a shard clause: {clause!r}"
                )
            subject = "shard"
        if subject == "shard":
            if not tokens:
                raise ConfigurationError(f"missing shard index in {clause!r}")
            shard_index = _parse_int(tokens.pop(0), "shard index", clause)
            first, last = _parse_attempts(tokens, clause)
            if not tokens:
                raise ConfigurationError(
                    f"missing action (raise/kill/hang) in fault clause {clause!r}"
                )
            action = tokens.pop(0)
            seconds = 0.0
            if action == "hang":
                if not tokens:
                    raise ConfigurationError(
                        f"hang needs a duration in seconds: {clause!r}"
                    )
                try:
                    seconds = float(tokens.pop(0))
                except ValueError:
                    raise ConfigurationError(
                        f"bad hang duration in fault clause {clause!r}"
                    ) from None
                if seconds <= 0:
                    raise ConfigurationError(
                        f"hang duration must be positive: {clause!r}"
                    )
            elif action not in ("raise", "kill"):
                raise ConfigurationError(
                    f"unknown shard fault action {action!r} in {clause!r} "
                    "(expected raise, kill, or hang)"
                )
            if tokens:
                raise ConfigurationError(
                    f"trailing tokens {tokens!r} in fault clause {clause!r}"
                )
            shard_faults.append(
                ShardFault(shard_index, first, last, action, seconds, point_index)
            )
        elif subject == "store":
            if len(tokens) != 3 or tokens[0] != "line" or tokens[2] != "corrupt":
                raise ConfigurationError(
                    f"expected 'store line <k> corrupt', got {clause!r}"
                )
            corrupt_lines.append(_parse_int(tokens[1], "store line", clause))
        elif subject == "checkpoint":
            if not tokens or tokens[0] != "truncate" or len(tokens) > 2:
                raise ConfigurationError(
                    f"expected 'checkpoint truncate [<n>]', got {clause!r}"
                )
            save = _parse_int(tokens[1], "checkpoint save", clause) if len(tokens) == 2 else 0
            truncate_saves.append(save)
        else:
            raise ConfigurationError(
                f"unknown fault clause subject {subject!r} in {clause!r} "
                "(expected shard, store, or checkpoint)"
            )
    return FaultPlan(
        shard_faults=tuple(shard_faults),
        corrupt_store_lines=tuple(corrupt_lines),
        truncate_checkpoint_saves=tuple(truncate_saves),
    )


@dataclass(frozen=True)
class FaultInjector:
    """Carries a :class:`FaultPlan` into the runner, the workers, and the store.

    Frozen (hence picklable): the worker-side decision is a pure function of
    ``(shard_index, attempt)``, and the store-side counters (lines written,
    checkpoint saves) live in the consumers, not here.
    """

    plan: FaultPlan

    @classmethod
    def from_text(cls, text: str) -> "FaultInjector":
        return cls(parse_fault_plan(text))

    @classmethod
    def from_env(cls) -> "FaultInjector | None":
        """The ambient test-mode injector, or ``None`` outside test mode."""
        text = os.environ.get(FAULT_PLAN_ENV, "").strip()
        if not text:
            return None
        return cls.from_text(text)

    # ------------------------------------------------------------------
    def fire_shard_fault(
        self,
        shard_index: int,
        attempt: int,
        in_process: bool,
        timeout: float | None,
        point_index: int | None = None,
    ) -> None:
        """Apply the plan's fault for this shard attempt, if one is scheduled.

        Runs at the top of the shard body — in the pooled worker process or
        in the parent for in-process execution — *before* the kernel touches
        its RNG stream, so an injected failure never half-consumes a stream.
        """
        fault = self.plan.shard_fault(shard_index, attempt, point_index)
        if fault is None:
            return
        if fault.action == "raise":
            raise InjectedWorkerError(
                f"injected worker exception: shard {shard_index} attempt {attempt}"
            )
        if fault.action == "kill":
            if in_process:
                raise InjectedWorkerCrash(
                    f"injected worker crash (simulated in-process): "
                    f"shard {shard_index} attempt {attempt}"
                )
            os.kill(os.getpid(), signal.SIGKILL)
            raise AssertionError("unreachable: SIGKILL delivered to self")
        # "hang": in a pooled worker, really stall — the parent's deadline
        # fires, the pool is killed, and the shard is re-dispatched.  In
        # process we cannot preempt ourselves, so a hang longer than the
        # policy timeout sleeps the timeout and *simulates* the timeout
        # error; shorter hangs (or no timeout) are plain stalls.
        if in_process and timeout is not None and fault.seconds > timeout:
            time.sleep(timeout)
            raise ShardTimeoutError(shard_index, timeout)
        time.sleep(fault.seconds)


__all__ = [
    "FAULT_PLAN_ENV",
    "FaultInjector",
    "FaultPlan",
    "InjectedFaultError",
    "InjectedWorkerCrash",
    "InjectedWorkerError",
    "ShardFault",
    "parse_fault_plan",
]
