"""Fault-tolerant shard dispatch: retries, timeouts, pool recovery, degrade.

:class:`ShardExecutor` is the execution engine under
:func:`repro.simulation.shard.run_sharded`,
:func:`~repro.simulation.shard.run_sharded_adaptive`, and the sweep
scheduler (:mod:`repro.simulation.scheduler`).  It owns the
``ProcessPoolExecutor`` lifecycle and dispatches shard tasks — ``(kernel,
shard_trials, seed, shard_index)`` tuples under PR 2's seeding contract,
optionally extended with a fifth ``point_index`` element when many sweep
points share one executor — with the recovery ladder of
:class:`~repro.faults.FaultPolicy`:

* a **worker exception** re-dispatches the same shard (same ``(seed,
  shard_index)`` ⇒ the retry is bit-identical) after a deterministic
  jittered backoff, up to ``max_retries`` times;
* a **shard timeout** kills the pool (a hung worker cannot be preempted
  alone), re-dispatches the timed-out shard charged one retry, and re-submits
  the innocent in-flight shards uncharged;
* a **broken pool** (a worker died and took the executor with it) respawns
  the pool and re-submits every in-flight shard, up to ``max_pool_respawns``
  incidents — after which the executor stops trusting pools and degrades to
  the sequential in-process path with a :class:`DegradedExecutionWarning`;
* a pool that cannot even be **constructed** (no POSIX semaphores, no
  forking) degrades the same way immediately, warning and flagging
  ``engine_degraded`` in the :class:`~repro.faults.FaultReport` instead of
  silently swallowing the environment problem.

At most ``workers`` shards are in flight at once, so a shard's timeout clock
only ever runs while a worker is actually executing it (a shard queued behind
a full pool is not "hung").  Results come back in task order; shards dropped
by ``on_exhausted="skip"`` yield the :data:`SKIPPED` sentinel and their
provenance is recorded on the report.

A passive policy (``max_retries=0``, no timeout) with no fault injector takes
a zero-bookkeeping ``pool.map`` fast path — the exact pre-fault-tolerance
dispatch, kept both as the overhead baseline and for callers that want the
old fail-fast semantics.
"""

from __future__ import annotations

import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import (
    ConfigurationError,
    ShardRetriesExhaustedError,
    ShardTimeoutError,
)
from repro.faults.injector import FaultInjector
from repro.faults.policy import FaultPolicy, FaultReport, SkippedShard
from repro.noise.rng import shard_rng


class DegradedExecutionWarning(RuntimeWarning):
    """The sharded engine fell back to sequential in-process execution."""


class _Skipped:
    """Sentinel type for shards dropped by ``on_exhausted="skip"``."""

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "<shard skipped>"


#: Placeholder returned (in task order) for shards dropped from the merge.
SKIPPED = _Skipped()

#: Floor on the executor's wait quantum when a deadline or backoff gate is
#: armed, so those checks stay cheap.  With no ``shard_timeout`` and no
#: pending backoff the dispatch loop skips deadline bookkeeping entirely and
#: blocks natively on the pool — small shards pay no 20 ms latency quantum.
_MIN_WAIT = 0.02

#: Process-pool constructions since import, across every executor instance.
#: The perf-smoke benchmark diffs this around a sweep to show that the
#: scheduler's persistent pool really is constructed once, not per point.
_POOL_CONSTRUCTIONS = 0


def pool_construction_count() -> int:
    """How many process pools have been constructed in this process so far."""
    return _POOL_CONSTRUCTIONS


def _task_parts(task: tuple) -> tuple:
    """Split a 4- or 5-tuple task into ``(kernel, trials, seed, shard, point)``."""
    kernel, shard_trials, seed, shard_index = task[:4]
    point_index = task[4] if len(task) > 4 else None
    return kernel, shard_trials, seed, shard_index, point_index


def _execute_shard(
    kernel: Any,
    shard_trials: int,
    seed: int,
    shard_index: int,
    attempt: int,
    injector: FaultInjector | None,
    in_process: bool,
    timeout: float | None,
    point_index: int | None = None,
) -> Any:
    """One shard attempt under the seeding contract (top-level so it pickles).

    The injector fires *before* the kernel constructs its generator, so an
    injected failure never half-consumes a shard's RNG stream — the retried
    attempt replays it bit-identically from the start.
    """
    if injector is not None:
        injector.fire_shard_fault(
            shard_index,
            attempt,
            in_process=in_process,
            timeout=timeout,
            point_index=point_index,
        )
    return kernel(shard_trials, shard_rng(seed, shard_index))


def _execute_shard_args(args: tuple) -> Any:
    """``pool.map`` adapter for the passive fast path (top-level so it pickles)."""
    return _execute_shard(*args)


@dataclass
class _TaskState:
    """Mutable per-shard dispatch bookkeeping (parent process only)."""

    index: int
    attempt: int = 0  # total dispatches — the injector's attempt key
    retries: int = 0  # failures charged against policy.max_retries
    not_before: float = 0.0  # monotonic backoff gate for the next dispatch


@dataclass
class ShardExecutor:
    """Run shard tasks under a :class:`~repro.faults.FaultPolicy`.

    Use as a context manager; one executor may serve several :meth:`run`
    calls (e.g. the waves of an adaptive run) and keeps its pool warm across
    them.  ``injector=None`` picks up the ambient ``REPRO_FAULT_PLAN``
    injector (test mode); pass an explicit injector to scope a chaos plan to
    one run.
    """

    workers: int
    policy: FaultPolicy = field(default_factory=FaultPolicy)
    injector: FaultInjector | None = None
    report: FaultReport = field(default_factory=FaultReport)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(f"workers must be positive, got {self.workers}")
        if self.injector is None:
            self.injector = FaultInjector.from_env()
        self._pool = None
        self._pool_unavailable = False
        self._sequential_only = False

    # ------------------------------------------------------------------
    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        """Return a live pool, or ``None`` when execution must be in-process."""
        if self._pool is not None:
            return self._pool
        if self.workers == 1 or self._pool_unavailable or self._sequential_only:
            return None
        try:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.workers)
            global _POOL_CONSTRUCTIONS
            _POOL_CONSTRUCTIONS += 1
        except (ImportError, NotImplementedError, OSError, PermissionError) as error:
            # Environments without working multiprocessing primitives raise
            # while *constructing* the pool (its queues allocate semaphores
            # eagerly).  Worker count never affects results, so the
            # sequential path is safe — but the degradation is surfaced, not
            # swallowed: a "parallel" run that silently went sequential is
            # exactly the kind of lie a throughput study trips over.
            self._pool_unavailable = True
            self.report.engine_degraded = True
            warnings.warn(
                f"process pool unavailable ({error!r}); running shards "
                "sequentially in-process (results are unaffected, wall-clock "
                "scaling is)",
                DegradedExecutionWarning,
                stacklevel=3,
            )
            return None
        return self._pool

    def _kill_pool(self) -> None:
        """Tear down a pool whose workers may be hung or already dead."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.terminate()
            except Exception:  # already dead / already reaped
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    def run(self, tasks: list[tuple]) -> list[Any]:
        """Execute ``tasks`` and return their outcomes in task order.

        Each task is ``(kernel, shard_trials, seed, shard_index)``, optionally
        extended with a fifth ``point_index`` element.  Entries for shards
        dropped by ``on_exhausted="skip"`` are :data:`SKIPPED`.
        """
        if not tasks:
            return []
        if self.policy.is_passive and self.injector is None:
            return self._run_passive(tasks)
        return self.run_dynamic(tasks)

    def run_dynamic(
        self,
        tasks: list[tuple],
        on_complete: "Callable[[int, Any], list[tuple] | None] | None" = None,
    ) -> list[Any]:
        """Execute ``tasks``, notifying ``on_complete`` as each outcome lands.

        ``on_complete(index, outcome)`` fires exactly once per task, the
        moment its outcome is final (a result, or :data:`SKIPPED`), and may
        return follow-up tasks to enqueue on the same still-warm pool — this
        is how the sweep scheduler feeds an adaptive point's next Wilson wave
        in while other points' shards are in flight.  Returns the outcomes of
        the final task list (follow-ups included), in task order.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        states = [_TaskState(index=index) for index in range(len(tasks))]
        results: list[Any] = [None] * len(tasks)
        queue: deque[int] = deque(range(len(tasks)))

        def finish(index: int) -> None:
            if on_complete is None:
                return
            for task in on_complete(index, results[index]) or ():
                tasks.append(task)
                states.append(_TaskState(index=len(states)))
                results.append(None)
                queue.append(len(results) - 1)

        if self._ensure_pool() is None:
            while queue:
                index = queue.popleft()
                self._run_sequential(tasks[index], states[index], results)
                finish(index)
            return results
        self._run_pooled(tasks, states, results, queue, finish)
        return results

    # ------------------------------------------------------------------
    def _run_passive(self, tasks: list[tuple]) -> list[Any]:
        """The pre-fault-tolerance dispatch: no retries, fail-fast, ``pool.map``."""
        args = [
            (kernel, shard_trials, seed, shard_index, 0, None, True, None, point)
            for kernel, shard_trials, seed, shard_index, point in map(
                _task_parts, tasks
            )
        ]
        pool = self._ensure_pool()
        if pool is None:
            return [_execute_shard(*arg) for arg in args]
        return list(pool.map(_execute_shard_args, args))

    # ------------------------------------------------------------------
    def _run_sequential(
        self, task: tuple, state: _TaskState, results: list[Any]
    ) -> None:
        kernel, shard_trials, seed, shard_index, point_index = _task_parts(task)
        while True:
            try:
                results[state.index] = _execute_shard(
                    kernel,
                    shard_trials,
                    seed,
                    shard_index,
                    state.attempt,
                    self.injector,
                    True,
                    self.policy.shard_timeout,
                    point_index,
                )
                return
            except ConfigurationError:
                raise  # deterministic misconfiguration: retrying cannot help
            except Exception as error:
                state.attempt += 1
                state.retries += 1
                if isinstance(error, ShardTimeoutError):
                    self.report.timeouts += 1
                if state.retries > self.policy.max_retries:
                    self._exhaust(task, state, error, results)
                    return
                self.report.retries += 1
                delay = self.policy.backoff_delay(seed, shard_index, state.retries)
                if delay:
                    time.sleep(delay)

    def _exhaust(
        self, task: tuple, state: _TaskState, error: Exception, results: list[Any]
    ) -> None:
        """A shard ran out of retry budget: skip with provenance, or abort."""
        _, shard_trials, _, shard_index, point_index = _task_parts(task)
        if self.policy.on_exhausted == "skip":
            self.report.skipped_shards.append(
                SkippedShard(
                    shard_index=shard_index,
                    trials=shard_trials,
                    attempts=state.attempt,
                    error=repr(error),
                    point_index=point_index,
                )
            )
            results[state.index] = SKIPPED
            return
        self._kill_pool()
        raise ShardRetriesExhaustedError(shard_index, state.attempt, error) from error

    # ------------------------------------------------------------------
    def _run_pooled(
        self,
        tasks: list[tuple],
        states: list[_TaskState],
        results: list[Any],
        queue: deque[int],
        finish: "Callable[[int], None]",
    ) -> None:
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures.process import BrokenProcessPool

        pending: dict = {}  # future -> (task index, deadline | None)
        # Deadline bookkeeping (per-future deadlines, the expiry scan, the
        # bounded wait quantum) exists only to enforce shard_timeout; without
        # one the loop blocks natively on the pool, so small shards pay no
        # _MIN_WAIT latency tax.  Backoff gates likewise only exist once a
        # retry has been charged, which a zero-retry policy never does.
        track_deadlines = self.policy.shard_timeout is not None
        track_backoff = self.policy.max_retries > 0

        def submit(index: int) -> None:
            kernel, shard_trials, seed, shard_index, point_index = _task_parts(
                tasks[index]
            )
            future = self._pool.submit(
                _execute_shard,
                kernel,
                shard_trials,
                seed,
                shard_index,
                states[index].attempt,
                self.injector,
                False,
                None,
                point_index,
            )
            deadline = (
                time.monotonic() + self.policy.shard_timeout
                if track_deadlines
                else None
            )
            pending[future] = (index, deadline)

        def requeue(index: int, charge_retry: bool, error: Exception | None) -> bool:
            """Schedule a re-dispatch; returns False if the shard is exhausted."""
            state = states[index]
            state.attempt += 1
            if charge_retry:
                state.retries += 1
                if state.retries > self.policy.max_retries:
                    self._exhaust(tasks[index], state, error, results)
                    if results[index] is SKIPPED:
                        finish(index)
                        return True
                    return False
                self.report.retries += 1
                _, _, seed, shard_index, _ = _task_parts(tasks[index])
                state.not_before = time.monotonic() + self.policy.backoff_delay(
                    seed, shard_index, state.retries
                )
            queue.append(index)
            return True

        def drain_pending(charge_attempt: bool = True) -> None:
            """Harvest finished futures, requeue the rest (pool is going down)."""
            for future, (index, _) in list(pending.items()):
                del pending[future]
                if future.done() and not future.cancelled():
                    try:
                        results[index] = future.result()
                        finish(index)
                        continue
                    except Exception:
                        # Broken-pool casualty (or a failure racing the
                        # incident): re-dispatch uncharged — its own failure
                        # will be charged when it recurs on the fresh pool.
                        pass
                if charge_attempt:
                    states[index].attempt += 1
                queue.append(index)

        def pool_incident() -> None:
            """A worker died hard (SIGKILL, segfault) and broke the pool."""
            self.report.pool_respawns += 1
            drain_pending()
            self._kill_pool()
            if self.report.pool_respawns > self.policy.max_pool_respawns:
                self._sequential_only = True
                self.report.degraded_to_sequential = True
                warnings.warn(
                    f"process pool broke {self.report.pool_respawns} times; "
                    "degrading to sequential in-process execution for the "
                    "remaining shards (results are unaffected)",
                    DegradedExecutionWarning,
                    stacklevel=3,
                )

        while queue or pending:
            if self._sequential_only or self._ensure_pool() is None:
                # Pool gone for good: finish everything in-process, keeping
                # each shard's accumulated attempt/retry bookkeeping.
                while queue:
                    index = queue.popleft()
                    self._run_sequential(tasks[index], states[index], results)
                    finish(index)
                return
            now = time.monotonic()
            submit_broke_pool = False
            for index in [i for i in queue if states[i].not_before <= now]:
                if len(pending) >= self.workers:
                    break
                queue.remove(index)
                try:
                    submit(index)
                except BrokenProcessPool:
                    # The pool broke between the last wait and this submit, so
                    # the incident surfaces here instead of through a future.
                    # The task never reached a worker: requeue it with its
                    # attempt key untouched (no injector attempt was consumed)
                    # and handle the incident as usual.
                    queue.append(index)
                    submit_broke_pool = True
                    break
            if submit_broke_pool:
                pool_incident()
                continue

            # How long may we block?  Until the nearest shard deadline or
            # backoff gate, whichever comes first — or indefinitely when
            # neither mechanism is armed.
            horizons = []
            if track_deadlines:
                horizons += [d for _, d in pending.values() if d is not None]
            if track_backoff:
                horizons += [
                    states[i].not_before for i in queue if states[i].not_before > now
                ]
            timeout = max(_MIN_WAIT, min(horizons) - now) if horizons else None
            if not pending:
                time.sleep(timeout if timeout is not None else _MIN_WAIT)
                continue
            done, _ = wait(pending, timeout=timeout, return_when=FIRST_COMPLETED)

            pool_broken = False
            for future in done:
                index, _ = pending.pop(future)
                try:
                    results[index] = future.result()
                except BrokenProcessPool:
                    pool_broken = True
                    states[index].attempt += 1
                    queue.append(index)
                except ConfigurationError:
                    self._kill_pool()
                    raise
                except Exception as error:
                    if not requeue(index, charge_retry=True, error=error):
                        return  # exhausted with on_exhausted="raise" raises above
                else:
                    finish(index)

            if pool_broken:
                pool_incident()
                continue

            if not track_deadlines:
                continue
            now = time.monotonic()
            expired = [
                (future, index)
                for future, (index, deadline) in pending.items()
                if deadline is not None and deadline <= now and not future.done()
            ]
            if expired:
                # A hung worker cannot be preempted alone — the whole pool is
                # killed and rebuilt.  The timed-out shards are charged one
                # retry each; innocent in-flight shards re-dispatch uncharged.
                for future, index in expired:
                    del pending[future]
                    self.report.timeouts += 1
                    _, _, _, shard_index, _ = _task_parts(tasks[index])
                    if not requeue(
                        index,
                        charge_retry=True,
                        error=ShardTimeoutError(shard_index, self.policy.shard_timeout),
                    ):
                        drain_pending()
                        self._kill_pool()
                        return
                drain_pending()
                self._kill_pool()


__all__ = [
    "SKIPPED",
    "DegradedExecutionWarning",
    "ShardExecutor",
    "pool_construction_count",
]
