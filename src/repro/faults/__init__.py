"""Fault tolerance for sharded Monte-Carlo execution.

Three cooperating pieces:

* :class:`FaultPolicy` / :class:`FaultReport` — how hard to try (retries,
  deterministic backoff, shard timeouts, pool respawns) and what actually
  happened;
* :class:`ShardExecutor` — the dispatch engine under ``run_sharded`` /
  ``run_sharded_adaptive`` implementing the recovery ladder;
* :class:`FaultInjector` + the ``REPRO_FAULT_PLAN`` grammar — a deterministic
  chaos harness for proving that a faulted run's output is byte-identical to
  a fault-free one.
"""

from repro.faults.executor import (
    SKIPPED,
    DegradedExecutionWarning,
    ShardExecutor,
    pool_construction_count,
)
from repro.faults.injector import (
    FAULT_PLAN_ENV,
    FaultInjector,
    FaultPlan,
    InjectedFaultError,
    InjectedWorkerCrash,
    InjectedWorkerError,
    ShardFault,
    parse_fault_plan,
)
from repro.faults.policy import FaultPolicy, FaultReport, SkippedShard

__all__ = [
    "FAULT_PLAN_ENV",
    "SKIPPED",
    "DegradedExecutionWarning",
    "FaultInjector",
    "FaultPlan",
    "FaultPolicy",
    "FaultReport",
    "InjectedFaultError",
    "InjectedWorkerCrash",
    "InjectedWorkerError",
    "ShardExecutor",
    "ShardFault",
    "SkippedShard",
    "parse_fault_plan",
    "pool_construction_count",
]
