"""Per-shard fault policy and the fault report filled in by the executor.

A sharded Monte-Carlo run is a merge of pure shard functions — PR 2's seeding
contract makes every shard's partial result a function of ``(seed,
shard_index)`` alone — so a failed shard can simply be *re-run* and the
retried attempt is bit-identical to the one that died.  :class:`FaultPolicy`
bounds how hard the executor tries (retry budget, backoff, per-attempt
timeout) and what happens when the budget runs out; :class:`FaultReport`
records what actually happened so callers can surface provenance (skipped
shards, pool respawns, engine degradation) without the merged counts having
to carry it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError

#: Spawn-key tag separating backoff-jitter streams from shard result streams:
#: result streams use length-1 spawn keys ``(shard_index,)``, jitter streams
#: length-3 keys ``(shard_index, _JITTER_STREAM, retry)`` — SeedSequence
#: spawn keys of different lengths never collide, so drawing jitter can never
#: perturb a shard's (retried, bit-identical) result stream.
_JITTER_STREAM = 0xFA017


@dataclass(frozen=True)
class FaultPolicy:
    """How the shard executor handles worker failures.

    Attributes:
        max_retries: failed attempts re-dispatched per shard before the shard
            is declared exhausted (``0`` disables retries — and, with
            ``shard_timeout`` unset, selects the zero-overhead fast path that
            is the pre-fault-tolerance ``pool.map`` behaviour).
        backoff_base: first-retry backoff delay in seconds; retry ``k`` waits
            ``min(backoff_cap, backoff_base * 2**(k-1))`` scaled by a
            deterministic jitter factor in ``[0.5, 1.0)`` drawn from the
            shard's own ``SeedSequence`` lineage (see :meth:`backoff_delay`)
            — reruns of the same seed back off identically.
        backoff_cap: upper bound on a single backoff delay, seconds.
        shard_timeout: wall-clock budget per shard *attempt*, seconds.
            Enforced preemptively on the pooled path (the hung pool is killed
            and in-flight shards re-dispatched); the in-process path cannot
            preempt a genuinely hung shard and only honours it for injected
            hangs (which simulate the timeout).  ``None`` disables it.
        on_exhausted: ``"raise"`` (default) aborts the run with
            :class:`~repro.exceptions.ShardRetriesExhaustedError` when a
            shard's budget runs out; ``"skip"`` drops the shard from the
            merge and records it in the :class:`FaultReport` — the result is
            then *incomplete* and carries skipped-shard provenance.
        max_pool_respawns: broken-pool incidents (a worker died and took the
            ``ProcessPoolExecutor`` with it) tolerated before the executor
            stops respawning pools and degrades to the sequential in-process
            path with a warning.  Timeout kills do not count — they are
            charged to the offending shard's retry budget instead.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 5.0
    shard_timeout: float | None = None
    on_exhausted: str = "raise"
    max_pool_respawns: int = 3

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigurationError(
                "backoff_base and backoff_cap must be non-negative, got "
                f"{self.backoff_base} / {self.backoff_cap}"
            )
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ConfigurationError(
                f"shard_timeout must be positive (or None), got {self.shard_timeout}"
            )
        if self.on_exhausted not in ("raise", "skip"):
            raise ConfigurationError(
                f"on_exhausted must be 'raise' or 'skip', got {self.on_exhausted!r}"
            )
        if self.max_pool_respawns < 0:
            raise ConfigurationError(
                f"max_pool_respawns must be non-negative, got {self.max_pool_respawns}"
            )

    @property
    def is_passive(self) -> bool:
        """True when the policy never intervenes (no retries, no timeout)."""
        return self.max_retries == 0 and self.shard_timeout is None

    def backoff_delay(self, seed: int, shard_index: int, retry: int) -> float:
        """Deterministic jittered exponential backoff before retry ``retry``.

        The jitter factor is drawn from
        ``SeedSequence(seed, spawn_key=(shard_index, _JITTER_STREAM, retry))``
        — the same lineage as the shard's result stream but on a spawn key no
        result stream can ever use — so two runs of the same seed sleep the
        same schedule (reproducible wall-clock traces) while distinct shards
        and retries still de-correlate.
        """
        if retry < 1:
            raise ConfigurationError(f"retry must be >= 1, got {retry}")
        base = min(self.backoff_cap, self.backoff_base * 2.0 ** (retry - 1))
        if base == 0:
            return 0.0
        jitter = np.random.default_rng(
            np.random.SeedSequence(
                seed, spawn_key=(shard_index, _JITTER_STREAM, retry)
            )
        ).random()
        return base * (0.5 + 0.5 * jitter)


@dataclass(frozen=True)
class SkippedShard:
    """Provenance of one shard dropped by ``on_exhausted="skip"``.

    ``point_index`` identifies the sweep point the shard belonged to when the
    run was dispatched by the sweep scheduler (tasks from many points share
    one executor there); per-point executor runs leave it ``None``.
    """

    shard_index: int
    trials: int
    attempts: int
    error: str
    point_index: int | None = None


@dataclass
class FaultReport:
    """What the executor actually did to finish (or give up on) a run.

    One report instance can span multiple executor calls (e.g. every wave of
    an adaptive run); counters only ever accumulate.

    Attributes:
        retries: shard attempts re-dispatched after a failure or timeout.
        timeouts: shard attempts that exceeded ``shard_timeout``.
        pool_respawns: broken-pool incidents recovered by respawning the pool
            and re-submitting the in-flight shards.
        engine_degraded: the process pool could not be *constructed* (e.g. a
            sandbox without POSIX semaphores) and the run fell back to the
            sequential in-process path.
        degraded_to_sequential: repeated broken-pool incidents exceeded
            ``max_pool_respawns`` mid-run and the remaining shards ran
            sequentially.
        skipped_shards: shards dropped from the merge under
            ``on_exhausted="skip"``, with their trial counts and last errors.
    """

    retries: int = 0
    timeouts: int = 0
    pool_respawns: int = 0
    engine_degraded: bool = False
    degraded_to_sequential: bool = False
    skipped_shards: list[SkippedShard] = field(default_factory=list)

    @property
    def skipped_trials(self) -> int:
        """Total trials dropped from the merge by skipped shards."""
        return sum(shard.trials for shard in self.skipped_shards)

    @property
    def faults_handled(self) -> int:
        """Total fault events the executor absorbed."""
        return self.retries + self.pool_respawns + len(self.skipped_shards)


__all__ = ["FaultPolicy", "FaultReport", "SkippedShard"]
