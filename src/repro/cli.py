"""Command-line front-end: ``repro-qec`` / ``python -m repro``.

Examples:
    repro-qec list
    repro-qec run fig11 --param cycles=5000 --param seed=7
    repro-qec run fig15
    repro-qec run fig14 --engine loop --param trials=200

``--engine`` selects the Monte-Carlo engine for memory experiments (fig14):
``batch`` (the default inside the library) vectorises trial triage — all
noise sampling, syndrome computation, and trivial-round decoding run as
whole-batch array operations — while ``loop`` runs the per-trial reference
path kept as the correctness oracle.  Both engines are bit-identical under a
fixed seed.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro._version import __version__
from repro.exceptions import ReproError
from repro.experiments.registry import available_experiments, run_experiment


def _parse_param(raw: str) -> tuple[str, object]:
    """Parse a ``key=value`` override, guessing int/float/bool where possible."""
    if "=" not in raw:
        raise argparse.ArgumentTypeError(f"expected key=value, got {raw!r}")
    key, text = raw.split("=", 1)
    value: object
    lowered = text.lower()
    if lowered in ("true", "false"):
        value = lowered == "true"
    else:
        try:
            value = int(text)
        except ValueError:
            try:
                value = float(text)
            except ValueError:
                value = text
    return key, value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-qec",
        description=(
            "Reproduction of 'Better Than Worst-Case Decoding for Quantum "
            "Error Correction' (ASPLOS 2023)"
        ),
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment and print its table")
    run_parser.add_argument("experiment", help="experiment id (see 'list')")
    run_parser.add_argument(
        "--param",
        action="append",
        type=_parse_param,
        default=[],
        metavar="KEY=VALUE",
        help="override a runner keyword argument (repeatable)",
    )
    run_parser.add_argument(
        "--engine",
        choices=("batch", "loop"),
        default=None,
        help=(
            "Monte-Carlo engine for memory experiments (fig14): 'batch' "
            "vectorises trial triage (default), 'loop' is the per-trial "
            "reference oracle; both are bit-identical under a fixed seed"
        ),
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in available_experiments():
            print(experiment_id)
        return 0

    if args.command == "run":
        params = dict(args.param)
        if args.engine is not None:
            params["engine"] = args.engine
        try:
            result = run_experiment(args.experiment, **params)
        except (ReproError, TypeError, ValueError) as error:
            # TypeError / ValueError typically mean a malformed --param value
            # (e.g. a scalar where the runner expects a tuple).
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(result.format_table())
        return 0

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
