"""Command-line front-end: ``repro-qec`` / ``python -m repro``.

Examples:
    repro-qec list
    repro-qec run fig11 --param cycles=5000 --param seed=7
    repro-qec run fig15
    repro-qec run fig14 --engine loop --param trials=200
    repro-qec run fig14 --scale paper --workers 8
    repro-qec run fig14 --fallback union_find
    repro-qec run fig14_fallbacks --param trials=300

``--engine`` selects the Monte-Carlo engine for memory experiments (fig14):
``batch`` (the default inside the library) vectorises trial triage — all
noise sampling, syndrome computation, and trivial-round decoding run as
whole-batch array operations — ``loop`` runs the per-trial reference path
kept as the correctness oracle (bit-identical to batch under a fixed seed),
and ``sharded`` fans fixed-size trial shards over worker processes
(``--workers``), deterministic per seed independent of the worker count.
``--scale paper`` extends fig14 to the paper's d=3–11 grid with per-distance
trial budgets; ``--fallback`` picks the hierarchy's off-chip decoder.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro._version import __version__
from repro.exceptions import ReproError
from repro.experiments.registry import available_experiments, run_experiment


def _parse_param(raw: str) -> tuple[str, object]:
    """Parse a ``key=value`` override, guessing int/float/bool where possible."""
    if "=" not in raw:
        raise argparse.ArgumentTypeError(f"expected key=value, got {raw!r}")
    key, text = raw.split("=", 1)
    value: object
    lowered = text.lower()
    if lowered in ("true", "false"):
        value = lowered == "true"
    else:
        try:
            value = int(text)
        except ValueError:
            try:
                value = float(text)
            except ValueError:
                value = text
    return key, value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-qec",
        description=(
            "Reproduction of 'Better Than Worst-Case Decoding for Quantum "
            "Error Correction' (ASPLOS 2023)"
        ),
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment and print its table")
    run_parser.add_argument("experiment", help="experiment id (see 'list')")
    run_parser.add_argument(
        "--param",
        action="append",
        type=_parse_param,
        default=[],
        metavar="KEY=VALUE",
        help="override a runner keyword argument (repeatable)",
    )
    run_parser.add_argument(
        "--engine",
        choices=("batch", "loop", "sharded"),
        default=None,
        help=(
            "Monte-Carlo engine for memory experiments (fig14): 'batch' "
            "vectorises trial triage (default), 'loop' is the per-trial "
            "reference oracle (bit-identical to batch under a fixed seed), "
            "'sharded' spreads trial shards over worker processes "
            "(deterministic per seed, independent of --workers)"
        ),
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --engine sharded (default: CPU count)",
    )
    run_parser.add_argument(
        "--fallback",
        choices=("mwpm", "union_find"),
        default=None,
        help=(
            "off-chip fallback for the Clique hierarchy (fig14/fig14_fallbacks): "
            "'mwpm' (blossom, default) or 'union_find' (near-linear clustering)"
        ),
    )
    run_parser.add_argument(
        "--scale",
        choices=("laptop", "paper"),
        default=None,
        help=(
            "fig14 sweep scale: 'laptop' (d=3-7, flat budget, default) or "
            "'paper' (d=3-11 with per-distance trial budgets, sharded engine)"
        ),
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in available_experiments():
            print(experiment_id)
        return 0

    if args.command == "run":
        params = dict(args.param)
        for flag in ("engine", "workers", "fallback", "scale"):
            value = getattr(args, flag)
            if value is not None:
                params[flag] = value
        try:
            result = run_experiment(args.experiment, **params)
        except (ReproError, TypeError, ValueError) as error:
            # TypeError / ValueError typically mean a malformed --param value
            # (e.g. a scalar where the runner expects a tuple).
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(result.format_table())
        return 0

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
