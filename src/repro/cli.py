"""Command-line front-end: ``repro-qec`` / ``python -m repro``.

Examples:
    repro-qec list
    repro-qec run fig11 --param cycles=5000 --param seed=7
    repro-qec fig11 --workers 4                      # "run" may be omitted
    repro-qec fig11 --workers 4 --target-ci-width 0.01
    repro-qec fig12 --param distances=3,5,7 --chunk-cycles 2000
    repro-qec run fig14 --engine loop --param trials=200
    repro-qec run fig14 --scale paper --workers 8
    repro-qec fig14 --scale paper --workers 8 --schedule point
    repro-qec fig11 --workers 4 --chunk-cycles auto
    repro-qec fig14 --scale paper --adaptive --target-ci-width 0.02
    repro-qec run fig14 --fallback union_find
    repro-qec run fig14 --tiers clique,union_find,mwpm
    repro-qec run fig14_fallbacks --param trials=300
    repro-qec fig14_fallbacks --tiers clique,union_find,mwpm --param distances=9,
    repro-qec fig14 --scale paper --store results/   # resume on re-run
    repro-qec fig14 --scale paper --store results/ --force
    repro-qec fig14 --scale paper --max-retries 4 --shard-timeout 300
    repro-qec run fig14 --no-packed                  # unpacked reference path
    repro-qec store compact results/                 # GC a long-lived store
    repro-qec lint src/repro                         # static contract checks
    repro-qec lint --format json src/ benchmarks/    # stable output for CI
    repro-qec lint --list-rules

``--engine`` selects the Monte-Carlo engine for memory experiments (fig14):
``batch`` (the default inside the library) vectorises trial triage — all
noise sampling, syndrome computation, and trivial-round decoding run as
whole-batch array operations — ``loop`` runs the per-trial reference path
kept as the correctness oracle (bit-identical to batch under a fixed seed),
and ``sharded`` fans fixed-size trial shards over worker processes
(``--workers``), deterministic per seed independent of the worker count.
The coverage experiments (fig11/fig12/fig16) shard the same way under
``--workers``/``--chunk-cycles``.  ``--target-ci-width`` switches coverage
points to Wilson-converged adaptive sampling, and ``--adaptive`` does the
same for fig14's logical-error-rate points (budget-capped by the scale's
trial budgets).  ``--scale paper`` extends fig14 to the paper's d=3–11 grid
with per-distance trial budgets; ``--fallback`` picks the hierarchy's
off-chip decoder, and ``--tiers`` generalises it to a full N-tier decoder
cascade spec (``clique,union_find,mwpm`` runs MWPM only on the union-find
tier's disagreement set — see README.md → "Decoder cascades").  ``--store
DIR`` persists every sweep point of the fig11/fig12/fig14/fig16 sweeps as it
completes and makes re-runs resume (``--resume``, the default) or recompute
(``--force``); ``store compact DIR`` garbage-collects a long-lived store
directory; see README.md → "Results and resume".  ``--max-retries`` /
``--shard-timeout`` tune the sharded engine's fault tolerance (retried
shards replay their RNG streams bit-identically, so neither flag ever
changes results); see README.md → "Fault tolerance".  ``--schedule``
picks the sharded dispatch mode for the sweeps: ``sweep`` (the default for
sharded runs) drives every pending point's shards through one persistent
worker pool, ``point`` builds one pool per sweep point — byte-identical
results either way; see README.md → "Sweep scheduling".  ``--no-packed``
switches the batch/sharded memory engines off their default uint64
bitplane kernels onto the unpacked uint8 reference path — bit-identical
results, lower throughput; see README.md → "Packed kernels".  ``lint``
statically enforces the repo's contract rules (seeding/determinism, store
keys, lazy heavy imports, dtype discipline, sharded-kernel picklability,
tier protocol) with ``ruff``-style findings, ``--select/--ignore``, a
``# repro: allow[RULE]`` pragma, and exit codes 0/1/2; see README.md →
"Static analysis".
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro._version import __version__
from repro.exceptions import ReproError
from repro.experiments.registry import available_experiments, run_experiment


def _parse_scalar(text: str) -> object:
    """Guess int/float/bool for one scalar token, falling back to the string.

    Python's numeric literals accept underscore digit separators
    (``int("1_0") == 10``), which on a command line is far more likely a typo
    than intent — numeric-looking tokens containing ``_`` are rejected with a
    clear error rather than silently parsed (non-numeric strings like
    ``union_find`` pass through untouched).
    """
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for parse in (int, float):
        try:
            value = parse(text)
        except ValueError:
            continue
        if "_" in text:
            raise argparse.ArgumentTypeError(
                f"digit separators are not allowed in parameter values: {text!r} "
                f"(did you mean {text.replace('_', '')!r}?)"
            )
        return value
    return text


def _int_or_auto(text: str) -> object:
    """Parse an integer-valued flag that also accepts the ``auto`` spelling."""
    if text == "auto":
        return text
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {text!r}"
        ) from None


def _parse_param(raw: str) -> tuple[str, object]:
    """Parse a ``key=value`` override, guessing int/float/bool where possible.

    Comma-separated values become tuples (``distances=3,5,7`` — a trailing
    comma like ``distances=3,`` forces a one-element tuple), matching the
    tuple-typed sweep-grid parameters the experiment runners take.  Empty
    values (``trials=``) and empty tuple elements (``distances=3,,5``) are
    rejected: both are silent-typo magnets, and an empty string reaching an
    experiment runner as a keyword value never means what was typed.
    """
    if "=" not in raw:
        raise argparse.ArgumentTypeError(f"expected key=value, got {raw!r}")
    key, text = raw.split("=", 1)
    if text == "":
        raise argparse.ArgumentTypeError(f"empty value for parameter {key!r}: {raw!r}")
    if "," in text:
        parts = text.split(",")
        if parts[-1] == "":
            # The documented trailing-comma one-element form (``distances=3,``).
            parts = parts[:-1]
        if not parts or any(part == "" for part in parts):
            raise argparse.ArgumentTypeError(
                f"empty element in tuple value for parameter {key!r}: {raw!r}"
            )
        return key, tuple(_parse_scalar(part) for part in parts)
    return key, _parse_scalar(text)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-qec",
        description=(
            "Reproduction of 'Better Than Worst-Case Decoding for Quantum "
            "Error Correction' (ASPLOS 2023)"
        ),
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment and print its table")
    run_parser.add_argument("experiment", help="experiment id (see 'list')")
    run_parser.add_argument(
        "--param",
        action="append",
        type=_parse_param,
        default=[],
        metavar="KEY=VALUE",
        help="override a runner keyword argument (repeatable)",
    )
    run_parser.add_argument(
        "--engine",
        choices=("batch", "loop", "sharded"),
        default=None,
        help=(
            "Monte-Carlo engine for memory experiments (fig14): 'batch' "
            "vectorises trial triage (default), 'loop' is the per-trial "
            "reference oracle (bit-identical to batch under a fixed seed), "
            "'sharded' spreads trial shards over worker processes "
            "(deterministic per seed, independent of --workers)"
        ),
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for sharded Monte-Carlo runs: fig14 with "
            "--engine sharded, and the fig11/fig12/fig16 coverage sweeps "
            "(default: CPU count; results never depend on the value)"
        ),
    )
    run_parser.add_argument(
        "--chunk-cycles",
        type=_int_or_auto,
        default=None,
        metavar="N",
        help=(
            "cycles per shard for the sharded coverage experiments "
            "(fig11/fig12/fig16); with the seed it fully determines results. "
            "'auto' sizes shards per point from the budget, worker count, "
            "and code distance"
        ),
    )
    run_parser.add_argument(
        "--schedule",
        choices=("sweep", "point"),
        default=None,
        help=(
            "sharded dispatch mode for the sweep experiments: 'sweep' (the "
            "default for sharded runs) interleaves every pending point's "
            "shards through one persistent worker pool, 'point' builds one "
            "pool per sweep point; results are byte-identical either way"
        ),
    )
    run_parser.add_argument(
        "--target-ci-width",
        type=float,
        default=None,
        metavar="W",
        help=(
            "adaptive sampling: stop each sweep point once the Wilson "
            "interval on its tracked proportion (coverage for fig11/fig12/"
            "fig16, logical error rate for fig14, where it implies "
            "--adaptive) is at most this wide, instead of burning the full "
            "fixed budget"
        ),
    )
    run_parser.add_argument(
        "--adaptive",
        action="store_true",
        help=(
            "fig14: Wilson-converged adaptive trial allocation on the "
            "sharded engine (see --target-ci-width; the scale's per-point "
            "trial budget becomes the cap)"
        ),
    )
    run_parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fault tolerance for sharded runs (fig14 with --engine sharded / "
            "--scale paper / --adaptive): failed or timed-out shard attempts "
            "re-dispatched per shard before the run gives up (default 2; "
            "retried shards replay their RNG streams bit-identically, so "
            "results never depend on the value)"
        ),
    )
    run_parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECS",
        help=(
            "wall-clock budget per shard attempt for sharded runs: a hung "
            "worker pool is killed, respawned, and the shard re-dispatched "
            "(charged one retry; see --max-retries)"
        ),
    )
    run_parser.add_argument(
        "--fallback",
        default=None,
        metavar="NAME",
        help=(
            "off-chip fallback for the two-tier Clique hierarchy "
            "(fig14/fig14_fallbacks): 'mwpm' (blossom, default) or "
            "'union_find' (near-linear clustering)"
        ),
    )
    run_parser.add_argument(
        "--tiers",
        default=None,
        metavar="T0,T1,...",
        help=(
            "full decoder-cascade spec for fig14/fig14_fallbacks, "
            "generalising --fallback: comma-separated tier names starting "
            "with 'clique', e.g. 'clique,union_find,mwpm' (MWPM decodes only "
            "the union-find tier's disagreement set)"
        ),
    )
    run_parser.add_argument(
        "--escalation-cluster-size",
        type=int,
        default=None,
        metavar="N",
        help=(
            "deep cascades (--tiers with 3+ tiers): largest cluster an "
            "intermediate tier resolves in place before escalating just that "
            "cluster's events to the next tier (default: adaptive per "
            "distance; see repro.decoders.default_escalation_cluster_size)"
        ),
    )
    run_parser.add_argument(
        "--no-packed",
        action="store_false",
        dest="packed",
        default=None,
        help=(
            "memory experiments (fig14/fig14_fallbacks): run the batch/"
            "sharded engines on the unpacked uint8 reference path instead of "
            "the default uint64 bitplane kernels (bit-identical results "
            "under the same seed; packed only changes throughput and peak "
            "memory — see README.md -> 'Packed kernels')"
        ),
    )
    run_parser.add_argument(
        "--scale",
        choices=("laptop", "paper"),
        default=None,
        help=(
            "fig14 sweep scale: 'laptop' (d=3-7, flat budget, default) or "
            "'paper' (d=3-11 with per-distance trial budgets, sharded engine)"
        ),
    )
    run_parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help=(
            "persistent result store for the sweep experiments (fig11/fig12/"
            "fig14/fig16): every sweep point is written to DIR as it "
            "completes, and a re-run against the same DIR skips points that "
            "are already present (adaptive points additionally checkpoint "
            "per Wilson wave, so a killed run resumes mid-point)"
        ),
    )
    resume_group = run_parser.add_mutually_exclusive_group()
    resume_group.add_argument(
        "--resume",
        action="store_true",
        default=True,
        help=(
            "with --store: reuse already-present points and compute only the "
            "missing ones (the default)"
        ),
    )
    resume_group.add_argument(
        "--force",
        action="store_true",
        help="with --store: recompute every point and overwrite stored results",
    )

    lint_parser = subparsers.add_parser(
        "lint",
        help=(
            "statically check contract rules (determinism, store keys, "
            "import hygiene, dtypes, tier protocol) over source paths"
        ),
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help=(
            "files or directories to lint (default: the installed repro "
            "package itself)"
        ),
    )
    lint_parser.add_argument(
        "--select",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run exclusively (e.g. DET001,KEY001)",
    )
    lint_parser.add_argument(
        "--ignore",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    lint_parser.add_argument(
        "--format",
        dest="output_format",
        choices=("text", "json"),
        default="text",
        help=(
            "output format: 'text' (file:line:col lines) or 'json' (stable "
            "sorted payload for editors/CI)"
        ),
    )
    lint_parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table (id, contract) and exit",
    )

    store_parser = subparsers.add_parser(
        "store", help="maintain a result-store directory"
    )
    store_sub = store_parser.add_subparsers(dest="store_command", required=True)
    compact_parser = store_sub.add_parser(
        "compact",
        help=(
            "rewrite DIR/results.jsonl keeping only the last-write-wins "
            "record per key, and delete adaptive checkpoints orphaned by "
            "already-persisted results"
        ),
    )
    compact_parser.add_argument("dir", metavar="DIR", help="result-store directory")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    # `python -m repro fig11 --workers 4` shorthand: a first token that is not
    # a subcommand or an option is an experiment id for the `run` subcommand.
    if argv and argv[0] not in ("list", "run", "store", "lint") and not argv[0].startswith(
        "-"
    ):
        argv.insert(0, "run")
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in available_experiments():
            print(experiment_id)
        return 0

    if args.command == "lint":
        from repro.analysis.lint_cli import run_lint

        return run_lint(args)

    if args.command == "store":
        if args.store_command == "compact":
            from repro.store import ResultStore

            try:
                summary = ResultStore(args.dir).compact()
            except (ReproError, OSError) as error:
                print(f"error: {error}", file=sys.stderr)
                return 1
            quarantined = (
                f" ({summary['lines_quarantined']} of them corrupt/quarantined)"
                if summary["lines_quarantined"]
                else ""
            )
            print(
                f"compacted {args.dir}: kept {summary['records_kept']} records, "
                f"dropped {summary['lines_dropped']} stale lines{quarantined} and "
                f"{summary['checkpoints_dropped']} orphaned checkpoints"
            )
            return 0
        parser.error(f"unknown store command {args.store_command!r}")  # pragma: no cover

    if args.command == "run":
        if args.force and args.store is None:
            parser.error("--force is only meaningful with --store DIR")
        if args.tiers is not None and args.fallback is not None:
            parser.error("--tiers and --fallback are mutually exclusive")
        params = dict(args.param)
        for flag in (
            "engine",
            "workers",
            "fallback",
            "tiers",
            "escalation_cluster_size",
            "scale",
            "chunk_cycles",
            "target_ci_width",
            "max_retries",
            "shard_timeout",
            "packed",
            "schedule",
        ):
            value = getattr(args, flag)
            if value is not None:
                params[flag] = value
        if args.adaptive:
            params["adaptive"] = True
        if args.store is not None:
            params["store"] = args.store
            if args.force:
                params["force"] = True
        try:
            result = run_experiment(args.experiment, **params)
        except (ReproError, TypeError, ValueError, OSError) as error:
            # TypeError / ValueError typically mean a malformed --param value
            # (e.g. a scalar where the runner expects a tuple); OSError an
            # unusable --store directory discovered mid-run.
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(result.format_table())
        return 0

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
