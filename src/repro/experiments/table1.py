"""Table 1 — the ERSFQ cell library used for decoder synthesis."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.hardware.cells import ERSFQ_LIBRARY_CELLS


def run() -> ExperimentResult:
    """Dump the Table 1 cell library (an input artefact, reproduced verbatim)."""
    rows = [
        {
            "cell": cell.name,
            "gate_delay_ps": cell.delay_ps,
            "area_um2": cell.area_um2,
            "jj_count": cell.jj_count,
        }
        for cell in ERSFQ_LIBRARY_CELLS
    ]
    return ExperimentResult(
        experiment_id="table1",
        title="ERSFQ cell library used for decoder synthesis",
        rows=rows,
    )


__all__ = ["run"]
