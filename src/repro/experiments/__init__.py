"""Experiment runners: one module per table/figure of the paper's evaluation.

Every runner returns an :class:`~repro.experiments.base.ExperimentResult`
whose rows are the data series behind the corresponding figure.  The
``registry`` module maps experiment ids (``fig04`` ... ``fig16``, ``table1``,
``headline``) to their runners; the command-line front-end and the benchmark
suite both go through it.
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import available_experiments, get_experiment, run_experiment

__all__ = [
    "ExperimentResult",
    "available_experiments",
    "get_experiment",
    "run_experiment",
]
