"""Fig. 13 — average off-chip data reduction: Clique vs AFS sparse compression."""

from __future__ import annotations

import math

from repro.bandwidth.afs import (
    afs_compression_reduction,
    clique_offchip_reduction,
    zero_suppression_reduction,
)
from repro.codes.rotated_surface import get_code
from repro.experiments.base import ExperimentResult
from repro.noise.models import PhenomenologicalNoise
from repro.simulation.coverage import simulate_clique_coverage

DEFAULT_DISTANCES = (3, 5, 7, 9, 11, 13, 15, 17, 21)
DEFAULT_ERROR_RATES = (1e-4, 1e-3, 5e-3, 1e-2)


def run(
    cycles: int = 20_000,
    seed: int = 2025,
    distances: tuple[int, ...] = DEFAULT_DISTANCES,
    error_rates: tuple[float, ...] = DEFAULT_ERROR_RATES,
) -> ExperimentResult:
    """Reproduce Fig. 13: off-chip data reduction of Clique, AFS and zero suppression.

    Clique's reduction is measured behaviourally (one over the simulated
    off-chip cycle fraction); AFS's is computed analytically from the sparse
    representation formula; finite simulations cap the Clique reduction at
    the number of simulated cycles when no cycle had to go off-chip.
    """
    rows = []
    for rate_index, error_rate in enumerate(error_rates):
        noise = PhenomenologicalNoise(error_rate)
        for distance_index, distance in enumerate(distances):
            code = get_code(distance)
            coverage = simulate_clique_coverage(
                code,
                noise,
                cycles,
                rng=seed + 1000 * rate_index + distance_index,
            )
            clique_reduction = clique_offchip_reduction(coverage.offchip_fraction)
            if math.isinf(clique_reduction):
                clique_reduction = float(cycles)
            afs_reduction = afs_compression_reduction(distance, error_rate)
            rows.append(
                {
                    "physical_error_rate": error_rate,
                    "code_distance": distance,
                    "clique_reduction_x": clique_reduction,
                    "afs_reduction_x": afs_reduction,
                    "zero_suppression_reduction_x": zero_suppression_reduction(
                        distance, error_rate
                    ),
                    "clique_vs_afs_x": clique_reduction / afs_reduction,
                }
            )
    notes = (
        "Paper observation: Clique reduces off-chip data by 10x-10000x more than\n"
        "AFS sparse-representation compression; AFS benefits grow with distance\n"
        "while Clique benefits shrink, but both saturate with Clique at least an\n"
        "order of magnitude ahead.  Clique reductions reported here are capped at\n"
        "the simulated cycle count when no off-chip decode was observed."
    )
    return ExperimentResult(
        experiment_id="fig13",
        title="Off-chip data reduction: Clique vs AFS",
        rows=rows,
        notes=notes,
    )


__all__ = ["run", "DEFAULT_DISTANCES", "DEFAULT_ERROR_RATES"]
