"""Fig. 14 — logical error rate of Clique+fallback vs the MWPM baseline.

Two scales are supported via ``scale=``:

* ``"laptop"`` (default): distances 3/5/7 with a flat trial budget — the
  statistical shape (near-identical curves) in seconds.
* ``"paper"``: the paper's full distance grid 3–11 with per-distance trial
  budgets and the sharded multiprocess engine by default — the regime where
  Fig. 14's interesting divergence at d=9/11 lives.

``adaptive=True`` (the CLI's ``--adaptive``) switches every point to
Wilson-converged trial allocation on the sharded engine: each (point,
decoder) run stops as soon as its logical-error-rate confidence interval is
at most ``target_ci_width`` wide, with the scale's fixed budget as the cap.

``compare_fallbacks`` (registry id ``fig14_fallbacks``) adds the off-chip
cost/accuracy trade-off rows: the same workload decoded through different
cascade specs (two-tier Clique+MWPM, two-tier Clique+union-find, and the
Section 8.1 three-tier ``clique,union_find,mwpm`` cascade by default), with
per-tier escalation rates and off-chip bandwidth alongside the logical error
rates and throughput.  ``tiers=`` (the CLI's ``--tiers``) restricts the
comparison to one cascade spec plus the two-tier MWPM reference.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.clique.cascade import DecoderCascade
from repro.codes.rotated_surface import RotatedSurfaceCode, get_code
from repro.decoders.mwpm import MWPMDecoder
from repro.decoders.registry import resolve_tier_spec
from repro.decoders.union_find import default_escalation_cluster_size
from repro.exceptions import ConfigurationError
from repro.experiments.base import ExperimentResult, resolve_fault_policy, sweep_cache
from repro.noise.models import PhenomenologicalNoise
from repro.noise.rng import point_seed
from repro.simulation.memory import run_memory_experiment
from repro.simulation.monte_carlo import WilsonStoppingRule, until_wilson
from repro.simulation.scheduler import SweepScheduler, memory_point, validate_schedule
from repro.simulation.shard import (
    AUTO_CHUNK,
    DEFAULT_SHARD_TRIALS,
    resolve_auto_chunk,
)
from repro.types import StabilizerType

DEFAULT_DISTANCES = (3, 5, 7)
DEFAULT_ERROR_RATES = (5e-3, 1e-2, 2e-2, 3e-2)
DEFAULT_TRIALS = 1_000

#: The paper's full distance grid (Fig. 14 runs d = 3 .. 11).
PAPER_DISTANCES = (3, 5, 7, 9, 11)
#: Per-distance trial budgets for ``scale="paper"``: more statistics where
#: trials are cheap, fewer where the off-chip fallback dominates, keeping the
#: whole sweep tractable while the curves stay well resolved.
PAPER_TRIAL_BUDGETS = {3: 20_000, 5: 10_000, 7: 5_000, 9: 2_000, 11: 1_000}


def _mwpm_factory(code: RotatedSurfaceCode, stype: StabilizerType) -> MWPMDecoder:
    """Baseline-decoder factory (module-level, so sharded workers can pickle it)."""
    return MWPMDecoder(code, stype)


#: Display labels for cascade tier names (``clique,union_find,mwpm`` renders
#: as ``Clique+UF+MWPM``).
_TIER_LABELS = {"clique": "Clique", "mwpm": "MWPM", "union_find": "UF"}


def _cascade_label(tier_names: tuple[str, ...]) -> str:
    return "+".join(_TIER_LABELS.get(name, name) for name in tier_names)


@dataclass(frozen=True)
class _CascadeFactory:
    """Picklable cascade factory carrying the resolved tier spec."""

    tiers: tuple[str, ...] = ("clique", "mwpm")
    escalation_cluster_size: "int | str" = "auto"

    def __call__(
        self, code: RotatedSurfaceCode, stype: StabilizerType
    ) -> DecoderCascade:
        return DecoderCascade(
            code,
            stype,
            tiers=self.tiers,
            escalation_cluster_size=self.escalation_cluster_size,
        )


@dataclass(frozen=True)
class _Scheduled:
    """Placeholder for a row cell whose point is pending in the sweep scheduler."""

    point_id: str


def _resolve_escalation_threshold(
    escalation_cluster_size: "int | str", distance: int
) -> int:
    """Resolve ``"auto"`` to the per-distance adaptive threshold.

    Used for the store key: the implicit ``"auto"`` spelling and its
    resolved explicit value must key identically, and a changed threshold
    must produce a distinct key (it changes the escalation split and the
    equal-weight tie-break paths).
    """
    if escalation_cluster_size == "auto":
        return default_escalation_cluster_size(distance)
    return int(escalation_cluster_size)


def _resolve_cascade(
    tiers: str | tuple[str, ...] | None, fallback: str | None
) -> tuple[str, ...]:
    """Resolve the ``tiers``/``fallback`` pair into validated tier names.

    ``tiers`` generalises (and supersedes) ``fallback``; passing both is
    rejected rather than silently preferring one.  Unknown names fail here —
    eagerly, with the registry's clean error listing the valid decoders —
    instead of surfacing from inside a decode call or a pooled worker.
    """
    if tiers is not None and fallback is not None:
        raise ConfigurationError(
            "pass either tiers=... (cascade spec) or fallback=... (two-tier "
            "shorthand), not both"
        )
    if tiers is None:
        return resolve_tier_spec(("clique", fallback if fallback is not None else "mwpm"))
    return resolve_tier_spec(tiers)


def _resolve_scale(
    scale: str,
    trials: int | None,
    distances: tuple[int, ...] | None,
    engine: str | None,
) -> tuple[dict[int, int], tuple[int, ...], str]:
    """Fill in the per-distance trial budgets, distance grid, and engine."""
    if scale == "laptop":
        distances = distances or DEFAULT_DISTANCES
        budget = {
            d: trials if trials is not None else DEFAULT_TRIALS for d in distances
        }
        return budget, distances, engine or "batch"
    if scale == "paper":
        distances = distances or PAPER_DISTANCES
        budget = {
            d: trials
            if trials is not None
            else PAPER_TRIAL_BUDGETS.get(d, DEFAULT_TRIALS)
            for d in distances
        }
        return budget, distances, engine or "sharded"
    raise ConfigurationError(f"scale must be 'laptop' or 'paper', got {scale!r}")


def _memory_point_config(
    distance: int,
    error_rate: float,
    rounds: int | None,
    trials: int,
    engine: str,
    decoder: str,
    tiers: tuple[str, ...] | None,
    stop: WilsonStoppingRule | None,
    chunk_trials: int | None = None,
    escalation_cluster_size: "int | str" = "auto",
) -> dict[str, object]:
    """The fully resolved, stream-determining config of one fig14 point.

    The result-store keying contract for one ``run_memory_experiment`` call:
    defaults are resolved (rounds to the code distance, the sharded engine's
    chunk size to :data:`~repro.simulation.shard.DEFAULT_SHARD_TRIALS`) so
    implicit and explicit spellings key identically, and ``workers`` is
    excluded because it never affects the counts.  ``packed`` is excluded
    for the same reason: the bitplane hot path is bit-identical to the
    unpacked one under the same seed, so a sweep computed either way is a
    warm hit for the other (pinned in
    ``tests/experiments/test_store_resume.py``).  Every excluded runner
    keyword is listed, with its reason, in the central
    :data:`repro.store.keys.KEY_EXCLUDED`; lint rule ``KEY001`` enforces
    that this function and that list jointly cover the full
    ``run_memory_experiment`` signature.

    Cascade topology participates in the key through the resolved tier
    names: a two-tier cascade keeps the historical ``"fallback"`` spelling
    (so stores populated before the N-tier refactor stay warm — the numbers
    are bit-identical), while deeper cascades add an explicit ``"tiers"``
    entry plus the *resolved* intermediate-tier escalation threshold (the
    ``"auto"`` spelling and its per-distance value key identically; the
    threshold shifts the escalation split, so it must key), making every
    distinct topology a distinct key.
    """
    config = {
        "kind": "memory",
        "distance": distance,
        "error_rate": error_rate,
        "rounds": rounds if rounds is not None else distance,
        "trials": trials,
        "engine": engine,
        "chunk_trials": (
            (chunk_trials if chunk_trials is not None else DEFAULT_SHARD_TRIALS)
            if engine == "sharded"
            else None
        ),
        "decoder": decoder,
        "fallback": tiers[1] if tiers is not None and len(tiers) == 2 else None,
        "stype": StabilizerType.X.value,
        "adaptive": None
        if stop is None
        else {
            "target_width": stop.target_width,
            "min_trials": stop.min_trials,
            "max_trials": stop.max_trials,
            "z": stop.z,
        },
    }
    if tiers is not None and len(tiers) > 2:
        config["tiers"] = list(tiers)
        config["escalation_cluster_size"] = _resolve_escalation_threshold(
            escalation_cluster_size, distance
        )
    return config


def run(
    trials: int | None = None,
    seed: int = 2026,
    distances: tuple[int, ...] | None = None,
    error_rates: tuple[float, ...] = DEFAULT_ERROR_RATES,
    rounds: int | None = None,
    engine: str | None = None,
    scale: str = "laptop",
    fallback: str | None = None,
    tiers: str | tuple[str, ...] | None = None,
    escalation_cluster_size: "int | str" = "auto",
    workers: int | None = None,
    chunk_trials: "int | str | None" = None,
    adaptive: bool = False,
    target_ci_width: float | None = None,
    min_trials: int = 200,
    store: object | None = None,
    force: bool = False,
    max_retries: int | None = None,
    shard_timeout: float | None = None,
    packed: bool = True,
    schedule: str | None = None,
) -> ExperimentResult:
    """Reproduce the Fig. 14 comparison (baseline vs Clique + fallback).

    Args:
        trials: flat per-point trial budget; ``None`` (default) picks the
            scale's budget (flat 1000 on laptop, per-distance on paper).
        seed: root seed; every (distance, rate, decoder) point derives its
            own stream from it.
        distances: code distances; ``None`` picks the scale's grid.
        error_rates: physical error rates swept per distance.
        rounds: noisy rounds per trial (defaults to the code distance).
        engine: Monte-Carlo engine (``"batch"``/``"loop"``/``"sharded"``);
            ``None`` picks batch on laptop scale, sharded on paper scale
            (``adaptive`` forces sharded).
        scale: ``"laptop"`` (seconds, d<=7) or ``"paper"`` (d=3-11 with
            per-distance budgets — the Fig. 14 divergence regime).
        fallback: two-tier shorthand — the hierarchy's single off-chip tier
            (``"mwpm"``, the default, or ``"union_find"``).
        tiers: full cascade spec generalising ``fallback`` — a
            comma-separated string or name tuple starting with ``"clique"``,
            e.g. ``"clique,union_find,mwpm"`` for the paper's Section 8.1
            three-tier cascade.  Mutually exclusive with ``fallback``.
        escalation_cluster_size: intermediate-tier per-cluster escalation
            threshold for cascades with three or more tiers; the default
            ``"auto"`` resolves per distance (see
            :func:`repro.decoders.union_find.default_escalation_cluster_size`).
            Participates in the store key with its resolved value.
        workers: worker processes for the sharded engine; rejected with any
            other engine (a silently ignored value would suggest the run was
            parallelised when it was not).
        chunk_trials: trials per shard for the sharded engine (default
            :data:`~repro.simulation.shard.DEFAULT_SHARD_TRIALS`); with the
            seed it fully determines the sharded result, so it participates
            in the store key with its resolved value.  ``"auto"`` resolves
            per point from the point's trial budget, the worker count, and
            the code distance (see
            :func:`~repro.simulation.shard.resolve_auto_chunk`), so short
            high-distance points still split into enough shards to keep a
            pool busy; the resolved integer is what enters the key.
        adaptive: stop each (point, decoder) run as soon as the Wilson
            interval on its logical error rate is at most ``target_ci_width``
            wide, instead of burning the full fixed budget.  The scale's
            per-point budget becomes the cap (adaptive never uses *more*
            trials than the fixed sweep), and the per-decoder
            ``baseline_trials``/``clique_trials`` columns report what each
            run actually consumed.
        target_ci_width: Wilson-interval width target (default 0.02);
            passing it implies ``adaptive`` — a width target on a
            non-adaptive run would otherwise be silently ignored.
        min_trials: floor below which adaptive runs never stop (clamped to
            the point budget).
        store: result-store directory (or ready store) — every (point,
            decoder) run is persisted as it completes and reused on re-runs,
            so a killed sweep recomputes only its missing points; adaptive
            runs additionally checkpoint per Wilson wave and resume
            mid-point.
        force: recompute and overwrite stored points.
        max_retries: sharded-engine fault tolerance — failed shard attempts
            re-dispatched per shard before giving up (default 2; retried
            shards replay their RNG streams bit-identically, so the value
            never affects results).  Rejected on non-sharded engines.
        shard_timeout: wall-clock budget per shard attempt in seconds for
            the sharded engine; a hung worker pool is killed and the shard
            re-dispatched.  Rejected on non-sharded engines.
        packed: run the batch/sharded engines on the uint64 bitplane hot
            path (default; the CLI's ``--no-packed`` turns it off).
            Bit-identical either way, so the flag is deliberately absent
            from the store key.
        schedule: sharded-engine dispatch mode — ``"sweep"`` (the default
            for sharded runs) interleaves every pending point's shards
            through one persistent worker pool via
            :class:`~repro.simulation.SweepScheduler`; ``"point"`` is the
            legacy one-pool-per-point path.  Byte-identical results either
            way (and deliberately absent from the store key), so the knob
            is pure wall-clock.  Rejected on non-sharded engines.
    """
    budget, distances, engine = _resolve_scale(scale, trials, distances, engine)
    if target_ci_width is not None:
        adaptive = True
    elif adaptive:
        target_ci_width = 0.02
    if adaptive:
        engine = "sharded"
    cascade_tiers = _resolve_cascade(tiers, fallback)
    hierarchy_name = _cascade_label(cascade_tiers)
    if schedule is not None:
        validate_schedule(schedule)
        if engine != "sharded":
            raise ConfigurationError(
                f"schedule={schedule!r} requires engine='sharded', got {engine!r}"
            )
    if chunk_trials == AUTO_CHUNK and engine != "sharded":
        raise ConfigurationError(
            f"chunk_trials='auto' requires engine='sharded', got {engine!r}"
        )
    use_sweep = engine == "sharded" and (schedule or "sweep") == "sweep"
    # Deliberately absent from _memory_point_config: fault recovery replays
    # shard streams bit-identically, so the policy (like workers) never
    # affects the stored counts.
    faults = resolve_fault_policy(max_retries, shard_timeout)
    cache = sweep_cache(store, "fig14", force)

    def _persist_hook(config, point_seed_value):
        # The scheduler fires this the moment the point's last shard lands,
        # so a kill mid-sweep leaves every finished point durably stored.
        return lambda result: cache.finish(config, point_seed_value, result)

    pending: list = []
    grid: list[tuple] = []
    for distance_index, distance in enumerate(distances):
        code = get_code(distance)
        for rate_index, error_rate in enumerate(error_rates):
            noise = PhenomenologicalNoise(error_rate)
            base_seed = point_seed(seed, distance_index, rate_index)
            point_trials = budget[distance]
            stop = (
                until_wilson(
                    target_ci_width,
                    min_trials=min(min_trials, point_trials),
                    max_trials=point_trials,
                )
                if adaptive
                else None
            )

            point_chunk = (
                resolve_auto_chunk(point_trials, workers, distance)
                if chunk_trials == AUTO_CHUNK
                else chunk_trials
            )

            def _decoder_run(decoder_label, factory, decoder_tiers=None):
                config = _memory_point_config(
                    distance,
                    error_rate,
                    rounds,
                    point_trials,
                    engine,
                    decoder_label,
                    decoder_tiers,
                    stop,
                    point_chunk,
                    escalation_cluster_size,
                )
                if use_sweep:
                    cached = cache.lookup(config, base_seed)
                    if cached is not None:
                        return cached
                    point_id = f"{distance_index}:{rate_index}:{decoder_label}"
                    pending.append(
                        memory_point(
                            point_id,
                            code,
                            noise,
                            factory,
                            trials=point_trials,
                            seed=base_seed,
                            rounds=rounds,
                            chunk_trials=(
                                point_chunk
                                if point_chunk is not None
                                else DEFAULT_SHARD_TRIALS
                            ),
                            stop=stop,
                            checkpoint=(
                                cache.checkpoint(config, base_seed)
                                if stop is not None
                                else None
                            ),
                            packed=packed,
                            decoder_name=decoder_label,
                            on_complete=_persist_hook(config, base_seed),
                        )
                    )
                    return _Scheduled(point_id)
                return cache.point(
                    config,
                    base_seed,
                    lambda: run_memory_experiment(
                        code,
                        noise,
                        factory,
                        trials=point_trials,
                        rounds=rounds,
                        rng=base_seed,
                        decoder_name=decoder_label,
                        engine=engine,
                        workers=workers,
                        chunk_trials=point_chunk,
                        faults=faults,
                        packed=packed,
                        adaptive=stop,
                        checkpoint=(
                            cache.checkpoint(config, base_seed)
                            if stop is not None
                            else None
                        ),
                    ),
                )

            baseline = _decoder_run("MWPM", _mwpm_factory)
            hierarchical = _decoder_run(
                hierarchy_name,
                _CascadeFactory(cascade_tiers, escalation_cluster_size),
                cascade_tiers,
            )
            grid.append((distance, error_rate, point_trials, baseline, hierarchical))
    scheduled = (
        SweepScheduler(workers=workers, faults=faults).run(pending) if pending else {}
    )

    def _resolve(ref):
        return scheduled[ref.point_id] if isinstance(ref, _Scheduled) else ref

    rows = []
    for distance, error_rate, point_trials, baseline, hierarchical in grid:
        baseline = _resolve(baseline)
        hierarchical = _resolve(hierarchical)
        rows.append(
            {
                "code_distance": distance,
                "physical_error_rate": error_rate,
                "trials": point_trials,
                "baseline_trials": baseline.trials,
                "clique_trials": hierarchical.trials,
                "baseline_logical_error_rate": baseline.logical_error_rate,
                "clique_logical_error_rate": hierarchical.logical_error_rate,
                "baseline_ci_high": baseline.confidence_interval[1],
                "clique_ci_high": hierarchical.confidence_interval[1],
                "onchip_round_fraction": hierarchical.onchip_round_fraction,
            }
        )
    notes = (
        "Paper observation: Clique+MWPM tracks the MWPM baseline almost exactly\n"
        "at d=3/5/7 and is marginally worse at d=9/11 because the primary design\n"
        "only uses two measurement rounds for persistence filtering.\n"
        f"(scale={scale}, engine={engine}, tiers={','.join(cascade_tiers)}"
        + (f", adaptive: Wilson width <= {target_ci_width})" if adaptive else ")")
    )
    return ExperimentResult(
        experiment_id="fig14",
        title=f"Logical error rate: MWPM baseline vs {hierarchy_name}",
        rows=rows,
        notes=notes,
    )


#: Cascade specs compared by default in ``fig14_fallbacks``: both two-tier
#: hierarchies plus the paper's Section 8.1 three-tier cascade.
DEFAULT_FALLBACK_SPECS = (
    ("clique", "mwpm"),
    ("clique", "union_find"),
    ("clique", "union_find", "mwpm"),
)


def _format_fractions(values: tuple[float, ...]) -> str:
    """Render a per-tier fraction tuple as a compact ``a/b/c`` column value."""
    if not values:
        return "-"
    return "/".join(f"{value:.4f}" for value in values)


def compare_fallbacks(
    trials: int = 600,
    seed: int = 2026,
    distances: tuple[int, ...] = (5, 7),
    error_rate: float = 1e-2,
    rounds: int | None = None,
    engine: str = "batch",
    workers: int | None = None,
    fallback: str | None = None,
    tiers: str | tuple[str, ...] | None = None,
    escalation_cluster_size: "int | str" = "auto",
    packed: bool = True,
) -> ExperimentResult:
    """Accuracy/throughput of the hierarchy's off-chip cascades side by side.

    One row per (distance, cascade spec): the union-find clustering decoder
    scales near-linearly where blossom is cubic, at some accuracy cost — and
    the three-tier ``clique,union_find,mwpm`` cascade of the paper's Section
    8.1 recovers most of MWPM's accuracy while shipping only the union-find
    tier's *disagreement set* to the exact matcher.  Wall-clock throughput is
    measured around the full memory experiment, so it reflects each tier's
    real share of the pipeline; the per-tier columns report where trials
    terminated (``tier_trial_split``), the fraction escalated past each tier
    boundary (``escalation_rates``), and the off-chip bandwidth in detection
    rounds per trial entering tier 1 (``offchip_rounds_per_trial``) and the
    final tier (``final_tier_rounds_per_trial``).

    ``fallback`` restricts the comparison to a single two-tier hierarchy
    (the CLI's ``--fallback`` flag); ``tiers`` (the CLI's ``--tiers``)
    compares one full cascade spec against the two-tier MWPM reference.
    """
    if tiers is not None and fallback is not None:
        raise ConfigurationError(
            "pass either tiers=... (cascade spec) or fallback=... (two-tier "
            "shorthand), not both"
        )
    if tiers is not None:
        spec = resolve_tier_spec(tiers)
        specs = [("clique", "mwpm"), spec] if spec != ("clique", "mwpm") else [spec]
    elif fallback is not None:
        specs = [resolve_tier_spec(("clique", fallback))]
    else:
        specs = [resolve_tier_spec(spec) for spec in DEFAULT_FALLBACK_SPECS]
    rows = []
    for distance_index, distance in enumerate(distances):
        code = get_code(distance)
        noise = PhenomenologicalNoise(error_rate)
        base_seed = point_seed(seed, distance_index)
        for spec in specs:
            start = time.perf_counter()
            result = run_memory_experiment(
                code,
                noise,
                _CascadeFactory(spec, escalation_cluster_size),
                trials=trials,
                rounds=rounds,
                rng=base_seed,
                decoder_name=_cascade_label(spec),
                engine=engine,
                workers=workers,
                packed=packed,
            )
            elapsed = time.perf_counter() - start
            rows.append(
                {
                    "code_distance": distance,
                    "physical_error_rate": error_rate,
                    "tiers": ",".join(spec),
                    "trials": trials,
                    "logical_error_rate": result.logical_error_rate,
                    "ci_high": result.confidence_interval[1],
                    "onchip_round_fraction": result.onchip_round_fraction,
                    "tier_trial_split": _format_fractions(
                        result.tier_trial_fractions
                    ),
                    "escalation_rates": _format_fractions(result.escalation_rates),
                    "offchip_rounds_per_trial": round(
                        result.tier_rounds_per_trial(1), 4
                    ),
                    "final_tier_rounds_per_trial": round(
                        result.tier_rounds_per_trial(result.num_tiers - 1), 4
                    ),
                    "trials_per_sec": round(trials / elapsed, 1),
                }
            )
    notes = (
        "Same seed per distance, so every cascade decodes identical error\n"
        "histories; any logical-error-rate gap is purely the off-chip tiers'\n"
        "accuracy.  escalation_rates lists, per tier boundary, the fraction of\n"
        "trials handed past that tier; *_rounds_per_trial are the boundary\n"
        "bandwidths in detection rounds."
    )
    return ExperimentResult(
        experiment_id="fig14_fallbacks",
        title="Off-chip cascade trade-off: MWPM vs union-find vs three-tier",
        rows=rows,
        notes=notes,
    )


__all__ = [
    "run",
    "compare_fallbacks",
    "DEFAULT_DISTANCES",
    "DEFAULT_ERROR_RATES",
    "DEFAULT_FALLBACK_SPECS",
    "PAPER_DISTANCES",
    "PAPER_TRIAL_BUDGETS",
]
