"""Fig. 14 — logical error rate of Clique+MWPM vs the MWPM baseline."""

from __future__ import annotations

from repro.clique.hierarchical import HierarchicalDecoder
from repro.codes.rotated_surface import RotatedSurfaceCode, get_code
from repro.decoders.mwpm import MWPMDecoder
from repro.experiments.base import ExperimentResult
from repro.noise.models import PhenomenologicalNoise
from repro.simulation.memory import run_memory_experiment
from repro.types import StabilizerType

DEFAULT_DISTANCES = (3, 5, 7)
DEFAULT_ERROR_RATES = (5e-3, 1e-2, 2e-2, 3e-2)


def _mwpm_factory(code: RotatedSurfaceCode, stype: StabilizerType) -> MWPMDecoder:
    return MWPMDecoder(code, stype)


def _hierarchical_factory(code: RotatedSurfaceCode, stype: StabilizerType) -> HierarchicalDecoder:
    return HierarchicalDecoder(code, stype)


def run(
    trials: int = 1_000,
    seed: int = 2026,
    distances: tuple[int, ...] = DEFAULT_DISTANCES,
    error_rates: tuple[float, ...] = DEFAULT_ERROR_RATES,
    rounds: int | None = None,
    engine: str = "batch",
) -> ExperimentResult:
    """Reproduce the Fig. 14 comparison (baseline vs Clique + baseline).

    The paper runs distances 3-11 over a billion cycles; the default here is
    laptop-scale (the statistical shape — near-identical curves, with at most
    a marginal gap at larger distances — is what the benchmark asserts).

    ``engine`` selects the Monte-Carlo engine (``"batch"`` vectorised /
    ``"loop"`` per-trial oracle); both are bit-identical under a fixed seed,
    so the choice only affects wall-clock time.
    """
    rows = []
    for distance_index, distance in enumerate(distances):
        code = get_code(distance)
        for rate_index, error_rate in enumerate(error_rates):
            noise = PhenomenologicalNoise(error_rate)
            base_seed = seed + 100 * distance_index + rate_index
            baseline = run_memory_experiment(
                code,
                noise,
                _mwpm_factory,
                trials=trials,
                rounds=rounds,
                rng=base_seed,
                decoder_name="MWPM",
                engine=engine,
            )
            hierarchical = run_memory_experiment(
                code,
                noise,
                _hierarchical_factory,
                trials=trials,
                rounds=rounds,
                rng=base_seed,
                decoder_name="Clique+MWPM",
                engine=engine,
            )
            rows.append(
                {
                    "code_distance": distance,
                    "physical_error_rate": error_rate,
                    "trials": trials,
                    "baseline_logical_error_rate": baseline.logical_error_rate,
                    "clique_logical_error_rate": hierarchical.logical_error_rate,
                    "baseline_ci_high": baseline.confidence_interval[1],
                    "clique_ci_high": hierarchical.confidence_interval[1],
                    "onchip_round_fraction": hierarchical.onchip_round_fraction,
                }
            )
    notes = (
        "Paper observation: Clique+MWPM tracks the MWPM baseline almost exactly\n"
        "at d=3/5/7 and is marginally worse at d=9/11 because the primary design\n"
        "only uses two measurement rounds for persistence filtering."
    )
    return ExperimentResult(
        experiment_id="fig14",
        title="Logical error rate: MWPM baseline vs Clique+MWPM",
        rows=rows,
        notes=notes,
    )


__all__ = ["run", "DEFAULT_DISTANCES", "DEFAULT_ERROR_RATES"]
