"""Shared (error rate x distance) Clique-coverage sweep body.

Fig. 11 and Fig. 12 are the same Monte-Carlo sweep read through different
columns; this module owns the loop both runners delegate to — per-point
spawn-key seeding, the sharded/adaptive engine knobs, and the result-store
integration (each point stored under its resolved coverage config as it
completes, reused on re-runs, checkpointed per Wilson wave when adaptive).

With the sharded engine engaged, the sweep defaults to ``schedule="sweep"``:
every uncached point's shards are interleaved through one persistent worker
pool (:class:`~repro.simulation.SweepScheduler`) instead of each point
spinning up its own; each point is persisted the moment its last shard lands,
so kill-mid-sweep resume behaves exactly as before.  Results are
byte-identical to the per-point path at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.codes.rotated_surface import get_code
from repro.exceptions import ConfigurationError
from repro.experiments.base import ExperimentResult
from repro.noise.models import PhenomenologicalNoise
from repro.noise.rng import point_seed
from repro.simulation.coverage import (
    CoverageResult,
    _is_sharded,
    resolve_coverage_config,
    simulate_clique_coverage,
)
from repro.simulation.monte_carlo import until_wilson
from repro.simulation.scheduler import (
    SweepScheduler,
    coverage_point,
    validate_schedule,
)

#: Builds one table row from a sweep point's (rate, distance, result).
CoverageRowBuilder = Callable[[float, int, CoverageResult], dict[str, object]]


@dataclass(frozen=True)
class _Scheduled:
    """Placeholder for a sweep cell whose point is pending in the scheduler."""

    point_id: str


def run_coverage_sweep(
    cache,
    experiment_id: str,
    title: str,
    cycles: int,
    seed: int,
    distances: tuple[int, ...],
    error_rates: tuple[float, ...],
    measurement_rounds: int,
    workers: int | None,
    chunk_cycles: "int | str | None",
    target_ci_width: float | None,
    row_of: CoverageRowBuilder,
    notes: str,
    schedule: str | None = None,
) -> ExperimentResult:
    """Run the coverage grid through a sweep cache and tabulate with ``row_of``.

    ``cache`` is the runner's :class:`~repro.store.SweepCache` (a transparent
    pass-through when no store is configured).  ``schedule`` selects the
    sharded dispatch mode (``"sweep"``/``"point"``, default ``"sweep"``);
    it is rejected when the sharded engine is not engaged.
    """
    sharded = _is_sharded(workers, chunk_cycles, target_ci_width)
    if schedule is not None:
        validate_schedule(schedule)
        if not sharded:
            raise ConfigurationError(
                "schedule is only meaningful with the sharded engine: pass "
                "workers, chunk_cycles, or target_ci_width"
            )
    use_sweep = sharded and (schedule or "sweep") == "sweep"

    def _persist_hook(config, base_seed):
        # Fired by the scheduler the moment the point's last shard lands, so
        # a kill mid-sweep leaves every finished point durably stored.
        return lambda result: cache.finish(config, base_seed, result)

    pending: list = []
    grid: list[tuple] = []
    for rate_index, error_rate in enumerate(error_rates):
        noise = PhenomenologicalNoise(error_rate)
        for distance_index, distance in enumerate(distances):
            code = get_code(distance)
            config = resolve_coverage_config(
                cycles,
                noise,
                distance,
                measurement_rounds=measurement_rounds,
                workers=workers,
                chunk_cycles=chunk_cycles,
                target_ci_width=target_ci_width,
            )
            base_seed = point_seed(seed, rate_index, distance_index)
            if use_sweep:
                result = cache.lookup(config, base_seed)
                if result is None:
                    point_id = f"{rate_index}:{distance_index}"
                    stop = (
                        until_wilson(
                            target_ci_width,
                            min_trials=config["min_cycles"],
                            max_trials=cycles,
                        )
                        if target_ci_width is not None
                        else None
                    )
                    pending.append(
                        coverage_point(
                            point_id,
                            code,
                            noise,
                            cycles=cycles,
                            seed=base_seed,
                            measurement_rounds=measurement_rounds,
                            chunk_cycles=config["chunk_cycles"],
                            stop=stop,
                            checkpoint=(
                                cache.checkpoint(config, base_seed)
                                if target_ci_width is not None
                                else None
                            ),
                            on_complete=_persist_hook(config, base_seed),
                        )
                    )
                    result = _Scheduled(point_id)
            else:
                result = cache.point(
                    config,
                    base_seed,
                    lambda: simulate_clique_coverage(
                        code,
                        noise,
                        cycles,
                        measurement_rounds=measurement_rounds,
                        rng=base_seed,
                        workers=workers,
                        chunk_cycles=chunk_cycles,
                        target_ci_width=target_ci_width,
                        checkpoint=(
                            cache.checkpoint(config, base_seed)
                            if target_ci_width is not None
                            else None
                        ),
                    ),
                )
            grid.append((error_rate, distance, result))
    scheduled = SweepScheduler(workers=workers).run(pending) if pending else {}
    rows = []
    for error_rate, distance, result in grid:
        if isinstance(result, _Scheduled):
            result = scheduled[result.point_id]
        rows.append(row_of(error_rate, distance, result))
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        rows=rows,
        notes=notes,
    )


__all__ = ["CoverageRowBuilder", "run_coverage_sweep"]
