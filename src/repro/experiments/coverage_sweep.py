"""Shared (error rate x distance) Clique-coverage sweep body.

Fig. 11 and Fig. 12 are the same Monte-Carlo sweep read through different
columns; this module owns the loop both runners delegate to — per-point
spawn-key seeding, the sharded/adaptive engine knobs, and the result-store
integration (each point stored under its resolved coverage config as it
completes, reused on re-runs, checkpointed per Wilson wave when adaptive).
"""

from __future__ import annotations

from typing import Callable

from repro.codes.rotated_surface import get_code
from repro.experiments.base import ExperimentResult
from repro.noise.models import PhenomenologicalNoise
from repro.noise.rng import point_seed
from repro.simulation.coverage import (
    CoverageResult,
    resolve_coverage_config,
    simulate_clique_coverage,
)

#: Builds one table row from a sweep point's (rate, distance, result).
CoverageRowBuilder = Callable[[float, int, CoverageResult], dict[str, object]]


def run_coverage_sweep(
    cache,
    experiment_id: str,
    title: str,
    cycles: int,
    seed: int,
    distances: tuple[int, ...],
    error_rates: tuple[float, ...],
    measurement_rounds: int,
    workers: int | None,
    chunk_cycles: int | None,
    target_ci_width: float | None,
    row_of: CoverageRowBuilder,
    notes: str,
) -> ExperimentResult:
    """Run the coverage grid through a sweep cache and tabulate with ``row_of``.

    ``cache`` is the runner's :class:`~repro.store.SweepCache` (a transparent
    pass-through when no store is configured).
    """
    rows = []
    for rate_index, error_rate in enumerate(error_rates):
        noise = PhenomenologicalNoise(error_rate)
        for distance_index, distance in enumerate(distances):
            code = get_code(distance)
            config = resolve_coverage_config(
                cycles,
                noise,
                distance,
                measurement_rounds=measurement_rounds,
                workers=workers,
                chunk_cycles=chunk_cycles,
                target_ci_width=target_ci_width,
            )
            base_seed = point_seed(seed, rate_index, distance_index)
            result = cache.point(
                config,
                base_seed,
                lambda: simulate_clique_coverage(
                    code,
                    noise,
                    cycles,
                    measurement_rounds=measurement_rounds,
                    rng=base_seed,
                    workers=workers,
                    chunk_cycles=chunk_cycles,
                    target_ci_width=target_ci_width,
                    checkpoint=(
                        cache.checkpoint(config, base_seed)
                        if target_ci_width is not None
                        else None
                    ),
                ),
            )
            rows.append(row_of(error_rate, distance, result))
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        rows=rows,
        notes=notes,
    )


__all__ = ["CoverageRowBuilder", "run_coverage_sweep"]
