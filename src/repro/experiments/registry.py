"""Registry mapping experiment ids to their runner callables."""

from __future__ import annotations

from typing import Callable

from repro.exceptions import ExperimentNotFoundError
from repro.experiments import (
    fig04,
    fig09,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    headline,
    table1,
)
from repro.experiments.base import ExperimentResult

_REGISTRY: dict[str, Callable[..., ExperimentResult]] = {
    "fig04": fig04.run,
    "fig09": fig09.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "fig14": fig14.run,
    "fig14_fallbacks": fig14.compare_fallbacks,
    "fig15": fig15.run,
    "fig16": fig16.run,
    "table1": table1.run,
    "headline": headline.run,
}


def available_experiments() -> tuple[str, ...]:
    """Ids of every registered experiment, sorted."""
    return tuple(sorted(_REGISTRY))


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up an experiment runner by id."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError as exc:
        raise ExperimentNotFoundError(experiment_id, available_experiments()) from exc


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run an experiment by id, forwarding keyword parameters to its runner."""
    return get_experiment(experiment_id)(**kwargs)


__all__ = ["available_experiments", "get_experiment", "run_experiment"]
