"""Fig. 15 — power, area and latency of the SFQ Clique decoder (+ NISQ+ comparison)."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.hardware.estimates import clique_overheads, compare_with_nisqplus

DEFAULT_DISTANCES = (3, 5, 7, 9, 11, 13, 15, 17, 21)


def run(
    distances: tuple[int, ...] = DEFAULT_DISTANCES,
    measurement_rounds: int = 2,
) -> ExperimentResult:
    """Reproduce Fig. 15 (Clique hardware overheads vs code distance)."""
    rows = []
    for distance in distances:
        overheads = clique_overheads(distance, measurement_rounds)
        comparison = compare_with_nisqplus(distance, measurement_rounds)
        rows.append(
            {
                "code_distance": distance,
                "power_uw": overheads.power_uw,
                "area_mm2": overheads.area_mm2,
                "latency_ns": overheads.latency_ns,
                "jj_count": overheads.jj_count,
                "cells": overheads.cell_count,
                "fridge_logical_qubits": overheads.supported_logical_qubits,
                "nisqplus_power_x": comparison["power_improvement"],
                "nisqplus_area_x": comparison["area_improvement"],
                "nisqplus_latency_x": comparison["latency_improvement"],
            }
        )
    notes = (
        "Paper observation: Clique consumes ~10 uW (d=3) to ~500 uW (d=21) per\n"
        "logical qubit, under 100 mm^2 even at d=21, with 0.1-0.3 ns latency; at\n"
        "d=9 it is 37x / 25x / 15x better than NISQ+ in power / area / latency."
    )
    return ExperimentResult(
        experiment_id="fig15",
        title="Clique decoder hardware overheads (ERSFQ)",
        rows=rows,
        notes=notes,
    )


__all__ = ["run", "DEFAULT_DISTANCES"]
