"""Fig. 4 — error-signature distribution at the paper's operating points."""

from __future__ import annotations

from repro.codes.distance import PAPER_OPERATING_POINTS, OperatingPoint
from repro.codes.rotated_surface import get_code
from repro.experiments.base import ExperimentResult
from repro.noise.models import PhenomenologicalNoise
from repro.simulation.cycles import simulate_signature_distribution

#: Distances above this are skipped by default (the 5e-3 / 1e-12 point needs
#: d = 81, whose per-cycle matrices are large); pass ``max_distance=None`` to
#: include every paper point.
DEFAULT_MAX_DISTANCE = 31


def run(
    cycles: int = 50_000,
    seed: int = 2023,
    points: tuple[OperatingPoint, ...] = PAPER_OPERATING_POINTS,
    max_distance: int | None = DEFAULT_MAX_DISTANCE,
) -> ExperimentResult:
    """Reproduce the Fig. 4 stacked-bar data (per-cycle signature classes)."""
    rows = []
    skipped = []
    for index, point in enumerate(points):
        if max_distance is not None and point.code_distance > max_distance:
            skipped.append(point.label())
            continue
        code = get_code(point.code_distance)
        noise = PhenomenologicalNoise(point.physical_error_rate)
        distribution = simulate_signature_distribution(
            code, noise, cycles, rng=seed + index
        )
        rows.append(
            {
                "operating_point": point.label(),
                "physical_error_rate": point.physical_error_rate,
                "target_logical_error_rate": point.logical_error_rate,
                "code_distance": point.code_distance,
                "cycles": cycles,
                "all_zeros_pct": 100.0 * distribution.all_zeros_fraction,
                "local_ones_pct": 100.0 * distribution.local_ones_fraction,
                "complex_pct": 100.0 * distribution.complex_fraction,
                "trivial_pct": 100.0 * distribution.trivial_fraction,
            }
        )
    notes = (
        "Paper observation: in most practical operating points > 90% of the\n"
        "signatures are trivial (All-0s + Local-1s); Complex is only sizeable\n"
        "for the 5E-3 / 1E-12 point."
    )
    if skipped:
        notes += f"\nSkipped (distance above {max_distance}): {', '.join(skipped)}."
    return ExperimentResult(
        experiment_id="fig04",
        title="Error-signature distribution across operating points",
        rows=rows,
        notes=notes,
    )


__all__ = ["run", "DEFAULT_MAX_DISTANCE"]
