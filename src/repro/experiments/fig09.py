"""Fig. 9 — off-chip decode backlog under mean vs high-percentile provisioning."""

from __future__ import annotations

from repro.bandwidth.allocation import provision_for_percentile
from repro.bandwidth.stalling import StallSimulator
from repro.codes.rotated_surface import get_code
from repro.experiments.base import ExperimentResult
from repro.noise.models import PhenomenologicalNoise
from repro.simulation.coverage import simulate_clique_coverage

DEFAULT_NUM_LOGICAL_QUBITS = 1000
DEFAULT_ERROR_RATE = 1e-2
DEFAULT_DISTANCE = 11


def run(
    num_logical_qubits: int = DEFAULT_NUM_LOGICAL_QUBITS,
    physical_error_rate: float = DEFAULT_ERROR_RATE,
    code_distance: int = DEFAULT_DISTANCE,
    timeline_cycles: int = 100,
    coverage_cycles: int = 20_000,
    seed: int = 2027,
    percentiles: tuple[float, float] = (50.0, 99.0),
) -> ExperimentResult:
    """Reproduce the Fig. 9 timelines: decode demand vs provisioned bandwidth.

    The off-chip request rate per logical qubit is measured with the Clique
    coverage simulator, then a 1000-logical-qubit machine is provisioned for
    the two percentiles and simulated cycle by cycle.
    """
    code = get_code(code_distance)
    noise = PhenomenologicalNoise(physical_error_rate)
    coverage = simulate_clique_coverage(code, noise, coverage_cycles, rng=seed)
    offchip_rate = max(coverage.offchip_fraction, 1.0 / coverage_cycles)

    rows = []
    for index, percentile in enumerate(percentiles):
        plan = provision_for_percentile(num_logical_qubits, offchip_rate, percentile)
        simulator = StallSimulator(plan, seed=seed + 1 + index)
        result = simulator.run(timeline_cycles, keep_records=True)
        peak_demand = max((record.demand for record in result.records), default=0)
        rows.append(
            {
                "percentile": percentile,
                "offchip_rate_per_qubit": offchip_rate,
                "provisioned_decodes_per_cycle": plan.decodes_per_cycle,
                "mean_demand_per_cycle": plan.mean_requests_per_cycle,
                "peak_demand_per_cycle": peak_demand,
                "program_cycles": result.program_cycles,
                "stall_cycles": result.stall_cycles,
                "stall_fraction": result.stall_fraction,
                "max_backlog": result.max_backlog,
                "completed": result.completed,
            }
        )
    notes = (
        "Paper observation: provisioning at the mean (50th percentile) stalls on\n"
        "nearly every cycle and the backlog never drains; provisioning at the\n"
        "99th percentile stalls only rarely and carryovers clear immediately."
    )
    return ExperimentResult(
        experiment_id="fig09",
        title="Off-chip decode backlog vs provisioning percentile",
        rows=rows,
        notes=notes,
    )


def timeline(
    num_logical_qubits: int = DEFAULT_NUM_LOGICAL_QUBITS,
    offchip_rate: float = 0.05,
    percentile: float = 99.0,
    cycles: int = 100,
    seed: int = 2027,
) -> ExperimentResult:
    """Per-cycle timeline rows (the bar-chart material of Fig. 9)."""
    plan = provision_for_percentile(num_logical_qubits, offchip_rate, percentile)
    simulator = StallSimulator(plan, seed=seed)
    result = simulator.run(cycles, keep_records=True)
    rows = [
        {
            "cycle": record.cycle,
            "new_decodes": record.new_requests,
            "carryover": record.carryover,
            "served": record.served,
            "is_stall": record.is_stall,
            "bandwidth": plan.decodes_per_cycle,
        }
        for record in result.records
    ]
    return ExperimentResult(
        experiment_id="fig09-timeline",
        title=f"Per-cycle decode timeline at the {percentile:g}th percentile",
        rows=rows,
    )


__all__ = ["run", "timeline"]
