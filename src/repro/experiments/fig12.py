"""Fig. 12 — share of on-chip decodes that carry non-all-zero signatures."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, sweep_cache
from repro.experiments.coverage_sweep import run_coverage_sweep
from repro.experiments.fig11 import DEFAULT_DISTANCES, DEFAULT_ERROR_RATES


def run(
    cycles: int = 20_000,
    seed: int = 2024,
    distances: tuple[int, ...] = DEFAULT_DISTANCES,
    error_rates: tuple[float, ...] = DEFAULT_ERROR_RATES,
    measurement_rounds: int = 2,
    workers: int | None = None,
    chunk_cycles: "int | str | None" = None,
    target_ci_width: float | None = None,
    store: object | None = None,
    force: bool = False,
    schedule: str | None = None,
) -> ExperimentResult:
    """Reproduce Fig. 12: how much real decoding work Clique does beyond zero suppression.

    Seeding, engine selection, and result-store semantics follow
    :func:`repro.experiments.fig11.run`: spawn-key per-point seeds, sharded
    coverage under ``workers`` / ``chunk_cycles`` (``"auto"`` sizes shards
    per point), Wilson-adaptive sampling under ``target_ci_width``, sweep
    scheduling under ``schedule``, and per-point persistence/resume under
    ``store`` / ``force``.
    """
    return run_coverage_sweep(
        sweep_cache(store, "fig12", force),
        experiment_id="fig12",
        title="On-chip decodes that are not all-zeros",
        cycles=cycles,
        seed=seed,
        distances=distances,
        error_rates=error_rates,
        measurement_rounds=measurement_rounds,
        workers=workers,
        chunk_cycles=chunk_cycles,
        target_ci_width=target_ci_width,
        schedule=schedule,
        row_of=_fig12_row,
        notes=(
            "Paper observation: near the surface-code threshold (highest error\n"
            "rates) and at high code distances nearly all on-chip decodes carry a\n"
            "non-zero signature, so zero-suppression alone (ship everything that is\n"
            "not all-0s) would save almost no bandwidth — a real trivial-case\n"
            "decoder like Clique is required."
        ),
    )


def _fig12_row(error_rate: float, distance: int, result) -> dict[str, object]:
    return {
        "physical_error_rate": error_rate,
        "code_distance": distance,
        "cycles": result.cycles,
        "onchip_not_all_zeros_pct": 100.0 * result.onchip_nonzero_share,
        "nonzero_handled_onchip_pct": 100.0 * result.nonzero_coverage,
        "all_zeros_pct": 100.0 * (result.all_zero_cycles / result.cycles),
    }


__all__ = ["run"]
