"""Fig. 12 — share of on-chip decodes that carry non-all-zero signatures."""

from __future__ import annotations

from repro.codes.rotated_surface import get_code
from repro.experiments.base import ExperimentResult
from repro.experiments.fig11 import DEFAULT_DISTANCES, DEFAULT_ERROR_RATES
from repro.noise.models import PhenomenologicalNoise
from repro.noise.rng import point_seed
from repro.simulation.coverage import simulate_clique_coverage


def run(
    cycles: int = 20_000,
    seed: int = 2024,
    distances: tuple[int, ...] = DEFAULT_DISTANCES,
    error_rates: tuple[float, ...] = DEFAULT_ERROR_RATES,
    measurement_rounds: int = 2,
    workers: int | None = None,
    chunk_cycles: int | None = None,
    target_ci_width: float | None = None,
) -> ExperimentResult:
    """Reproduce Fig. 12: how much real decoding work Clique does beyond zero suppression.

    Seeding and engine selection follow :func:`repro.experiments.fig11.run`:
    spawn-key per-point seeds, sharded coverage under ``workers`` /
    ``chunk_cycles``, Wilson-adaptive sampling under ``target_ci_width``.
    """
    rows = []
    for rate_index, error_rate in enumerate(error_rates):
        noise = PhenomenologicalNoise(error_rate)
        for distance_index, distance in enumerate(distances):
            code = get_code(distance)
            result = simulate_clique_coverage(
                code,
                noise,
                cycles,
                measurement_rounds=measurement_rounds,
                rng=point_seed(seed, rate_index, distance_index),
                workers=workers,
                chunk_cycles=chunk_cycles,
                target_ci_width=target_ci_width,
            )
            rows.append(
                {
                    "physical_error_rate": error_rate,
                    "code_distance": distance,
                    "cycles": result.cycles,
                    "onchip_not_all_zeros_pct": 100.0 * result.onchip_nonzero_share,
                    "nonzero_handled_onchip_pct": 100.0 * result.nonzero_coverage,
                    "all_zeros_pct": 100.0 * (result.all_zero_cycles / result.cycles),
                }
            )
    notes = (
        "Paper observation: near the surface-code threshold (highest error\n"
        "rates) and at high code distances nearly all on-chip decodes carry a\n"
        "non-zero signature, so zero-suppression alone (ship everything that is\n"
        "not all-0s) would save almost no bandwidth — a real trivial-case\n"
        "decoder like Clique is required."
    )
    return ExperimentResult(
        experiment_id="fig12",
        title="On-chip decodes that are not all-zeros",
        rows=rows,
        notes=notes,
    )


__all__ = ["run"]
