"""Fig. 16 — bandwidth reduction vs execution-time increase trade-off."""

from __future__ import annotations

from repro.bandwidth.allocation import provision_for_percentile
from repro.bandwidth.stalling import StallSimulator
from repro.codes.rotated_surface import get_code
from repro.exceptions import ConfigurationError
from repro.experiments.base import ExperimentResult, sweep_cache
from repro.noise.models import PhenomenologicalNoise
from repro.noise.rng import point_seed
from repro.simulation.coverage import (
    _is_sharded,
    resolve_coverage_config,
    simulate_clique_coverage,
)
from repro.simulation.monte_carlo import until_wilson
from repro.simulation.scheduler import (
    SweepScheduler,
    coverage_point,
    validate_schedule,
)

#: Three operating points in the spirit of the paper's three curves.
DEFAULT_OPERATING_POINTS = ((1e-2, 11), (5e-3, 13), (1e-3, 9))
DEFAULT_PERCENTILES = (50.0, 75.0, 90.0, 95.0, 99.0, 99.9, 99.99)


def run(
    operating_points: tuple[tuple[float, int], ...] = DEFAULT_OPERATING_POINTS,
    percentiles: tuple[float, ...] = DEFAULT_PERCENTILES,
    num_logical_qubits: int = 1000,
    program_cycles: int = 20_000,
    coverage_cycles: int = 20_000,
    seed: int = 2028,
    workers: int | None = None,
    chunk_cycles: "int | str | None" = None,
    target_ci_width: float | None = None,
    store: object | None = None,
    force: bool = False,
    schedule: str | None = None,
) -> ExperimentResult:
    """Reproduce the Fig. 16 trade-off curves.

    For each operating point the per-qubit off-chip rate is measured, then a
    sweep over provisioning percentiles yields (bandwidth reduction,
    execution-time increase) pairs.

    The coverage measurement feeding ``provision_for_percentile`` and the
    :class:`StallSimulator` reuses the sharded coverage engine when
    ``workers``/``chunk_cycles``/``target_ci_width`` are given (deterministic
    per seed independent of the worker count; ``target_ci_width`` samples
    each operating point only until its coverage interval converges, with
    ``coverage_cycles`` as the budget cap).

    ``store`` persists both the per-operating-point coverage measurement and
    every (operating point, percentile) stall simulation as they complete,
    so an interrupted sweep resumes and re-runs are cache hits; ``force``
    recomputes and overwrites.

    With the sharded engine engaged, ``schedule="sweep"`` (the default)
    measures all operating points' coverage in one scheduler pre-pass —
    their shards share a single persistent pool — before the cheap in-process
    stall simulations run; ``schedule="point"`` keeps one pool per point.
    ``chunk_cycles="auto"`` sizes shards per operating point.  Both knobs
    are wall-clock only: results are byte-identical either way.
    """
    sharded = _is_sharded(workers, chunk_cycles, target_ci_width)
    if schedule is not None:
        validate_schedule(schedule)
        if not sharded:
            raise ConfigurationError(
                "schedule is only meaningful with the sharded engine: pass "
                "workers, chunk_cycles, or target_ci_width"
            )
    use_sweep = sharded and (schedule or "sweep") == "sweep"
    cache = sweep_cache(store, "fig16", force)
    coverages: dict[int, object] = {}
    if use_sweep:
        # Scheduler pre-pass: every uncached operating point's coverage
        # measurement shares one persistent pool; each is persisted the
        # moment its last shard lands.
        pending = []
        for point_index, (error_rate, distance) in enumerate(operating_points):
            code = get_code(distance)
            noise = PhenomenologicalNoise(error_rate)
            coverage_config = resolve_coverage_config(
                coverage_cycles,
                noise,
                distance,
                workers=workers,
                chunk_cycles=chunk_cycles,
                target_ci_width=target_ci_width,
            )
            coverage_seed = point_seed(seed, point_index)
            cached = cache.lookup(coverage_config, coverage_seed)
            if cached is not None:
                coverages[point_index] = cached
                continue

            def _persist(config, config_seed):
                return lambda result: cache.finish(config, config_seed, result)

            pending.append(
                coverage_point(
                    str(point_index),
                    code,
                    noise,
                    cycles=coverage_cycles,
                    seed=coverage_seed,
                    chunk_cycles=coverage_config["chunk_cycles"],
                    stop=(
                        until_wilson(
                            target_ci_width,
                            min_trials=coverage_config["min_cycles"],
                            max_trials=coverage_cycles,
                        )
                        if target_ci_width is not None
                        else None
                    ),
                    checkpoint=(
                        cache.checkpoint(coverage_config, coverage_seed)
                        if target_ci_width is not None
                        else None
                    ),
                    on_complete=_persist(coverage_config, coverage_seed),
                )
            )
        if pending:
            for pid, result in SweepScheduler(workers=workers).run(pending).items():
                coverages[int(pid)] = result
    rows = []
    for point_index, (error_rate, distance) in enumerate(operating_points):
        code = get_code(distance)
        noise = PhenomenologicalNoise(error_rate)
        coverage_config = resolve_coverage_config(
            coverage_cycles,
            noise,
            distance,
            workers=workers,
            chunk_cycles=chunk_cycles,
            target_ci_width=target_ci_width,
        )
        coverage_seed = point_seed(seed, point_index)
        if use_sweep:
            coverage = coverages[point_index]
        else:
            coverage = cache.point(
                coverage_config,
                coverage_seed,
                lambda: simulate_clique_coverage(
                    code,
                    noise,
                    coverage_cycles,
                    rng=coverage_seed,
                    workers=workers,
                    chunk_cycles=chunk_cycles,
                    target_ci_width=target_ci_width,
                    checkpoint=(
                        cache.checkpoint(coverage_config, coverage_seed)
                        if target_ci_width is not None
                        else None
                    ),
                ),
            )
        offchip_rate = max(coverage.offchip_fraction, 1.0 / coverage.cycles)
        for percentile_index, percentile in enumerate(percentiles):
            plan = provision_for_percentile(num_logical_qubits, offchip_rate, percentile)
            stall_config = {
                "kind": "stall",
                "distance": distance,
                "error_rate": error_rate,
                "num_logical_qubits": num_logical_qubits,
                "offchip_rate": offchip_rate,
                "percentile": percentile,
                "program_cycles": program_cycles,
            }
            stall_seed = point_seed(seed, point_index, percentile_index)
            result = cache.point(
                stall_config,
                stall_seed,
                lambda: StallSimulator(plan, seed=stall_seed).run(program_cycles),
            )
            rows.append(
                {
                    "physical_error_rate": error_rate,
                    "code_distance": distance,
                    "offchip_rate_per_qubit": offchip_rate,
                    "percentile": percentile,
                    "provisioned_decodes_per_cycle": plan.decodes_per_cycle,
                    "bandwidth_reduction_x": plan.bandwidth_reduction,
                    "execution_time_increase_pct": 100.0 * result.execution_time_increase,
                    "completed": result.completed,
                }
            )
    notes = (
        "Paper observation: provisioning strictly at the average Clique coverage\n"
        "never completes (unbounded backlog), while modestly conservative\n"
        "provisioning achieves order-of-magnitude bandwidth reductions at a ~10%\n"
        "execution-time increase; the knee of the curve moves with the operating\n"
        "point."
    )
    return ExperimentResult(
        experiment_id="fig16",
        title="Bandwidth reduction vs execution-time increase",
        rows=rows,
        notes=notes,
    )


__all__ = ["run", "DEFAULT_OPERATING_POINTS", "DEFAULT_PERCENTILES"]
