"""Fig. 11 — fraction of decodes the Clique decoder handles on-chip."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, sweep_cache
from repro.experiments.coverage_sweep import run_coverage_sweep

DEFAULT_DISTANCES = (3, 5, 7, 9, 11, 13, 15, 17, 21)
DEFAULT_ERROR_RATES = (1e-4, 5e-4, 1e-3, 5e-3, 1e-2)


def run(
    cycles: int = 20_000,
    seed: int = 2023,
    distances: tuple[int, ...] = DEFAULT_DISTANCES,
    error_rates: tuple[float, ...] = DEFAULT_ERROR_RATES,
    measurement_rounds: int = 2,
    workers: int | None = None,
    chunk_cycles: "int | str | None" = None,
    target_ci_width: float | None = None,
    store: object | None = None,
    force: bool = False,
    schedule: str | None = None,
) -> ExperimentResult:
    """Reproduce the Fig. 11 coverage curves (coverage vs distance per error rate).

    Every sweep point derives its seed via ``point_seed(seed, rate_index,
    distance_index)`` — ``SeedSequence`` spawn keys, collision-free for any
    grid size.  ``workers``/``chunk_cycles`` select the sharded coverage
    engine (deterministic per seed independent of the worker count);
    ``target_ci_width`` additionally makes each point adaptive, sampling only
    until the Wilson interval on its coverage reaches the target width (with
    ``cycles`` as the budget cap) — the ``cycles`` column then reports what
    each point actually consumed.

    ``store`` (the CLI's ``--store DIR``) persists every sweep point as it
    completes and reuses already-present points on re-runs, so an
    interrupted sweep resumes where it stopped; adaptive points additionally
    checkpoint per Wilson wave.  ``force`` recomputes and overwrites.

    ``chunk_cycles="auto"`` sizes shards per point from the budget, worker
    count, and distance; ``schedule`` picks the sharded dispatch mode —
    ``"sweep"`` (default) interleaves all points' shards through one
    persistent pool, ``"point"`` keeps the legacy pool-per-point path.
    Both knobs are wall-clock only: results are byte-identical either way.
    """
    return run_coverage_sweep(
        sweep_cache(store, "fig11", force),
        experiment_id="fig11",
        title="Clique on-chip decode coverage",
        cycles=cycles,
        seed=seed,
        distances=distances,
        error_rates=error_rates,
        measurement_rounds=measurement_rounds,
        workers=workers,
        chunk_cycles=chunk_cycles,
        target_ci_width=target_ci_width,
        schedule=schedule,
        row_of=_fig11_row,
        notes=(
            "Paper observation: coverage stays near/above ~70% even at a 1% physical\n"
            "error rate and distance 21, and approaches 100% as the error rate or\n"
            "distance decreases."
        ),
    )


def _fig11_row(error_rate: float, distance: int, result) -> dict[str, object]:
    low, high = result.coverage_interval
    return {
        "physical_error_rate": error_rate,
        "code_distance": distance,
        "cycles": result.cycles,
        "coverage_pct": 100.0 * result.coverage,
        "coverage_ci_low_pct": 100.0 * low,
        "coverage_ci_high_pct": 100.0 * high,
        "offchip_fraction": result.offchip_fraction,
    }


__all__ = ["run", "DEFAULT_DISTANCES", "DEFAULT_ERROR_RATES"]
