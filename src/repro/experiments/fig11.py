"""Fig. 11 — fraction of decodes the Clique decoder handles on-chip."""

from __future__ import annotations

from repro.codes.rotated_surface import get_code
from repro.experiments.base import ExperimentResult
from repro.noise.models import PhenomenologicalNoise
from repro.noise.rng import point_seed
from repro.simulation.coverage import simulate_clique_coverage

DEFAULT_DISTANCES = (3, 5, 7, 9, 11, 13, 15, 17, 21)
DEFAULT_ERROR_RATES = (1e-4, 5e-4, 1e-3, 5e-3, 1e-2)


def run(
    cycles: int = 20_000,
    seed: int = 2023,
    distances: tuple[int, ...] = DEFAULT_DISTANCES,
    error_rates: tuple[float, ...] = DEFAULT_ERROR_RATES,
    measurement_rounds: int = 2,
    workers: int | None = None,
    chunk_cycles: int | None = None,
    target_ci_width: float | None = None,
) -> ExperimentResult:
    """Reproduce the Fig. 11 coverage curves (coverage vs distance per error rate).

    Every sweep point derives its seed via ``point_seed(seed, rate_index,
    distance_index)`` — ``SeedSequence`` spawn keys, collision-free for any
    grid size.  ``workers``/``chunk_cycles`` select the sharded coverage
    engine (deterministic per seed independent of the worker count);
    ``target_ci_width`` additionally makes each point adaptive, sampling only
    until the Wilson interval on its coverage reaches the target width (with
    ``cycles`` as the budget cap) — the ``cycles`` column then reports what
    each point actually consumed.
    """
    rows = []
    for rate_index, error_rate in enumerate(error_rates):
        noise = PhenomenologicalNoise(error_rate)
        for distance_index, distance in enumerate(distances):
            code = get_code(distance)
            result = simulate_clique_coverage(
                code,
                noise,
                cycles,
                measurement_rounds=measurement_rounds,
                rng=point_seed(seed, rate_index, distance_index),
                workers=workers,
                chunk_cycles=chunk_cycles,
                target_ci_width=target_ci_width,
            )
            low, high = result.coverage_interval
            rows.append(
                {
                    "physical_error_rate": error_rate,
                    "code_distance": distance,
                    "cycles": result.cycles,
                    "coverage_pct": 100.0 * result.coverage,
                    "coverage_ci_low_pct": 100.0 * low,
                    "coverage_ci_high_pct": 100.0 * high,
                    "offchip_fraction": result.offchip_fraction,
                }
            )
    notes = (
        "Paper observation: coverage stays near/above ~70% even at a 1% physical\n"
        "error rate and distance 21, and approaches 100% as the error rate or\n"
        "distance decreases."
    )
    return ExperimentResult(
        experiment_id="fig11",
        title="Clique on-chip decode coverage",
        rows=rows,
        notes=notes,
    )


__all__ = ["run", "DEFAULT_DISTANCES", "DEFAULT_ERROR_RATES"]
