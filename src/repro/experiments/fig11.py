"""Fig. 11 — fraction of decodes the Clique decoder handles on-chip."""

from __future__ import annotations

from repro.codes.rotated_surface import get_code
from repro.experiments.base import ExperimentResult
from repro.noise.models import PhenomenologicalNoise
from repro.simulation.coverage import simulate_clique_coverage

DEFAULT_DISTANCES = (3, 5, 7, 9, 11, 13, 15, 17, 21)
DEFAULT_ERROR_RATES = (1e-4, 5e-4, 1e-3, 5e-3, 1e-2)


def run(
    cycles: int = 20_000,
    seed: int = 2023,
    distances: tuple[int, ...] = DEFAULT_DISTANCES,
    error_rates: tuple[float, ...] = DEFAULT_ERROR_RATES,
    measurement_rounds: int = 2,
) -> ExperimentResult:
    """Reproduce the Fig. 11 coverage curves (coverage vs distance per error rate)."""
    rows = []
    for rate_index, error_rate in enumerate(error_rates):
        noise = PhenomenologicalNoise(error_rate)
        for distance_index, distance in enumerate(distances):
            code = get_code(distance)
            result = simulate_clique_coverage(
                code,
                noise,
                cycles,
                measurement_rounds=measurement_rounds,
                rng=seed + 1000 * rate_index + distance_index,
            )
            low, high = result.coverage_interval
            rows.append(
                {
                    "physical_error_rate": error_rate,
                    "code_distance": distance,
                    "cycles": cycles,
                    "coverage_pct": 100.0 * result.coverage,
                    "coverage_ci_low_pct": 100.0 * low,
                    "coverage_ci_high_pct": 100.0 * high,
                    "offchip_fraction": result.offchip_fraction,
                }
            )
    notes = (
        "Paper observation: coverage stays near/above ~70% even at a 1% physical\n"
        "error rate and distance 21, and approaches 100% as the error rate or\n"
        "distance decreases."
    )
    return ExperimentResult(
        experiment_id="fig11",
        title="Clique on-chip decode coverage",
        rows=rows,
        notes=notes,
    )


__all__ = ["run", "DEFAULT_DISTANCES", "DEFAULT_ERROR_RATES"]
