"""Headline claims of Sections 1 and 7: bandwidth elimination and resource savings."""

from __future__ import annotations

from repro.bandwidth.afs import afs_compression_reduction, clique_offchip_reduction
from repro.codes.rotated_surface import get_code
from repro.experiments.base import ExperimentResult
from repro.hardware.estimates import compare_with_nisqplus
from repro.noise.models import PhenomenologicalNoise
from repro.simulation.coverage import simulate_clique_coverage

DEFAULT_POINTS = ((1e-2, 21), (5e-3, 13), (1e-3, 9), (5e-4, 5))


def run(
    cycles: int = 20_000,
    seed: int = 2029,
    points: tuple[tuple[float, int], ...] = DEFAULT_POINTS,
) -> ExperimentResult:
    """Regenerate the paper's three headline claims on a grid of operating points.

    1. 70-99+% off-chip bandwidth elimination (Clique coverage);
    2. 10-10000x bandwidth reduction over AFS;
    3. 15-37x resource reduction over NISQ+ (evaluated at d=9).
    """
    rows = []
    for index, (error_rate, distance) in enumerate(points):
        code = get_code(distance)
        noise = PhenomenologicalNoise(error_rate)
        coverage = simulate_clique_coverage(code, noise, cycles, rng=seed + index)
        clique_reduction = clique_offchip_reduction(
            max(coverage.offchip_fraction, 1.0 / cycles)
        )
        afs_reduction = afs_compression_reduction(distance, error_rate)
        nisq = compare_with_nisqplus(9)
        rows.append(
            {
                "physical_error_rate": error_rate,
                "code_distance": distance,
                "bandwidth_eliminated_pct": 100.0 * coverage.coverage,
                "clique_vs_afs_x": clique_reduction / afs_reduction,
                "nisqplus_power_x_at_d9": nisq["power_improvement"],
                "nisqplus_area_x_at_d9": nisq["area_improvement"],
                "nisqplus_latency_x_at_d9": nisq["latency_improvement"],
            }
        )
    notes = (
        "Paper claims: 70-99+% off-chip bandwidth elimination, 10-10000x\n"
        "reduction over AFS, and 15-37x resource overhead reduction vs NISQ+."
    )
    return ExperimentResult(
        experiment_id="headline",
        title="Headline claims (Sections 1 and 7)",
        rows=rows,
        notes=notes,
    )


__all__ = ["run", "DEFAULT_POINTS"]
