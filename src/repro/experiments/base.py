"""Shared result container, text formatting, and store plumbing for runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.store import ResultStore, SweepCache


@dataclass
class ExperimentResult:
    """The data series behind one reproduced table or figure.

    Attributes:
        experiment_id: registry id, e.g. ``"fig11"``.
        title: human-readable description.
        rows: list of flat dictionaries; all rows share the same keys.
        notes: free-form commentary (parameters, caveats, paper-reported
            values for comparison).
    """

    experiment_id: str
    title: str
    rows: list[dict[str, object]] = field(default_factory=list)
    notes: str = ""

    # ------------------------------------------------------------------
    @property
    def columns(self) -> tuple[str, ...]:
        return tuple(self.rows[0].keys()) if self.rows else ()

    def column(self, name: str) -> list[object]:
        """Extract one column across all rows."""
        return [row[name] for row in self.rows]

    @staticmethod
    def _format_value(value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1e4 or abs(value) < 1e-3:
                return f"{value:.3e}"
            return f"{value:.4g}"
        return str(value)

    def format_table(self) -> str:
        """Render the rows as an aligned plain-text table."""
        if not self.rows:
            return f"== {self.title} ==\n(no rows)\n"
        columns = self.columns
        cells = [
            [self._format_value(row[column]) for column in columns] for row in self.rows
        ]
        widths = [
            max(len(column), *(len(row[i]) for row in cells))
            for i, column in enumerate(columns)
        ]
        header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
        divider = "  ".join("-" * width for width in widths)
        body = "\n".join(
            "  ".join(row[i].ljust(widths[i]) for i in range(len(columns)))
            for row in cells
        )
        parts = [f"== {self.experiment_id}: {self.title} ==", header, divider, body]
        if self.notes:
            parts.append("")
            parts.append(self.notes.strip())
        return "\n".join(parts) + "\n"


def resolve_fault_policy(
    max_retries: int | None = None, shard_timeout: float | None = None
):
    """Resolve runner/CLI fault knobs into a :class:`~repro.faults.FaultPolicy`.

    Returns ``None`` when neither knob is set, so runners forward "no
    preference" and the sharded engine keeps its default policy (2 retries,
    no timeout).  Unset knobs fall back to the policy defaults; validation
    lives in :class:`~repro.faults.FaultPolicy` itself.

    The policy never participates in store keys: recovery replays shard
    streams bit-identically, so like ``workers`` it is execution provenance,
    not part of a result's identity.
    """
    if max_retries is None and shard_timeout is None:
        return None
    from repro.faults import FaultPolicy

    kwargs: dict[str, object] = {}
    if max_retries is not None:
        kwargs["max_retries"] = max_retries
    if shard_timeout is not None:
        kwargs["shard_timeout"] = shard_timeout
    return FaultPolicy(**kwargs)


def sweep_cache(
    store: "ResultStore | str | Path | None",
    experiment_id: str,
    force: bool = False,
) -> "SweepCache":
    """Resolve a runner's ``store=`` argument into a per-sweep cache.

    ``store`` may be a directory path (the CLI's ``--store DIR``), a ready
    :class:`~repro.store.ResultStore`, or ``None`` — the returned
    :class:`~repro.store.SweepCache` is a transparent pass-through in the
    ``None`` case, so runners call ``cache.point(...)`` unconditionally.
    ``force=True`` recomputes and overwrites every point instead of reusing
    stored results.
    """
    # Imported here so the experiment layer only pays for the store when a
    # runner is actually invoked (and to keep base.py import-light).
    from repro.store import SweepCache, open_store

    return SweepCache(open_store(store), experiment_id, force=force)


__all__ = ["ExperimentResult", "resolve_fault_policy", "sweep_cache"]
