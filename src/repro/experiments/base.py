"""Shared result container and text formatting for experiment runners."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentResult:
    """The data series behind one reproduced table or figure.

    Attributes:
        experiment_id: registry id, e.g. ``"fig11"``.
        title: human-readable description.
        rows: list of flat dictionaries; all rows share the same keys.
        notes: free-form commentary (parameters, caveats, paper-reported
            values for comparison).
    """

    experiment_id: str
    title: str
    rows: list[dict[str, object]] = field(default_factory=list)
    notes: str = ""

    # ------------------------------------------------------------------
    @property
    def columns(self) -> tuple[str, ...]:
        return tuple(self.rows[0].keys()) if self.rows else ()

    def column(self, name: str) -> list[object]:
        """Extract one column across all rows."""
        return [row[name] for row in self.rows]

    @staticmethod
    def _format_value(value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1e4 or abs(value) < 1e-3:
                return f"{value:.3e}"
            return f"{value:.4g}"
        return str(value)

    def format_table(self) -> str:
        """Render the rows as an aligned plain-text table."""
        if not self.rows:
            return f"== {self.title} ==\n(no rows)\n"
        columns = self.columns
        cells = [
            [self._format_value(row[column]) for column in columns] for row in self.rows
        ]
        widths = [
            max(len(column), *(len(row[i]) for row in cells))
            for i, column in enumerate(columns)
        ]
        header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
        divider = "  ".join("-" * width for width in widths)
        body = "\n".join(
            "  ".join(row[i].ljust(widths[i]) for i in range(len(columns)))
            for row in cells
        )
        parts = [f"== {self.experiment_id}: {self.title} ==", header, divider, body]
        if self.notes:
            parts.append("")
            parts.append(self.notes.strip())
        return "\n".join(parts) + "\n"


__all__ = ["ExperimentResult"]
