"""Exception hierarchy for the BTWC-QEC reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish configuration problems from runtime decoding
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """An object was constructed with invalid or inconsistent parameters."""


class InvalidDistanceError(ConfigurationError):
    """A surface-code distance was not an odd integer >= 3."""

    def __init__(self, distance: object) -> None:
        super().__init__(
            f"code distance must be an odd integer >= 3, got {distance!r}"
        )
        self.distance = distance


class InvalidProbabilityError(ConfigurationError):
    """A probability parameter was outside the closed interval [0, 1]."""

    def __init__(self, name: str, value: object) -> None:
        super().__init__(f"{name} must lie in [0, 1], got {value!r}")
        self.name = name
        self.value = value


class DecodingError(ReproError):
    """A decoder failed to produce a valid correction."""


class SyndromeShapeError(DecodingError):
    """A syndrome vector did not match the code geometry it was decoded against."""

    def __init__(self, expected: int, actual: int) -> None:
        super().__init__(
            f"syndrome length mismatch: expected {expected} bits, got {actual}"
        )
        self.expected = expected
        self.actual = actual


class BandwidthConfigurationError(ConfigurationError):
    """Off-chip bandwidth provisioning parameters were inconsistent."""


class SynthesisError(ReproError):
    """Hardware synthesis of the Clique decoder netlist failed."""


class ExperimentNotFoundError(ReproError):
    """An experiment id was requested that is not present in the registry."""

    def __init__(self, experiment_id: str, available: tuple[str, ...]) -> None:
        super().__init__(
            f"unknown experiment {experiment_id!r}; available: {', '.join(available)}"
        )
        self.experiment_id = experiment_id
        self.available = available
