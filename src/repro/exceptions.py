"""Exception hierarchy for the BTWC-QEC reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish configuration problems from runtime decoding
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """An object was constructed with invalid or inconsistent parameters."""


class InvalidDistanceError(ConfigurationError):
    """A surface-code distance was not an odd integer >= 3."""

    def __init__(self, distance: object) -> None:
        super().__init__(
            f"code distance must be an odd integer >= 3, got {distance!r}"
        )
        self.distance = distance


class InvalidProbabilityError(ConfigurationError):
    """A probability parameter was outside the closed interval [0, 1]."""

    def __init__(self, name: str, value: object) -> None:
        super().__init__(f"{name} must lie in [0, 1], got {value!r}")
        self.name = name
        self.value = value


class DecodingError(ReproError):
    """A decoder failed to produce a valid correction."""


class SyndromeShapeError(DecodingError):
    """A syndrome vector did not match the code geometry it was decoded against."""

    def __init__(self, expected: int, actual: int) -> None:
        super().__init__(
            f"syndrome length mismatch: expected {expected} bits, got {actual}"
        )
        self.expected = expected
        self.actual = actual


class BandwidthConfigurationError(ConfigurationError):
    """Off-chip bandwidth provisioning parameters were inconsistent."""


class SynthesisError(ReproError):
    """Hardware synthesis of the Clique decoder netlist failed."""


class FaultToleranceError(ReproError):
    """The fault-tolerance layer could not recover a sharded run."""


class ShardRetriesExhaustedError(FaultToleranceError):
    """One shard kept failing past its :class:`~repro.faults.FaultPolicy` budget."""

    def __init__(self, shard_index: int, attempts: int, last_error: object) -> None:
        super().__init__(
            f"shard {shard_index} failed {attempts} attempt(s) and exhausted its "
            f"retry budget (last error: {last_error})"
        )
        self.shard_index = shard_index
        self.attempts = attempts


class ShardTimeoutError(FaultToleranceError):
    """A shard attempt exceeded the policy's ``shard_timeout``.

    On the pooled path the parent raises (or retries) this after killing the
    hung worker pool; on the in-process path — where a genuinely hung shard
    cannot be preempted — it is raised by the injection harness to *simulate*
    a timeout for injected hangs longer than the policy timeout.
    """

    def __init__(self, shard_index: int, timeout: float) -> None:
        super().__init__(
            f"shard {shard_index} exceeded the {timeout:g}s shard_timeout"
        )
        self.shard_index = shard_index
        self.timeout = timeout


class StoreCorruptionError(ReproError):
    """``results.jsonl`` contained a corrupt non-tail line (strict mode).

    Carries the zero-based line number and byte offset of the first corrupt
    line so the damage can be inspected (or excised) by hand.
    """

    def __init__(
        self, path: object, line_number: int, byte_offset: int, reason: str
    ) -> None:
        super().__init__(
            f"corrupt result-store line {line_number} at byte {byte_offset} "
            f"of {path}: {reason}"
        )
        self.path = path
        self.line_number = line_number
        self.byte_offset = byte_offset
        self.reason = reason


class ExperimentNotFoundError(ReproError):
    """An experiment id was requested that is not present in the registry."""

    def __init__(self, experiment_id: str, available: tuple[str, ...]) -> None:
        super().__init__(
            f"unknown experiment {experiment_id!r}; available: {', '.join(available)}"
        )
        self.experiment_id = experiment_id
        self.available = available
