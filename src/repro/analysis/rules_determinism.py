"""Determinism rules: DET001 (global RNG), DET002 (wall clock / entropy),
DET003 (set-order iteration).

The repo's reproducibility contract (README -> "Engines and determinism")
hangs on every random draw being derived from an explicit seed through
:mod:`repro.noise.rng`, and on kernel code being a pure function of its
inputs.  These rules make the three classic ways of breaking that contract
fail lint before they ever run.
"""

from __future__ import annotations

import ast

from repro.analysis import contracts
from repro.analysis.core import ModuleContext, Rule
from repro.analysis.project import ParsedModule


class GlobalRngRule(Rule):
    """DET001 — no global-state RNG outside :data:`contracts.RNG_MODULE`.

    Flags calls that mutate or read numpy's hidden global stream
    (``np.random.seed``, ``np.random.rand``, ...), stdlib ``random`` module
    calls, and unseeded ``default_rng()`` — all of which produce numbers no
    seed controls.
    """

    id = "DET001"
    title = "no global-state RNG"
    contract = (
        "derive every generator from an explicit seed via repro.noise.rng; "
        "np.random.* module calls, stdlib random.* calls, and unseeded "
        "default_rng() are banned outside noise/rng.py"
    )
    node_types = (ast.Call,)

    def applies_to(self, module: ParsedModule) -> bool:
        return not contracts.is_rng_module(module.rel)

    def visit(self, ctx: ModuleContext, node: ast.Call) -> None:
        dotted = ctx.dotted_name(node.func)
        if dotted is None:
            return
        if dotted.startswith("numpy.random."):
            attr = dotted[len("numpy.random.") :]
            if attr not in contracts.NP_RANDOM_ALLOWED:
                ctx.report(
                    node,
                    self.id,
                    f"{dotted}() uses numpy's global RNG stream, which no "
                    f"seed controls; derive a Generator from an explicit "
                    f"seed via repro.noise.rng",
                )
            elif attr == "default_rng" and not node.args and not node.keywords:
                ctx.report(
                    node,
                    self.id,
                    "default_rng() without a seed draws fresh OS entropy; "
                    "pass the experiment's seed (see repro.noise.rng.make_rng)",
                )
            return
        parts = dotted.split(".")
        if parts[0] == "random" and len(parts) >= 2:
            attr = parts[1]
            if attr == "Random" and (node.args or node.keywords):
                return  # an explicitly seeded instance is deterministic
            ctx.report(
                node,
                self.id,
                f"stdlib {dotted}() is global-state (or OS-entropy) RNG; "
                f"use a seeded numpy Generator from repro.noise.rng instead",
            )


class WallClockRule(Rule):
    """DET002 — no wall-clock or entropy sources in kernel code.

    Kernel results must be pure functions of ``(inputs, seed)``; a value
    derived from ``time.time()``, ``os.urandom()``, or ``uuid4()`` differs
    between runs and poisons bit-identity.  Duration probes
    (``time.monotonic``/``perf_counter``/``process_time``) remain legal.
    """

    id = "DET002"
    title = "no wall-clock/entropy sources in kernel code"
    contract = (
        "kernel packages (simulation/, decoders/, clique/, bitplane.py) may "
        "not call wall-clock or entropy sources (time.time, os.urandom, "
        "uuid*, secrets.*, argless SeedSequence())"
    )
    node_types = (ast.Call,)

    def applies_to(self, module: ParsedModule) -> bool:
        return contracts.in_kernel_scope(module.rel)

    def visit(self, ctx: ModuleContext, node: ast.Call) -> None:
        dotted = ctx.dotted_name(node.func)
        if dotted is None:
            return
        if dotted in contracts.WALLCLOCK_CALLS or dotted.startswith(
            contracts.ENTROPY_PREFIXES
        ):
            ctx.report(
                node,
                self.id,
                f"{dotted}() reads wall clock or OS entropy inside kernel "
                f"code; kernel results must be pure functions of "
                f"(inputs, seed)",
            )
        elif (
            dotted == "numpy.random.SeedSequence"
            and not node.args
            and not node.keywords
        ):
            ctx.report(
                node,
                self.id,
                "SeedSequence() without arguments draws OS entropy inside "
                "kernel code; thread the experiment seed through "
                "repro.noise.rng instead",
            )


def _is_set_expression(node: ast.AST) -> bool:
    """Whether ``node`` is syntactically guaranteed to evaluate to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


class SetOrderRule(Rule):
    """DET003 — no iteration over set values into ordered output.

    Python sets iterate in hash order, which differs across processes when
    ``PYTHONHASHSEED`` varies and across equal-content sets built in
    different insertion orders — a classic way for sharded workers to
    disagree.  Kernel code must sort a set before iterating it into
    anything ordered (``sorted(...)`` passes lint).
    """

    id = "DET003"
    title = "no set-order iteration in kernel code"
    contract = (
        "kernel code may not iterate a set into ordered output (for loops, "
        "list comprehensions, list()/tuple()/enumerate()/iter() over a set "
        "expression); sort first"
    )
    node_types = (ast.For, ast.ListComp, ast.Call)

    _ORDER_CAPTURING = ("list", "tuple", "enumerate", "iter")

    def applies_to(self, module: ParsedModule) -> bool:
        return contracts.in_kernel_scope(module.rel)

    def visit(self, ctx: ModuleContext, node: ast.AST) -> None:
        if isinstance(node, ast.For) and _is_set_expression(node.iter):
            ctx.report(
                node.iter,
                self.id,
                "for-loop iterates a set in hash order inside kernel code; "
                "sort it first (sorted(...)) to keep results deterministic",
            )
        elif isinstance(node, ast.ListComp):
            for generator in node.generators:
                if _is_set_expression(generator.iter):
                    ctx.report(
                        generator.iter,
                        self.id,
                        "list comprehension captures a set's hash order "
                        "inside kernel code; sort it first (sorted(...))",
                    )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._ORDER_CAPTURING
            and node.args
            and _is_set_expression(node.args[0])
        ):
            ctx.report(
                node,
                self.id,
                f"{node.func.id}() captures a set's hash order inside "
                f"kernel code; sort it first (sorted(...))",
            )


__all__ = ["GlobalRngRule", "SetOrderRule", "WallClockRule"]
