"""TIER001 — registered tier decoders satisfy the cascade tier contract.

``repro.decoders.registry.TIER_DECODERS`` is the set of classes a cascade
spec can name.  The cascade's one-pass triage calls ``decode_events_bitmap``
on whatever final tier the spec resolves to, and generic callers fall back
to per-trial ``decode`` — a registered class missing either only fails at
decode time, deep inside a worker process.  This rule statically walks each
registered class (and its in-tree bases) and fails lint at the registry
entry instead.
"""

from __future__ import annotations

import ast

from repro.analysis import contracts
from repro.analysis.core import Finding, Rule, build_import_context
from repro.analysis.project import ParsedModule, Project

_MAX_BASE_DEPTH = 10


def _module_class(tree: ast.Module, name: str) -> ast.ClassDef | None:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _is_abstract(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in fn.decorator_list:
        if isinstance(decorator, ast.Name) and decorator.id == "abstractmethod":
            return True
        if isinstance(decorator, ast.Attribute) and decorator.attr == "abstractmethod":
            return True
    return False


def _concrete_methods(
    project: Project, module: ParsedModule, class_name: str, depth: int = 0
) -> set[str] | None:
    """Concrete method names of a class, following in-tree bases.

    Returns ``None`` when the class cannot be found statically — callers
    report that as its own finding rather than guessing.
    """
    if depth > _MAX_BASE_DEPTH:
        return set()
    class_node = _module_class(module.tree, class_name)
    if class_node is None:
        return None
    methods = {
        node.name
        for node in class_node.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and not _is_abstract(node)
    }
    ctx = build_import_context(module)
    for base in class_node.bases:
        base_methods: set[str] | None = None
        if isinstance(base, ast.Name) and _module_class(module.tree, base.id):
            base_methods = _concrete_methods(project, module, base.id, depth + 1)
        else:
            dotted = ctx.dotted_name(base)
            if dotted is not None and "." in dotted:
                base_module_name, base_class = dotted.rsplit(".", 1)
                base_module = project.load_dotted(base_module_name, anchor=module)
                if base_module is not None:
                    base_methods = _concrete_methods(
                        project, base_module, base_class, depth + 1
                    )
        if base_methods:
            methods |= base_methods
    return methods


class TierContractRule(Rule):
    """TIER001 — TIER_DECODERS entries define the tier-contract methods."""

    id = "TIER001"
    title = "tier registry classes satisfy the cascade contract"
    contract = (
        "every class registered in TIER_DECODERS must statically define "
        "(itself or via in-tree bases, abstract declarations excluded) the "
        "methods its tier role requires: decode and decode_events_bitmap"
    )

    def check_project(self, project: Project) -> list[Finding]:
        registry_path, registry_name = contracts.TIER_REGISTRY_LOCATION
        registry_module = project.linted(registry_path)
        if registry_module is None:
            return []
        registry_dict = self._registry_dict(registry_module, registry_name)
        if registry_dict is None:
            return [
                Finding(
                    path=registry_module.display,
                    line=1,
                    col=1,
                    rule=self.id,
                    message=(
                        f"tier registry {registry_name} not found as a dict "
                        f"literal in {registry_path}; update "
                        f"repro.analysis.contracts.TIER_REGISTRY_LOCATION"
                    ),
                )
            ]
        ctx = build_import_context(registry_module)
        findings = []
        for key, value in zip(registry_dict.keys, registry_dict.values):
            tier_name = (
                key.value
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
                else None
            )
            finding = self._check_entry(project, registry_module, ctx, tier_name, value)
            if finding is not None:
                findings.append(finding)
        return findings

    def _registry_dict(
        self, module: ParsedModule, registry_name: str
    ) -> ast.Dict | None:
        for node in module.tree.body:
            value = None
            if isinstance(node, ast.Assign):
                if any(
                    isinstance(target, ast.Name) and target.id == registry_name
                    for target in node.targets
                ):
                    value = node.value
            elif isinstance(node, ast.AnnAssign):
                if (
                    isinstance(node.target, ast.Name)
                    and node.target.id == registry_name
                ):
                    value = node.value
            if isinstance(value, ast.Dict):
                return value
        return None

    def _check_entry(
        self,
        project: Project,
        registry_module: ParsedModule,
        ctx,
        tier_name: str | None,
        value: ast.AST,
    ) -> Finding | None:
        def _finding(message: str) -> Finding:
            return Finding(
                path=registry_module.display,
                line=getattr(value, "lineno", 1),
                col=getattr(value, "col_offset", 0) + 1,
                rule=self.id,
                message=message,
            )

        label = repr(tier_name) if tier_name is not None else "<non-string key>"
        dotted = ctx.dotted_name(value)
        if dotted is None or "." not in dotted:
            return _finding(
                f"tier decoder {label}: cannot statically resolve the "
                f"registered class to an in-tree module; register classes "
                f"by direct import"
            )
        module_name, class_name = dotted.rsplit(".", 1)
        class_module = project.load_dotted(module_name, anchor=registry_module)
        if class_module is None:
            return _finding(
                f"tier decoder {label}: module {module_name!r} not found "
                f"from the package root, so the tier contract cannot be "
                f"verified"
            )
        methods = _concrete_methods(project, class_module, class_name)
        if methods is None:
            return _finding(
                f"tier decoder {label}: class {class_name!r} not found in "
                f"{module_name}, so the tier contract cannot be verified"
            )
        missing = [
            method
            for method in contracts.TIER_REQUIRED_METHODS
            if method not in methods
        ]
        if missing:
            return _finding(
                f"tier decoder {label} ({class_name}) lacks concrete "
                f"{missing} required by the cascade tier contract (see "
                f"repro.decoders.base.Decoder)"
            )
        return None


__all__ = ["TierContractRule"]
