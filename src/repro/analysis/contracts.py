"""Shared contract manifests: the single source of truth for what the linter
(and the dynamic tests that double-check the same invariants) enforce.

Every rule in :mod:`repro.analysis` encodes a contract the repo already
relies on at runtime — the seeding discipline, the store-key resolution
contract, the lazy-import rule for heavy optional dependencies, the dtype
discipline of the hot path, and the cascade tier protocol.  The *scope* of
each contract (which packages count as kernel code, which modules are heavy,
which runner keywords must be key-classified, where the tier registry lives)
is declared here, once, so the static checks and their dynamic counterparts
(e.g. ``tests/test_dependency_hygiene.py``) cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Packages whose modules are *kernel code*: they execute inside Monte-Carlo
#: trials or decode calls, where nondeterminism or dtype churn silently
#: corrupts seeded results.  DET002 (wall-clock/entropy), DET003 (set-order
#: iteration), and DTY001 (explicit dtypes) apply only here.
KERNEL_PACKAGES: tuple[str, ...] = (
    "repro/simulation/",
    "repro/decoders/",
    "repro/clique/",
)

#: Single modules that are kernel code without being a whole package.
KERNEL_MODULES: tuple[str, ...] = ("repro/bitplane.py",)

#: The one module allowed to touch global RNG machinery: every generator in
#: the library is derived here from explicit seeds (see DET001).
RNG_MODULE = "repro/noise/rng.py"

#: Heavy optional dependencies that must never be imported at module top
#: level anywhere in the package: ``networkx`` is demoted to a differential
#: test oracle (PR 8) and ``matplotlib`` is plotting-only.  A top-level
#: import would put them back on the default decode path's import closure.
#: IMP001 is the static check; ``tests/test_dependency_hygiene.py`` installs
#: a ``sys.meta_path`` hook built from this same tuple and *runs* the
#: default path to prove it dynamically.
HEAVY_OPTIONAL_MODULES: tuple[str, ...] = ("matplotlib", "networkx")

#: Entry points of the sharded engine whose ``kernel`` argument crosses
#: process boundaries and therefore must be picklable: no lambdas, no
#: closures, no locally defined functions (PKL001).
SHARDED_RUNNERS: tuple[str, ...] = ("run_sharded", "run_sharded_adaptive")

#: ``numpy.random`` attributes that are *not* global-state RNG: explicit
#: generator construction and seed plumbing.  Everything else on the module
#: (``seed``, ``rand``, ``randint``, ...) mutates or reads the hidden global
#: stream and is banned outside :data:`RNG_MODULE` (DET001).
NP_RANDOM_ALLOWED: frozenset[str] = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Wall-clock reads banned in kernel code (DET002): they change between
#: runs, so any value derived from them breaks seeded reproducibility.
#: Duration probes (``time.monotonic``/``perf_counter``/``process_time``)
#: stay legal — they measure, they do not seed.
WALLCLOCK_CALLS: frozenset[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.gmtime",
        "time.localtime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
    }
)

#: Call prefixes that always mean OS entropy (DET002).
ENTROPY_PREFIXES: tuple[str, ...] = ("uuid.", "secrets.")

#: numpy allocation constructors that take a ``dtype`` keyword and silently
#: default to float64/inference when it is omitted (DTY001).
DTYPE_ALLOCATORS: frozenset[str] = frozenset(
    {
        "numpy.zeros",
        "numpy.empty",
        "numpy.ones",
        "numpy.full",
        "numpy.array",
    }
)


@dataclass(frozen=True)
class KeyContract:
    """One runner-function/key-resolver pair of the store-key contract.

    Every keyword of ``runner_name`` (defined in ``runner_path``) must either
    be resolved into the store key by one of the ``resolvers`` — appear as a
    parameter, a config-dict key, or a config-subscript key of that function
    — or be classified as key-neutral in
    ``repro.store.keys.KEY_EXCLUDED`` (see :data:`KEY_EXCLUDED_LOCATION`).
    KEY001 enforces this, so a newly added knob fails lint until someone
    decides whether it shapes the numbers.
    """

    runner_path: str
    runner_name: str
    resolvers: tuple[tuple[str, str], ...]


#: The store-key contracts KEY001 cross-references (paths are
#: package-relative, as produced by :func:`repro.analysis.project.split_root`).
KEY_CONTRACTS: tuple[KeyContract, ...] = (
    KeyContract(
        runner_path="repro/simulation/memory.py",
        runner_name="run_memory_experiment",
        resolvers=(("repro/experiments/fig14.py", "_memory_point_config"),),
    ),
    KeyContract(
        runner_path="repro/simulation/coverage.py",
        runner_name="simulate_clique_coverage",
        resolvers=(("repro/simulation/coverage.py", "resolve_coverage_config"),),
    ),
)

#: Where the central exclusion list lives: ``(module path, constant name)``.
KEY_EXCLUDED_LOCATION: tuple[str, str] = ("repro/store/keys.py", "KEY_EXCLUDED")

#: Where the cascade tier registry lives: ``(module path, constant name)``.
TIER_REGISTRY_LOCATION: tuple[str, str] = (
    "repro/decoders/registry.py",
    "TIER_DECODERS",
)

#: Methods a registered tier decoder must define somewhere in its in-tree
#: class hierarchy (abstract declarations do not count): ``decode`` is the
#: per-trial fallback every decoder needs, ``decode_events_bitmap`` the
#: batched final-tier hook the cascade's one-pass triage requires (TIER001).
#: ``decode_events_tiered`` stays optional — decoders without it are simply
#: final-tier-only, which :func:`repro.decoders.registry.resolve_tier_spec`
#: enforces at config time.
TIER_REQUIRED_METHODS: tuple[str, ...] = ("decode", "decode_events_bitmap")


def in_kernel_scope(rel_path: str) -> bool:
    """Whether a package-relative module path is kernel code."""
    return rel_path.startswith(KERNEL_PACKAGES) or rel_path in KERNEL_MODULES


def is_rng_module(rel_path: str) -> bool:
    """Whether a package-relative module path is the designated RNG module."""
    return rel_path == RNG_MODULE


__all__ = [
    "DTYPE_ALLOCATORS",
    "ENTROPY_PREFIXES",
    "HEAVY_OPTIONAL_MODULES",
    "KERNEL_MODULES",
    "KERNEL_PACKAGES",
    "KEY_CONTRACTS",
    "KEY_EXCLUDED_LOCATION",
    "KeyContract",
    "NP_RANDOM_ALLOWED",
    "RNG_MODULE",
    "SHARDED_RUNNERS",
    "TIER_REGISTRY_LOCATION",
    "TIER_REQUIRED_METHODS",
    "WALLCLOCK_CALLS",
    "in_kernel_scope",
    "is_rng_module",
]
