"""Static analysis: an AST-based contract linter for the repro codebase.

The repo's correctness rests on contracts that used to be enforced only
dynamically (or by review): the seeding discipline, the store-key resolution
contract, lazy imports of heavy optional dependencies, the hot-path dtype
discipline, picklability of sharded kernels, and the cascade tier protocol.
This package verifies them *statically* — a single ``ast`` pass per file
plus two cross-referencing project rules — so whole bug classes fail lint
before a kernel ever runs.

Rules (see ``repro-qec lint --list-rules`` and README -> "Static analysis"):

========  ============================================================
DET001    no global-state RNG outside ``noise/rng.py``
DET002    no wall-clock/entropy sources in kernel packages
DET003    no set-order iteration into ordered output in kernel packages
IMP001    heavy optional deps (networkx, matplotlib) never top-level
DTY001    hot-path numpy allocations carry an explicit dtype
KEY001    runner keywords resolve into the store key or ``KEY_EXCLUDED``
PKL001    sharded kernels are picklable (no lambdas/local functions)
TIER001   ``TIER_DECODERS`` classes define the tier-contract methods
========  ============================================================

Suppress a deliberate exception on its own line with
``# repro: allow[RULE]`` (comma-separated ids); pragmas naming unknown rules
are themselves findings (``LNT001``), and unparseable files report
``LNT002``.  Entry points: ``repro-qec lint [paths]`` /
``python -m repro lint`` on the command line, :func:`lint_paths` /
:func:`lint_source` from Python.
"""

from repro.analysis.core import (
    Finding,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
)
from repro.analysis.reporting import format_json, format_text

__all__ = [
    "Finding",
    "Rule",
    "all_rules",
    "format_json",
    "format_text",
    "lint_paths",
    "lint_source",
]
