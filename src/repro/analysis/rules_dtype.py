"""DTY001 — hot-path array allocations carry an explicit dtype.

PR 7's dtype discipline: the packed/unpacked kernels are bit-identical only
because every array's dtype is chosen, not inferred — an implicit float64
allocation in the hot path silently octuples memory traffic and can shift
comparison semantics.  Kernel-scope ``np.zeros/empty/ones/full/array`` calls
must therefore spell their dtype (positionally or as ``dtype=``).
"""

from __future__ import annotations

import ast

from repro.analysis import contracts
from repro.analysis.core import ModuleContext, Rule
from repro.analysis.project import ParsedModule

#: Positional-argument count at which dtype has been passed positionally
#: (``np.zeros(shape, np.uint8)``; ``np.full(shape, fill, np.uint8)``).
_POSITIONAL_DTYPE_ARITY = {
    "numpy.zeros": 2,
    "numpy.empty": 2,
    "numpy.ones": 2,
    "numpy.array": 2,
    "numpy.full": 3,
}


class ExplicitDtypeRule(Rule):
    """DTY001 — no dtype-less numpy allocations in kernel code."""

    id = "DTY001"
    title = "explicit dtypes on hot-path allocations"
    contract = (
        "kernel-scope np.zeros/empty/ones/full/array calls must pass an "
        "explicit dtype; implicit float64 inference breaks the uint8/uint64 "
        "dtype discipline of the packed kernels"
    )
    node_types = (ast.Call,)

    def applies_to(self, module: ParsedModule) -> bool:
        return contracts.in_kernel_scope(module.rel)

    def visit(self, ctx: ModuleContext, node: ast.Call) -> None:
        dotted = ctx.dotted_name(node.func)
        if dotted not in contracts.DTYPE_ALLOCATORS:
            return
        if len(node.args) >= _POSITIONAL_DTYPE_ARITY[dotted]:
            return
        for keyword in node.keywords:
            if keyword.arg == "dtype" or keyword.arg is None:  # dtype= or **kw
                return
        short = dotted.replace("numpy.", "np.")
        ctx.report(
            node,
            self.id,
            f"{short}() without an explicit dtype lets numpy infer one "
            f"(usually float64) in kernel code; spell the dtype the hot "
            f"path actually needs",
        )


__all__ = ["ExplicitDtypeRule"]
