"""KEY001 — every runner keyword is store-key-classified.

The PR 4 store serves cached results keyed by a *fully resolved* point
config.  That only stays sound if every keyword of the Monte-Carlo runners
is consciously classified: either it shapes the numbers (then the
key-resolution function must fold it into the config) or it provably does
not (then it belongs in :data:`repro.store.keys.KEY_EXCLUDED` with a stated
reason).  A keyword in neither place is exactly the "added a kwarg, forgot
the store key, served stale results" bug — this rule makes it fail lint at
the signature, before any result is ever cached.
"""

from __future__ import annotations

import ast

from repro.analysis import contracts
from repro.analysis.core import Finding, Rule
from repro.analysis.project import ParsedModule, Project


def _module_function(tree: ast.Module, name: str) -> ast.FunctionDef | None:
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _named_params(fn: ast.FunctionDef) -> list[ast.arg]:
    params = list(fn.args.posonlyargs) + list(fn.args.args) + list(fn.args.kwonlyargs)
    return [param for param in params if param.arg not in ("self", "cls")]


def _resolver_vocabulary(fn: ast.FunctionDef) -> set[str]:
    """Names a key-resolution function demonstrably folds into the key.

    Its parameter names, every string key of a dict literal in its body, and
    every string index of a subscript assignment (``config["tiers"] = ...``).
    Docstrings and other free-floating strings deliberately do *not* count —
    mentioning a keyword is not resolving it.
    """
    vocabulary = {param.arg for param in _named_params(fn)}
    for node in ast.walk(fn):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    vocabulary.add(key.value)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    vocabulary.add(target.slice.value)
    return vocabulary


def _load_key_excluded(module: ParsedModule) -> set[str] | None:
    """String entries of the ``KEY_EXCLUDED`` constant (dict/set/sequence)."""
    _, constant_name = contracts.KEY_EXCLUDED_LOCATION
    for node in module.tree.body:
        value = None
        if isinstance(node, ast.Assign):
            if any(
                isinstance(target, ast.Name) and target.id == constant_name
                for target in node.targets
            ):
                value = node.value
        elif isinstance(node, ast.AnnAssign):
            if (
                isinstance(node.target, ast.Name)
                and node.target.id == constant_name
            ):
                value = node.value
        if value is None:
            continue
        if isinstance(value, ast.Dict):
            elements = value.keys
        elif isinstance(value, (ast.Set, ast.List, ast.Tuple)):
            elements = value.elts
        else:
            return None
        return {
            element.value
            for element in elements
            if isinstance(element, ast.Constant) and isinstance(element.value, str)
        }
    return None


class StoreKeyClassificationRule(Rule):
    """KEY001 — runner keywords resolve into the store key or are excluded."""

    id = "KEY001"
    title = "store-key classification of runner keywords"
    contract = (
        "every keyword of run_memory_experiment / simulate_clique_coverage "
        "must appear in its key-resolution function "
        "(fig14._memory_point_config / coverage.resolve_coverage_config) or "
        "in repro.store.keys.KEY_EXCLUDED"
    )

    def check_project(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for contract in contracts.KEY_CONTRACTS:
            runner_module = project.linted(contract.runner_path)
            if runner_module is None:
                continue
            findings.extend(self._check_contract(project, runner_module, contract))
        return findings

    def _check_contract(
        self,
        project: Project,
        runner_module: ParsedModule,
        contract: contracts.KeyContract,
    ) -> list[Finding]:
        def _finding(line: int, col: int, message: str) -> Finding:
            return Finding(
                path=runner_module.display,
                line=line,
                col=col,
                rule=self.id,
                message=message,
            )

        runner = _module_function(runner_module.tree, contract.runner_name)
        if runner is None:
            return [
                _finding(
                    1,
                    1,
                    f"store-key contract runner {contract.runner_name!r} not "
                    f"found in {contract.runner_path}; update "
                    f"repro.analysis.contracts.KEY_CONTRACTS",
                )
            ]

        vocabulary: set[str] = set()
        resolver_labels = []
        for resolver_path, resolver_name in contract.resolvers:
            resolver_labels.append(f"{resolver_path}::{resolver_name}")
            resolver_module = project.load(resolver_path, anchor=runner_module)
            resolver = (
                _module_function(resolver_module.tree, resolver_name)
                if resolver_module is not None
                else None
            )
            if resolver is None:
                return [
                    _finding(
                        runner.lineno,
                        runner.col_offset + 1,
                        f"key-resolution function {resolver_name!r} not found "
                        f"in {resolver_path}; the store-key contract of "
                        f"{contract.runner_name} cannot be verified",
                    )
                ]
            vocabulary |= _resolver_vocabulary(resolver)

        excluded_path, excluded_name = contracts.KEY_EXCLUDED_LOCATION
        keys_module = project.load(excluded_path, anchor=runner_module)
        excluded = _load_key_excluded(keys_module) if keys_module is not None else None
        if excluded is None:
            return [
                _finding(
                    runner.lineno,
                    runner.col_offset + 1,
                    f"central exclusion list {excluded_name} not found in "
                    f"{excluded_path}; the store-key contract of "
                    f"{contract.runner_name} cannot be verified",
                )
            ]

        findings = []
        resolvers = ", ".join(resolver_labels)
        for param in _named_params(runner):
            if param.arg in vocabulary or param.arg in excluded:
                continue
            findings.append(
                _finding(
                    param.lineno,
                    param.col_offset + 1,
                    f"keyword {param.arg!r} of {contract.runner_name} is "
                    f"neither resolved into the store key by {resolvers} nor "
                    f"classified key-neutral in {excluded_path}::"
                    f"{excluded_name} — decide whether it shapes stored "
                    f"results",
                )
            )
        return findings


__all__ = ["StoreKeyClassificationRule"]
