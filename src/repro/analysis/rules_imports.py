"""IMP001 — heavy optional dependencies stay off module top level.

The static counterpart of ``tests/test_dependency_hygiene.py``: that test
installs a ``sys.meta_path`` hook (built from the same
:data:`repro.analysis.contracts.HEAVY_OPTIONAL_MODULES` manifest) and *runs*
the default decode path to prove networkx is never imported; this rule
catches the violation at the import statement itself, in every module, on
paths no dynamic test happens to exercise.
"""

from __future__ import annotations

import ast

from repro.analysis import contracts
from repro.analysis.core import ModuleContext, Rule


class LazyHeavyImportRule(Rule):
    """IMP001 — import heavy optional deps lazily, inside the needing function."""

    id = "IMP001"
    title = "no top-level heavy optional imports"
    contract = (
        "optional/heavy dependencies (networkx, matplotlib) may only be "
        "imported inside the function that needs them (or under "
        "TYPE_CHECKING), never at module top level — shared manifest: "
        "repro.analysis.contracts.HEAVY_OPTIONAL_MODULES"
    )
    node_types = (ast.Import, ast.ImportFrom)

    def visit(self, ctx: ModuleContext, node: ast.Import | ast.ImportFrom) -> None:
        if ctx.in_function or ctx.type_checking_depth:
            return
        if isinstance(node, ast.Import):
            imported = [alias.name for alias in node.names]
        elif node.module is not None and node.level == 0:
            imported = [node.module]
        else:
            return
        for name in imported:
            top = name.split(".", 1)[0]
            if top in contracts.HEAVY_OPTIONAL_MODULES:
                ctx.report(
                    node,
                    self.id,
                    f"heavy optional dependency {top!r} imported at module "
                    f"top level; import it lazily inside the function that "
                    f"needs it (dynamic twin: tests/test_dependency_hygiene.py)",
                )


__all__ = ["LazyHeavyImportRule"]
