"""Parsed-module model and cross-file loading for project-level rules.

The linter never imports the code it checks — everything is ``ast``-parsed
text.  Module-local rules only need one file at a time; the cross-referencing
rules (KEY001, TIER001) additionally need to *read* sibling modules named by
the contract manifests (a key-resolution function lives in a different file
than the runner whose keywords it classifies).  :class:`Project` provides
that: it indexes the linted files by package-relative path and lazily loads
referenced modules from the same package root on disk.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

#: Suppression pragma: ``# repro: allow[DET001]`` (comma-separated ids).
PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")


def split_root(path: Path) -> tuple[Path, str]:
    """Split ``path`` into ``(package root, package-relative posix path)``.

    The package root is the innermost directory that is *not* itself a
    package (has no ``__init__.py``): for ``src/repro/simulation/batch.py``
    that yields ``(src, "repro/simulation/batch.py")``.  A file outside any
    package keeps just its filename, so package-scoped rules never match it.
    """
    path = path.resolve()
    parent = path.parent
    parts = [path.name]
    while (parent / "__init__.py").is_file() and parent.parent != parent:
        parts.append(parent.name)
        parent = parent.parent
    return parent, str(PurePosixPath(*reversed(parts)))


@dataclass
class ParsedModule:
    """One parsed source file plus the metadata rules need."""

    path: Path | None  # absolute path; None for in-memory sources
    display: str  # path string used in findings (posix separators)
    rel: str  # package-relative posix path ("repro/simulation/batch.py")
    root: Path | None  # package root directory; None for in-memory sources
    source: str
    tree: ast.Module
    pragmas: dict[int, tuple[str, ...]] = field(default_factory=dict)

    @classmethod
    def from_source(
        cls, source: str, rel: str, display: str | None = None
    ) -> "ParsedModule":
        """Parse an in-memory source (fixture tests; raises ``SyntaxError``)."""
        module = cls(
            path=None,
            display=display if display is not None else rel,
            rel=rel,
            root=None,
            source=source,
            tree=ast.parse(source),
        )
        module.pragmas = _collect_pragmas(source)
        return module

    @classmethod
    def from_path(cls, path: Path, display: str | None = None) -> "ParsedModule":
        """Parse a file on disk (raises ``SyntaxError``/``OSError``)."""
        source = path.read_text(encoding="utf-8")
        root, rel = split_root(path)
        module = cls(
            path=path.resolve(),
            display=display if display is not None else str(PurePosixPath(path)),
            rel=rel,
            root=root,
            source=source,
            tree=ast.parse(source, filename=str(path)),
        )
        module.pragmas = _collect_pragmas(source)
        return module

    def suppressed(self, line: int, rule_id: str) -> bool:
        """Whether a finding of ``rule_id`` at ``line`` is pragma-suppressed."""
        return rule_id in self.pragmas.get(line, ())


def _collect_pragmas(source: str) -> dict[int, tuple[str, ...]]:
    """Map line number -> rule ids named by a same-line suppression pragma.

    Only genuine ``#`` comments count — the source is tokenized, so pragma
    syntax quoted inside a docstring or string literal (documentation, test
    fixtures) is never mistaken for a suppression.  Malformed entries (empty
    brackets, unknown ids) are kept verbatim; the linter validates them
    against the rule registry and reports LNT001, so a typo in a pragma can
    never silently suppress nothing.
    """
    pragmas: dict[int, tuple[str, ...]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return pragmas  # only reachable on sources ast.parse also rejects
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = PRAGMA_RE.search(token.string)
        if match is None:
            continue
        ids = tuple(part.strip() for part in match.group(1).split(","))
        pragmas[token.start[0]] = tuple(part for part in ids if part)
    return pragmas


class Project:
    """The linted module set plus lazy access to contract-referenced files."""

    def __init__(self, modules: list[ParsedModule]) -> None:
        self._linted: dict[str, ParsedModule] = {}
        for module in modules:
            # First occurrence wins: the same rel path linted twice (e.g. a
            # path passed twice on the CLI) is still one module.
            self._linted.setdefault(module.rel, module)
        self._loaded: dict[Path, ParsedModule | None] = {}

    @property
    def modules(self) -> tuple[ParsedModule, ...]:
        return tuple(self._linted.values())

    def linted(self, rel: str) -> ParsedModule | None:
        """The linted module with this package-relative path, if any."""
        return self._linted.get(rel)

    def load(self, rel: str, anchor: ParsedModule) -> ParsedModule | None:
        """Load a package-relative path, preferring the linted set.

        Falls back to ``anchor``'s package root on disk, so a contract can
        reference a module that was not part of the lint invocation (e.g.
        the key-resolution function when only the runner file is linted).
        Returns ``None`` when the file is absent or unparseable — callers
        turn that into an explicit finding rather than a crash.
        """
        module = self._linted.get(rel)
        if module is not None:
            return module
        if anchor.root is None:
            return None
        path = (anchor.root / rel).resolve()
        if path in self._loaded:
            return self._loaded[path]
        loaded: ParsedModule | None = None
        if path.is_file():
            try:
                loaded = ParsedModule.from_path(path)
            except (SyntaxError, OSError, UnicodeDecodeError):
                loaded = None
        self._loaded[path] = loaded
        return loaded

    def load_dotted(self, dotted: str, anchor: ParsedModule) -> ParsedModule | None:
        """Load a dotted module name (``repro.decoders.mwpm``) as a file.

        Tries ``a/b/c.py`` then the package form ``a/b/c/__init__.py``.
        """
        base = dotted.replace(".", "/")
        return self.load(f"{base}.py", anchor) or self.load(
            f"{base}/__init__.py", anchor
        )


__all__ = ["ParsedModule", "PRAGMA_RE", "Project", "split_root"]
