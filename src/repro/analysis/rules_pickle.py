"""PKL001 — kernels handed to the sharded engine must be picklable.

``run_sharded``/``run_sharded_adaptive`` ship their kernel to worker
processes; lambdas, closures, and locally defined functions fail to pickle —
but only at runtime, only with ``workers > 1``, which is exactly the
configuration CI's ``workers=1`` fast paths never exercise.  This rule makes
the mistake fail lint instead.
"""

from __future__ import annotations

import ast

from repro.analysis import contracts
from repro.analysis.core import ModuleContext, Rule


def _kernel_argument(node: ast.Call) -> ast.AST | None:
    """The kernel argument of a ``run_sharded*`` call, if identifiable."""
    if node.args and not isinstance(node.args[0], ast.Starred):
        return node.args[0]
    for keyword in node.keywords:
        if keyword.arg == "kernel":
            return keyword.value
    return None


class PicklableKernelRule(Rule):
    """PKL001 — no lambdas/local functions as sharded kernels."""

    id = "PKL001"
    title = "picklable sharded kernels"
    contract = (
        "kernels passed to run_sharded/run_sharded_adaptive cross process "
        "boundaries: module-level functions or dataclass instances only — "
        "no lambdas, no locally defined functions"
    )
    node_types = (ast.Call, ast.FunctionDef, ast.AsyncFunctionDef)

    def _state(self, ctx: ModuleContext) -> dict:
        return ctx.rule_state.setdefault(self.id, {"nested": set(), "calls": []})

    def visit(self, ctx: ModuleContext, node: ast.AST) -> None:
        state = self._state(ctx)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if ctx.in_function:
                state["nested"].add(node.name)
            return
        assert isinstance(node, ast.Call)
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name not in contracts.SHARDED_RUNNERS:
            return
        kernel = _kernel_argument(node)
        if kernel is not None:
            state["calls"].append(kernel)

    def finish(self, ctx: ModuleContext) -> None:
        state = self._state(ctx)
        nested = state["nested"]
        for kernel in state["calls"]:
            if isinstance(kernel, ast.Lambda):
                ctx.report(
                    kernel,
                    self.id,
                    "lambda passed as a sharded kernel cannot be pickled "
                    "into worker processes; use a module-level function or "
                    "a picklable instance (e.g. a frozen dataclass)",
                )
            elif isinstance(kernel, ast.Name) and kernel.id in nested:
                ctx.report(
                    kernel,
                    self.id,
                    f"locally defined function {kernel.id!r} passed as a "
                    f"sharded kernel cannot be pickled into worker "
                    f"processes; lift it to module level",
                )
            elif isinstance(kernel, ast.Call):
                # functools.partial(...) and friends: inspect direct args.
                wrapped = list(kernel.args) + [
                    keyword.value for keyword in kernel.keywords
                ]
                for argument in wrapped:
                    if isinstance(argument, ast.Lambda) or (
                        isinstance(argument, ast.Name) and argument.id in nested
                    ):
                        ctx.report(
                            argument,
                            self.id,
                            "sharded kernel wraps a lambda/locally defined "
                            "function, which cannot be pickled into worker "
                            "processes; lift it to module level",
                        )


__all__ = ["PicklableKernelRule"]
