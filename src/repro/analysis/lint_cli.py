"""The ``repro-qec lint`` command implementation.

Exit codes follow the usual linter convention:

* ``0`` — clean (no findings);
* ``1`` — findings reported;
* ``2`` — usage or configuration error (unknown rule id, missing path).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.core import all_rules, lint_paths
from repro.analysis.reporting import format_json, format_text
from repro.exceptions import ConfigurationError


def default_lint_paths() -> list[Path]:
    """With no paths given, lint the installed ``repro`` package itself."""
    import repro

    return [Path(repro.__file__).resolve().parent]


def _split_ids(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [part for part in raw.split(",")]


def list_rules_table() -> str:
    """The rule table printed by ``--list-rules`` (id, title, contract)."""
    rules = all_rules()
    lines = []
    for rule_id in sorted(rules):
        rule = rules[rule_id]
        lines.append(f"{rule_id}  {rule.title}")
        lines.append(f"        {rule.contract}")
    return "\n".join(lines)


def run_lint(args: argparse.Namespace) -> int:
    """Execute the lint subcommand; returns the process exit code."""
    if args.list_rules:
        print(list_rules_table())
        return 0
    paths = [Path(path) for path in args.paths] if args.paths else default_lint_paths()
    try:
        findings = lint_paths(
            paths,
            select=_split_ids(args.select),
            ignore=_split_ids(args.ignore),
        )
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.output_format == "json":
        print(format_json(findings))
    else:
        print(format_text(findings))
    return 1 if findings else 0


__all__ = ["default_lint_paths", "list_rules_table", "run_lint"]
