"""Finding output: human text and stable JSON.

The JSON form is byte-stable for identical findings — sorted findings,
sorted keys, no timestamps or absolute machine paths beyond what the caller
passed — so editors and CI can diff or cache it.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.core import Finding

#: Schema version of the JSON payload; bump on shape changes.
JSON_VERSION = 1


def format_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: RULE message`` line per finding plus a summary."""
    if not findings:
        return "clean: no findings"
    lines = [
        f"{finding.coordinate}: {finding.rule} {finding.message}"
        for finding in findings
    ]
    lines.append(f"{len(findings)} finding(s)")
    return "\n".join(lines)


def format_json(findings: Sequence[Finding]) -> str:
    """Stable JSON: sorted findings, sorted keys, compact separators."""
    payload = {
        "version": JSON_VERSION,
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "rule": finding.rule,
                "message": finding.message,
            }
            for finding in sorted(findings)
        ],
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


__all__ = ["JSON_VERSION", "format_json", "format_text"]
