"""Single-pass AST-visitor linter framework with pluggable rules.

Each linted file is parsed once and walked once; every rule registers the
node types it cares about (``node_types``) and receives exactly the matching
nodes, together with a :class:`ModuleContext` that carries the bookkeeping
all rules share — import alias tables, the enclosing-scope stack, and a
``report`` sink that applies the ``# repro: allow[RULE]`` suppression pragma.
Cross-file rules additionally implement ``check_project`` and run once per
lint invocation over the whole :class:`~repro.analysis.project.Project`.

Two meta findings are produced by the framework itself and are deliberately
*not* suppressible or selectable:

* ``LNT001`` — a suppression pragma naming an unknown rule id (or naming
  nothing): a typo here would otherwise silently suppress nothing.
* ``LNT002`` — a file that does not parse.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path, PurePosixPath
from typing import Iterable, Iterator, Sequence

from repro.analysis.project import ParsedModule, Project
from repro.exceptions import ConfigurationError

#: Framework-level finding ids (always active; not pragma-suppressible).
META_PRAGMA = "LNT001"
META_SYNTAX = "LNT002"


@dataclass(frozen=True, order=True)
class Finding:
    """One linter finding, ordered for stable output."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    @property
    def coordinate(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


class Rule:
    """Base class of a pluggable lint rule.

    Subclasses set ``id`` / ``title`` / ``contract`` and implement any of:

    * ``visit(ctx, node)`` — called for nodes matching ``node_types``;
    * ``finish(ctx)`` — called once after the module walk (for rules that
      accumulate per-module state, e.g. PKL001's nested-def table);
    * ``check_project(project)`` — called once per lint invocation with the
      full :class:`Project` (cross-file rules: KEY001, TIER001);
    * ``applies_to(module)`` — path scoping (e.g. kernel packages only).
    """

    id: str = ""
    title: str = ""
    contract: str = ""
    node_types: tuple[type, ...] = ()

    def applies_to(self, module: ParsedModule) -> bool:
        return True

    def visit(self, ctx: "ModuleContext", node: ast.AST) -> None:  # pragma: no cover
        pass

    def finish(self, ctx: "ModuleContext") -> None:
        pass

    def check_project(self, project: Project) -> list[Finding]:
        return []


class ModuleContext:
    """Per-module state shared by all rules during the single walk."""

    def __init__(self, module: ParsedModule) -> None:
        self.module = module
        self.findings: list[Finding] = []
        #: ``alias -> dotted module`` for ``import x [as y]`` bindings.
        self.module_aliases: dict[str, str] = {}
        #: ``name -> dotted "module.attr"`` for ``from m import n [as a]``.
        self.from_imports: dict[str, str] = {}
        #: Enclosing function/class nodes, outermost first (the node being
        #: visited is *not* on the stack while its own ``visit`` runs).
        self.scope_stack: list[ast.AST] = []
        #: Depth of enclosing ``if TYPE_CHECKING:`` blocks.
        self.type_checking_depth = 0
        #: Per-module scratch space for stateful rules, keyed by rule id
        #: (rule instances are shared across modules, so state lives here).
        self.rule_state: dict[str, dict] = {}

    @property
    def in_function(self) -> bool:
        return any(
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
            for node in self.scope_stack
        )

    def record_import(self, node: ast.Import | ast.ImportFrom) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    self.module_aliases[alias.asname] = alias.name
                else:
                    # ``import numpy.random`` binds the *top* package name.
                    top = alias.name.split(".", 1)[0]
                    self.module_aliases[top] = top
        elif node.module is not None and node.level == 0:
            for alias in node.names:
                local = alias.asname if alias.asname is not None else alias.name
                self.from_imports[local] = f"{node.module}.{alias.name}"

    def dotted_name(self, expr: ast.AST) -> str | None:
        """Canonical dotted name of an attribute chain rooted in an import.

        ``np.random.seed`` resolves to ``"numpy.random.seed"`` whatever the
        local aliasing (``import numpy as np``, ``from numpy import random``,
        ``import numpy.random as npr``, ...).  Names that are not import
        bindings resolve to ``None`` — rules treat those as local values.
        """
        parts: list[str] = []
        while isinstance(expr, ast.Attribute):
            parts.append(expr.attr)
            expr = expr.value
        if not isinstance(expr, ast.Name):
            return None
        base = self.module_aliases.get(expr.id)
        if base is None:
            base = self.from_imports.get(expr.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))

    def report(self, node: ast.AST, rule_id: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        if self.module.suppressed(line, rule_id):
            return
        self.findings.append(
            Finding(
                path=self.module.display,
                line=line,
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule_id,
                message=message,
            )
        )


def build_import_context(module: ParsedModule) -> ModuleContext:
    """A :class:`ModuleContext` with only the import alias tables populated.

    Cross-file rules use this to resolve dotted names in modules they load
    outside the main walk (e.g. mapping a class name in ``TIER_DECODERS``
    back to the module that defines it).
    """
    ctx = ModuleContext(module)
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            ctx.record_import(node)
    return ctx


def _is_type_checking_test(test: ast.AST) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    return isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"


class _Walker:
    """Drives the one pass over a module's AST, dispatching to rules."""

    def __init__(self, ctx: ModuleContext, rules: Sequence[Rule]) -> None:
        self._ctx = ctx
        self._rules = rules

    def run(self) -> None:
        for node in self._ctx.module.tree.body:
            self._visit(node)

    def _visit(self, node: ast.AST) -> None:
        ctx = self._ctx
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            ctx.record_import(node)
        for rule in self._rules:
            if rule.node_types and isinstance(node, rule.node_types):
                rule.visit(ctx, node)
        opens_scope = isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        )
        if opens_scope:
            ctx.scope_stack.append(node)
        try:
            if isinstance(node, ast.If) and _is_type_checking_test(node.test):
                ctx.type_checking_depth += 1
                for child in node.body:
                    self._visit(child)
                ctx.type_checking_depth -= 1
                for child in node.orelse:
                    self._visit(child)
            else:
                for child in ast.iter_child_nodes(node):
                    self._visit(child)
        finally:
            if opens_scope:
                ctx.scope_stack.pop()


def all_rules() -> dict[str, type[Rule]]:
    """The rule registry, id -> class (import-cycle-free lazy assembly)."""
    from repro.analysis.rules_determinism import (
        GlobalRngRule,
        SetOrderRule,
        WallClockRule,
    )
    from repro.analysis.rules_dtype import ExplicitDtypeRule
    from repro.analysis.rules_imports import LazyHeavyImportRule
    from repro.analysis.rules_keys import StoreKeyClassificationRule
    from repro.analysis.rules_pickle import PicklableKernelRule
    from repro.analysis.rules_tiers import TierContractRule

    rules = (
        GlobalRngRule,
        WallClockRule,
        SetOrderRule,
        LazyHeavyImportRule,
        ExplicitDtypeRule,
        StoreKeyClassificationRule,
        PicklableKernelRule,
        TierContractRule,
    )
    return {rule.id: rule for rule in rules}


def resolve_rules(
    select: Iterable[str] | None = None, ignore: Iterable[str] | None = None
) -> list[Rule]:
    """Instantiate the active rule set, validating ``--select/--ignore`` ids."""
    registry = all_rules()

    def _validate(ids: Iterable[str], flag: str) -> set[str]:
        wanted = {rule_id.strip() for rule_id in ids if rule_id.strip()}
        unknown = sorted(wanted - set(registry))
        if unknown:
            raise ConfigurationError(
                f"unknown rule id(s) in {flag}: {unknown}; "
                f"valid rules are {sorted(registry)}"
            )
        return wanted

    active = set(registry)
    if select is not None:
        active = _validate(select, "--select")
    if ignore is not None:
        active -= _validate(ignore, "--ignore")
    return [registry[rule_id]() for rule_id in sorted(active)]


def _pragma_findings(module: ParsedModule) -> list[Finding]:
    """Validate every suppression pragma against the full rule registry."""
    known = set(all_rules())
    findings = []
    for line in sorted(module.pragmas):
        ids = module.pragmas[line]
        if not ids:
            findings.append(
                Finding(
                    path=module.display,
                    line=line,
                    col=1,
                    rule=META_PRAGMA,
                    message=(
                        "suppression pragma names no rule: use "
                        "'# repro: allow[RULE1,RULE2]'"
                    ),
                )
            )
            continue
        for rule_id in ids:
            if rule_id not in known:
                findings.append(
                    Finding(
                        path=module.display,
                        line=line,
                        col=1,
                        rule=META_PRAGMA,
                        message=(
                            f"suppression pragma names unknown rule "
                            f"{rule_id!r}; valid rules are {sorted(known)}"
                        ),
                    )
                )
    return findings


def lint_module(module: ParsedModule, rules: Sequence[Rule]) -> list[Finding]:
    """Run the module-local rules (plus pragma validation) over one module."""
    active = [rule for rule in rules if rule.applies_to(module)]
    ctx = ModuleContext(module)
    if active:
        _Walker(ctx, active).run()
        for rule in active:
            rule.finish(ctx)
    return ctx.findings + _pragma_findings(module)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a deterministic .py file sequence."""
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def lint_paths(
    paths: Sequence[Path | str],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint files and directories; the main library entry point.

    Raises :class:`~repro.exceptions.ConfigurationError` for unknown rule
    ids or nonexistent paths; unparseable *files* become ``LNT002`` findings
    instead (one bad file must not mask the rest of the tree).
    """
    rules = resolve_rules(select, ignore)
    resolved = [Path(path) for path in paths]
    for path in resolved:
        if not path.exists():
            raise ConfigurationError(f"lint path does not exist: {path}")
    findings: list[Finding] = []
    modules: list[ParsedModule] = []
    for file_path in iter_python_files(resolved):
        display = str(PurePosixPath(file_path))
        try:
            modules.append(ParsedModule.from_path(file_path, display=display))
        except SyntaxError as error:
            findings.append(
                Finding(
                    path=display,
                    line=error.lineno or 1,
                    col=(error.offset or 1),
                    rule=META_SYNTAX,
                    message=f"file does not parse: {error.msg}",
                )
            )
    project = Project(modules)
    for module in modules:
        findings.extend(lint_module(module, rules))
    by_display = {module.display: module for module in modules}
    for rule in rules:
        for finding in rule.check_project(project):
            module = by_display.get(finding.path)
            if module is not None and module.suppressed(finding.line, finding.rule):
                continue
            findings.append(finding)
    return sorted(set(findings))


def lint_source(
    source: str,
    rel: str = "snippet.py",
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint one in-memory source under a virtual package-relative path.

    The fixture-test entry point: ``rel`` controls path-scoped rules, e.g.
    ``rel="repro/simulation/foo.py"`` puts the snippet in kernel scope.
    Cross-file rules do not run (there is no package root to resolve
    against) — use :func:`lint_paths` on a real tree for those.
    """
    rules = resolve_rules(select, ignore)
    module = ParsedModule.from_source(source, rel=rel)
    return sorted(set(lint_module(module, rules)))


__all__ = [
    "Finding",
    "META_PRAGMA",
    "META_SYNTAX",
    "ModuleContext",
    "Rule",
    "all_rules",
    "iter_python_files",
    "lint_module",
    "lint_paths",
    "lint_source",
    "resolve_rules",
]
