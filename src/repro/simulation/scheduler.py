"""Persistent-pool sweep scheduling: one executor, many points, shards interleaved.

A figure sweep (fig11/fig12/fig14/fig16) is dozens of independent Monte-Carlo
points, and the per-point runners each spin up — and tear down — their own
``ProcessPoolExecutor`` inside :class:`~repro.faults.ShardExecutor`.  That
serialises the sweep twice over: a point's slow last shard (a d=11 blossom
tail, say) leaves every other worker idle until the point finishes, and each
adaptive Wilson wave queues its small trailing shard batch behind fresh
pool-construction overhead.  :class:`SweepScheduler` owns **one** executor
(hence one pool) for the lifetime of a sweep and keeps it saturated with
shard tasks from *all* pending points at once: fixed-budget points enqueue
their whole shard plan up front, adaptive points enqueue wave-by-wave through
a per-point Wilson driver — so a converging point's tail overlaps the next
point's first wave.

Determinism is untouched **by construction**.  Each shard remains a pure
function of ``(point_seed, shard_index, chunk_trials)`` under the PR 2
seeding contract; the scheduler merely changes *when* shards execute, never
which shards exist or which streams they draw.  Every point's partials are
merged in shard-index order (waves in index order, shards within a wave by
offset), the adaptive wave schedule stays the same pure function of that
point's consumed-trial count, and checkpoints are saved through the same
:func:`~repro.simulation.shard._checkpoint_state` layout — so a scheduled
sweep is byte-identical to the sequential per-point sweep at any worker
count, stores, checkpoints, and all.

Fault tolerance rides the existing ladder unchanged: retries, timeouts, pool
respawns, and degradation are per-shard concerns of the shared
:class:`~repro.faults.ShardExecutor` (with the one semantic shift that
respawn/degrade budgets now span the sweep rather than a single point, since
there is a single pool).  Tasks are dispatched tagged ``(point_index,
shard_index)``, so chaos plans can pin a fault to one point of a scheduled
sweep via the ``point <p>`` qualifier (see :mod:`repro.faults.injector`) and
skipped-shard provenance stays attributable per point.  Each point is
finalised — and persisted, via its ``on_complete`` hook — the moment its
last shard lands, preserving kill-mid-sweep resume: points completed before
a crash are already durable in the :class:`~repro.store.ResultStore`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.exceptions import ConfigurationError, FaultToleranceError
from repro.faults import (
    SKIPPED,
    FaultInjector,
    FaultPolicy,
    FaultReport,
    ShardExecutor,
)
from repro.simulation.monte_carlo import WilsonStoppingRule, wilson_interval
from repro.simulation.shard import (
    DEFAULT_SHARD_TRIALS,
    MemoryKernel,
    _checkpoint_state,
    _load_checkpoint_state,
    _memory_successes,
    _resolve_fault_args,
    _resolve_rounds,
    _resolve_seed,
    _resolve_workers,
    merge_counts,
    merge_memory_counts,
    plan_shards,
)
from repro.types import StabilizerType

#: The two dispatch modes experiment runners accept: ``"sweep"`` feeds every
#: point's shards through one persistent pool, ``"point"`` is the legacy
#: one-pool-per-point path.  Results are byte-identical either way.
SCHEDULE_MODES = ("sweep", "point")


def validate_schedule(schedule: str) -> str:
    """Reject anything but the two documented dispatch modes."""
    if schedule not in SCHEDULE_MODES:
        raise ConfigurationError(
            f"schedule must be one of {SCHEDULE_MODES}, got {schedule!r}"
        )
    return schedule


@dataclass
class SweepPoint:
    """One sweep point's shard plan, merge, and completion hooks.

    ``trials`` is the fixed budget when ``stop`` is ``None``; adaptive points
    (``stop`` set) ignore it in favour of the rule's own ``min_trials`` /
    ``max_trials`` wave schedule and must provide ``successes_of``.
    ``finalize`` maps the raw :class:`PointOutcome` to the caller's result
    type; ``on_complete`` fires with that finalised result the moment the
    point's last shard lands — the persistence hook.
    """

    point_id: str
    kernel: Any
    trials: int
    seed: int | None = None
    chunk_trials: int = DEFAULT_SHARD_TRIALS
    merge: Callable[[Any, Any], Any] = merge_counts
    stop: WilsonStoppingRule | None = None
    successes_of: Callable[[Any], int] | None = None
    checkpoint: Any | None = None
    finalize: Callable[["PointOutcome"], Any] | None = None
    on_complete: Callable[[Any], None] | None = None


@dataclass(frozen=True)
class PointOutcome:
    """A completed point's merged value plus per-point execution provenance.

    ``trials`` is the budget actually merged (fixed budget minus skipped
    trials, or the adaptive consumed-trial count); ``shards`` the number of
    RNG stream indices consumed.  ``successes`` / ``interval`` are set for
    adaptive points only.
    """

    point_id: str
    value: Any
    trials: int
    shards: int
    skipped_shards: int
    skipped_trials: int
    engine_degraded: bool
    successes: int | None = None
    interval: tuple[float, float] | None = None


class _PointDriver:
    """Mutable per-point progress: the Wilson driver state and wave buffers."""

    def __init__(self, index: int, point: SweepPoint) -> None:
        self.index = index  # the fault plan's / SkippedShard's point_index
        self.point = point
        self.seed = _resolve_seed(point.seed)
        self.merged: Any = None
        self.trials_done = 0
        self.next_index = 0  # next unconsumed shard RNG stream index
        self.wave_base = 0  # shard index of the current wave's offset 0
        self.wave_sizes: list[int] = []
        self.wave_outcomes: list[Any] = []
        self.outstanding = 0  # current-wave shards still in flight
        self.skipped_shards = 0
        self.skipped_trials = 0
        self.done = False
        self.result: Any = None


@dataclass
class SweepScheduler:
    """Run many sweep points on one persistent :class:`ShardExecutor` pool.

    ``workers`` / ``faults`` / ``fault_report`` / ``fault_injector`` carry
    the same semantics as :func:`repro.simulation.shard.run_sharded`, except
    that the policy's pool-respawn and degradation budgets span the whole
    sweep (one pool) instead of resetting per point.
    """

    workers: int | None = None
    faults: FaultPolicy | None = None
    fault_report: FaultReport | None = None
    fault_injector: FaultInjector | None = None

    def run(self, points: "list[SweepPoint]") -> dict[str, Any]:
        """Execute every point and return ``{point_id: finalised result}``.

        Points complete — finalise, fire ``on_complete`` — as their last
        shard lands, in whatever order the pool finishes them; the returned
        mapping is complete and deterministic regardless.
        """
        points = list(points)
        if not points:
            return {}
        ids = [point.point_id for point in points]
        if len(dict.fromkeys(ids)) != len(ids):
            raise ConfigurationError(f"sweep point_ids must be unique, got {ids!r}")
        for point in points:
            if point.stop is not None and point.successes_of is None:
                raise ConfigurationError(
                    f"adaptive sweep point {point.point_id!r} needs successes_of"
                )
        workers = _resolve_workers(self.workers)
        policy, report = _resolve_fault_args(self.faults, self.fault_report)
        drivers = [_PointDriver(index, point) for index, point in enumerate(points)]
        task_meta: list[tuple[_PointDriver, int]] = []  # task index -> (driver, offset)

        def start_wave(driver: _PointDriver, sizes: list[int]) -> list[tuple]:
            driver.wave_base = driver.next_index
            driver.wave_sizes = list(sizes)
            driver.wave_outcomes = [None] * len(sizes)
            driver.outstanding = len(sizes)
            batch = []
            for offset, shard_trials in enumerate(sizes):
                task_meta.append((driver, offset))
                batch.append(
                    (
                        driver.point.kernel,
                        shard_trials,
                        driver.seed,
                        driver.wave_base + offset,
                        driver.index,
                    )
                )
            return batch

        def complete(driver: _PointDriver) -> None:
            point = driver.point
            if point.stop is None:
                trials = point.trials - driver.skipped_trials
                successes: int | None = None
                interval: tuple[float, float] | None = None
            else:
                trials = driver.trials_done
                successes = point.successes_of(driver.merged)
                interval = wilson_interval(successes, driver.trials_done, point.stop.z)
            outcome = PointOutcome(
                point_id=point.point_id,
                value=driver.merged,
                trials=trials,
                shards=driver.next_index,
                skipped_shards=driver.skipped_shards,
                skipped_trials=driver.skipped_trials,
                engine_degraded=report.engine_degraded,
                successes=successes,
                interval=interval,
            )
            driver.result = (
                point.finalize(outcome) if point.finalize is not None else outcome
            )
            driver.done = True
            if point.on_complete is not None:
                point.on_complete(driver.result)

        def advance_adaptive(driver: _PointDriver) -> list[tuple]:
            point, stop = driver.point, driver.point.stop
            if driver.merged is not None and stop.satisfied(
                point.successes_of(driver.merged), driver.trials_done
            ):
                complete(driver)
                return []
            # Same schedule as run_sharded_adaptive, fresh or resumed: cover
            # min_trials first, then double the consumed total, clamped.
            if driver.trials_done < stop.min_trials:
                wave = stop.min_trials - driver.trials_done
            else:
                wave = stop.next_wave(driver.trials_done)
            if wave <= 0:
                complete(driver)
                return []
            return start_wave(driver, plan_shards(wave, point.chunk_trials))

        def wave_done(driver: _PointDriver) -> list[tuple]:
            point = driver.point
            sizes, outcomes = driver.wave_sizes, driver.wave_outcomes
            done_trials = 0
            # Merge strictly by shard offset: identical associativity order
            # to the sequential per-point path, hence byte-identical results
            # even for non-commutative merges.
            for size, outcome in zip(sizes, outcomes):
                if outcome is SKIPPED:
                    driver.skipped_shards += 1
                    driver.skipped_trials += size
                    continue
                driver.merged = (
                    outcome
                    if driver.merged is None
                    else point.merge(driver.merged, outcome)
                )
                done_trials += size
            driver.next_index = driver.wave_base + len(sizes)
            if point.stop is None:
                if driver.merged is None:
                    raise FaultToleranceError(
                        f"all {len(sizes)} shard(s) were skipped after exhausting "
                        "their retry budgets; nothing to merge"
                    )
                complete(driver)
                return []
            if done_trials == 0:
                raise FaultToleranceError(
                    f"all {len(sizes)} shard(s) of an adaptive wave were "
                    "skipped after exhausting their retry budgets; the run "
                    "cannot make progress"
                )
            driver.trials_done += done_trials
            if point.checkpoint is not None:
                point.checkpoint.save(
                    _checkpoint_state(
                        driver.seed,
                        point.chunk_trials,
                        driver.trials_done,
                        driver.next_index,
                        driver.merged,
                    )
                )
            return advance_adaptive(driver)

        def open_point(driver: _PointDriver) -> list[tuple]:
            point = driver.point
            if point.stop is None:
                return start_wave(
                    driver, plan_shards(point.trials, point.chunk_trials)
                )
            if point.checkpoint is not None:
                resumed = _load_checkpoint_state(
                    point.checkpoint, driver.seed, point.chunk_trials
                )
                if resumed is not None:
                    driver.merged, driver.trials_done, driver.next_index = resumed
            return advance_adaptive(driver)

        def on_task_complete(task_index: int, outcome: Any) -> "list[tuple] | None":
            driver, offset = task_meta[task_index]
            driver.wave_outcomes[offset] = outcome
            driver.outstanding -= 1
            if driver.outstanding:
                return None
            return wave_done(driver)

        initial: list[tuple] = []
        for driver in drivers:
            # An adaptive point resuming from an already-satisfied checkpoint
            # completes here without contributing a single shard.
            initial.extend(open_point(driver))
        if initial:
            with ShardExecutor(
                workers=workers,
                policy=policy,
                injector=self.fault_injector,
                report=report,
            ) as executor:
                executor.run_dynamic(initial, on_task_complete)
        stuck = [driver.point.point_id for driver in drivers if not driver.done]
        if stuck:
            raise FaultToleranceError(
                f"scheduled sweep finished with incomplete points: {stuck!r}"
            )
        return {driver.point.point_id: driver.result for driver in drivers}


# ----------------------------------------------------------------------
# Point adapters for the two experiment families
# ----------------------------------------------------------------------
def memory_point(
    point_id: str,
    code: Any,
    noise: Any,
    decoder_factory: Any,
    *,
    trials: int,
    seed: int | None,
    rounds: int | None = None,
    stype: StabilizerType = StabilizerType.X,
    chunk_trials: int = DEFAULT_SHARD_TRIALS,
    stop: WilsonStoppingRule | None = None,
    checkpoint: Any | None = None,
    packed: bool = True,
    decoder_name: str | None = None,
    on_complete: Callable[[Any], None] | None = None,
) -> SweepPoint:
    """A memory-experiment :class:`SweepPoint` finalising to the same
    :class:`~repro.simulation.memory.MemoryExperimentResult` the per-point
    runners (:func:`~repro.simulation.shard.run_memory_experiment_sharded` /
    ``_adaptive``) produce — field for field."""
    rounds = _resolve_rounds(code, rounds)
    kernel = MemoryKernel(code, noise, decoder_factory, rounds, stype, packed=packed)

    def finalize(outcome: PointOutcome):
        from repro.simulation.memory import MemoryExperimentResult

        (
            failures,
            onchip_rounds,
            total_rounds,
            kernel_name,
            tier_names,
            tier_trials,
            tier_rounds,
        ) = outcome.value
        return MemoryExperimentResult(
            physical_error_rate=noise.data_error_rate,
            code_distance=code.distance,
            rounds=rounds,
            trials=outcome.trials,
            logical_failures=failures,
            decoder_name=decoder_name or kernel_name,
            onchip_rounds=onchip_rounds,
            total_rounds=total_rounds,
            tier_names=tier_names,
            tier_trials=tier_trials,
            tier_rounds=tier_rounds,
            engine_degraded=outcome.engine_degraded,
            skipped_shards=outcome.skipped_shards,
            skipped_trials=outcome.skipped_trials,
        )

    return SweepPoint(
        point_id=point_id,
        kernel=kernel,
        trials=trials if stop is None else stop.max_trials,
        seed=seed,
        chunk_trials=chunk_trials,
        merge=merge_memory_counts,
        stop=stop,
        successes_of=_memory_successes if stop is not None else None,
        checkpoint=checkpoint,
        finalize=finalize,
        on_complete=on_complete,
    )


def coverage_point(
    point_id: str,
    code: Any,
    noise: Any,
    *,
    cycles: int,
    seed: int | None,
    measurement_rounds: int = 2,
    stype: StabilizerType = StabilizerType.X,
    batch_size: int = 50_000,
    chunk_cycles: int | None = None,
    stop: WilsonStoppingRule | None = None,
    checkpoint: Any | None = None,
    on_complete: Callable[[Any], None] | None = None,
) -> SweepPoint:
    """A clique-coverage :class:`SweepPoint` finalising to the same
    :class:`~repro.simulation.coverage.CoverageResult` that
    :func:`~repro.simulation.coverage.simulate_clique_coverage` produces."""
    from repro.simulation.coverage import (
        DEFAULT_SHARD_CYCLES,
        CoverageKernel,
        CoverageResult,
        _coverage_successes,
    )

    chunk = chunk_cycles if chunk_cycles is not None else DEFAULT_SHARD_CYCLES
    kernel = CoverageKernel(code, noise, stype, measurement_rounds, batch_size)

    def finalize(outcome: PointOutcome):
        onchip, all_zero, counted = outcome.value
        return CoverageResult(
            physical_error_rate=noise.data_error_rate,
            code_distance=code.distance,
            measurement_rounds=measurement_rounds,
            cycles=counted,
            onchip_cycles=onchip,
            all_zero_cycles=all_zero,
        )

    return SweepPoint(
        point_id=point_id,
        kernel=kernel,
        trials=cycles if stop is None else stop.max_trials,
        seed=seed,
        chunk_trials=chunk,
        merge=merge_counts,
        stop=stop,
        successes_of=_coverage_successes if stop is not None else None,
        checkpoint=checkpoint,
        finalize=finalize,
        on_complete=on_complete,
    )


__all__ = [
    "SCHEDULE_MODES",
    "PointOutcome",
    "SweepPoint",
    "SweepScheduler",
    "coverage_point",
    "memory_point",
    "validate_schedule",
]
