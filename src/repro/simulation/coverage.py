"""Clique on-chip coverage measurement (Figs. 11 and 12 of the paper).

*Coverage* is the fraction of decode cycles whose signature the Clique
decoder resolves without going off-chip.  The behavioural decision chain per
cycle is:

1. fresh data errors light up their adjacent ancillas;
2. measurement errors are filtered by the persistence window: only flips that
   repeat for ``measurement_rounds`` consecutive readouts reach the decision
   logic (Section 4.3), so a persistent readout fault shows up as a lone
   active ancilla;
3. the Clique decision logic (Fig. 5) marks the cycle on-chip if every active
   clique passes the local parity test, off-chip otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clique.decoder import CliqueDecoder
from repro.codes.rotated_surface import RotatedSurfaceCode
from repro.exceptions import ConfigurationError
from repro.noise.models import NoiseModel
from repro.noise.rng import make_rng
from repro.simulation.monte_carlo import until_wilson, wilson_interval
from repro.simulation.shard import (
    AUTO_CHUNK,
    resolve_auto_chunk,
    run_sharded,
    run_sharded_adaptive,
)
from repro.types import StabilizerType

#: Cycles per shard of a sharded/adaptive coverage run: small enough that a
#: Fig. 11-size budget (20k cycles) still yields several shards to spread
#: over a pool, large enough to amortise per-shard decoder construction.
DEFAULT_SHARD_CYCLES = 5_000


@dataclass(frozen=True)
class CoverageResult:
    """Outcome of a Clique coverage simulation at one operating point."""

    physical_error_rate: float
    code_distance: int
    measurement_rounds: int
    cycles: int
    onchip_cycles: int
    all_zero_cycles: int

    @property
    def offchip_cycles(self) -> int:
        return self.cycles - self.onchip_cycles

    @property
    def coverage(self) -> float:
        """Fraction of decode cycles handled on-chip (Fig. 11's y-axis)."""
        return self.onchip_cycles / self.cycles if self.cycles else 1.0

    @property
    def offchip_fraction(self) -> float:
        return 1.0 - self.coverage

    @property
    def coverage_interval(self) -> tuple[float, float]:
        return wilson_interval(self.onchip_cycles, self.cycles)

    @property
    def nonzero_cycles(self) -> int:
        return self.cycles - self.all_zero_cycles

    @property
    def nonzero_onchip_cycles(self) -> int:
        """On-chip cycles whose signature was not all zeros (real Clique work)."""
        return self.onchip_cycles - self.all_zero_cycles

    @property
    def nonzero_coverage(self) -> float:
        """Fraction of non-all-0s cycles still handled on-chip (Fig. 12's y-axis)."""
        if self.nonzero_cycles == 0:
            return 1.0
        return self.nonzero_onchip_cycles / self.nonzero_cycles

    @property
    def onchip_nonzero_share(self) -> float:
        """Share of the on-chip decodes that carried a non-trivial signature."""
        if self.onchip_cycles == 0:
            return 0.0
        return self.nonzero_onchip_cycles / self.onchip_cycles


def _count_coverage(
    code: RotatedSurfaceCode,
    noise: NoiseModel,
    stype: StabilizerType,
    measurement_rounds: int,
    clique: CliqueDecoder,
    parity_check: np.ndarray,
    num_cycles: int,
    generator: np.random.Generator,
    batch_size: int,
) -> tuple[int, int]:
    """Count (on-chip, all-zero) cycles — the shared batch body of both paths.

    Rides the same batched sampling path as
    :func:`repro.simulation.cycles.sample_cycle_signatures`
    (``NoiseModel.sample_data_matrix``), so noise-model subclasses that
    override the batched data sampler are honoured; the persistence-filtered
    measurement flips are coverage-specific (rate ``p ** measurement_rounds``)
    and consume the stream exactly as the historical inline sampling did.
    """
    persistent_flip_rate = noise.measurement_error_rate**measurement_rounds
    onchip = 0
    all_zero = 0
    remaining = num_cycles
    while remaining > 0:
        batch = min(batch_size, remaining)
        data_errors = noise.sample_data_matrix(code, batch, generator).astype(np.int64)
        persistent_flips = (
            generator.random((batch, code.num_ancillas_of_type(stype)))
            < persistent_flip_rate
        ).astype(np.int64)
        signatures = ((data_errors @ parity_check.T + persistent_flips) % 2).astype(
            np.uint8
        )
        trivial = clique.is_trivial_batch(signatures)
        onchip += int(trivial.sum())
        all_zero += int((~signatures.any(axis=-1)).sum())
        remaining -= batch
    return onchip, all_zero


@dataclass(frozen=True)
class CoverageKernel:
    """Picklable coverage shard kernel for the generic sharded runner.

    Partial results are ``(onchip_cycles, all_zero_cycles, cycles)`` count
    tuples, merged by the runner's default elementwise sum.  The Clique
    decoder is rebuilt per shard so the kernel stays cheap to pickle.
    """

    code: RotatedSurfaceCode
    noise: NoiseModel
    stype: StabilizerType = StabilizerType.X
    measurement_rounds: int = 2
    batch_size: int = 50_000

    def __call__(
        self, num_cycles: int, rng: np.random.Generator
    ) -> tuple[int, int, int]:
        clique = CliqueDecoder(self.code, self.stype)
        parity_check = self.code.parity_check(self.stype).astype(np.int64)
        onchip, all_zero = _count_coverage(
            self.code,
            self.noise,
            self.stype,
            self.measurement_rounds,
            clique,
            parity_check,
            num_cycles,
            rng,
            self.batch_size,
        )
        return onchip, all_zero, num_cycles


def _coverage_successes(counts: tuple[int, int, int]) -> int:
    """Tracked proportion for adaptive coverage runs: the on-chip count."""
    return counts[0]


def _is_sharded(
    workers: int | None,
    chunk_cycles: "int | str | None",
    target_ci_width: float | None,
) -> bool:
    """Single source of truth for engaging the sharded coverage engine.

    Shared by :func:`simulate_clique_coverage` and the store keying contract
    of :func:`resolve_coverage_config` — the two must never drift, or cache
    keys would record a different stream topology than the run used.
    """
    return workers is not None or chunk_cycles is not None or target_ci_width is not None


def _resolve_chunk(
    chunk_cycles: "int | str | None",
    num_cycles: int,
    workers: int | None,
    distance: int,
) -> int:
    """One chunk-size resolution for the simulator and the keying contract.

    ``"auto"`` picks the shard size from the budget, worker count, and
    distance (:func:`repro.simulation.shard.resolve_auto_chunk`); the store
    key records the resolved integer, never the machine-dependent spelling.
    """
    if chunk_cycles == AUTO_CHUNK:
        return resolve_auto_chunk(
            num_cycles, workers, distance, default=DEFAULT_SHARD_CYCLES
        )
    return chunk_cycles if chunk_cycles is not None else DEFAULT_SHARD_CYCLES


def resolve_coverage_config(
    num_cycles: int,
    noise: NoiseModel,
    distance: int,
    stype: StabilizerType = StabilizerType.X,
    measurement_rounds: int = 2,
    workers: int | None = None,
    chunk_cycles: "int | str | None" = None,
    target_ci_width: float | None = None,
    min_cycles: int | None = None,
    batch_size: int = 50_000,
) -> dict[str, object]:
    """The fully resolved, stream-determining config of one coverage point.

    This is the result-store keying contract for
    :func:`simulate_clique_coverage`: every knob that can change the counts
    appears with its default resolved (so an omitted default and an explicit
    one key identically), and the one knob that never changes the counts
    (``workers``) is excluded — excluded keywords are centrally listed in
    :data:`repro.store.keys.KEY_EXCLUDED`, and lint rule ``KEY001`` checks
    that this function plus that list cover the full
    :func:`simulate_clique_coverage` signature.  The noise model enters as its class name plus
    *both* rates — a ``PhenomenologicalNoise(p, q)`` with an independent
    measurement rate must not share a key with the symmetric ``q == p``
    model.  ``batch_size`` *is* stream-determining — splitting a run into
    batches interleaves the data-error and measurement-flip draws
    differently — and whether the sharded engine is engaged changes the
    streams too (:func:`_is_sharded` keeps the two call sites in lock-step).
    """
    sharded = _is_sharded(workers, chunk_cycles, target_ci_width)
    chunk = _resolve_chunk(chunk_cycles, num_cycles, workers, distance)
    if target_ci_width is None:
        # min_cycles is adaptive-only (the simulator rejects it otherwise).
        resolved_min = None
    elif min_cycles is not None:
        resolved_min = min_cycles
    else:
        # Mirror of the simulator's adaptive default for the Wilson floor.
        resolved_min = min(chunk, num_cycles)
    return {
        "kind": "coverage",
        "cycles": num_cycles,
        "distance": distance,
        "noise": type(noise).__name__,
        "data_error_rate": noise.data_error_rate,
        "measurement_error_rate": noise.measurement_error_rate,
        "stype": stype.value,
        "measurement_rounds": measurement_rounds,
        "sharded": sharded,
        "chunk_cycles": chunk if sharded else None,
        "target_ci_width": target_ci_width,
        "min_cycles": resolved_min,
        "batch_size": batch_size,
    }


def simulate_clique_coverage(
    code: RotatedSurfaceCode,
    noise: NoiseModel,
    num_cycles: int,
    stype: StabilizerType = StabilizerType.X,
    measurement_rounds: int = 2,
    rng: np.random.Generator | int | None = None,
    batch_size: int = 50_000,
    decoder: CliqueDecoder | None = None,
    workers: int | None = None,
    chunk_cycles: "int | str | None" = None,
    target_ci_width: float | None = None,
    min_cycles: int | None = None,
    checkpoint: object | None = None,
    schedule: str | None = None,
) -> CoverageResult:
    """Estimate Clique coverage by sampling independent decode cycles.

    Measurement errors only reach the decision logic when they persist for
    the full ``measurement_rounds`` window, which happens with probability
    ``p ** measurement_rounds`` per ancilla per cycle; transient flips are
    filtered on-chip for free.

    Engine selection: with ``workers``, ``chunk_cycles``, and
    ``target_ci_width`` all ``None`` (the default), the historical in-process
    single-stream path runs and ``rng`` may be a ready generator.  Passing
    any of them selects the sharded engine (:mod:`repro.simulation.shard`):
    ``rng`` must then be an integer seed, and the counts are deterministic
    per ``(seed, chunk_cycles)`` independent of ``workers`` — equal to
    running :class:`CoverageKernel` once per shard under the
    ``shard_rng(seed, i)`` contract and summing.

    Adaptive allocation: ``target_ci_width`` stops spawning shards once the
    Wilson interval on the coverage proportion is at most that wide
    (``min_cycles`` floor, ``num_cycles`` budget cap); the result's
    ``cycles`` field records what was actually consumed.  ``checkpoint``
    (adaptive only) enables per-wave mid-point resume — see
    :func:`repro.simulation.shard.run_sharded_adaptive`.

    ``chunk_cycles="auto"`` resolves the shard size from the budget, worker
    count, and distance (:func:`repro.simulation.shard.resolve_auto_chunk`).
    ``schedule="sweep"`` (sharded only) routes the point through the sweep
    scheduler (:mod:`repro.simulation.scheduler`) — byte-identical counts,
    near-zero overhead for a single point, used by the experiment sweeps to
    keep one pool saturated across many points.
    """
    if num_cycles <= 0:
        raise ConfigurationError(f"num_cycles must be positive, got {num_cycles}")
    if measurement_rounds < 1:
        raise ConfigurationError(
            f"measurement_rounds must be >= 1, got {measurement_rounds}"
        )
    if min_cycles is not None and target_ci_width is None:
        raise ConfigurationError(
            "min_cycles is only meaningful with target_ci_width (adaptive "
            "sampling); a silently ignored floor would suggest it was applied"
        )
    if checkpoint is not None and target_ci_width is None:
        raise ConfigurationError(
            "checkpoint is only meaningful with target_ci_width (adaptive "
            "sampling): fixed-budget sweeps resume at sweep-point granularity"
        )

    sharded = _is_sharded(workers, chunk_cycles, target_ci_width)
    if schedule is not None:
        from repro.simulation.scheduler import validate_schedule

        validate_schedule(schedule)
        if not sharded:
            raise ConfigurationError(
                "schedule is only meaningful with the sharded engine: pass "
                "workers, chunk_cycles, or target_ci_width"
            )
    if not sharded:
        generator = make_rng(rng)
        clique = decoder or CliqueDecoder(code, stype)
        parity_check = code.parity_check(stype).astype(np.int64)
        onchip, all_zero = _count_coverage(
            code,
            noise,
            stype,
            measurement_rounds,
            clique,
            parity_check,
            num_cycles,
            generator,
            batch_size,
        )
        cycles = num_cycles
    else:
        if decoder is not None:
            raise ConfigurationError(
                "a pre-built decoder cannot be used with the sharded coverage "
                "path: each shard rebuilds its own CliqueDecoder"
            )
        chunk = _resolve_chunk(chunk_cycles, num_cycles, workers, code.distance)
        stop = (
            until_wilson(
                target_ci_width,
                min_trials=min_cycles
                if min_cycles is not None
                else min(chunk, num_cycles),
                max_trials=num_cycles,
            )
            if target_ci_width is not None
            else None
        )
        if schedule == "sweep":
            from repro.simulation.scheduler import SweepScheduler, coverage_point

            point = coverage_point(
                "point",
                code,
                noise,
                cycles=num_cycles,
                seed=rng,
                measurement_rounds=measurement_rounds,
                stype=stype,
                batch_size=batch_size,
                chunk_cycles=chunk,
                stop=stop,
                checkpoint=checkpoint,
            )
            return SweepScheduler(workers=workers).run([point])["point"]
        kernel = CoverageKernel(code, noise, stype, measurement_rounds, batch_size)
        if stop is not None:
            run = run_sharded_adaptive(
                kernel,
                stop=stop,
                successes_of=_coverage_successes,
                seed=rng,
                chunk_trials=chunk,
                workers=workers,
                checkpoint=checkpoint,
            )
            onchip, all_zero, cycles = run.value
        else:
            onchip, all_zero, cycles = run_sharded(
                kernel,
                trials=num_cycles,
                seed=rng,
                chunk_trials=chunk,
                workers=workers,
            )

    return CoverageResult(
        physical_error_rate=noise.data_error_rate,
        code_distance=code.distance,
        measurement_rounds=measurement_rounds,
        cycles=cycles,
        onchip_cycles=onchip,
        all_zero_cycles=all_zero,
    )


__all__ = [
    "CoverageKernel",
    "CoverageResult",
    "DEFAULT_SHARD_CYCLES",
    "resolve_coverage_config",
    "simulate_clique_coverage",
]
