"""Clique on-chip coverage measurement (Figs. 11 and 12 of the paper).

*Coverage* is the fraction of decode cycles whose signature the Clique
decoder resolves without going off-chip.  The behavioural decision chain per
cycle is:

1. fresh data errors light up their adjacent ancillas;
2. measurement errors are filtered by the persistence window: only flips that
   repeat for ``measurement_rounds`` consecutive readouts reach the decision
   logic (Section 4.3), so a persistent readout fault shows up as a lone
   active ancilla;
3. the Clique decision logic (Fig. 5) marks the cycle on-chip if every active
   clique passes the local parity test, off-chip otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clique.decoder import CliqueDecoder
from repro.codes.rotated_surface import RotatedSurfaceCode
from repro.exceptions import ConfigurationError
from repro.noise.models import NoiseModel
from repro.noise.rng import make_rng
from repro.simulation.monte_carlo import wilson_interval
from repro.types import StabilizerType


@dataclass(frozen=True)
class CoverageResult:
    """Outcome of a Clique coverage simulation at one operating point."""

    physical_error_rate: float
    code_distance: int
    measurement_rounds: int
    cycles: int
    onchip_cycles: int
    all_zero_cycles: int

    @property
    def offchip_cycles(self) -> int:
        return self.cycles - self.onchip_cycles

    @property
    def coverage(self) -> float:
        """Fraction of decode cycles handled on-chip (Fig. 11's y-axis)."""
        return self.onchip_cycles / self.cycles if self.cycles else 1.0

    @property
    def offchip_fraction(self) -> float:
        return 1.0 - self.coverage

    @property
    def coverage_interval(self) -> tuple[float, float]:
        return wilson_interval(self.onchip_cycles, self.cycles)

    @property
    def nonzero_cycles(self) -> int:
        return self.cycles - self.all_zero_cycles

    @property
    def nonzero_onchip_cycles(self) -> int:
        """On-chip cycles whose signature was not all zeros (real Clique work)."""
        return self.onchip_cycles - self.all_zero_cycles

    @property
    def nonzero_coverage(self) -> float:
        """Fraction of non-all-0s cycles still handled on-chip (Fig. 12's y-axis)."""
        if self.nonzero_cycles == 0:
            return 1.0
        return self.nonzero_onchip_cycles / self.nonzero_cycles

    @property
    def onchip_nonzero_share(self) -> float:
        """Share of the on-chip decodes that carried a non-trivial signature."""
        if self.onchip_cycles == 0:
            return 0.0
        return self.nonzero_onchip_cycles / self.onchip_cycles


def simulate_clique_coverage(
    code: RotatedSurfaceCode,
    noise: NoiseModel,
    num_cycles: int,
    stype: StabilizerType = StabilizerType.X,
    measurement_rounds: int = 2,
    rng: np.random.Generator | int | None = None,
    batch_size: int = 50_000,
    decoder: CliqueDecoder | None = None,
) -> CoverageResult:
    """Estimate Clique coverage by sampling independent decode cycles.

    Measurement errors only reach the decision logic when they persist for
    the full ``measurement_rounds`` window, which happens with probability
    ``p ** measurement_rounds`` per ancilla per cycle; transient flips are
    filtered on-chip for free.
    """
    if num_cycles <= 0:
        raise ConfigurationError(f"num_cycles must be positive, got {num_cycles}")
    if measurement_rounds < 1:
        raise ConfigurationError(
            f"measurement_rounds must be >= 1, got {measurement_rounds}"
        )
    generator = make_rng(rng)
    clique = decoder or CliqueDecoder(code, stype)
    parity_check = code.parity_check(stype).astype(np.int64)
    persistent_flip_rate = noise.measurement_error_rate**measurement_rounds

    onchip = 0
    all_zero = 0
    remaining = num_cycles
    while remaining > 0:
        batch = min(batch_size, remaining)
        data_errors = (
            generator.random((batch, code.num_data_qubits)) < noise.data_error_rate
        ).astype(np.int64)
        persistent_flips = (
            generator.random((batch, code.num_ancillas_of_type(stype)))
            < persistent_flip_rate
        ).astype(np.int64)
        signatures = ((data_errors @ parity_check.T + persistent_flips) % 2).astype(
            np.uint8
        )
        trivial = clique.is_trivial_batch(signatures)
        onchip += int(trivial.sum())
        all_zero += int((~signatures.any(axis=-1)).sum())
        remaining -= batch

    return CoverageResult(
        physical_error_rate=noise.data_error_rate,
        code_distance=code.distance,
        measurement_rounds=measurement_rounds,
        cycles=num_cycles,
        onchip_cycles=onchip,
        all_zero_cycles=all_zero,
    )


__all__ = ["CoverageResult", "simulate_clique_coverage"]
