"""Fast batched per-cycle signature sampling (the Fig. 4 workload).

The signature-distribution and coverage experiments only need the *per-cycle*
view: which ancillas light up in a single decode cycle given that previous
cycles' errors have already been corrected.  That makes the sampling fully
vectorisable: a batch of cycles is a binary matrix of fresh data errors, one
sparse matrix multiply away from the batch of signatures.
"""

from __future__ import annotations

import numpy as np

from repro.codes.rotated_surface import RotatedSurfaceCode
from repro.exceptions import ConfigurationError
from repro.noise.models import NoiseModel
from repro.noise.rng import make_rng
from repro.simulation.results import SignatureDistribution
from repro.types import StabilizerType


def sample_cycle_signatures(
    code: RotatedSurfaceCode,
    stype: StabilizerType,
    noise: NoiseModel,
    num_cycles: int,
    rng: np.random.Generator | int | None = None,
    return_touch_counts: bool = False,
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | tuple[np.ndarray, np.ndarray]:
    """Sample a batch of per-cycle signatures for one stabilizer type.

    Returns ``(signatures, measurement_flips)`` where ``signatures`` has shape
    ``(num_cycles, num_ancillas)`` and already includes the measurement flips,
    and additionally the integer ``touch_counts`` matrix (how many error
    events touch each ancilla) when ``return_touch_counts`` is True — the
    ground-truth ingredient of the Fig. 4 classification.
    """
    if num_cycles <= 0:
        raise ConfigurationError(f"num_cycles must be positive, got {num_cycles}")
    generator = make_rng(rng)
    parity_check = code.parity_check(stype).astype(np.int64)

    data_errors = noise.sample_data_matrix(code, num_cycles, generator).astype(np.int64)
    measurement_flips = noise.sample_measurement_matrix(
        code, stype, num_cycles, generator
    ).astype(np.int64)

    data_touches = data_errors @ parity_check.T
    signatures = ((data_touches + measurement_flips) % 2).astype(np.uint8)
    if return_touch_counts:
        touch_counts = data_touches + measurement_flips
        return signatures, measurement_flips.astype(np.uint8), touch_counts
    return signatures, measurement_flips.astype(np.uint8)


def classify_cycles(
    signatures: np.ndarray, touch_counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised Fig. 4 classification of a batch of cycles.

    Returns three boolean arrays ``(all_zeros, local_ones, complex_)`` over the
    cycle axis.  A cycle is *complex* when any ancilla is touched by two or
    more error events (a chain); *all-zeros* when no ancilla lights up; and
    *local-1s* otherwise.
    """
    if signatures.shape != touch_counts.shape:
        raise ConfigurationError("signatures and touch_counts must have the same shape")
    any_signature = signatures.any(axis=-1)
    has_chain = (touch_counts >= 2).any(axis=-1)
    all_zeros = ~any_signature
    complex_ = any_signature & has_chain
    local_ones = any_signature & ~has_chain
    return all_zeros, local_ones, complex_


def simulate_signature_distribution(
    code: RotatedSurfaceCode,
    noise: NoiseModel,
    num_cycles: int,
    stype: StabilizerType = StabilizerType.X,
    rng: np.random.Generator | int | None = None,
    batch_size: int = 100_000,
) -> SignatureDistribution:
    """Monte-Carlo estimate of the Fig. 4 signature-class distribution.

    The distribution is estimated for a single error species (X and Z planes
    are statistically identical under the paper's symmetric noise model).
    """
    generator = make_rng(rng)
    remaining = num_cycles
    all_zeros = local_ones = complex_ = 0
    while remaining > 0:
        batch = min(batch_size, remaining)
        signatures, _flips, touches = sample_cycle_signatures(
            code, stype, noise, batch, generator, return_touch_counts=True
        )
        zero_mask, local_mask, complex_mask = classify_cycles(signatures, touches)
        all_zeros += int(zero_mask.sum())
        local_ones += int(local_mask.sum())
        complex_ += int(complex_mask.sum())
        remaining -= batch
    return SignatureDistribution(
        physical_error_rate=noise.data_error_rate,
        code_distance=code.distance,
        cycles=num_cycles,
        all_zeros=all_zeros,
        local_ones=local_ones,
        complex_=complex_,
    )


__all__ = [
    "sample_cycle_signatures",
    "classify_cycles",
    "simulate_signature_distribution",
]
