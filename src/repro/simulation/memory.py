"""Full memory (lifetime) experiments for logical-error-rate estimation (Fig. 14).

One trial simulates ``rounds`` noisy measurement rounds of a single logical
qubit held in memory, followed by a final perfectly-read round (the standard
convention that lets every detection event be matched):

1. every round injects fresh data errors and measurement flips;
2. the accumulated error state determines the true syndrome, which is
   recorded with the round's measurement flips applied;
3. the decoder under test receives the full detection-event history and
   returns a correction;
4. the trial fails when the residual error (accumulated XOR correction)
   anticommutes with the logical operator.

The same harness runs the MWPM baseline and the Clique+MWPM hierarchy, which
is exactly the comparison in Fig. 14.

Three engines share this harness's contract, selected with the ``engine``
argument of :func:`run_memory_experiment`:

* ``"loop"`` — the per-trial reference path below, kept as the correctness
  oracle;
* ``"batch"`` (default) — the vectorised engine of
  :mod:`repro.simulation.batch`, bit-identical to the loop under a fixed
  seed;
* ``"sharded"`` — the multiprocess engine of :mod:`repro.simulation.shard`,
  which fans fixed-size shards of the trial budget over worker processes.
  It is deterministic for a fixed ``(seed, chunk_trials)`` independent of
  the worker count, but follows its own per-shard RNG streams (see that
  module's seeding contract) rather than the loop/batch stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.codes.rotated_surface import RotatedSurfaceCode
from repro.decoders.base import Decoder
from repro.exceptions import ConfigurationError
from repro.noise.events import vector_to_errors
from repro.noise.models import NoiseModel
from repro.noise.rng import make_rng
from repro.simulation.monte_carlo import WilsonStoppingRule, wilson_interval
from repro.syndrome.history import SyndromeHistory
from repro.types import StabilizerType


@dataclass(frozen=True)
class MemoryExperimentResult:
    """Logical-error-rate estimate from a batch of memory-experiment trials.

    The ``tier_*`` fields are populated when the decoder under test is a
    :class:`~repro.clique.cascade.DecoderCascade` (tier 0 is the on-chip
    Clique tier) and stay empty for flat decoders:

    * ``tier_trials[k]`` — trials whose decoding terminated at tier ``k``
      (sums to ``trials``);
    * ``tier_rounds[0]`` — rounds resolved on-chip, ``tier_rounds[k >= 1]``
      — rounds shipped *into* tier ``k`` (an escalated trial re-ships its
      whole off-chip window, so its rounds count toward every tier it
      visited) — the per-boundary bandwidth in rounds.

    The fault-provenance fields record how the sharded engine had to degrade
    to produce the estimate (see :mod:`repro.faults`): ``engine_degraded``
    flags a run whose process pool could not be constructed and fell back to
    sequential in-process execution (counts unaffected, wall-clock scaling
    lost); ``skipped_shards`` / ``skipped_trials`` record shards dropped
    under ``on_exhausted="skip"``, in which case ``trials`` already counts
    only the trials that actually ran.  A result with ``skipped_trials > 0``
    is *incomplete* — it estimates the same rate from fewer samples — and is
    deliberately never cached by :class:`~repro.store.SweepCache`.
    """

    physical_error_rate: float
    code_distance: int
    rounds: int
    trials: int
    logical_failures: int
    decoder_name: str
    onchip_rounds: int = 0
    total_rounds: int = 0
    tier_names: tuple[str, ...] = ()
    tier_trials: tuple[int, ...] = ()
    tier_rounds: tuple[int, ...] = ()
    engine_degraded: bool = False
    skipped_shards: int = 0
    skipped_trials: int = 0

    def __post_init__(self) -> None:
        # Store round-trips decode JSON arrays as lists; normalise so
        # computed and store-loaded results compare (and hash) identically.
        object.__setattr__(self, "tier_names", tuple(self.tier_names))
        object.__setattr__(self, "tier_trials", tuple(int(n) for n in self.tier_trials))
        object.__setattr__(self, "tier_rounds", tuple(int(n) for n in self.tier_rounds))

    @property
    def logical_error_rate(self) -> float:
        return self.logical_failures / self.trials if self.trials else 0.0

    @property
    def confidence_interval(self) -> tuple[float, float]:
        return wilson_interval(self.logical_failures, self.trials)

    @property
    def onchip_round_fraction(self) -> float:
        """Fraction of measurement rounds resolved on-chip (hierarchical decoders only)."""
        if self.total_rounds == 0:
            return 0.0
        return self.onchip_rounds / self.total_rounds

    @property
    def num_tiers(self) -> int:
        return len(self.tier_trials)

    @property
    def tier_trial_fractions(self) -> tuple[float, ...]:
        """Fraction of trials whose decoding terminated at each tier."""
        if not self.trials:
            return tuple(0.0 for _ in self.tier_trials)
        return tuple(n / self.trials for n in self.tier_trials)

    def escalation_rate(self, boundary: int) -> float:
        """Fraction of trials escalated past tier ``boundary`` (0-indexed).

        ``escalation_rate(0)`` is the fraction of trials that left the chip
        at all; ``escalation_rate(1)`` the fraction the first off-chip tier
        handed on; and so forth.
        """
        if not self.trials or boundary >= len(self.tier_trials):
            return 0.0
        return sum(self.tier_trials[boundary + 1 :]) / self.trials

    @property
    def escalation_rates(self) -> tuple[float, ...]:
        """Per-boundary escalation rates (one entry per tier boundary)."""
        return tuple(
            self.escalation_rate(k) for k in range(max(len(self.tier_trials) - 1, 0))
        )

    def tier_rounds_per_trial(self, tier: int) -> float:
        """Average detection rounds shipped into ``tier`` per trial — the
        tier boundary's off-chip bandwidth in rounds."""
        if not self.trials or tier >= len(self.tier_rounds):
            return 0.0
        return self.tier_rounds[tier] / self.trials


def run_memory_trial(
    code: RotatedSurfaceCode,
    stype: StabilizerType,
    noise: NoiseModel,
    decoder: Decoder,
    rounds: int,
    rng: np.random.Generator,
) -> tuple[bool, dict]:
    """Run a single memory-experiment trial; return (logical failure?, metadata)."""
    parity_check = code.parity_check(stype)
    num_ancillas = code.num_ancillas_of_type(stype)
    history = SyndromeHistory(num_ancillas)
    accumulated = np.zeros(code.num_data_qubits, dtype=np.uint8)

    for _ in range(rounds):
        accumulated ^= noise.sample_data_vector(code, rng)
        true_syndrome = (parity_check @ accumulated) % 2
        flips = noise.sample_measurement_vector(code, stype, rng)
        history.record(true_syndrome ^ flips)
    # Final round with perfect readout so every detection event can be matched.
    history.record((parity_check @ accumulated) % 2)

    result = decoder.decode(history.detection_matrix())
    correction = np.zeros(code.num_data_qubits, dtype=np.uint8)
    data_index = code.data_index
    for qubit in result.correction:
        correction[data_index[qubit]] ^= 1
    residual = accumulated ^ correction
    residual_set = vector_to_errors(residual, code.data_qubits)
    failed = code.is_logical_error(residual_set, stype)
    return failed, dict(result.metadata)


def run_memory_experiment(
    code: RotatedSurfaceCode,
    noise: NoiseModel,
    decoder_factory: Callable[[RotatedSurfaceCode, StabilizerType], Decoder],
    trials: int,
    rounds: int | None = None,
    stype: StabilizerType = StabilizerType.X,
    rng: np.random.Generator | int | None = None,
    decoder_name: str | None = None,
    engine: str = "batch",
    workers: int | None = None,
    chunk_trials: "int | str | None" = None,
    adaptive: WilsonStoppingRule | None = None,
    checkpoint: object | None = None,
    faults: object | None = None,
    fault_report: object | None = None,
    fault_injector: object | None = None,
    packed: bool = True,
    schedule: str | None = None,
) -> MemoryExperimentResult:
    """Estimate the logical error rate of a decoder with Monte-Carlo trials.

    Args:
        code: the surface code instance.
        noise: noise model (the paper uses symmetric phenomenological noise).
        decoder_factory: builds the decoder under test for ``(code, stype)``;
            a factory is taken rather than an instance so the harness can be
            reused across codes in parameter sweeps (and so the sharded
            engine can rebuild the decoder inside each worker process — use
            a picklable factory, i.e. a module-level function or class).
        trials: number of independent memory experiments.
        rounds: noisy measurement rounds per trial (defaults to the code
            distance, the standard choice).
        stype: which error species to track (the other is symmetric).
        rng: seed or generator (``"sharded"`` accepts only a seed).
        decoder_name: label for reports (defaults to the class name).
        engine: ``"batch"`` (default) runs the vectorised engine of
            :mod:`repro.simulation.batch`; ``"loop"`` runs the per-trial
            reference path (both bit-identical under the same seed);
            ``"sharded"`` fans the trial budget over worker processes via
            :mod:`repro.simulation.shard` (deterministic per
            ``(seed, chunk_trials)`` independent of ``workers``).
        workers: process count for the sharded engine (defaults to the CPU
            count; ``1`` runs the shards sequentially in-process).
        chunk_trials: trials per shard for the sharded engine.  The string
            ``"auto"`` (sharded only) resolves the shard size from the trial
            budget, worker count, and code distance
            (:func:`repro.simulation.shard.resolve_auto_chunk`); keyed
            configs record the resolved integer.
        adaptive: a :class:`~repro.simulation.monte_carlo.WilsonStoppingRule`
            (see :func:`~repro.simulation.monte_carlo.until_wilson`) enabling
            adaptive trial allocation on the sharded engine: shards are
            spawned by index until the Wilson interval on the logical-failure
            rate reaches the rule's target width.  ``trials`` is ignored —
            the rule's ``max_trials`` caps the budget — and the result's
            ``trials`` field records what was actually consumed.
        checkpoint: per-wave mid-point resume slot for adaptive runs (e.g.
            :class:`repro.store.AdaptiveCheckpoint`); see
            :func:`repro.simulation.shard.run_sharded_adaptive`.
        faults: a :class:`repro.faults.FaultPolicy` for the sharded engine
            (retries, shard timeouts, pool recovery); recovery never changes
            the merged counts.  See :func:`repro.simulation.shard.run_sharded`.
        fault_report: optional :class:`repro.faults.FaultReport` to
            accumulate recovery counters into.
        fault_injector: optional :class:`repro.faults.FaultInjector`
            carrying a deterministic chaos plan (test mode); defaults to the
            ambient ``REPRO_FAULT_PLAN`` plan, if set.
        packed: run the batched engines' hot path on uint64 bitplane kernels
            (:mod:`repro.bitplane`) — the default.  ``packed=False`` is the
            unpacked escape hatch (``--no-packed`` on the CLI); both paths
            are bit-identical under the same seed, so this knob never changes
            results, only throughput and peak memory.  The ``"loop"`` engine
            decodes trial by trial and has no packed representation, so the
            flag is accepted and ignored there.
        schedule: ``"sweep"`` (sharded only) routes the run through the
            sweep scheduler (:mod:`repro.simulation.scheduler`) — the same
            dispatcher the multi-point experiment sweeps share one pool on.
            Counts are byte-identical either way; for a single point this is
            just the near-zero-overhead degenerate case.  ``"point"`` (or
            ``None``) keeps the direct per-point engine.
    """
    if checkpoint is not None and adaptive is None:
        raise ConfigurationError(
            "checkpoint is only meaningful with adaptive allocation: fixed-"
            "budget sweeps resume at sweep-point granularity via the store"
        )
    if engine != "sharded" and workers is not None:
        raise ConfigurationError(
            f"workers is only meaningful for engine='sharded', got engine={engine!r}"
        )
    if engine != "sharded" and (
        faults is not None or fault_report is not None or fault_injector is not None
    ):
        raise ConfigurationError(
            "faults / fault_report / fault_injector are only meaningful for "
            f"engine='sharded', got engine={engine!r}"
        )
    if adaptive is not None and engine != "sharded":
        raise ConfigurationError(
            f"adaptive allocation requires engine='sharded', got engine={engine!r}"
        )
    if schedule is not None:
        from repro.simulation.scheduler import validate_schedule

        validate_schedule(schedule)
        if engine != "sharded":
            raise ConfigurationError(
                f"schedule is only meaningful for engine='sharded', got engine={engine!r}"
            )
    if chunk_trials == "auto" and engine != "sharded":
        raise ConfigurationError(
            "chunk_trials='auto' is only meaningful for engine='sharded': "
            "only the shard planner resolves it"
        )
    if engine == "sharded":
        from repro.simulation.shard import (
            AUTO_CHUNK,
            resolve_auto_chunk,
            run_memory_experiment_adaptive,
            run_memory_experiment_sharded,
        )

        if chunk_trials == AUTO_CHUNK:
            budget = adaptive.max_trials if adaptive is not None else trials
            chunk_trials = resolve_auto_chunk(budget, workers, code.distance)
        if schedule == "sweep":
            from repro.simulation.scheduler import SweepScheduler, memory_point

            point_kwargs = (
                {} if chunk_trials is None else {"chunk_trials": chunk_trials}
            )
            point = memory_point(
                "point",
                code,
                noise,
                decoder_factory,
                trials=trials,
                seed=rng,
                rounds=rounds,
                stype=stype,
                stop=adaptive,
                checkpoint=checkpoint,
                packed=packed,
                decoder_name=decoder_name,
                **point_kwargs,
            )
            scheduler = SweepScheduler(
                workers=workers,
                faults=faults,
                fault_report=fault_report,
                fault_injector=fault_injector,
            )
            return scheduler.run([point])["point"]
        kwargs = {} if chunk_trials is None else {"chunk_trials": chunk_trials}
        kwargs.update(
            faults=faults,
            fault_report=fault_report,
            fault_injector=fault_injector,
            packed=packed,
        )
        if adaptive is not None:
            return run_memory_experiment_adaptive(
                code,
                noise,
                decoder_factory,
                stop=adaptive,
                rounds=rounds,
                stype=stype,
                rng=rng,
                decoder_name=decoder_name,
                workers=workers,
                checkpoint=checkpoint,
                **kwargs,
            )
        return run_memory_experiment_sharded(
            code,
            noise,
            decoder_factory,
            trials=trials,
            rounds=rounds,
            stype=stype,
            rng=rng,
            decoder_name=decoder_name,
            workers=workers,
            **kwargs,
        )
    if engine == "batch":
        # Imported lazily to avoid a circular import (batch.py builds this
        # module's MemoryExperimentResult).
        from repro.simulation.batch import run_memory_experiment_batch

        kwargs = {} if chunk_trials is None else {"chunk_trials": chunk_trials}
        return run_memory_experiment_batch(
            code,
            noise,
            decoder_factory,
            trials=trials,
            rounds=rounds,
            stype=stype,
            rng=rng,
            decoder_name=decoder_name,
            packed=packed,
            **kwargs,
        )
    if engine != "loop":
        raise ConfigurationError(
            f"engine must be 'batch', 'loop', or 'sharded', got {engine!r}"
        )
    if chunk_trials is not None:
        raise ConfigurationError(
            "chunk_trials is only meaningful for engine='batch' or 'sharded'"
        )

    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    if rounds is None:
        rounds = code.distance
    if rounds <= 0:
        raise ConfigurationError(f"rounds must be positive, got {rounds}")

    generator = make_rng(rng)
    decoder = decoder_factory(code, stype)
    tier_names = tuple(getattr(decoder, "tier_names", ()) or ())
    tier_trials = [0] * len(tier_names)
    tier_rounds = [0] * len(tier_names)
    failures = 0
    onchip_rounds = 0
    total_rounds = 0
    for _ in range(trials):
        failed, metadata = run_memory_trial(code, stype, noise, decoder, rounds, generator)
        failures += int(failed)
        if "num_offchip_rounds" in metadata and "num_rounds" in metadata:
            offchip = metadata["num_offchip_rounds"]
            onchip_rounds += metadata["num_rounds"] - offchip
            total_rounds += metadata["num_rounds"]
            if tier_names and "handled_tier" in metadata:
                handled = metadata["handled_tier"]
                tier_trials[handled] += 1
                tier_rounds[0] += metadata["num_rounds"] - offchip
                shipped = metadata.get("tier_shipped_rounds")
                if shipped is not None:
                    # Per-cluster escalation: each off-chip tier reports the
                    # distinct rounds actually shipped into it.
                    for tier, count in enumerate(shipped, start=1):
                        tier_rounds[tier] += count
                else:
                    # Legacy decoders without shipped counts: assume a trial
                    # handled at tier h re-shipped its whole off-chip window
                    # through every tier 1..h.
                    for tier in range(1, handled + 1):
                        tier_rounds[tier] += offchip

    return MemoryExperimentResult(
        physical_error_rate=noise.data_error_rate,
        code_distance=code.distance,
        rounds=rounds,
        trials=trials,
        logical_failures=failures,
        decoder_name=decoder_name or decoder.name,
        onchip_rounds=onchip_rounds,
        total_rounds=total_rounds,
        tier_names=tier_names,
        tier_trials=tuple(tier_trials),
        tier_rounds=tuple(tier_rounds),
    )


__all__ = ["MemoryExperimentResult", "run_memory_trial", "run_memory_experiment"]
