"""Monte-Carlo simulation harnesses (Section 6.1 of the paper)."""

from repro.simulation.batch import run_memory_experiment_batch
from repro.simulation.coverage import CoverageResult, simulate_clique_coverage
from repro.simulation.cycles import (
    sample_cycle_signatures,
    simulate_signature_distribution,
)
from repro.simulation.memory import MemoryExperimentResult, run_memory_experiment
from repro.simulation.monte_carlo import wilson_interval
from repro.simulation.results import SignatureDistribution
from repro.simulation.shard import run_memory_experiment_sharded

__all__ = [
    "sample_cycle_signatures",
    "simulate_signature_distribution",
    "SignatureDistribution",
    "CoverageResult",
    "simulate_clique_coverage",
    "MemoryExperimentResult",
    "run_memory_experiment",
    "run_memory_experiment_batch",
    "run_memory_experiment_sharded",
    "wilson_interval",
]
