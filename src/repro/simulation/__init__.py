"""Monte-Carlo simulation harnesses (Section 6.1 of the paper)."""

from repro.simulation.batch import run_memory_experiment_batch
from repro.simulation.coverage import (
    CoverageKernel,
    CoverageResult,
    simulate_clique_coverage,
)
from repro.simulation.cycles import (
    sample_cycle_signatures,
    simulate_signature_distribution,
)
from repro.simulation.memory import MemoryExperimentResult, run_memory_experiment
from repro.simulation.monte_carlo import (
    WilsonStoppingRule,
    until_wilson,
    wilson_interval,
    wilson_width,
)
from repro.simulation.results import SignatureDistribution
from repro.simulation.scheduler import (
    PointOutcome,
    SweepPoint,
    SweepScheduler,
    coverage_point,
    memory_point,
)
from repro.simulation.shard import (
    AdaptiveShardRun,
    MemoryKernel,
    resolve_auto_chunk,
    run_memory_experiment_adaptive,
    run_memory_experiment_sharded,
    run_sharded,
    run_sharded_adaptive,
)

__all__ = [
    "PointOutcome",
    "SweepPoint",
    "SweepScheduler",
    "coverage_point",
    "memory_point",
    "resolve_auto_chunk",
    "sample_cycle_signatures",
    "simulate_signature_distribution",
    "SignatureDistribution",
    "CoverageKernel",
    "CoverageResult",
    "simulate_clique_coverage",
    "MemoryExperimentResult",
    "MemoryKernel",
    "run_memory_experiment",
    "run_memory_experiment_batch",
    "run_memory_experiment_sharded",
    "run_memory_experiment_adaptive",
    "run_sharded",
    "run_sharded_adaptive",
    "AdaptiveShardRun",
    "WilsonStoppingRule",
    "until_wilson",
    "wilson_interval",
    "wilson_width",
]
