"""Result containers shared by the simulation harnesses and experiments."""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import SignatureClass


@dataclass(frozen=True)
class SignatureDistribution:
    """Per-cycle signature-class distribution for one operating point (Fig. 4)."""

    physical_error_rate: float
    code_distance: int
    cycles: int
    all_zeros: int
    local_ones: int
    complex_: int

    def __post_init__(self) -> None:
        total = self.all_zeros + self.local_ones + self.complex_
        if total != self.cycles:
            raise ValueError(
                f"class counts ({total}) do not sum to the number of cycles ({self.cycles})"
            )

    @property
    def all_zeros_fraction(self) -> float:
        return self.all_zeros / self.cycles if self.cycles else 0.0

    @property
    def local_ones_fraction(self) -> float:
        return self.local_ones / self.cycles if self.cycles else 0.0

    @property
    def complex_fraction(self) -> float:
        return self.complex_ / self.cycles if self.cycles else 0.0

    @property
    def trivial_fraction(self) -> float:
        """All-0s plus Local-1s: the share a BTWC design can keep on-chip."""
        return self.all_zeros_fraction + self.local_ones_fraction

    def fraction(self, cls: SignatureClass) -> float:
        return {
            SignatureClass.ALL_ZEROS: self.all_zeros_fraction,
            SignatureClass.LOCAL_ONES: self.local_ones_fraction,
            SignatureClass.COMPLEX: self.complex_fraction,
        }[cls]

    def as_row(self) -> dict[str, float]:
        """Flat dictionary suitable for tabulation in experiment reports."""
        return {
            "physical_error_rate": self.physical_error_rate,
            "code_distance": float(self.code_distance),
            "cycles": float(self.cycles),
            "all_zeros_fraction": self.all_zeros_fraction,
            "local_ones_fraction": self.local_ones_fraction,
            "complex_fraction": self.complex_fraction,
        }


__all__ = ["SignatureDistribution"]
